//! Free functions over flat `f32` slices.
//!
//! Flattened model parameter vectors, gradient vectors and gradient residual
//! accumulators in the higher-level crates are plain `Vec<f32>`/`&[f32]`
//! values; this module provides the handful of BLAS-level-1 style operations
//! they need.
//!
//! # Examples
//!
//! ```
//! use agsfl_tensor::vecops;
//!
//! let mut w = vec![1.0, 2.0, 3.0];
//! vecops::axpy(&mut w, -0.5, &[2.0, 2.0, 2.0]);
//! assert_eq!(w, vec![0.0, 1.0, 2.0]);
//! assert_eq!(vecops::argmax(&w), Some(2));
//! ```

/// Dot product of two equally long slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// In-place AXPY update `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(
        y.len(),
        x.len(),
        "axpy: length mismatch {} vs {}",
        y.len(),
        x.len()
    );
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// In-place element-wise addition `y += x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    axpy(y, 1.0, x);
}

/// In-place element-wise subtraction `y -= x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub_assign(y: &mut [f32], x: &[f32]) {
    axpy(y, -1.0, x);
}

/// In-place scalar multiplication `y *= alpha`.
pub fn scale(y: &mut [f32], alpha: f32) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// Fills the slice with zeros.
pub fn zero(y: &mut [f32]) {
    for yi in y.iter_mut() {
        *yi = 0.0;
    }
}

/// Euclidean (L2) norm.
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// L1 norm (sum of absolute values).
pub fn l1_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x.abs()).sum()
}

/// Squared Euclidean distance between two equally long slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Largest absolute value in the slice, or `0.0` for an empty slice.
pub fn max_abs(a: &[f32]) -> f32 {
    a.iter().fold(0.0f32, |acc, x| acc.max(x.abs()))
}

/// Index of the maximum element, `None` for an empty slice.
///
/// NaN elements are never selected; if every element is NaN the first index is
/// returned.
pub fn argmax(a: &[f32]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_val = a[0];
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v > best_val || best_val.is_nan() {
            best = i;
            best_val = v;
        }
    }
    Some(best)
}

/// Arithmetic mean, `0.0` for an empty slice.
pub fn mean(a: &[f32]) -> f32 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f32>() / a.len() as f32
    }
}

/// Population variance, `0.0` for slices with fewer than two elements.
pub fn variance(a: &[f32]) -> f32 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / a.len() as f32
}

/// Returns the number of elements whose absolute value is strictly greater
/// than `threshold`.
pub fn count_above(a: &[f32], threshold: f32) -> usize {
    a.iter().filter(|x| x.abs() > threshold).count()
}

/// Clamps every element of the slice into `[lo, hi]` in place.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn clamp(a: &mut [f32], lo: f32, hi: f32) {
    assert!(lo <= hi, "clamp: lo must not exceed hi");
    for v in a.iter_mut() {
        *v = v.clamp(lo, hi);
    }
}

/// Linear interpolation `(1 - t) * a + t * b` element-wise into a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn lerp(a: &[f32], b: &[f32], t: f32) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "lerp: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (1.0 - t) * x + t * y)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_and_friends() {
        let mut y = vec![1.0, 1.0];
        axpy(&mut y, 2.0, &[1.0, 3.0]);
        assert_eq!(y, vec![3.0, 7.0]);
        add_assign(&mut y, &[1.0, 1.0]);
        assert_eq!(y, vec![4.0, 8.0]);
        sub_assign(&mut y, &[4.0, 8.0]);
        assert_eq!(y, vec![0.0, 0.0]);
    }

    #[test]
    fn scale_and_zero() {
        let mut y = vec![2.0, -4.0];
        scale(&mut y, 0.5);
        assert_eq!(y, vec![1.0, -2.0]);
        zero(&mut y);
        assert_eq!(y, vec![0.0, 0.0]);
    }

    #[test]
    fn norms() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(l1_norm(&[3.0, -4.0]), 7.0);
        assert_eq!(max_abs(&[-5.0, 2.0]), 5.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0]), Some(0));
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        // NaN at the front is skipped over.
        assert_eq!(argmax(&[f32::NAN, 1.0, 2.0]), Some(2));
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn count_above_and_clamp() {
        assert_eq!(count_above(&[0.5, -2.0, 1.5], 1.0), 2);
        let mut a = vec![-3.0, 0.5, 9.0];
        clamp(&mut a, 0.0, 1.0);
        assert_eq!(a, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [1.0, 2.0];
        let b = [3.0, 6.0];
        assert_eq!(lerp(&a, &b, 0.0), vec![1.0, 2.0]);
        assert_eq!(lerp(&a, &b, 1.0), vec![3.0, 6.0]);
        assert_eq!(lerp(&a, &b, 0.5), vec![2.0, 4.0]);
    }

    #[test]
    fn squared_distance_known() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn prop_dot_symmetry(a in proptest::collection::vec(-10.0f32..10.0, 1..50)) {
            let b: Vec<f32> = a.iter().map(|x| x * 0.5 - 1.0).collect();
            let ab = dot(&a, &b);
            let ba = dot(&b, &a);
            prop_assert!((ab - ba).abs() <= 1e-3 * (1.0 + ab.abs()));
        }

        #[test]
        fn prop_axpy_matches_manual(
            y0 in proptest::collection::vec(-5.0f32..5.0, 1..30),
            alpha in -3.0f32..3.0,
        ) {
            let x: Vec<f32> = y0.iter().map(|v| v + 1.0).collect();
            let mut y = y0.clone();
            axpy(&mut y, alpha, &x);
            for i in 0..y.len() {
                prop_assert!((y[i] - (y0[i] + alpha * x[i])).abs() < 1e-4);
            }
        }

        #[test]
        fn prop_l2_norm_nonnegative_and_scaling(
            a in proptest::collection::vec(-10.0f32..10.0, 1..30),
            s in 0.0f32..4.0,
        ) {
            let n = l2_norm(&a);
            prop_assert!(n >= 0.0);
            let mut scaled = a.clone();
            scale(&mut scaled, s);
            prop_assert!((l2_norm(&scaled) - s * n).abs() <= 1e-2 * (1.0 + n));
        }

        #[test]
        fn prop_argmax_returns_maximum(a in proptest::collection::vec(-100.0f32..100.0, 1..50)) {
            let idx = argmax(&a).unwrap();
            for &v in &a {
                prop_assert!(a[idx] >= v);
            }
        }
    }
}
