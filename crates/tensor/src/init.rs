//! Deterministic random initialisation of weights and synthetic data.
//!
//! All randomness in the simulator flows through [`rand::Rng`] instances owned
//! by the caller, so experiments are reproducible from a single seed.
//!
//! # Examples
//!
//! ```
//! use agsfl_tensor::init;
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let w = init::xavier_uniform(784, 64, &mut rng);
//! assert_eq!(w.shape(), (784, 64));
//! ```

use rand::Rng;

use crate::Matrix;

/// Draws a standard-normal sample using the Box–Muller transform.
///
/// `rand` 0.8 without `rand_distr` has no normal distribution, so we provide a
/// tiny, dependency-free implementation. The second Box–Muller output is
/// discarded for simplicity; the initialisers below are not in a hot path.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid u1 == 0 which would make ln(0) = -inf.
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Draws a normal sample with the given `mean` and standard deviation `std`.
pub fn normal<R: Rng + ?Sized>(mean: f32, std: f32, rng: &mut R) -> f32 {
    mean + std * standard_normal(rng)
}

/// Fills a vector of length `n` with i.i.d. normal samples.
pub fn normal_vec<R: Rng + ?Sized>(n: usize, mean: f32, std: f32, rng: &mut R) -> Vec<f32> {
    (0..n).map(|_| normal(mean, std, rng)).collect()
}

/// Fills a vector of length `n` with i.i.d. uniform samples from `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform_vec<R: Rng + ?Sized>(n: usize, lo: f32, hi: f32, rng: &mut R) -> Vec<f32> {
    assert!(lo < hi, "uniform_vec: empty range");
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Xavier/Glorot uniform initialisation for a `fan_in x fan_out` weight matrix.
///
/// Samples from `U(-limit, limit)` with `limit = sqrt(6 / (fan_in + fan_out))`,
/// the standard choice for tanh/sigmoid-style layers and a safe default for
/// the small networks used in the experiments.
pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_vec(
        fan_in,
        fan_out,
        uniform_vec(fan_in * fan_out, -limit, limit, rng),
    )
}

/// He/Kaiming normal initialisation for a `fan_in x fan_out` weight matrix.
///
/// Samples from `N(0, sqrt(2 / fan_in))`, appropriate for ReLU layers.
pub fn he_normal<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    Matrix::from_vec(fan_in, fan_out, normal_vec(fan_in * fan_out, 0.0, std, rng))
}

/// Draws an index in `0..weights.len()` proportionally to the (non-negative)
/// weights. Returns `None` if the weights are empty or all zero/negative.
///
/// Used by the EXP3 baseline and the synthetic data generators.
pub fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if weights.is_empty() || total <= 0.0 {
        return None;
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        target -= w;
        if target <= 0.0 {
            return Some(i);
        }
    }
    // Floating-point round-off: return the last positive-weight index.
    weights.iter().rposition(|&w| w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normal_samples_have_reasonable_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let xs = normal_vec(20_000, 1.0, 2.0, &mut rng);
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_vec_respects_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let xs = uniform_vec(1000, -0.5, 0.5, &mut rng);
        assert!(xs.iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn xavier_limit_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let w = xavier_uniform(100, 50, &mut rng);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
        assert_eq!(w.shape(), (100, 50));
    }

    #[test]
    fn he_normal_shape_and_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let w = he_normal(200, 30, &mut rng);
        assert_eq!(w.shape(), (200, 30));
        let std = (w.as_slice().iter().map(|x| x * x).sum::<f32>() / w.len() as f32).sqrt();
        let expected = (2.0f32 / 200.0).sqrt();
        assert!(
            (std - expected).abs() < 0.03,
            "std {std} expected {expected}"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(
            normal_vec(16, 0.0, 1.0, &mut a),
            normal_vec(16, 0.0, 1.0, &mut b)
        );
    }

    #[test]
    fn sample_weighted_edge_cases() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(sample_weighted(&[], &mut rng), None);
        assert_eq!(sample_weighted(&[0.0, 0.0], &mut rng), None);
        assert_eq!(sample_weighted(&[0.0, 1.0, 0.0], &mut rng), Some(1));
    }

    #[test]
    fn sample_weighted_is_approximately_proportional() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..20_000 {
            counts[sample_weighted(&weights, &mut rng).unwrap()] += 1;
        }
        let frac = counts[1] as f64 / 20_000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
    }
}
