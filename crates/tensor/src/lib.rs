//! Dense `f32` math substrate for the AGSFL federated-learning simulator.
//!
//! The crates higher in the stack (`agsfl-ml`, `agsfl-fl`, …) only need a
//! small, predictable set of dense linear-algebra primitives:
//!
//! * a row-major [`Matrix`] with matrix multiplication, transposition and
//!   element-wise arithmetic,
//! * free functions over flat `f32` slices ([`vecops`]) — dot products, AXPY,
//!   norms, arg-max — used for flattened model parameter/gradient vectors,
//! * deterministic random initialisation ([`init`]) for model weights and
//!   synthetic datasets,
//! * numerically careful reductions ([`ops`]) such as soft-max and log-sum-exp,
//! * small statistics helpers ([`stats`]) used by the experiment harness
//!   (empirical CDFs, running means).
//!
//! Everything is plain safe Rust with no SIMD or BLAS dependency so that the
//! whole paper reproduction runs offline on any machine.
//!
//! # Example
//!
//! ```
//! use agsfl_tensor::{Matrix, vecops};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! assert_eq!(vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;

pub mod init;
pub mod ops;
pub mod stats;
pub mod vecops;

pub use error::ShapeError;
pub use matrix::Matrix;
