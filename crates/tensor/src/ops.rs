//! Numerically careful reductions used by the neural-network layers.
//!
//! # Examples
//!
//! ```
//! use agsfl_tensor::ops;
//!
//! let probs = ops::softmax(&[1.0, 2.0, 3.0]);
//! assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! assert!(probs[2] > probs[1] && probs[1] > probs[0]);
//! ```

use crate::Matrix;

/// Numerically stable soft-max of a logit vector.
///
/// Returns a probability vector that sums to one. An empty input yields an
/// empty output.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Applies [`softmax`] independently to every row of a logits matrix.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for i in 0..logits.rows() {
        let probs = softmax(logits.row(i));
        out.row_mut(i).copy_from_slice(&probs);
    }
    out
}

/// Numerically stable `log(sum(exp(x)))`.
///
/// Returns negative infinity for an empty slice.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max.is_infinite() {
        return max;
    }
    max + xs.iter().map(|&x| (x - max).exp()).sum::<f32>().ln()
}

/// Negative log-likelihood of class `target` under `logits`, computed in a
/// numerically stable way (equivalent to cross-entropy after soft-max).
///
/// # Panics
///
/// Panics if `target >= logits.len()`.
pub fn cross_entropy_with_logits(logits: &[f32], target: usize) -> f32 {
    assert!(target < logits.len(), "target {target} out of range");
    log_sum_exp(logits) - logits[target]
}

/// One-hot encodes `class` into a vector of length `num_classes`.
///
/// # Panics
///
/// Panics if `class >= num_classes`.
pub fn one_hot(class: usize, num_classes: usize) -> Vec<f32> {
    assert!(
        class < num_classes,
        "class {class} out of range {num_classes}"
    );
    let mut v = vec![0.0f32; num_classes];
    v[class] = 1.0;
    v
}

/// Rectified linear unit `max(x, 0)`.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of [`relu`] with the convention `relu'(0) = 0`.
#[inline]
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Hyperbolic tangent (thin wrapper kept for symmetry with [`sigmoid`]).
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_rows_matches_per_row() {
        let logits = Matrix::from_rows(&[&[0.0, 1.0], &[3.0, -1.0]]);
        let sm = softmax_rows(&logits);
        for i in 0..2 {
            let expected = softmax(logits.row(i));
            for (j, &e) in expected.iter().enumerate() {
                assert!((sm.get(i, j) - e).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn log_sum_exp_known_values() {
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
        assert!((log_sum_exp(&[0.0, 0.0]) - std::f32::consts::LN_2).abs() < 1e-6);
        // Large values must not overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + std::f32::consts::LN_2)).abs() < 1e-3);
    }

    #[test]
    fn cross_entropy_matches_manual_softmax() {
        let logits = [0.5, -1.0, 2.0];
        let p = softmax(&logits);
        for (target, &pt) in p.iter().enumerate() {
            let ce = cross_entropy_with_logits(&logits, target);
            assert!((ce + pt.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn one_hot_layout() {
        assert_eq!(one_hot(1, 3), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn one_hot_out_of_range_panics() {
        let _ = one_hot(3, 3);
    }

    #[test]
    fn activation_functions() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert_eq!(relu_grad(-2.0), 0.0);
        assert_eq!(relu_grad(2.0), 1.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!((tanh(0.0)).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_softmax_is_probability_vector(
            logits in proptest::collection::vec(-20.0f32..20.0, 1..20)
        ) {
            let p = softmax(&logits);
            prop_assert_eq!(p.len(), logits.len());
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
            prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }

        #[test]
        fn prop_cross_entropy_nonnegative(
            logits in proptest::collection::vec(-10.0f32..10.0, 2..10),
            t_raw in 0usize..100,
        ) {
            let target = t_raw % logits.len();
            let ce = cross_entropy_with_logits(&logits, target);
            prop_assert!(ce >= -1e-4);
        }
    }
}
