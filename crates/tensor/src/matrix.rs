use serde::{Deserialize, Serialize};

use crate::ShapeError;

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the workhorse container behind the neural-network layers in
/// `agsfl-ml`: weight matrices, activation batches and gradients are all
/// stored in this type. It deliberately offers only the operations the
/// simulator needs and keeps all of them allocation-transparent (methods that
/// allocate return a new `Matrix`, in-place methods take `&mut self`).
///
/// # Examples
///
/// ```
/// use agsfl_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
/// assert_eq!(a.shape(), (2, 3));
/// assert_eq!(a.get(1, 2), 6.0);
///
/// let at = a.transpose();
/// assert_eq!(at.shape(), (3, 2));
/// assert_eq!(at.get(2, 1), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// # use agsfl_tensor::Matrix;
    /// let m = Matrix::zeros(2, 4);
    /// assert_eq!(m.shape(), (2, 4));
    /// assert!(m.as_slice().iter().all(|&x| x == 0.0));
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// # use agsfl_tensor::Matrix;
    /// let i = Matrix::identity(3);
    /// assert_eq!(i.get(1, 1), 1.0);
    /// assert_eq!(i.get(0, 2), 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equally long rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix where element `(i, j)` is `f(i, j)`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use agsfl_tensor::Matrix;
    /// let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f32);
    /// assert_eq!(m.get(1, 0), 10.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements (`rows * cols`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f32) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.cols + j] = value;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterates over the rows of the matrix as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "column {j} out of bounds");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Reshapes the matrix to `rows x cols` **without clearing its
    /// contents**: slots that existed before keep their old values and any
    /// newly grown slots are zero.
    ///
    /// This is the scratch-buffer primitive behind the im2col workspace in
    /// `agsfl-ml`: buffers that are fully overwritten by their producer pass
    /// (the column lowering, [`Matrix::matmul_into`]) reuse their allocation
    /// across calls instead of reallocating per batch. Callers that need a
    /// cleared buffer should follow up with [`Matrix::fill`].
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Backing-store capacity in elements (for memory audits and
    /// shrink-on-demand policies in reusable workspaces).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Releases excess backing capacity down to at most `elems` elements
    /// (never below the current element count). Shape and contents are
    /// untouched.
    pub fn shrink_capacity_to(&mut self, elems: usize) {
        self.data.shrink_to(elems);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Matrix multiplication `self * rhs`, panicking on shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`. Use [`Matrix::try_matmul`] for a
    /// fallible variant.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Matrix multiplication `self * rhs` written into `out`, reusing `out`'s
    /// allocation (the buffer is reshaped with [`Matrix::resize_for_overwrite`]
    /// and fully overwritten).
    ///
    /// Bit-identical to [`Matrix::matmul`]: both run the same blocked kernel
    /// (see the `gemm_into` comment for the fixed accumulation order).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul_into shape mismatch: {:?} * {:?}",
            self.shape(),
            rhs.shape()
        );
        out.resize_for_overwrite(self.rows, rhs.cols);
        out.fill(0.0);
        gemm_into(
            self.rows,
            self.cols,
            &self.data,
            rhs.cols,
            &rhs.data,
            &mut out.data,
        );
    }

    /// Matrix multiplication accumulated into an existing matrix:
    /// `out += self * rhs`, without clearing `out` first.
    ///
    /// Same blocked kernel as [`Matrix::matmul`]; the pre-seeded `out` acts
    /// as the fold's starting value (the im2col convolution seeds it with
    /// the bias, matching the scalar reference's bias-first accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `out` has the wrong shape.
    pub fn matmul_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul_acc shape mismatch: {:?} * {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul_acc output shape mismatch"
        );
        gemm_into(
            self.rows,
            self.cols,
            &self.data,
            rhs.cols,
            &rhs.data,
            &mut out.data,
        );
    }

    /// Accumulates `self * rhs^T` into the row-major slice `out` (shape
    /// `self.rows() x rhs.rows()`), without materialising the transpose and
    /// without clearing `out` first.
    ///
    /// The accumulate-into-slice form exists for gradient computation: a
    /// model's flat gradient vector contains the weight block as a
    /// contiguous row-major region, so the backward matmul can add straight
    /// into it with no temporary.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()` or `out` has the wrong length.
    pub fn matmul_transpose_acc(&self, rhs: &Matrix, out: &mut [f32]) {
        assert_eq!(
            self.cols,
            rhs.cols,
            "matmul_transpose_acc shape mismatch: {:?} * {:?}^T",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.len(),
            self.rows * rhs.rows,
            "matmul_transpose_acc output length {} does not match {}x{}",
            out.len(),
            self.rows,
            rhs.rows
        );
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out[i * rhs.rows..(i + 1) * rhs.rows];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o += dot_unrolled(a_row, rhs.row(j));
            }
        }
    }

    /// Accumulates `self^T * rhs` into the row-major slice `out` (shape
    /// `self.cols() x rhs.cols()`), without materialising the transpose and
    /// without clearing `out` first.
    ///
    /// Accumulation runs over `self`'s rows (the batch dimension in
    /// backpropagation) in ascending order within a fixed 4-row blocking —
    /// the deterministic sample-major order documented on the `Model` trait
    /// in `agsfl-ml`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()` or `out` has the wrong length.
    pub fn transpose_matmul_acc(&self, rhs: &Matrix, out: &mut [f32]) {
        assert_eq!(
            self.rows,
            rhs.rows,
            "transpose_matmul_acc shape mismatch: {:?}^T * {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.len(),
            self.cols * rhs.cols,
            "transpose_matmul_acc output length {} does not match {}x{}",
            out.len(),
            self.cols,
            rhs.cols
        );
        // Four batch rows per sweep over the output block: the output row is
        // the hot operand (it is read and written every step), so blocking
        // the batch dimension cuts its memory traffic 4x. Accumulation stays
        // ascending in `k` within a fixed deterministic blocking.
        let n = rhs.cols;
        let mut k = 0;
        while k + 4 <= self.rows {
            let b0 = rhs.row(k);
            let b1 = rhs.row(k + 1);
            let b2 = rhs.row(k + 2);
            let b3 = rhs.row(k + 3);
            for i in 0..self.cols {
                let a0 = self.data[k * self.cols + i];
                let a1 = self.data[(k + 1) * self.cols + i];
                let a2 = self.data[(k + 2) * self.cols + i];
                let a3 = self.data[(k + 3) * self.cols + i];
                if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                }
            }
            k += 4;
        }
        while k < self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
            k += 1;
        }
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new("matmul", self.shape(), rhs.shape()));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        gemm_into(
            self.rows,
            self.cols,
            &self.data,
            rhs.cols,
            &rhs.data,
            &mut out.data,
        );
        Ok(out)
    }

    /// Multiplies `self` by the transpose of `rhs` (i.e. `self * rhs^T`)
    /// without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.cols() != rhs.cols()`.
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.cols {
            return Err(ShapeError::new(
                "matmul_transpose",
                self.shape(),
                rhs.shape(),
            ));
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        Ok(out)
    }

    /// Multiplies the transpose of `self` by `rhs` (i.e. `self^T * rhs`)
    /// without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.rows() != rhs.rows()`.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.rows != rhs.rows {
            return Err(ShapeError::new(
                "transpose_matmul",
                self.shape(),
                rhs.shape(),
            ));
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Element-wise addition, returning a new matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn try_add(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new("add", self.shape(), rhs.shape()));
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix::from_vec(self.rows, self.cols, data))
    }

    /// In-place element-wise addition `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place scalar multiplication `self *= s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Adds a row vector (broadcast over rows), used for bias addition.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length must equal cols");
        for i in 0..self.rows {
            for (v, b) in self.row_mut(i).iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
    }

    /// Sums the rows of the matrix into a single vector of length `cols`.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

/// The shared row-major gemm kernel behind [`Matrix::matmul`] and
/// [`Matrix::matmul_into`]: `out += a * b` with `out` pre-zeroed by the
/// callers.
///
/// ikj loop order (stream over `b`'s rows) with the `k` dimension blocked
/// four at a time: the output row is the hot operand — it is read and
/// written on every `k` step — so the blocking cuts its memory traffic 4x,
/// which is what the larger layers of the im2col CNN are bound by. The
/// accumulation order is fixed and deterministic (ascending `k` within the
/// 4-way blocking), independent of threads or call site, but it is *not*
/// the scalar left fold: code comparing against a scalar reference (the
/// `agsfl_ml::reference` equivalence tests) must compare within a small
/// relative tolerance.
fn gemm_into(a_rows: usize, a_cols: usize, a: &[f32], b_cols: usize, b: &[f32], out: &mut [f32]) {
    // Two output rows per sweep: each streamed `b` block feeds both rows, so
    // i-blocking halves `b`'s memory traffic and doubles the number of
    // independent accumulation chains. It does not change any output
    // element's fold order (rows are independent), so the single-row tail
    // below produces the same bits as the paired path.
    let mut i = 0;
    while i + 2 <= a_rows {
        let (out_row0, out_row1) = out[i * b_cols..(i + 2) * b_cols].split_at_mut(b_cols);
        let a_row0 = &a[i * a_cols..(i + 1) * a_cols];
        let a_row1 = &a[(i + 1) * a_cols..(i + 2) * a_cols];
        let mut k = 0;
        while k + 4 <= a_cols {
            let b0 = &b[k * b_cols..(k + 1) * b_cols];
            let b1 = &b[(k + 1) * b_cols..(k + 2) * b_cols];
            let b2 = &b[(k + 2) * b_cols..(k + 3) * b_cols];
            let b3 = &b[(k + 3) * b_cols..(k + 4) * b_cols];
            let (x0, x1, x2, x3) = (a_row0[k], a_row0[k + 1], a_row0[k + 2], a_row0[k + 3]);
            let (y0, y1, y2, y3) = (a_row1[k], a_row1[k + 1], a_row1[k + 2], a_row1[k + 3]);
            for (((((o0, o1), &v0), &v1), &v2), &v3) in out_row0
                .iter_mut()
                .zip(out_row1.iter_mut())
                .zip(b0.iter())
                .zip(b1.iter())
                .zip(b2.iter())
                .zip(b3.iter())
            {
                *o0 += x0 * v0 + x1 * v1 + x2 * v2 + x3 * v3;
                *o1 += y0 * v0 + y1 * v1 + y2 * v2 + y3 * v3;
            }
            k += 4;
        }
        while k < a_cols {
            let b0 = &b[k * b_cols..(k + 1) * b_cols];
            let x = a_row0[k];
            let y = a_row1[k];
            if x != 0.0 || y != 0.0 {
                for ((o0, o1), &v) in out_row0.iter_mut().zip(out_row1.iter_mut()).zip(b0.iter()) {
                    *o0 += x * v;
                    *o1 += y * v;
                }
            }
            k += 1;
        }
        i += 2;
    }
    if i < a_rows {
        let a_row = &a[i * a_cols..(i + 1) * a_cols];
        let out_row = &mut out[i * b_cols..(i + 1) * b_cols];
        let mut k = 0;
        while k + 4 <= a_cols {
            let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
            if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 {
                let b0 = &b[k * b_cols..(k + 1) * b_cols];
                let b1 = &b[(k + 1) * b_cols..(k + 2) * b_cols];
                let b2 = &b[(k + 2) * b_cols..(k + 3) * b_cols];
                let b3 = &b[(k + 3) * b_cols..(k + 4) * b_cols];
                for ((((o, &v0), &v1), &v2), &v3) in out_row
                    .iter_mut()
                    .zip(b0.iter())
                    .zip(b1.iter())
                    .zip(b2.iter())
                    .zip(b3.iter())
                {
                    *o += a0 * v0 + a1 * v1 + a2 * v2 + a3 * v3;
                }
            }
            k += 4;
        }
        while k < a_cols {
            let a0 = a_row[k];
            if a0 != 0.0 {
                let b0 = &b[k * b_cols..(k + 1) * b_cols];
                for (o, &v) in out_row.iter_mut().zip(b0.iter()) {
                    *o += a0 * v;
                }
            }
            k += 1;
        }
    }
}

/// Dot product with eight independent accumulators, so the additions
/// pipeline instead of forming one serial dependency chain (a plain fold is
/// bound by FP-add latency on long vectors). Deterministic: the lane
/// assignment depends only on the input length.
fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    let mut a_chunks = a.chunks_exact(8);
    let mut b_chunks = b.chunks_exact(8);
    for (ca, cb) in (&mut a_chunks).zip(&mut b_chunks) {
        for l in 0..8 {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in a_chunks.remainder().iter().zip(b_chunks.remainder().iter()) {
        tail += x * y;
    }
    (((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7])))
        + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Matrix::filled(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.try_matmul(&b).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_into_matches_matmul_and_reuses_buffer() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32 * 0.5 - 2.0);
        let b = Matrix::from_fn(4, 5, |i, j| (i + 2 * j) as f32 * 0.25 - 1.0);
        let mut out = Matrix::filled(7, 7, f32::NAN); // stale garbage, wrong shape
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // A second call on the (now right-sized) buffer gives the same bits.
        let first = out.clone();
        a.matmul_into(&b, &mut out);
        assert_eq!(out, first);
    }

    #[test]
    fn matmul_transpose_acc_accumulates() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f32 + 0.5);
        let b = Matrix::from_fn(4, 3, |i, j| (i * j) as f32 - 1.0);
        let expected = a.matmul_transpose(&b).unwrap();
        let mut out = vec![1.0f32; 2 * 4];
        a.matmul_transpose_acc(&b, &mut out);
        for (o, &e) in out.iter().zip(expected.as_slice().iter()) {
            assert!((o - (e + 1.0)).abs() < 1e-6, "{o} vs {e} + 1");
        }
    }

    #[test]
    fn transpose_matmul_acc_accumulates() {
        let a = Matrix::from_fn(5, 2, |i, j| (i as f32) - (j as f32) * 0.25);
        let b = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f32);
        let expected = a.transpose_matmul(&b).unwrap();
        let mut out = vec![0.0f32; 2 * 3];
        a.transpose_matmul_acc(&b, &mut out);
        assert_eq!(out.as_slice(), expected.as_slice());
    }

    #[test]
    fn resize_for_overwrite_keeps_allocation_and_fill_clears() {
        let mut m = Matrix::filled(2, 3, 7.0);
        m.resize_for_overwrite(3, 2);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.as_slice()[0], 7.0, "old contents survive the reshape");
        m.fill(0.0);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic]
    fn matmul_transpose_acc_bad_out_len_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 3);
        let mut out = vec![0.0f32; 3];
        a.matmul_transpose_acc(&b, &mut out);
    }

    #[test]
    fn matmul_transpose_matches_explicit_transpose() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f32 + 0.5);
        let b = Matrix::from_fn(4, 3, |i, j| (i * j) as f32 - 1.0);
        let via_helper = a.matmul_transpose(&b).unwrap();
        let via_explicit = a.matmul(&b.transpose());
        assert_eq!(via_helper, via_explicit);
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(5, 2, |i, j| (i as f32) - (j as f32) * 0.25);
        let b = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f32);
        let via_helper = a.transpose_matmul(&b).unwrap();
        let via_explicit = a.transpose().matmul(&b);
        assert_eq!(via_helper, via_explicit);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        let mut c = a.try_add(&b).unwrap();
        assert!(c.as_slice().iter().all(|&x| x == 3.0));
        c.scale(2.0);
        assert!(c.as_slice().iter().all(|&x| x == 6.0));
    }

    #[test]
    fn add_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        assert!(a.try_add(&b).is_err());
    }

    #[test]
    fn row_broadcast_and_sum_rows() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.sum_rows(), vec![3.0, 6.0]);
    }

    #[test]
    fn rows_and_cols_accessors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.col(2), vec![3.0, 6.0]);
        assert_eq!(a.iter_rows().count(), 2);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn map_and_map_inplace_agree() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f32);
        let mapped = a.map(|x| x * 2.0 + 1.0);
        let mut inplace = a.clone();
        inplace.map_inplace(|x| x * 2.0 + 1.0);
        assert_eq!(mapped, inplace);
    }

    #[test]
    #[should_panic]
    fn get_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a.get(2, 0);
    }

    #[test]
    fn clone_is_deep() {
        let a = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f32);
        let mut b = a.clone();
        b.set(0, 0, 99.0);
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(b.get(0, 0), 99.0);
    }
}
