//! Small statistics helpers used by the experiment harness.
//!
//! The paper reports empirical CDFs (Fig. 4, right panel) and time series of
//! loss/accuracy; [`Ecdf`] and [`RunningMean`] back those reports.
//!
//! # Examples
//!
//! ```
//! use agsfl_tensor::stats::Ecdf;
//!
//! let cdf = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]);
//! assert_eq!(cdf.eval(0.5), 0.0);
//! assert_eq!(cdf.eval(2.0), 0.75);
//! assert_eq!(cdf.eval(10.0), 1.0);
//! ```

use serde::{Deserialize, Serialize};

/// Empirical cumulative distribution function over a set of samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f32>,
}

impl Ecdf {
    /// Builds an ECDF from raw samples (the samples are sorted internally;
    /// NaN samples are dropped).
    pub fn new(mut samples: Vec<f32>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN removed above"));
        Self { sorted: samples }
    }

    /// Number of (non-NaN) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `P(X <= x)`. Returns `0.0` for an empty ECDF.
    pub fn eval(&self, x: f32) -> f32 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f32 / self.sorted.len() as f32
    }

    /// Returns the `q`-quantile (`q` in `[0, 1]`) using the nearest-rank
    /// method. Returns `None` for an empty ECDF.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f32) -> Option<f32> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.sorted.is_empty() {
            return None;
        }
        let idx =
            ((q * (self.sorted.len() - 1) as f32).round() as usize).min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Returns the sorted samples backing the ECDF.
    pub fn samples(&self) -> &[f32] {
        &self.sorted
    }

    /// Returns `(x, F(x))` pairs suitable for plotting a step function.
    pub fn curve(&self) -> Vec<(f32, f32)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f32 / n as f32))
            .collect()
    }
}

/// Incrementally updated arithmetic mean (Welford-style, without variance).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningMean {
    count: u64,
    mean: f64,
}

impl RunningMean {
    /// Creates an empty running mean.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;
    }

    /// Current mean, `0.0` if no samples have been pushed.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Computes a simple trailing moving average of a series with the given
/// window, returning a series of the same length (the first elements average
/// over however many samples are available).
pub fn moving_average(series: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(series.len());
    let mut sum = 0.0;
    for i in 0..series.len() {
        sum += series[i];
        if i >= window {
            sum -= series[i - window];
        }
        let n = (i + 1).min(window);
        out.push(sum / n as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ecdf_eval_known_values() {
        let cdf = Ecdf::new(vec![4.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(3.9), 0.75);
        assert_eq!(cdf.eval(4.0), 1.0);
    }

    #[test]
    fn ecdf_drops_nan_and_handles_empty() {
        let cdf = Ecdf::new(vec![f32::NAN]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.eval(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
    }

    #[test]
    fn ecdf_quantiles() {
        let cdf = Ecdf::new((1..=5).map(|x| x as f32).collect());
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(5.0));
        assert_eq!(cdf.quantile(0.5), Some(3.0));
    }

    #[test]
    fn ecdf_curve_is_monotone() {
        let cdf = Ecdf::new(vec![3.0, 1.0, 2.0]);
        let curve = cdf.curve();
        assert_eq!(curve.len(), 3);
        assert!(curve
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn running_mean_matches_batch_mean() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let mut rm = RunningMean::new();
        for &x in &xs {
            rm.push(x);
        }
        assert_eq!(rm.count(), 4);
        assert!((rm.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let xs = [1.0, 5.0, 2.0];
        assert_eq!(moving_average(&xs, 1), xs.to_vec());
    }

    #[test]
    fn moving_average_window_larger_than_series() {
        let xs = [2.0, 4.0];
        let ma = moving_average(&xs, 10);
        assert_eq!(ma, vec![2.0, 3.0]);
    }

    proptest! {
        #[test]
        fn prop_ecdf_is_monotone_in_x(samples in proptest::collection::vec(-50.0f32..50.0, 1..40)) {
            let cdf = Ecdf::new(samples);
            let mut prev = 0.0f32;
            let mut x = -60.0f32;
            while x <= 60.0 {
                let v = cdf.eval(x);
                prop_assert!(v >= prev - 1e-6);
                prop_assert!((0.0..=1.0).contains(&v));
                prev = v;
                x += 5.0;
            }
        }

        #[test]
        fn prop_running_mean_within_bounds(xs in proptest::collection::vec(-10.0f64..10.0, 1..50)) {
            let mut rm = RunningMean::new();
            for &x in &xs { rm.push(x); }
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(rm.mean() >= lo - 1e-9 && rm.mean() <= hi + 1e-9);
        }
    }
}
