use std::sync::mpsc;

use agsfl_exec::Executor;
use rand::RngCore;

use crate::scratch::SelectionScratch;
use crate::shard::{bucket_channels, exchange_entries, merge_reset_positions, ShardedScratch};
use crate::sparse_vec::SparseGradient;
use crate::sparsifier::{aggregate_marked, ClientUpload, SelectionResult, Sparsifier, UploadPlan};
use crate::topk;

/// Fairness-aware bidirectional top-k gradient sparsification (FAB-top-k) —
/// the paper's proposed method (Section III-B, Algorithm 1).
///
/// Both the uplink and the downlink carry exactly `k` gradient elements.
/// The downlink set `J` is chosen fairness-aware: the server finds the
/// largest per-client prefix length `κ` such that the union of every client's
/// top-`κ` uploaded indices still fits in `k`, takes that union, and fills the
/// remaining slots with the largest-magnitude candidates from the next prefix
/// level. Because `|∪_i J_i^κ| ≤ k` always holds for `κ = ⌊k/N⌋`, every
/// client is guaranteed to contribute at least `⌊k/N⌋` elements.
///
/// # Examples
///
/// ```
/// use agsfl_sparse::{ClientUpload, FabTopK, Sparsifier};
///
/// let fab = FabTopK::new();
/// let uploads = vec![
///     // Client 0 has huge values, client 1 small ones.
///     ClientUpload::new(0, 0.5, vec![(0, 10.0), (1, 9.0), (2, 8.0)]),
///     ClientUpload::new(1, 0.5, vec![(5, 0.3), (6, 0.2), (7, 0.1)]),
/// ];
/// let result = fab.select(&uploads, 8, 2);
/// // Fairness: even though client 1's values are tiny, it still contributes
/// // at least floor(2/2) = 1 element.
/// assert!(result.contributions()[1] >= 1);
/// assert_eq!(result.aggregated.nnz(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabTopK;

impl FabTopK {
    /// Creates the sparsifier.
    pub fn new() -> Self {
        Self
    }

    /// Selects the downlink index set `J` of size at most `k`, returned
    /// **sorted ascending** (the historical implementation returned hash-set
    /// iteration order, which was nondeterministic across processes).
    ///
    /// Exposed for testing and for the ablation benchmarks; the round loop
    /// goes through [`Sparsifier::select_into`], which reuses the scratch.
    pub fn select_indices(uploads: &[ClientUpload], k: usize) -> Vec<usize> {
        let dim = uploads
            .iter()
            .flat_map(|u| u.entries.iter().map(|&(j, _)| j + 1))
            .max()
            .unwrap_or(0);
        let mut scratch = SelectionScratch::new();
        Self::select_indices_into(uploads, dim, k, &mut scratch);
        scratch.selected
    }

    /// Single-pass fairness-aware selection into `scratch.selected` (sorted).
    ///
    /// One O(Σ|uploads|) sweep records, per index, the minimum rank at which
    /// it appears across clients, plus a histogram of those minimum ranks.
    /// The prefix sums of the histogram give every union size `|∪_i J_i^κ|`
    /// in O(1), so the largest feasible `κ` falls out of a direct scan —
    /// replacing the historical binary search whose every probe rebuilt a
    /// `HashSet` over all uploads (O(N·κ) hashing per probe × O(log k)
    /// probes).
    ///
    /// On return, `scratch`'s sums generation has exactly the selected
    /// indices marked (with zero sums), ready for [`aggregate_marked`].
    fn select_indices_into(
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        scratch: &mut SelectionScratch,
    ) {
        scratch.selected.clear();
        scratch.begin_sums(dim);
        if k == 0 || uploads.is_empty() {
            return;
        }
        let max_prefix = uploads.iter().map(ClientUpload::len).max().unwrap_or(0);
        // κ above this bound cannot be feasible (κ = k already needs the
        // union of k-prefixes to fit in k) nor useful (κ = max_prefix covers
        // every upload in full).
        let hi = max_prefix.min(k);

        // Pass 1: minimum rank per index + histogram of minimum ranks < hi.
        scratch.rank_counts.clear();
        scratch.rank_counts.resize(hi, 0);
        scratch.begin_ranks(dim);
        for upload in uploads {
            for (rank, &(j, _)) in upload.entries.iter().enumerate() {
                assert!(j < dim, "upload index {j} out of range (dim {dim})");
                match scratch.observe_rank(j, rank) {
                    None => {
                        if rank < hi {
                            scratch.rank_counts[rank] += 1;
                        }
                    }
                    Some(old) if rank < old => {
                        if old < hi {
                            scratch.rank_counts[old] -= 1;
                        }
                        if rank < hi {
                            scratch.rank_counts[rank] += 1;
                        }
                    }
                    Some(_) => {}
                }
            }
        }

        // Largest κ with |∪ J_i^κ| = Σ_{r<κ} counts[r] <= k; the union size
        // is monotone non-decreasing in κ and κ = 0 is trivially feasible.
        let mut kappa = 0;
        let mut union_size = 0;
        for cand in 1..=hi {
            union_size += scratch.rank_counts[cand - 1];
            if union_size <= k {
                kappa = cand;
            } else {
                break;
            }
        }

        // The union of per-client top-κ prefixes, marked for aggregation.
        // Walking the κ-prefixes directly (O(N·κ) ≈ O(k) entries, deduped by
        // the marks) beats rescanning every index the round touched.
        for upload in uploads {
            for &(j, _) in &upload.entries[..kappa.min(upload.entries.len())] {
                debug_assert!(scratch.min_rank(j).is_some_and(|r| r < kappa));
                if !scratch.is_marked(j) {
                    scratch.mark_selected(j);
                    scratch.selected.push(j);
                }
            }
        }

        // Fill up to k with the largest-magnitude candidates from prefix
        // level κ+1 that are not already selected.
        if scratch.selected.len() < k && kappa < max_prefix {
            scratch.candidates.clear();
            for upload in uploads {
                if let Some(&(j, v)) = upload.entries.get(kappa) {
                    if !scratch.is_marked(j) {
                        scratch.candidates.push((j, v));
                    }
                }
            }
            topk::rank_by_magnitude(&mut scratch.candidates);
            for i in 0..scratch.candidates.len() {
                if scratch.selected.len() >= k {
                    break;
                }
                let j = scratch.candidates[i].0;
                // The same index may appear from several clients.
                if !scratch.is_marked(j) {
                    scratch.mark_selected(j);
                    scratch.selected.push(j);
                }
            }
        }
        scratch.selected.sort_unstable();
    }

    /// The sharded engine behind [`Sparsifier::select_parallel`]: one
    /// `thread::scope` whose stripe workers bucket their *upload slice* by
    /// stripe, exchange buckets (a map–shuffle, so every entry is scanned
    /// once in total rather than once per worker), then run the rank pass,
    /// the union marking and the aggregation sweep over their stripe's
    /// `O(U/S)` entry cache. The two serial decisions (`κ` from the merged
    /// histogram; the magnitude-ranked fill set) are taken by the
    /// coordinating thread between phases over mpsc channels.
    /// Bit-identical to `select_indices_into` + `aggregate_marked` for any
    /// shard count — see the `shard` module docs.
    fn select_sharded(
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        sharded: &mut ShardedScratch,
        exec: &Executor,
    ) -> SelectionResult {
        sharded.stripe(dim, exec.threads());
        let max_prefix = uploads.iter().map(ClientUpload::len).max().unwrap_or(0);
        let hi = max_prefix.min(k);

        enum FromWorker {
            Hist(Vec<usize>),
            Cands {
                selected: usize,
                cands: Vec<(usize, f32)>,
            },
        }
        enum ToWorker {
            Kappa(usize),
            Fill(Vec<usize>),
        }

        let shard_count = sharded.shards.len();
        let width = sharded.width;
        let ShardedScratch {
            shards,
            rank_counts,
            candidates,
            ..
        } = sharded;
        std::thread::scope(|scope| {
            // Bucket-exchange channels: worker `w` sends the entries of its
            // upload slice that belong to stripe `t` through `bucket_tx[t]`,
            // tagged with `w` so receivers assemble caches in slot order
            // (the shared map–shuffle in `shard::exchange_entries`).
            let (bucket_tx, bucket_rx) = bucket_channels(shard_count);
            // Per-worker result channels (worker → coordinator), so a dead
            // worker is observed as a closed channel at exactly its slot in
            // the gather loops below: the coordinator bails out, drops its
            // sender/receiver ends, every other worker unblocks with a recv
            // error and returns, and the scope re-raises the panic. A shared
            // result channel could not distinguish "slow" from "dead".
            let mut to_worker = Vec::with_capacity(shard_count);
            let mut from_worker = Vec::with_capacity(shard_count);
            let mut handles = Vec::with_capacity(shard_count);
            for (w, (shard, my_rx)) in shards.iter_mut().zip(bucket_rx).enumerate() {
                let (tx, rx) = mpsc::channel::<ToWorker>();
                to_worker.push(tx);
                let (to_main, result_rx) = mpsc::channel::<FromWorker>();
                from_worker.push(result_rx);
                let bucket_tx = bucket_tx.clone();
                handles.push(scope.spawn(move || {
                    // Phase 0 (map + shuffle): the shared bucket exchange
                    // rebuilds this stripe's entry cache in serial
                    // (slot, pos) scan order.
                    if !exchange_entries(
                        w,
                        uploads,
                        dim,
                        width,
                        bucket_tx,
                        &my_rx,
                        &mut shard.entries,
                    ) {
                        return;
                    }

                    // Phase 1: minimum ranks + histogram over the cache.
                    shard.begin_ranks();
                    shard.begin_sums();
                    shard.selected.clear();
                    shard.rank_counts.clear();
                    shard.rank_counts.resize(hi, 0);
                    for i in 0..shard.entries.len() {
                        let e = shard.entries[i];
                        let rank = e.pos as usize;
                        match shard.observe_rank(e.j, rank) {
                            None => {
                                if rank < hi {
                                    shard.rank_counts[rank] += 1;
                                }
                            }
                            Some(old) if rank < old => {
                                if old < hi {
                                    shard.rank_counts[old] -= 1;
                                }
                                if rank < hi {
                                    shard.rank_counts[rank] += 1;
                                }
                            }
                            Some(_) => {}
                        }
                    }
                    if to_main
                        .send(FromWorker::Hist(shard.rank_counts.clone()))
                        .is_err()
                    {
                        return;
                    }
                    let Ok(ToWorker::Kappa(kappa)) = rx.recv() else {
                        return;
                    };

                    // Phase 2: mark the stripe's part of the κ-prefix union
                    // and gather its unmarked level-κ fill candidates.
                    for i in 0..shard.entries.len() {
                        let e = shard.entries[i];
                        if (e.pos as usize) < kappa && !shard.is_marked(e.j) {
                            debug_assert!(shard.min_rank(e.j).is_some_and(|r| r < kappa));
                            shard.mark_selected(e.j);
                            shard.selected.push(e.j);
                        }
                    }
                    let mut cands = Vec::new();
                    if kappa < max_prefix {
                        for i in 0..shard.entries.len() {
                            let e = shard.entries[i];
                            if e.pos as usize == kappa && !shard.is_marked(e.j) {
                                cands.push((e.j, e.v));
                            }
                        }
                    }
                    let msg = FromWorker::Cands {
                        selected: shard.selected.len(),
                        cands,
                    };
                    if to_main.send(msg).is_err() {
                        return;
                    }
                    let Ok(ToWorker::Fill(fill)) = rx.recv() else {
                        return;
                    };
                    for &j in &fill {
                        shard.mark_selected(j);
                        shard.selected.push(j);
                    }

                    // Phase 3: striped aggregation (serial fold per index)
                    // + reset positions, over the cache.
                    shard.sweep_marked_cached(uploads);
                }));
            }
            // The workers hold their own bucket-sender clones; dropping the
            // coordinator's originals lets the bucket exchange drain (with
            // recv errors) if any worker dies before sending.
            drop(bucket_tx);
            // The serial path's bounds check fires inside the workers'
            // bucketing pass (`exchange_entries` asserts every index), so
            // no coordinator-side re-scan is needed.

            // Merge the integer histograms and pick the largest feasible κ,
            // exactly as the serial scan does.
            rank_counts.clear();
            rank_counts.resize(hi, 0);
            let mut alive = true;
            for rx in &from_worker {
                match rx.recv() {
                    Ok(FromWorker::Hist(h)) => {
                        for (r, c) in h.into_iter().enumerate() {
                            rank_counts[r] += c;
                        }
                    }
                    _ => {
                        // The worker panicked; stop coordinating so every
                        // other worker unblocks and the scope re-raises.
                        alive = false;
                        break;
                    }
                }
            }
            if alive {
                let mut kappa = 0;
                let mut union_size = 0;
                for cand in 1..=hi {
                    union_size += rank_counts[cand - 1];
                    if union_size <= k {
                        kappa = cand;
                    } else {
                        break;
                    }
                }
                for tx in &to_worker {
                    if tx.send(ToWorker::Kappa(kappa)).is_err() {
                        break;
                    }
                }

                // Collect the candidate lists (worker order, deterministic)
                // and the union size, rank the candidates by the same total
                // order as the serial path and assign the fill indices to
                // their owning stripes. The fill loop's `is_marked` dedup
                // reduces to "not chosen yet": candidates were gathered
                // unmarked and only fills mark.
                candidates.clear();
                let mut total_selected = 0usize;
                for rx in &from_worker {
                    match rx.recv() {
                        Ok(FromWorker::Cands { selected, cands }) => {
                            total_selected += selected;
                            candidates.extend(cands);
                        }
                        _ => {
                            alive = false;
                            break;
                        }
                    }
                }
                if alive {
                    let mut fills: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
                    if total_selected < k && kappa < max_prefix {
                        topk::rank_by_magnitude(candidates);
                        let mut budget = k - total_selected;
                        let mut chosen: Vec<usize> = Vec::new();
                        for &(j, _) in candidates.iter() {
                            if budget == 0 {
                                break;
                            }
                            if !chosen.contains(&j) {
                                chosen.push(j);
                                fills[j / width].push(j);
                                budget -= 1;
                            }
                        }
                    }
                    for (tx, fill) in to_worker.iter().zip(fills) {
                        if tx.send(ToWorker::Fill(fill)).is_err() {
                            break;
                        }
                    }
                }
            }
            // Release the coordinator's channel ends before joining: any
            // worker still blocked on a recv (because coordination aborted)
            // observes the disconnect and returns instead of deadlocking.
            drop(to_worker);
            drop(from_worker);
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        sharded.gather_selected();
        let reset_indices = merge_reset_positions(uploads, &sharded.shards);
        let entries = sharded.emit_entries();
        SelectionResult::new(
            SparseGradient::from_sorted_entries(dim, entries),
            reset_indices,
            uploads.iter().map(ClientUpload::len).collect(),
            sharded.selected.len(),
            true,
            true,
        )
    }
}

impl Sparsifier for FabTopK {
    fn name(&self) -> &'static str {
        "FAB-top-k"
    }

    fn upload_plan(&self, _dim: usize, _k: usize, _rng: &mut dyn RngCore) -> UploadPlan {
        UploadPlan::TopKOwn
    }

    fn select_into(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        scratch: &mut SelectionScratch,
    ) -> SelectionResult {
        Self::select_indices_into(uploads, dim, k, scratch);
        // The selection phase left exactly the selected indices marked in the
        // sums generation, so aggregation skips the re-marking pass.
        let selected = std::mem::take(&mut scratch.selected);
        let (aggregated, reset_indices) = aggregate_marked(uploads, &selected, dim, scratch);
        let downlink_elements = selected.len();
        scratch.selected = selected;
        SelectionResult::new(
            aggregated,
            reset_indices,
            uploads.iter().map(ClientUpload::len).collect(),
            downlink_elements,
            true,
            true,
        )
    }

    fn select_parallel(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        scratch: &mut ShardedScratch,
        exec: &Executor,
    ) -> SelectionResult {
        if !exec.should_parallelize(uploads.len()) || k == 0 {
            return self.select_into(uploads, dim, k, scratch.serial_scratch());
        }
        Self::select_sharded(uploads, dim, k, scratch, exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Builds ranked uploads from dense per-client accumulators.
    fn uploads_from_dense(clients: &[Vec<f32>], k: usize) -> Vec<ClientUpload> {
        let n = clients.len();
        clients
            .iter()
            .enumerate()
            .map(|(i, acc)| ClientUpload::new(i, 1.0 / n as f64, topk::top_k_entries(acc, k)))
            .collect()
    }

    #[test]
    fn selects_exactly_k_when_enough_candidates() {
        let clients = vec![
            vec![5.0, 4.0, 3.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 2.0, 1.5, 1.0],
        ];
        let uploads = uploads_from_dense(&clients, 3);
        let fab = FabTopK::new();
        let result = fab.select(&uploads, 6, 3);
        assert_eq!(result.aggregated.nnz(), 3);
        assert_eq!(result.downlink_elements, 3);
    }

    #[test]
    fn fairness_guarantee_floor_k_over_n() {
        // Client 1's values are all much smaller; FUB would ignore it entirely,
        // FAB must include at least floor(k/N) = 2 of its elements.
        let clients = vec![
            vec![9.0, 8.0, 7.0, 6.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.01, 0.02, 0.03, 0.04, 0.05],
        ];
        let uploads = uploads_from_dense(&clients, 4);
        let result = FabTopK::new().select(&uploads, 10, 4);
        assert!(
            result.contributions()[1] >= 2,
            "{:?}",
            result.contributions()
        );
        assert!(
            result.contributions()[0] >= 2,
            "{:?}",
            result.contributions()
        );
    }

    #[test]
    fn overlapping_indices_are_aggregated() {
        let clients = vec![vec![4.0, 0.0, 0.0], vec![2.0, 0.0, 0.0]];
        let uploads = uploads_from_dense(&clients, 1);
        let result = FabTopK::new().select(&uploads, 3, 1);
        assert_eq!(result.aggregated.nnz(), 1);
        assert!((result.aggregated.get(0) - 3.0).abs() < 1e-6);
        assert_eq!(result.contributions(), vec![1, 1]);
    }

    #[test]
    fn k_zero_selects_nothing() {
        let clients = vec![vec![1.0, 2.0]];
        let uploads = uploads_from_dense(&clients, 2);
        let result = FabTopK::new().select(&uploads, 2, 0);
        assert!(result.aggregated.is_empty());
        assert_eq!(result.downlink_elements, 0);
    }

    #[test]
    fn upload_plan_is_top_k_own() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(
            FabTopK::new().upload_plan(10, 3, &mut rng),
            UploadPlan::TopKOwn
        );
        assert_eq!(FabTopK::new().name(), "FAB-top-k");
    }

    #[test]
    fn reset_indices_subset_of_uploads() {
        let clients = vec![
            vec![1.0, -2.0, 3.0, -4.0, 5.0],
            vec![5.0, -4.0, 3.0, -2.0, 1.0],
        ];
        let uploads = uploads_from_dense(&clients, 3);
        let result = FabTopK::new().select(&uploads, 5, 3);
        for (upload, resets) in uploads.iter().zip(result.reset_indices.iter()) {
            let uploaded: std::collections::HashSet<usize> =
                upload.entries.iter().map(|&(j, _)| j).collect();
            assert!(resets.iter().all(|j| uploaded.contains(j)));
            assert!(resets.iter().all(|j| result.aggregated.contains(*j)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_selection_size_and_fairness(
            seed in 0u64..500,
            n_clients in 1usize..6,
            dim in 4usize..40,
            k_raw in 1usize..20,
        ) {
            let k = 1 + k_raw % dim.min(16);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let clients: Vec<Vec<f32>> = (0..n_clients)
                .map(|_| (0..dim).map(|_| rng.gen_range(-5.0f32..5.0)).collect())
                .collect();
            let uploads = uploads_from_dense(&clients, k);
            let result = FabTopK::new().select(&uploads, dim, k);

            // select_indices returns a sorted set — the selection order is
            // part of the API contract now (the historical implementation
            // leaked hash-set iteration order).
            let indices = FabTopK::select_indices(&uploads, k);
            prop_assert!(indices.windows(2).all(|w| w[0] < w[1]),
                "select_indices must return sorted, duplicate-free indices");
            prop_assert_eq!(indices.len(), result.downlink_elements);

            // Never more than k downlink elements; exactly k when the clients
            // collectively uploaded at least k distinct nonzero-capable indices.
            prop_assert!(result.aggregated.nnz() <= k);
            let distinct: std::collections::HashSet<usize> = uploads
                .iter()
                .flat_map(|u| u.entries.iter().map(|&(j, _)| j))
                .collect();
            prop_assert_eq!(result.aggregated.nnz(), k.min(distinct.len()));

            // Fairness: every client contributes at least floor(k / N) elements
            // (as long as it uploaded that many).
            let floor_share = k / n_clients;
            for (upload, &contrib) in uploads.iter().zip(result.contributions().iter()) {
                prop_assert!(contrib >= floor_share.min(upload.len()),
                    "contribution {} < floor share {}", contrib, floor_share);
            }
        }
    }
}
