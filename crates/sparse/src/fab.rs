use rand::RngCore;

use crate::sparsifier::{aggregate_selected, ClientUpload, SelectionResult, Sparsifier, UploadPlan};
use crate::topk;

/// Fairness-aware bidirectional top-k gradient sparsification (FAB-top-k) —
/// the paper's proposed method (Section III-B, Algorithm 1).
///
/// Both the uplink and the downlink carry exactly `k` gradient elements.
/// The downlink set `J` is chosen fairness-aware: the server finds the
/// largest per-client prefix length `κ` such that the union of every client's
/// top-`κ` uploaded indices still fits in `k`, takes that union, and fills the
/// remaining slots with the largest-magnitude candidates from the next prefix
/// level. Because `|∪_i J_i^κ| ≤ k` always holds for `κ = ⌊k/N⌋`, every
/// client is guaranteed to contribute at least `⌊k/N⌋` elements.
///
/// # Examples
///
/// ```
/// use agsfl_sparse::{ClientUpload, FabTopK, Sparsifier};
///
/// let fab = FabTopK::new();
/// let uploads = vec![
///     // Client 0 has huge values, client 1 small ones.
///     ClientUpload::new(0, 0.5, vec![(0, 10.0), (1, 9.0), (2, 8.0)]),
///     ClientUpload::new(1, 0.5, vec![(5, 0.3), (6, 0.2), (7, 0.1)]),
/// ];
/// let result = fab.select(&uploads, 8, 2);
/// // Fairness: even though client 1's values are tiny, it still contributes
/// // at least floor(2/2) = 1 element.
/// assert!(result.contributions[1] >= 1);
/// assert_eq!(result.aggregated.nnz(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabTopK;

impl FabTopK {
    /// Creates the sparsifier.
    pub fn new() -> Self {
        Self
    }

    /// Computes the size of `∪_i J_i^κ` (union of per-client top-`κ` prefixes).
    fn union_size(uploads: &[ClientUpload], kappa: usize) -> usize {
        let mut set = std::collections::HashSet::new();
        for upload in uploads {
            set.extend(topk::prefix_indices(&upload.entries, kappa));
        }
        set.len()
    }

    /// Selects the downlink index set `J` of size at most `k`.
    ///
    /// Exposed for testing and for the ablation benchmarks.
    pub fn select_indices(uploads: &[ClientUpload], k: usize) -> Vec<usize> {
        if k == 0 || uploads.is_empty() {
            return Vec::new();
        }
        let max_prefix = uploads.iter().map(ClientUpload::len).max().unwrap_or(0);
        // Binary search the largest κ with |∪ J_i^κ| <= k. Union size is
        // monotone non-decreasing in κ, and κ = 0 trivially satisfies it.
        let mut lo = 0usize; // always feasible
        let mut hi = max_prefix.min(k); // candidates above this are pointless
        while lo < hi {
            let mid = (lo + hi + 1) / 2;
            if Self::union_size(uploads, mid) <= k {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let kappa = lo;

        let mut selected: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for upload in uploads {
            selected.extend(topk::prefix_indices(&upload.entries, kappa));
        }

        // Fill up to k with the largest-magnitude candidates from prefix level
        // κ+1 that are not already selected.
        if selected.len() < k && kappa < max_prefix {
            let mut candidates: Vec<(usize, f32)> = Vec::new();
            for upload in uploads {
                if let Some(&(j, v)) = upload.entries.get(kappa) {
                    if !selected.contains(&j) {
                        candidates.push((j, v));
                    }
                }
            }
            topk::rank_by_magnitude(&mut candidates);
            for (j, _) in candidates {
                if selected.len() >= k {
                    break;
                }
                // The same index may appear from several clients.
                selected.insert(j);
            }
        }
        selected.into_iter().collect()
    }
}

impl Sparsifier for FabTopK {
    fn name(&self) -> &'static str {
        "FAB-top-k"
    }

    fn upload_plan(&self, _dim: usize, _k: usize, _rng: &mut dyn RngCore) -> UploadPlan {
        UploadPlan::TopKOwn
    }

    fn select(&self, uploads: &[ClientUpload], dim: usize, k: usize) -> SelectionResult {
        let selected = Self::select_indices(uploads, k);
        let (aggregated, reset_indices) = aggregate_selected(uploads, &selected, dim);
        let contributions = reset_indices.iter().map(Vec::len).collect();
        SelectionResult {
            aggregated,
            reset_indices,
            contributions,
            uplink_elements: uploads.iter().map(ClientUpload::len).collect(),
            downlink_elements: selected.len(),
            uplink_indexed: true,
            downlink_indexed: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Builds ranked uploads from dense per-client accumulators.
    fn uploads_from_dense(clients: &[Vec<f32>], k: usize) -> Vec<ClientUpload> {
        let n = clients.len();
        clients
            .iter()
            .enumerate()
            .map(|(i, acc)| ClientUpload::new(i, 1.0 / n as f64, topk::top_k_entries(acc, k)))
            .collect()
    }

    #[test]
    fn selects_exactly_k_when_enough_candidates() {
        let clients = vec![
            vec![5.0, 4.0, 3.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 2.0, 1.5, 1.0],
        ];
        let uploads = uploads_from_dense(&clients, 3);
        let fab = FabTopK::new();
        let result = fab.select(&uploads, 6, 3);
        assert_eq!(result.aggregated.nnz(), 3);
        assert_eq!(result.downlink_elements, 3);
    }

    #[test]
    fn fairness_guarantee_floor_k_over_n() {
        // Client 1's values are all much smaller; FUB would ignore it entirely,
        // FAB must include at least floor(k/N) = 2 of its elements.
        let clients = vec![
            vec![9.0, 8.0, 7.0, 6.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.01, 0.02, 0.03, 0.04, 0.05],
        ];
        let uploads = uploads_from_dense(&clients, 4);
        let result = FabTopK::new().select(&uploads, 10, 4);
        assert!(result.contributions[1] >= 2, "{:?}", result.contributions);
        assert!(result.contributions[0] >= 2, "{:?}", result.contributions);
    }

    #[test]
    fn overlapping_indices_are_aggregated() {
        let clients = vec![vec![4.0, 0.0, 0.0], vec![2.0, 0.0, 0.0]];
        let uploads = uploads_from_dense(&clients, 1);
        let result = FabTopK::new().select(&uploads, 3, 1);
        assert_eq!(result.aggregated.nnz(), 1);
        assert!((result.aggregated.get(0) - 3.0).abs() < 1e-6);
        assert_eq!(result.contributions, vec![1, 1]);
    }

    #[test]
    fn k_zero_selects_nothing() {
        let clients = vec![vec![1.0, 2.0]];
        let uploads = uploads_from_dense(&clients, 2);
        let result = FabTopK::new().select(&uploads, 2, 0);
        assert!(result.aggregated.is_empty());
        assert_eq!(result.downlink_elements, 0);
    }

    #[test]
    fn upload_plan_is_top_k_own() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(FabTopK::new().upload_plan(10, 3, &mut rng), UploadPlan::TopKOwn);
        assert_eq!(FabTopK::new().name(), "FAB-top-k");
    }

    #[test]
    fn reset_indices_subset_of_uploads() {
        let clients = vec![
            vec![1.0, -2.0, 3.0, -4.0, 5.0],
            vec![5.0, -4.0, 3.0, -2.0, 1.0],
        ];
        let uploads = uploads_from_dense(&clients, 3);
        let result = FabTopK::new().select(&uploads, 5, 3);
        for (upload, resets) in uploads.iter().zip(result.reset_indices.iter()) {
            let uploaded: std::collections::HashSet<usize> =
                upload.entries.iter().map(|&(j, _)| j).collect();
            assert!(resets.iter().all(|j| uploaded.contains(j)));
            assert!(resets.iter().all(|j| result.aggregated.contains(*j)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_selection_size_and_fairness(
            seed in 0u64..500,
            n_clients in 1usize..6,
            dim in 4usize..40,
            k_raw in 1usize..20,
        ) {
            let k = 1 + k_raw % dim.min(16);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let clients: Vec<Vec<f32>> = (0..n_clients)
                .map(|_| (0..dim).map(|_| rng.gen_range(-5.0f32..5.0)).collect())
                .collect();
            let uploads = uploads_from_dense(&clients, k);
            let result = FabTopK::new().select(&uploads, dim, k);

            // Never more than k downlink elements; exactly k when the clients
            // collectively uploaded at least k distinct nonzero-capable indices.
            prop_assert!(result.aggregated.nnz() <= k);
            let distinct: std::collections::HashSet<usize> = uploads
                .iter()
                .flat_map(|u| u.entries.iter().map(|&(j, _)| j))
                .collect();
            prop_assert_eq!(result.aggregated.nnz(), k.min(distinct.len()));

            // Fairness: every client contributes at least floor(k / N) elements
            // (as long as it uploaded that many).
            let floor_share = k / n_clients;
            for (upload, &contrib) in uploads.iter().zip(result.contributions.iter()) {
                prop_assert!(contrib >= floor_share.min(upload.len()),
                    "contribution {} < floor share {}", contrib, floor_share);
            }
        }
    }
}
