use agsfl_exec::Executor;
use rand::RngCore;

use crate::scratch::SelectionScratch;
use crate::shard::{bucket_channels, exchange_entries, ShardedScratch};
use crate::sparsifier::{ClientUpload, SelectionResult, Sparsifier, UploadPlan};
use crate::SparseGradient;

/// Unidirectional top-k sparsification.
///
/// Clients upload the top-`k` entries of their accumulated gradients, and the
/// server aggregates and broadcasts **every** uploaded coordinate. Because
/// different clients select different indices, the downlink can carry up to
/// `k · N` elements (\[22\] and related work), which is the communication
/// inefficiency bidirectional schemes remove.
///
/// # Examples
///
/// ```
/// use agsfl_sparse::{ClientUpload, Sparsifier, UnidirectionalTopK};
///
/// let uni = UnidirectionalTopK::new();
/// let uploads = vec![
///     ClientUpload::new(0, 0.5, vec![(0, 1.0), (1, 1.0)]),
///     ClientUpload::new(1, 0.5, vec![(2, 1.0), (3, 1.0)]),
/// ];
/// let result = uni.select(&uploads, 8, 2);
/// // Disjoint selections: the downlink carries k * N = 4 elements.
/// assert_eq!(result.downlink_elements, 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnidirectionalTopK;

impl UnidirectionalTopK {
    /// Creates the sparsifier.
    pub fn new() -> Self {
        Self
    }
}

impl Sparsifier for UnidirectionalTopK {
    fn name(&self) -> &'static str {
        "Unidirectional top-k"
    }

    fn upload_plan(&self, _dim: usize, _k: usize, _rng: &mut dyn RngCore) -> UploadPlan {
        UploadPlan::TopKOwn
    }

    fn select_into(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        _k: usize,
        scratch: &mut SelectionScratch,
    ) -> SelectionResult {
        // The downlink is the union of every uploaded coordinate, so the
        // whole selection + aggregation is a single sweep: accumulate the
        // weighted sums and reset sets while discovering the union.
        scratch.begin_sums(dim);
        scratch.selected.clear();
        let mut reset_indices = vec![Vec::new(); uploads.len()];
        for (slot, upload) in uploads.iter().enumerate() {
            for &(j, v) in &upload.entries {
                assert!(j < dim, "upload index {j} out of range (dim {dim})");
                if !scratch.is_marked(j) {
                    scratch.mark_selected(j);
                    scratch.selected.push(j);
                }
                scratch.accumulate(j, upload.weight * v as f64);
                reset_indices[slot].push(j);
            }
        }
        scratch.selected.sort_unstable();
        let entries: Vec<(usize, f32)> = scratch
            .selected
            .iter()
            .map(|&j| (j, scratch.sum(j) as f32))
            .collect();
        SelectionResult::new(
            SparseGradient::from_sorted_entries(dim, entries),
            reset_indices,
            uploads.iter().map(ClientUpload::len).collect(),
            scratch.selected.len(),
            true,
            true,
        )
    }

    fn select_parallel(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        scratch: &mut ShardedScratch,
        exec: &Executor,
    ) -> SelectionResult {
        if !exec.should_parallelize(uploads.len()) {
            return self.select_into(uploads, dim, k, scratch.serial_scratch());
        }
        scratch.stripe(dim, exec.threads());
        // The downlink is the union of every uploaded coordinate, so after
        // the shared map–shuffle bucket exchange (every upload entry is
        // scanned once in total, not once per worker) each stripe worker
        // discovers and aggregates its cached coordinates in one sweep; the
        // reset sets are simply every client's uploaded indices, assembled
        // by the coordinator while the workers run.
        let shard_count = scratch.shards.len();
        let width = scratch.width;
        let mut reset_indices: Vec<Vec<usize>> = Vec::with_capacity(uploads.len());
        std::thread::scope(|scope| {
            let (bucket_tx, bucket_rx) = bucket_channels(shard_count);
            let mut handles = Vec::with_capacity(shard_count);
            for (w, (shard, my_rx)) in scratch.shards.iter_mut().zip(bucket_rx).enumerate() {
                let bucket_tx = bucket_tx.clone();
                handles.push(scope.spawn(move || {
                    if !exchange_entries(
                        w,
                        uploads,
                        dim,
                        width,
                        bucket_tx,
                        &my_rx,
                        &mut shard.entries,
                    ) {
                        return;
                    }
                    // The union sweep records first appearances in
                    // `touched`; this sparsifier broadcasts exactly that
                    // union, so it becomes the stripe's selected set.
                    shard.aggregate_union_cached(uploads);
                    shard.selected.clear();
                    std::mem::swap(&mut shard.selected, &mut shard.touched);
                }));
            }
            // The bounds check fires inside the workers' bucketing pass.
            drop(bucket_tx);
            for upload in uploads {
                reset_indices.push(upload.entries.iter().map(|&(j, _)| j).collect());
            }
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        scratch.gather_selected();
        let entries = scratch.emit_entries();
        SelectionResult::new(
            SparseGradient::from_sorted_entries(dim, entries),
            reset_indices,
            uploads.iter().map(ClientUpload::len).collect(),
            scratch.selected.len(),
            true,
            true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn downlink_is_union_of_uploads() {
        let uploads = vec![
            ClientUpload::new(0, 0.5, vec![(0, 1.0), (4, -1.0)]),
            ClientUpload::new(1, 0.5, vec![(4, 2.0), (7, 0.5)]),
        ];
        let result = UnidirectionalTopK::new().select(&uploads, 8, 2);
        assert_eq!(result.downlink_elements, 3);
        assert!(result.aggregated.contains(0));
        assert!(result.aggregated.contains(4));
        assert!(result.aggregated.contains(7));
        // Every client contributed everything it uploaded.
        assert_eq!(result.contributions(), vec![2, 2]);
    }

    #[test]
    fn downlink_can_reach_k_times_n() {
        let n = 5usize;
        let k = 3usize;
        let uploads: Vec<ClientUpload> = (0..n)
            .map(|i| {
                let entries = (0..k).map(|e| (i * k + e, 1.0f32)).collect();
                ClientUpload::new(i, 1.0 / n as f64, entries)
            })
            .collect();
        let result = UnidirectionalTopK::new().select(&uploads, n * k, k);
        assert_eq!(result.downlink_elements, n * k);
    }

    #[test]
    fn aggregation_matches_weighted_sum() {
        let uploads = vec![
            ClientUpload::new(0, 0.25, vec![(1, 4.0)]),
            ClientUpload::new(1, 0.75, vec![(1, -4.0)]),
        ];
        let result = UnidirectionalTopK::new().select(&uploads, 3, 1);
        assert!((result.aggregated.get(1) - (-2.0)).abs() < 1e-6);
    }

    #[test]
    fn works_on_dense_like_uploads() {
        let dense: Vec<f32> = (0..6).map(|i| i as f32 - 3.0).collect();
        let uploads = vec![ClientUpload::new(0, 1.0, topk::top_k_entries(&dense, 6))];
        let result = UnidirectionalTopK::new().select(&uploads, 6, 6);
        // Index 3 has value 0.0 but is still part of the upload.
        assert_eq!(result.downlink_elements, 6);
    }

    #[test]
    fn name_and_plan() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let uni = UnidirectionalTopK::new();
        assert_eq!(uni.name(), "Unidirectional top-k");
        assert_eq!(uni.upload_plan(4, 2, &mut rng), UploadPlan::TopKOwn);
    }
}
