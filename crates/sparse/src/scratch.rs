//! Reusable server-side selection workspace.
//!
//! Every structure here exists to make the per-round server hot path
//! allocation-free: the buffers are sized to the model dimension once and
//! "cleared" by bumping a generation counter instead of a `memset` or a
//! hash-map rebuild. See the crate-level docs for the complexity picture.

/// Smallest size (slots or entries) a scratch buffer bothers shrinking
/// below — tiny buffers are never worth releasing.
pub(crate) const SHRINK_FLOOR: usize = 256;

/// Grow-only-with-decay policy shared by the workspace buffers (the same
/// policy `agsfl_wire::WireScratch` applies to its frame buffer): tracks an
/// exponentially decaying demand high-water mark and releases capacity once
/// it exceeds four times the recent demand. Long runs whose round footprint
/// drops (e.g. a cohort shrinking between rounds) stop pinning their
/// high-water-mark allocation after a few rounds, while steady-state buffers
/// never shrink (demand stays at the observed size, so the 4× guard never
/// trips) and thus stay allocation-free.
pub(crate) fn note_demand_and_shrink<T>(buf: &mut Vec<T>, demand: &mut usize, used: usize) {
    *demand = used.max(*demand / 2).max(SHRINK_FLOOR);
    if buf.capacity() > *demand * 4 {
        buf.shrink_to(*demand * 2);
    }
}

/// A dense buffer whose entries are valid only when their generation stamp
/// matches the buffer's current epoch.
///
/// `begin()` bumps the epoch, which invalidates every slot in O(1); slots are
/// lazily re-initialised on first write. This replaces `HashSet`/`HashMap`
/// rebuilds in the selection hot path with branch-predictable array probes.
#[derive(Debug, Clone, Default)]
pub(crate) struct StampedBuf<T> {
    epoch: u64,
    stamp: Vec<u64>,
    data: Vec<T>,
    /// Decaying high-water mark of requested dimensions (see
    /// [`note_demand_and_shrink`]); lets a buffer grown for a huge round
    /// release its slots when later rounds are smaller.
    demand: usize,
}

impl<T: Copy + Default> StampedBuf<T> {
    /// Starts a new generation covering indices `< dim`. O(1) unless the
    /// dimension grew (buffers are extended once) or the decayed demand
    /// dropped far below the held size (buffers are truncated and their
    /// memory released).
    pub(crate) fn begin(&mut self, dim: usize) {
        self.demand = dim.max(self.demand / 2).max(SHRINK_FLOOR);
        if self.stamp.len() > self.demand * 4 {
            let keep = self.demand * 2;
            self.stamp.truncate(keep);
            self.stamp.shrink_to(keep);
            self.data.truncate(keep);
            self.data.shrink_to(keep);
        }
        if self.stamp.len() < dim {
            self.stamp.resize(dim, 0);
            self.data.resize(dim, T::default());
        }
        self.epoch += 1;
    }

    /// Number of slots currently resident (for memory audits and tests).
    #[cfg(test)]
    pub(crate) fn resident_slots(&self) -> usize {
        self.stamp.len()
    }

    /// Is slot `j` set in the current generation?
    #[inline]
    pub(crate) fn is_set(&self, j: usize) -> bool {
        self.stamp[j] == self.epoch
    }

    /// Writes slot `j`, stamping it into the current generation.
    #[inline]
    pub(crate) fn set(&mut self, j: usize, value: T) {
        self.stamp[j] = self.epoch;
        self.data[j] = value;
    }

    /// Reads slot `j`; `None` if it was not written this generation.
    #[inline]
    pub(crate) fn get(&self, j: usize) -> Option<T> {
        if self.is_set(j) {
            Some(self.data[j])
        } else {
            None
        }
    }

    /// Reads slot `j` without checking the stamp. Only valid after a
    /// matching `set` in the current generation.
    #[inline]
    pub(crate) fn get_unchecked(&self, j: usize) -> T {
        debug_assert!(self.is_set(j));
        self.data[j]
    }
}

impl StampedBuf<f64> {
    /// Adds `v` to slot `j` if it is set this generation; one stamp probe,
    /// no re-stamping. Returns whether the slot was set.
    #[inline]
    pub(crate) fn add_if_set(&mut self, j: usize, v: f64) -> bool {
        if self.stamp[j] == self.epoch {
            self.data[j] += v;
            true
        } else {
            false
        }
    }
}

impl StampedBuf<usize> {
    /// Records `value` at slot `j`, keeping the minimum across the current
    /// generation; one stamp probe. Returns the previously stored value.
    #[inline]
    pub(crate) fn observe_min(&mut self, j: usize, value: usize) -> Option<usize> {
        if self.stamp[j] == self.epoch {
            let old = self.data[j];
            if value < old {
                self.data[j] = value;
            }
            Some(old)
        } else {
            self.stamp[j] = self.epoch;
            self.data[j] = value;
            None
        }
    }
}

/// Reusable workspace for [`Sparsifier::select_into`].
///
/// One `SelectionScratch` amortises every temporary the server-side
/// selection/aggregation pipeline needs across rounds:
///
/// * `ranks` — per-index minimum upload rank (FAB's single-pass union
///   counting),
/// * `sums` — per-index weighted aggregation accumulator,
/// * `rank_counts` — histogram of minimum ranks, turned into prefix counts so
///   every `|∪ J_i^κ|` is an O(1) lookup,
/// * `selected` / `candidates` — index and candidate lists reused between
///   rounds.
///
/// Buffers grow to the largest dimension seen and are invalidated by epoch
/// bumps, so repeated calls perform zero allocations in steady state. The
/// workspace carries no round state across calls: calling `select_into`
/// twice with the same inputs returns identical results (there is a
/// regression test for exactly this).
///
/// [`Sparsifier::select_into`]: crate::Sparsifier::select_into
#[derive(Debug, Clone, Default)]
pub struct SelectionScratch {
    /// Minimum rank at which each index appears across client uploads.
    pub(crate) ranks: StampedBuf<usize>,
    /// Weighted per-index sums for aggregation.
    pub(crate) sums: StampedBuf<f64>,
    /// `rank_counts[r]` = number of indices whose minimum rank is `r`.
    pub(crate) rank_counts: Vec<usize>,
    /// Distinct indices observed this round, in first-appearance order.
    pub(crate) touched: Vec<usize>,
    /// The selected downlink index set, sorted ascending.
    pub(crate) selected: Vec<usize>,
    /// Fill candidates `(index, value)` at prefix level `κ`.
    pub(crate) candidates: Vec<(usize, f32)>,
    /// Decaying demand marks for the list buffers above, in field order
    /// (`rank_counts`, `touched`, `selected`, `candidates`); updated by
    /// [`SelectionScratch::shrink_to_recent_demand`].
    list_demand: [usize; 4],
}

impl SelectionScratch {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins the rank-counting phase for a round of dimension `dim`.
    pub(crate) fn begin_ranks(&mut self, dim: usize) {
        self.ranks.begin(dim);
    }

    /// Begins an aggregation phase for a round of dimension `dim`.
    pub(crate) fn begin_sums(&mut self, dim: usize) {
        self.sums.begin(dim);
    }

    /// Records that `j` was uploaded at `rank`, keeping the minimum.
    /// Returns the previously recorded rank, if any.
    #[inline]
    pub(crate) fn observe_rank(&mut self, j: usize, rank: usize) -> Option<usize> {
        self.ranks.observe_min(j, rank)
    }

    /// The recorded minimum rank of `j`, if it was observed this round.
    #[inline]
    pub(crate) fn min_rank(&self, j: usize) -> Option<usize> {
        self.ranks.get(j)
    }

    /// Begins a membership phase for a round of dimension `dim`. Membership
    /// shares the `ranks` buffer (a sparsifier uses ranks or membership,
    /// never both at once), so it can express an index set without touching
    /// the sums generation.
    pub(crate) fn begin_members(&mut self, dim: usize) {
        self.ranks.begin(dim);
    }

    /// Adds `j` to the current membership set.
    #[inline]
    pub(crate) fn add_member(&mut self, j: usize) {
        self.ranks.set(j, 0);
    }

    /// Whether `j` is in the current membership set.
    #[inline]
    pub(crate) fn is_member(&self, j: usize) -> bool {
        self.ranks.is_set(j)
    }

    /// Marks `j` as selected for aggregation (sum starts at zero).
    #[inline]
    pub(crate) fn mark_selected(&mut self, j: usize) {
        self.sums.set(j, 0.0);
    }

    /// Whether `j` is marked for aggregation this phase.
    #[inline]
    pub(crate) fn is_marked(&self, j: usize) -> bool {
        self.sums.is_set(j)
    }

    /// Adds `v` to the sum of a marked index.
    #[inline]
    pub(crate) fn accumulate(&mut self, j: usize, v: f64) {
        debug_assert!(self.sums.is_set(j));
        let added = self.sums.add_if_set(j, v);
        debug_assert!(added);
    }

    /// Adds `v` to the sum of `j` if it is marked; single stamp probe.
    /// Returns whether `j` was marked.
    #[inline]
    pub(crate) fn accumulate_if_marked(&mut self, j: usize, v: f64) -> bool {
        self.sums.add_if_set(j, v)
    }

    /// Reads the sum of a marked index.
    #[inline]
    pub(crate) fn sum(&self, j: usize) -> f64 {
        self.sums.get_unchecked(j)
    }

    /// Applies the decaying-demand shrink policy to the list buffers, using
    /// their current lengths (a just-finished round's footprint) as the
    /// demand observation. Call once per round *after* selection: a
    /// workspace that served a much larger round (bigger cohort, larger
    /// union) releases that memory after a few smaller rounds instead of
    /// pinning its high-water mark forever, while steady-state rounds never
    /// trigger an allocation or release. The epoch-stamped dense buffers
    /// shrink on their own in `begin()` when the dimension demand drops.
    pub fn shrink_to_recent_demand(&mut self) {
        let used = self.rank_counts.len();
        note_demand_and_shrink(&mut self.rank_counts, &mut self.list_demand[0], used);
        let used = self.touched.len();
        note_demand_and_shrink(&mut self.touched, &mut self.list_demand[1], used);
        let used = self.selected.len();
        note_demand_and_shrink(&mut self.selected, &mut self.list_demand[2], used);
        let used = self.candidates.len();
        note_demand_and_shrink(&mut self.candidates, &mut self.list_demand[3], used);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bump_invalidates_all_slots() {
        let mut buf: StampedBuf<usize> = StampedBuf::default();
        buf.begin(8);
        buf.set(3, 42);
        assert_eq!(buf.get(3), Some(42));
        assert_eq!(buf.get(4), None);
        buf.begin(8);
        assert_eq!(buf.get(3), None, "stale generation must not leak");
    }

    #[test]
    fn growing_dimension_preserves_epoch_semantics() {
        let mut buf: StampedBuf<f64> = StampedBuf::default();
        buf.begin(4);
        buf.set(1, 1.5);
        buf.begin(16);
        assert_eq!(buf.get(1), None);
        assert_eq!(buf.get(12), None);
        buf.set(12, 2.5);
        assert_eq!(buf.get(12), Some(2.5));
    }

    #[test]
    fn observe_rank_keeps_minimum() {
        let mut scratch = SelectionScratch::new();
        scratch.begin_ranks(8);
        assert_eq!(scratch.observe_rank(5, 3), None);
        assert_eq!(scratch.observe_rank(5, 1), Some(3));
        assert_eq!(scratch.min_rank(5), Some(1));
        assert_eq!(scratch.observe_rank(5, 7), Some(1));
        assert_eq!(scratch.min_rank(5), Some(1));
    }

    #[test]
    fn stamped_buf_shrinks_when_dimension_demand_drops() {
        let mut buf: StampedBuf<f64> = StampedBuf::default();
        buf.begin(100_000);
        buf.set(99_999, 1.0);
        let peak = buf.resident_slots();
        assert!(peak >= 100_000);
        // Many small generations decay the demand; residency must come down.
        for _ in 0..24 {
            buf.begin(64);
        }
        assert!(
            buf.resident_slots() < peak / 4,
            "resident {} did not shrink from peak {}",
            buf.resident_slots(),
            peak
        );
        // Epoch semantics survive the shrink and a later regrow.
        buf.set(10, 2.0);
        assert_eq!(buf.get(10), Some(2.0));
        buf.begin(100_000);
        assert_eq!(buf.get(10), None, "stale generation must not leak");
        assert_eq!(buf.get(99_999), None);
        buf.set(99_999, 3.0);
        assert_eq!(buf.get(99_999), Some(3.0));
    }

    #[test]
    fn stamped_buf_steady_state_is_stable() {
        let mut buf: StampedBuf<usize> = StampedBuf::default();
        buf.begin(4096);
        let settled = buf.resident_slots();
        for _ in 0..50 {
            buf.begin(4096);
        }
        assert_eq!(buf.resident_slots(), settled);
    }

    #[test]
    fn selection_lists_shrink_when_round_demand_drops() {
        let mut scratch = SelectionScratch::new();
        scratch.selected.extend(0..100_000);
        scratch.shrink_to_recent_demand();
        let peak = scratch.selected.capacity();
        assert!(peak >= 100_000);
        for _ in 0..24 {
            scratch.selected.clear();
            scratch.selected.extend(0..64);
            scratch.shrink_to_recent_demand();
        }
        assert!(
            scratch.selected.capacity() < peak / 4,
            "capacity {} did not shrink from peak {}",
            scratch.selected.capacity(),
            peak
        );
    }

    #[test]
    fn accumulation_is_per_generation() {
        let mut scratch = SelectionScratch::new();
        scratch.begin_sums(4);
        scratch.mark_selected(2);
        scratch.accumulate(2, 1.25);
        scratch.accumulate(2, 0.75);
        assert_eq!(scratch.sum(2), 2.0);
        assert!(!scratch.is_marked(3));
        scratch.begin_sums(4);
        assert!(!scratch.is_marked(2));
    }
}
