//! Reusable server-side selection workspace.
//!
//! Every structure here exists to make the per-round server hot path
//! allocation-free: the buffers are sized to the model dimension once and
//! "cleared" by bumping a generation counter instead of a `memset` or a
//! hash-map rebuild. See the crate-level docs for the complexity picture.

/// A dense buffer whose entries are valid only when their generation stamp
/// matches the buffer's current epoch.
///
/// `begin()` bumps the epoch, which invalidates every slot in O(1); slots are
/// lazily re-initialised on first write. This replaces `HashSet`/`HashMap`
/// rebuilds in the selection hot path with branch-predictable array probes.
#[derive(Debug, Clone, Default)]
pub(crate) struct StampedBuf<T> {
    epoch: u64,
    stamp: Vec<u64>,
    data: Vec<T>,
}

impl<T: Copy + Default> StampedBuf<T> {
    /// Starts a new generation covering indices `< dim`. O(1) unless the
    /// dimension grew, in which case the buffers are extended once.
    pub(crate) fn begin(&mut self, dim: usize) {
        if self.stamp.len() < dim {
            self.stamp.resize(dim, 0);
            self.data.resize(dim, T::default());
        }
        self.epoch += 1;
    }

    /// Is slot `j` set in the current generation?
    #[inline]
    pub(crate) fn is_set(&self, j: usize) -> bool {
        self.stamp[j] == self.epoch
    }

    /// Writes slot `j`, stamping it into the current generation.
    #[inline]
    pub(crate) fn set(&mut self, j: usize, value: T) {
        self.stamp[j] = self.epoch;
        self.data[j] = value;
    }

    /// Reads slot `j`; `None` if it was not written this generation.
    #[inline]
    pub(crate) fn get(&self, j: usize) -> Option<T> {
        if self.is_set(j) {
            Some(self.data[j])
        } else {
            None
        }
    }

    /// Reads slot `j` without checking the stamp. Only valid after a
    /// matching `set` in the current generation.
    #[inline]
    pub(crate) fn get_unchecked(&self, j: usize) -> T {
        debug_assert!(self.is_set(j));
        self.data[j]
    }
}

impl StampedBuf<f64> {
    /// Adds `v` to slot `j` if it is set this generation; one stamp probe,
    /// no re-stamping. Returns whether the slot was set.
    #[inline]
    pub(crate) fn add_if_set(&mut self, j: usize, v: f64) -> bool {
        if self.stamp[j] == self.epoch {
            self.data[j] += v;
            true
        } else {
            false
        }
    }
}

impl StampedBuf<usize> {
    /// Records `value` at slot `j`, keeping the minimum across the current
    /// generation; one stamp probe. Returns the previously stored value.
    #[inline]
    pub(crate) fn observe_min(&mut self, j: usize, value: usize) -> Option<usize> {
        if self.stamp[j] == self.epoch {
            let old = self.data[j];
            if value < old {
                self.data[j] = value;
            }
            Some(old)
        } else {
            self.stamp[j] = self.epoch;
            self.data[j] = value;
            None
        }
    }
}

/// Reusable workspace for [`Sparsifier::select_into`].
///
/// One `SelectionScratch` amortises every temporary the server-side
/// selection/aggregation pipeline needs across rounds:
///
/// * `ranks` — per-index minimum upload rank (FAB's single-pass union
///   counting),
/// * `sums` — per-index weighted aggregation accumulator,
/// * `rank_counts` — histogram of minimum ranks, turned into prefix counts so
///   every `|∪ J_i^κ|` is an O(1) lookup,
/// * `selected` / `candidates` — index and candidate lists reused between
///   rounds.
///
/// Buffers grow to the largest dimension seen and are invalidated by epoch
/// bumps, so repeated calls perform zero allocations in steady state. The
/// workspace carries no round state across calls: calling `select_into`
/// twice with the same inputs returns identical results (there is a
/// regression test for exactly this).
///
/// [`Sparsifier::select_into`]: crate::Sparsifier::select_into
#[derive(Debug, Clone, Default)]
pub struct SelectionScratch {
    /// Minimum rank at which each index appears across client uploads.
    pub(crate) ranks: StampedBuf<usize>,
    /// Weighted per-index sums for aggregation.
    pub(crate) sums: StampedBuf<f64>,
    /// `rank_counts[r]` = number of indices whose minimum rank is `r`.
    pub(crate) rank_counts: Vec<usize>,
    /// Distinct indices observed this round, in first-appearance order.
    pub(crate) touched: Vec<usize>,
    /// The selected downlink index set, sorted ascending.
    pub(crate) selected: Vec<usize>,
    /// Fill candidates `(index, value)` at prefix level `κ`.
    pub(crate) candidates: Vec<(usize, f32)>,
}

impl SelectionScratch {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins the rank-counting phase for a round of dimension `dim`.
    pub(crate) fn begin_ranks(&mut self, dim: usize) {
        self.ranks.begin(dim);
    }

    /// Begins an aggregation phase for a round of dimension `dim`.
    pub(crate) fn begin_sums(&mut self, dim: usize) {
        self.sums.begin(dim);
    }

    /// Records that `j` was uploaded at `rank`, keeping the minimum.
    /// Returns the previously recorded rank, if any.
    #[inline]
    pub(crate) fn observe_rank(&mut self, j: usize, rank: usize) -> Option<usize> {
        self.ranks.observe_min(j, rank)
    }

    /// The recorded minimum rank of `j`, if it was observed this round.
    #[inline]
    pub(crate) fn min_rank(&self, j: usize) -> Option<usize> {
        self.ranks.get(j)
    }

    /// Begins a membership phase for a round of dimension `dim`. Membership
    /// shares the `ranks` buffer (a sparsifier uses ranks or membership,
    /// never both at once), so it can express an index set without touching
    /// the sums generation.
    pub(crate) fn begin_members(&mut self, dim: usize) {
        self.ranks.begin(dim);
    }

    /// Adds `j` to the current membership set.
    #[inline]
    pub(crate) fn add_member(&mut self, j: usize) {
        self.ranks.set(j, 0);
    }

    /// Whether `j` is in the current membership set.
    #[inline]
    pub(crate) fn is_member(&self, j: usize) -> bool {
        self.ranks.is_set(j)
    }

    /// Marks `j` as selected for aggregation (sum starts at zero).
    #[inline]
    pub(crate) fn mark_selected(&mut self, j: usize) {
        self.sums.set(j, 0.0);
    }

    /// Whether `j` is marked for aggregation this phase.
    #[inline]
    pub(crate) fn is_marked(&self, j: usize) -> bool {
        self.sums.is_set(j)
    }

    /// Adds `v` to the sum of a marked index.
    #[inline]
    pub(crate) fn accumulate(&mut self, j: usize, v: f64) {
        debug_assert!(self.sums.is_set(j));
        let added = self.sums.add_if_set(j, v);
        debug_assert!(added);
    }

    /// Adds `v` to the sum of `j` if it is marked; single stamp probe.
    /// Returns whether `j` was marked.
    #[inline]
    pub(crate) fn accumulate_if_marked(&mut self, j: usize, v: f64) -> bool {
        self.sums.add_if_set(j, v)
    }

    /// Reads the sum of a marked index.
    #[inline]
    pub(crate) fn sum(&self, j: usize) -> f64 {
        self.sums.get_unchecked(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bump_invalidates_all_slots() {
        let mut buf: StampedBuf<usize> = StampedBuf::default();
        buf.begin(8);
        buf.set(3, 42);
        assert_eq!(buf.get(3), Some(42));
        assert_eq!(buf.get(4), None);
        buf.begin(8);
        assert_eq!(buf.get(3), None, "stale generation must not leak");
    }

    #[test]
    fn growing_dimension_preserves_epoch_semantics() {
        let mut buf: StampedBuf<f64> = StampedBuf::default();
        buf.begin(4);
        buf.set(1, 1.5);
        buf.begin(16);
        assert_eq!(buf.get(1), None);
        assert_eq!(buf.get(12), None);
        buf.set(12, 2.5);
        assert_eq!(buf.get(12), Some(2.5));
    }

    #[test]
    fn observe_rank_keeps_minimum() {
        let mut scratch = SelectionScratch::new();
        scratch.begin_ranks(8);
        assert_eq!(scratch.observe_rank(5, 3), None);
        assert_eq!(scratch.observe_rank(5, 1), Some(3));
        assert_eq!(scratch.min_rank(5), Some(1));
        assert_eq!(scratch.observe_rank(5, 7), Some(1));
        assert_eq!(scratch.min_rank(5), Some(1));
    }

    #[test]
    fn accumulation_is_per_generation() {
        let mut scratch = SelectionScratch::new();
        scratch.begin_sums(4);
        scratch.mark_selected(2);
        scratch.accumulate(2, 1.25);
        scratch.accumulate(2, 0.75);
        assert_eq!(scratch.sum(2), 2.0);
        assert!(!scratch.is_marked(3));
        scratch.begin_sums(4);
        assert!(!scratch.is_marked(2));
    }
}
