use rand::RngCore;

use crate::scratch::SelectionScratch;
use crate::sparsifier::{ClientUpload, SelectionResult, Sparsifier, UploadPlan};
use crate::topk;
use crate::SparseGradient;

/// Fairness-unaware bidirectional top-k (FUB-top-k).
///
/// Clients upload the top-`k` entries of their accumulated gradients exactly
/// as in FAB-top-k, but the server simply aggregates all uploaded values and
/// keeps the `k` aggregated elements with the largest absolute values — the
/// behaviour of global/bidirectional top-k schemes that ignore fairness
/// ([28], [31] in the paper). Clients whose updates are consistently small
/// may contribute nothing at all, which is the bias FAB-top-k avoids.
///
/// # Examples
///
/// ```
/// use agsfl_sparse::{ClientUpload, FubTopK, Sparsifier};
///
/// let fub = FubTopK::new();
/// let uploads = vec![
///     ClientUpload::new(0, 0.5, vec![(0, 10.0), (1, 9.0)]),
///     ClientUpload::new(1, 0.5, vec![(5, 0.1), (6, 0.05)]),
/// ];
/// let result = fub.select(&uploads, 8, 2);
/// // The small client is starved: all k slots go to client 0's indices.
/// assert_eq!(result.contributions()[1], 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FubTopK;

impl FubTopK {
    /// Creates the sparsifier.
    pub fn new() -> Self {
        Self
    }
}

impl Sparsifier for FubTopK {
    fn name(&self) -> &'static str {
        "FUB-top-k"
    }

    fn upload_plan(&self, _dim: usize, _k: usize, _rng: &mut dyn RngCore) -> UploadPlan {
        UploadPlan::TopKOwn
    }

    fn select_into(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        scratch: &mut SelectionScratch,
    ) -> SelectionResult {
        // Aggregate every uploaded coordinate into the epoch-stamped dense
        // buffer, then keep the top-k of the aggregated magnitudes.
        scratch.begin_sums(dim);
        scratch.touched.clear();
        for upload in uploads {
            for &(j, v) in &upload.entries {
                assert!(j < dim, "upload index {j} out of range (dim {dim})");
                if !scratch.is_marked(j) {
                    scratch.mark_selected(j);
                    scratch.touched.push(j);
                }
                scratch.accumulate(j, upload.weight * v as f64);
            }
        }
        scratch.candidates.clear();
        for i in 0..scratch.touched.len() {
            let j = scratch.touched[i];
            scratch.candidates.push((j, scratch.sum(j) as f32));
        }
        // Only the top-k *set* matters (the selection is re-sorted by index
        // below), so an O(U) partial selection replaces a full O(U log U)
        // sort; the comparator is a total order, so the set is identical.
        if scratch.candidates.len() > k && k > 0 {
            scratch
                .candidates
                .select_nth_unstable_by(k - 1, topk::compare_magnitude_then_index);
        }
        scratch.candidates.truncate(k);
        scratch.selected.clear();
        scratch
            .selected
            .extend(scratch.candidates.iter().map(|&(j, _)| j));
        scratch.selected.sort_unstable();

        // The selected sums already sit in the pass-1 accumulator (each is
        // the same in-order sequence of adds a re-accumulation would do), so
        // emit them directly; only the reset sets need a second sweep, with
        // membership expressed in the ranks buffer to leave the sums intact.
        scratch.begin_members(dim);
        for i in 0..scratch.selected.len() {
            scratch.add_member(scratch.selected[i]);
        }
        let mut reset_indices = vec![Vec::new(); uploads.len()];
        for (slot, upload) in uploads.iter().enumerate() {
            let resets = &mut reset_indices[slot];
            for &(j, _) in &upload.entries {
                if scratch.is_member(j) {
                    resets.push(j);
                }
            }
        }
        let entries: Vec<(usize, f32)> = scratch
            .selected
            .iter()
            .map(|&j| (j, scratch.sum(j) as f32))
            .collect();
        SelectionResult::new(
            SparseGradient::from_sorted_entries(dim, entries),
            reset_indices,
            uploads.iter().map(ClientUpload::len).collect(),
            scratch.selected.len(),
            true,
            true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn uploads_from_dense(clients: &[Vec<f32>], k: usize) -> Vec<ClientUpload> {
        let n = clients.len();
        clients
            .iter()
            .enumerate()
            .map(|(i, acc)| ClientUpload::new(i, 1.0 / n as f64, topk::top_k_entries(acc, k)))
            .collect()
    }

    #[test]
    fn keeps_largest_aggregated_magnitudes() {
        let clients = vec![
            vec![3.0, 0.0, 0.0, 1.0],
            vec![3.0, 0.0, 2.5, 0.0],
        ];
        let uploads = uploads_from_dense(&clients, 2);
        let result = FubTopK::new().select(&uploads, 4, 2);
        // Aggregated values: j0 = 3.0, j2 = 1.25, j3 = 0.5 -> keep {0, 2}.
        assert!(result.aggregated.contains(0));
        assert!(result.aggregated.contains(2));
        assert!(!result.aggregated.contains(3));
        assert!((result.aggregated.get(0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn can_starve_a_small_client() {
        let clients = vec![
            vec![10.0, 9.0, 8.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.01, 0.02, 0.03],
        ];
        let uploads = uploads_from_dense(&clients, 3);
        let result = FubTopK::new().select(&uploads, 6, 3);
        assert_eq!(result.contributions()[1], 0);
        assert_eq!(result.contributions()[0], 3);
    }

    #[test]
    fn downlink_never_exceeds_k() {
        let clients = vec![vec![1.0, 2.0, 3.0, 4.0, 5.0]; 4];
        let uploads = uploads_from_dense(&clients, 3);
        let result = FubTopK::new().select(&uploads, 5, 3);
        assert_eq!(result.downlink_elements, 3);
        assert_eq!(result.aggregated.nnz(), 3);
    }

    #[test]
    fn name_and_plan() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(FubTopK::new().name(), "FUB-top-k");
        assert_eq!(FubTopK::new().upload_plan(10, 2, &mut rng), UploadPlan::TopKOwn);
    }

    #[test]
    fn aggregation_uses_client_weights() {
        let uploads = vec![
            ClientUpload::new(0, 0.9, vec![(0, 1.0)]),
            ClientUpload::new(1, 0.1, vec![(0, -1.0)]),
        ];
        let result = FubTopK::new().select(&uploads, 2, 1);
        assert!((result.aggregated.get(0) - 0.8).abs() < 1e-6);
    }
}
