use std::sync::mpsc;

use agsfl_exec::Executor;
use rand::RngCore;

use crate::scratch::SelectionScratch;
use crate::shard::{bucket_channels, exchange_entries, merge_reset_positions, ShardedScratch};
use crate::sparsifier::{ClientUpload, SelectionResult, Sparsifier, UploadPlan};
use crate::topk;
use crate::SparseGradient;

/// Fairness-unaware bidirectional top-k (FUB-top-k).
///
/// Clients upload the top-`k` entries of their accumulated gradients exactly
/// as in FAB-top-k, but the server simply aggregates all uploaded values and
/// keeps the `k` aggregated elements with the largest absolute values — the
/// behaviour of global/bidirectional top-k schemes that ignore fairness
/// (\[28\], \[31\] in the paper). Clients whose updates are consistently small
/// may contribute nothing at all, which is the bias FAB-top-k avoids.
///
/// # Examples
///
/// ```
/// use agsfl_sparse::{ClientUpload, FubTopK, Sparsifier};
///
/// let fub = FubTopK::new();
/// let uploads = vec![
///     ClientUpload::new(0, 0.5, vec![(0, 10.0), (1, 9.0)]),
///     ClientUpload::new(1, 0.5, vec![(5, 0.1), (6, 0.05)]),
/// ];
/// let result = fub.select(&uploads, 8, 2);
/// // The small client is starved: all k slots go to client 0's indices.
/// assert_eq!(result.contributions()[1], 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FubTopK;

impl FubTopK {
    /// Creates the sparsifier.
    pub fn new() -> Self {
        Self
    }

    /// The sharded engine behind [`Sparsifier::select_parallel`]: one
    /// map–shuffle bucket exchange (shared with FAB — every upload entry is
    /// scanned once in total, not once per worker), then stripe workers
    /// aggregate their cached coordinates (client-order folds, so the sums
    /// are the serial bits) and send `(index, aggregated value)` candidate
    /// lists to the coordinator, which cuts the global top-`k` set under
    /// the same total order as the serial path and hands each worker its
    /// stripe's membership slice for the cached reset sweep.
    fn select_sharded(
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        sharded: &mut ShardedScratch,
        exec: &Executor,
    ) -> SelectionResult {
        sharded.stripe(dim, exec.threads());
        let shard_count = sharded.shards.len();
        let width = sharded.width;
        let n_clients = uploads.len();
        let ShardedScratch {
            shards,
            selected,
            candidates,
            ..
        } = sharded;
        std::thread::scope(|scope| {
            let (bucket_tx, bucket_rx) = bucket_channels(shard_count);
            // Per-worker result channels: a dead worker surfaces as a recv
            // error at its slot, so the coordinator aborts, releases its
            // channel ends and the scope re-raises the panic (a shared
            // channel would leave the coordinator blocked; see fab.rs).
            let mut to_worker = Vec::with_capacity(shard_count);
            let mut from_worker = Vec::with_capacity(shard_count);
            let mut handles = Vec::with_capacity(shard_count);
            for (w, (shard, my_rx)) in shards.iter_mut().zip(bucket_rx).enumerate() {
                let (tx, rx) = mpsc::channel::<Vec<usize>>();
                to_worker.push(tx);
                let (to_main, result_rx) = mpsc::channel::<Vec<(usize, f32)>>();
                from_worker.push(result_rx);
                let bucket_tx = bucket_tx.clone();
                handles.push(scope.spawn(move || {
                    // Phase 0 (map + shuffle): rebuild this stripe's entry
                    // cache in serial (slot, pos) scan order.
                    if !exchange_entries(
                        w,
                        uploads,
                        dim,
                        width,
                        bucket_tx,
                        &my_rx,
                        &mut shard.entries,
                    ) {
                        return;
                    }
                    // Phase 1: aggregate every in-stripe coordinate over
                    // the cache.
                    shard.aggregate_union_cached(uploads);
                    let cands: Vec<(usize, f32)> = shard
                        .touched
                        .iter()
                        .map(|&j| (j, shard.sum(j) as f32))
                        .collect();
                    if to_main.send(cands).is_err() {
                        return;
                    }
                    let Ok(members) = rx.recv() else {
                        return;
                    };
                    // Phase 2: membership + reset positions for the stripe,
                    // over the cache. Membership shares the ranks buffer;
                    // the sums stay intact for the final entry emission.
                    shard.begin_members();
                    for &j in &members {
                        shard.add_member(j);
                    }
                    shard.sweep_members_cached(n_clients);
                }));
            }
            // The workers hold their own bucket-sender clones; dropping the
            // coordinator's originals lets the exchange drain (with recv
            // errors) if any worker dies before sending.
            // The bounds check fires inside the workers' bucketing pass.
            drop(bucket_tx);

            // Gather candidates in stripe order (deterministic) and keep
            // the top-k set. The partial selection's comparator is a total
            // order over distinct indices, so the *set* — all the serial
            // path keeps — is independent of candidate order.
            candidates.clear();
            let mut alive = true;
            for rx in &from_worker {
                match rx.recv() {
                    Ok(cands) => candidates.extend(cands),
                    Err(_) => {
                        // The worker panicked; stop coordinating so every
                        // other worker unblocks and the scope re-raises.
                        alive = false;
                        break;
                    }
                }
            }
            if alive {
                if candidates.len() > k && k > 0 {
                    candidates.select_nth_unstable_by(k - 1, topk::compare_magnitude_then_index);
                }
                candidates.truncate(k);
                selected.clear();
                selected.extend(candidates.iter().map(|&(j, _)| j));
                selected.sort_unstable();

                // Hand each worker its stripe's slice of the membership set.
                // `selected` is sorted, so each stripe's members are the
                // leading run of `rest` below the stripe's upper bound.
                let mut rest: &[usize] = selected;
                for (s, tx) in to_worker.iter().enumerate() {
                    let stripe_hi = ((s + 1) * width).min(dim);
                    let cut = rest.partition_point(|&j| j < stripe_hi);
                    let (mine, tail) = rest.split_at(cut);
                    rest = tail;
                    if tx.send(mine.to_vec()).is_err() {
                        break;
                    }
                }
            }
            // Release the coordinator's channel ends before joining so any
            // worker still blocked on a recv observes the disconnect.
            drop(to_worker);
            drop(from_worker);
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        let reset_indices = merge_reset_positions(uploads, &sharded.shards);
        let entries = sharded.emit_entries();
        SelectionResult::new(
            SparseGradient::from_sorted_entries(dim, entries),
            reset_indices,
            uploads.iter().map(ClientUpload::len).collect(),
            sharded.selected.len(),
            true,
            true,
        )
    }
}

impl Sparsifier for FubTopK {
    fn name(&self) -> &'static str {
        "FUB-top-k"
    }

    fn upload_plan(&self, _dim: usize, _k: usize, _rng: &mut dyn RngCore) -> UploadPlan {
        UploadPlan::TopKOwn
    }

    fn select_into(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        scratch: &mut SelectionScratch,
    ) -> SelectionResult {
        // Aggregate every uploaded coordinate into the epoch-stamped dense
        // buffer, then keep the top-k of the aggregated magnitudes.
        scratch.begin_sums(dim);
        scratch.touched.clear();
        for upload in uploads {
            for &(j, v) in &upload.entries {
                assert!(j < dim, "upload index {j} out of range (dim {dim})");
                if !scratch.is_marked(j) {
                    scratch.mark_selected(j);
                    scratch.touched.push(j);
                }
                scratch.accumulate(j, upload.weight * v as f64);
            }
        }
        scratch.candidates.clear();
        for i in 0..scratch.touched.len() {
            let j = scratch.touched[i];
            scratch.candidates.push((j, scratch.sum(j) as f32));
        }
        // Only the top-k *set* matters (the selection is re-sorted by index
        // below), so an O(U) partial selection replaces a full O(U log U)
        // sort; the comparator is a total order, so the set is identical.
        if scratch.candidates.len() > k && k > 0 {
            scratch
                .candidates
                .select_nth_unstable_by(k - 1, topk::compare_magnitude_then_index);
        }
        scratch.candidates.truncate(k);
        scratch.selected.clear();
        scratch
            .selected
            .extend(scratch.candidates.iter().map(|&(j, _)| j));
        scratch.selected.sort_unstable();

        // The selected sums already sit in the pass-1 accumulator (each is
        // the same in-order sequence of adds a re-accumulation would do), so
        // emit them directly; only the reset sets need a second sweep, with
        // membership expressed in the ranks buffer to leave the sums intact.
        scratch.begin_members(dim);
        for i in 0..scratch.selected.len() {
            scratch.add_member(scratch.selected[i]);
        }
        let mut reset_indices = vec![Vec::new(); uploads.len()];
        for (slot, upload) in uploads.iter().enumerate() {
            let resets = &mut reset_indices[slot];
            for &(j, _) in &upload.entries {
                if scratch.is_member(j) {
                    resets.push(j);
                }
            }
        }
        let entries: Vec<(usize, f32)> = scratch
            .selected
            .iter()
            .map(|&j| (j, scratch.sum(j) as f32))
            .collect();
        SelectionResult::new(
            SparseGradient::from_sorted_entries(dim, entries),
            reset_indices,
            uploads.iter().map(ClientUpload::len).collect(),
            scratch.selected.len(),
            true,
            true,
        )
    }

    fn select_parallel(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        scratch: &mut ShardedScratch,
        exec: &Executor,
    ) -> SelectionResult {
        if !exec.should_parallelize(uploads.len()) || k == 0 {
            return self.select_into(uploads, dim, k, scratch.serial_scratch());
        }
        Self::select_sharded(uploads, dim, k, scratch, exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn uploads_from_dense(clients: &[Vec<f32>], k: usize) -> Vec<ClientUpload> {
        let n = clients.len();
        clients
            .iter()
            .enumerate()
            .map(|(i, acc)| ClientUpload::new(i, 1.0 / n as f64, topk::top_k_entries(acc, k)))
            .collect()
    }

    #[test]
    fn keeps_largest_aggregated_magnitudes() {
        let clients = vec![vec![3.0, 0.0, 0.0, 1.0], vec![3.0, 0.0, 2.5, 0.0]];
        let uploads = uploads_from_dense(&clients, 2);
        let result = FubTopK::new().select(&uploads, 4, 2);
        // Aggregated values: j0 = 3.0, j2 = 1.25, j3 = 0.5 -> keep {0, 2}.
        assert!(result.aggregated.contains(0));
        assert!(result.aggregated.contains(2));
        assert!(!result.aggregated.contains(3));
        assert!((result.aggregated.get(0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn can_starve_a_small_client() {
        let clients = vec![
            vec![10.0, 9.0, 8.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.01, 0.02, 0.03],
        ];
        let uploads = uploads_from_dense(&clients, 3);
        let result = FubTopK::new().select(&uploads, 6, 3);
        assert_eq!(result.contributions()[1], 0);
        assert_eq!(result.contributions()[0], 3);
    }

    #[test]
    fn downlink_never_exceeds_k() {
        let clients = vec![vec![1.0, 2.0, 3.0, 4.0, 5.0]; 4];
        let uploads = uploads_from_dense(&clients, 3);
        let result = FubTopK::new().select(&uploads, 5, 3);
        assert_eq!(result.downlink_elements, 3);
        assert_eq!(result.aggregated.nnz(), 3);
    }

    #[test]
    fn name_and_plan() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(FubTopK::new().name(), "FUB-top-k");
        assert_eq!(
            FubTopK::new().upload_plan(10, 2, &mut rng),
            UploadPlan::TopKOwn
        );
    }

    #[test]
    fn aggregation_uses_client_weights() {
        let uploads = vec![
            ClientUpload::new(0, 0.9, vec![(0, 1.0)]),
            ClientUpload::new(1, 0.1, vec![(0, -1.0)]),
        ];
        let result = FubTopK::new().select(&uploads, 2, 1);
        assert!((result.aggregated.get(0) - 0.8).abs() < 1e-6);
    }
}
