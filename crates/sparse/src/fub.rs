use rand::RngCore;

use crate::sparsifier::{aggregate_selected, ClientUpload, SelectionResult, Sparsifier, UploadPlan};
use crate::topk;

/// Fairness-unaware bidirectional top-k (FUB-top-k).
///
/// Clients upload the top-`k` entries of their accumulated gradients exactly
/// as in FAB-top-k, but the server simply aggregates all uploaded values and
/// keeps the `k` aggregated elements with the largest absolute values — the
/// behaviour of global/bidirectional top-k schemes that ignore fairness
/// ([28], [31] in the paper). Clients whose updates are consistently small
/// may contribute nothing at all, which is the bias FAB-top-k avoids.
///
/// # Examples
///
/// ```
/// use agsfl_sparse::{ClientUpload, FubTopK, Sparsifier};
///
/// let fub = FubTopK::new();
/// let uploads = vec![
///     ClientUpload::new(0, 0.5, vec![(0, 10.0), (1, 9.0)]),
///     ClientUpload::new(1, 0.5, vec![(5, 0.1), (6, 0.05)]),
/// ];
/// let result = fub.select(&uploads, 8, 2);
/// // The small client is starved: all k slots go to client 0's indices.
/// assert_eq!(result.contributions[1], 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FubTopK;

impl FubTopK {
    /// Creates the sparsifier.
    pub fn new() -> Self {
        Self
    }
}

impl Sparsifier for FubTopK {
    fn name(&self) -> &'static str {
        "FUB-top-k"
    }

    fn upload_plan(&self, _dim: usize, _k: usize, _rng: &mut dyn RngCore) -> UploadPlan {
        UploadPlan::TopKOwn
    }

    fn select(&self, uploads: &[ClientUpload], dim: usize, k: usize) -> SelectionResult {
        // Aggregate every uploaded coordinate, then keep the top-k of the
        // aggregated magnitudes.
        let mut sums: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        for upload in uploads {
            for &(j, v) in &upload.entries {
                assert!(j < dim, "upload index {j} out of range (dim {dim})");
                *sums.entry(j).or_insert(0.0) += upload.weight * v as f64;
            }
        }
        let mut candidates: Vec<(usize, f32)> = sums.into_iter().map(|(j, v)| (j, v as f32)).collect();
        topk::rank_by_magnitude(&mut candidates);
        candidates.truncate(k);
        let selected: Vec<usize> = candidates.iter().map(|&(j, _)| j).collect();

        let (aggregated, reset_indices) = aggregate_selected(uploads, &selected, dim);
        let contributions = reset_indices.iter().map(Vec::len).collect();
        SelectionResult {
            aggregated,
            reset_indices,
            contributions,
            uplink_elements: uploads.iter().map(ClientUpload::len).collect(),
            downlink_elements: selected.len(),
            uplink_indexed: true,
            downlink_indexed: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn uploads_from_dense(clients: &[Vec<f32>], k: usize) -> Vec<ClientUpload> {
        let n = clients.len();
        clients
            .iter()
            .enumerate()
            .map(|(i, acc)| ClientUpload::new(i, 1.0 / n as f64, topk::top_k_entries(acc, k)))
            .collect()
    }

    #[test]
    fn keeps_largest_aggregated_magnitudes() {
        let clients = vec![
            vec![3.0, 0.0, 0.0, 1.0],
            vec![3.0, 0.0, 2.5, 0.0],
        ];
        let uploads = uploads_from_dense(&clients, 2);
        let result = FubTopK::new().select(&uploads, 4, 2);
        // Aggregated values: j0 = 3.0, j2 = 1.25, j3 = 0.5 -> keep {0, 2}.
        assert!(result.aggregated.contains(0));
        assert!(result.aggregated.contains(2));
        assert!(!result.aggregated.contains(3));
        assert!((result.aggregated.get(0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn can_starve_a_small_client() {
        let clients = vec![
            vec![10.0, 9.0, 8.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.01, 0.02, 0.03],
        ];
        let uploads = uploads_from_dense(&clients, 3);
        let result = FubTopK::new().select(&uploads, 6, 3);
        assert_eq!(result.contributions[1], 0);
        assert_eq!(result.contributions[0], 3);
    }

    #[test]
    fn downlink_never_exceeds_k() {
        let clients = vec![vec![1.0, 2.0, 3.0, 4.0, 5.0]; 4];
        let uploads = uploads_from_dense(&clients, 3);
        let result = FubTopK::new().select(&uploads, 5, 3);
        assert_eq!(result.downlink_elements, 3);
        assert_eq!(result.aggregated.nnz(), 3);
    }

    #[test]
    fn name_and_plan() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(FubTopK::new().name(), "FUB-top-k");
        assert_eq!(FubTopK::new().upload_plan(10, 2, &mut rng), UploadPlan::TopKOwn);
    }

    #[test]
    fn aggregation_uses_client_weights() {
        let uploads = vec![
            ClientUpload::new(0, 0.9, vec![(0, 1.0)]),
            ClientUpload::new(1, 0.1, vec![(0, -1.0)]),
        ];
        let result = FubTopK::new().select(&uploads, 2, 1);
        assert!((result.aggregated.get(0) - 0.8).abs() < 1e-6);
    }
}
