use agsfl_exec::Executor;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::scratch::SelectionScratch;
use crate::shard::ShardedScratch;
use crate::SparseGradient;

/// What each client should upload in the current round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UploadPlan {
    /// Every client uploads the top-`k` entries of its own accumulated
    /// gradient (top-k family of sparsifiers).
    TopKOwn,
    /// Every client uploads exactly these coordinates of its accumulated
    /// gradient (periodic/random-k sparsification — the coordinate set is
    /// common to all clients and chosen by the server).
    Coordinates(Vec<usize>),
    /// Every client uploads its full accumulated gradient (send-all).
    Dense,
}

/// The uplink message of one client: `(client id, C_i / C, entries)`.
///
/// For top-k sparsifiers the entries are ranked by decreasing magnitude, which
/// is how the fairness-aware selection reads per-client prefixes `J_i^κ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientUpload {
    /// Index of the uploading client.
    pub client: usize,
    /// The client's aggregation weight `C_i / C`.
    pub weight: f64,
    /// Uploaded `(index, accumulated value)` pairs.
    pub entries: Vec<(usize, f32)>,
}

impl ClientUpload {
    /// Creates an upload message.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn new(client: usize, weight: f64, entries: Vec<(usize, f32)>) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "invalid client weight {weight}"
        );
        Self {
            client,
            weight,
            entries,
        }
    }

    /// Number of uploaded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the upload is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the uploaded value at `index`, if present.
    pub fn value_at(&self, index: usize) -> Option<f32> {
        self.entries
            .iter()
            .find(|&&(j, _)| j == index)
            .map(|&(_, v)| v)
    }
}

/// Result of the server-side selection and aggregation step of one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionResult {
    /// The aggregated sparse gradient `B = {(j, b_j)}` broadcast to clients.
    pub aggregated: SparseGradient,
    /// Per client: the indices `J ∩ J_i` whose accumulator entries must be
    /// reset (Lines 16–17 of Algorithm 1).
    pub reset_indices: Vec<Vec<usize>>,
    /// Per client: how many of its uploaded elements were used in the
    /// aggregate (`|J ∩ J_i|`). Private because it is derived from
    /// `reset_indices` at construction; mutation would desync the two.
    contributions: Vec<usize>,
    /// Per client: number of gradient elements it uploaded this round.
    /// Private (with the indexing flag) because [`Self::max_uplink_scalars`]
    /// is cached from it at construction; mutation would desync the cache.
    uplink_elements: Vec<usize>,
    /// Number of gradient elements broadcast to every client.
    pub downlink_elements: usize,
    /// Whether uplink messages carry explicit indices alongside values
    /// (`true` for sparse messages, `false` for dense full-vector messages).
    uplink_indexed: bool,
    /// Whether the downlink message carries explicit indices.
    pub downlink_indexed: bool,
    /// Cached largest per-client uplink scalar count; computed once at
    /// construction so per-round time accounting does not rescan all
    /// clients (twice) in `run_round`.
    max_uplink_scalars: usize,
}

impl SelectionResult {
    /// Assembles a selection result, deriving `contributions` (as
    /// `reset_indices` lengths) and caching the maximum per-client uplink
    /// scalar count.
    pub fn new(
        aggregated: SparseGradient,
        reset_indices: Vec<Vec<usize>>,
        uplink_elements: Vec<usize>,
        downlink_elements: usize,
        uplink_indexed: bool,
        downlink_indexed: bool,
    ) -> Self {
        let contributions = reset_indices.iter().map(Vec::len).collect();
        let per_scalar = if uplink_indexed { 2 } else { 1 };
        let max_uplink_scalars = uplink_elements
            .iter()
            .map(|&n| per_scalar * n)
            .max()
            .unwrap_or(0);
        Self {
            aggregated,
            reset_indices,
            contributions,
            uplink_elements,
            downlink_elements,
            uplink_indexed,
            downlink_indexed,
            max_uplink_scalars,
        }
    }

    /// Per client: how many of its uploaded elements were used in the
    /// aggregate (`|J ∩ J_i|`) — the lengths of `reset_indices`. This is
    /// the quantity whose CDF the paper plots in Fig. 4 (right).
    pub fn contributions(&self) -> &[usize] {
        &self.contributions
    }

    /// Consumes the result, yielding the contributions vector without a
    /// copy — for callers (like the round loop) that keep it past the
    /// result's lifetime.
    pub fn into_contributions(self) -> Vec<usize> {
        self.contributions
    }

    /// Per client: number of gradient elements it uploaded this round.
    pub fn uplink_elements(&self) -> &[usize] {
        &self.uplink_elements
    }

    /// Whether uplink messages carry explicit indices alongside values.
    pub fn uplink_indexed(&self) -> bool {
        self.uplink_indexed
    }

    /// Scalars transmitted on the uplink by client `i` (values plus indices
    /// when the message is indexed). This is what the normalized time model
    /// charges for.
    pub fn uplink_scalars(&self, client: usize) -> usize {
        let n = self.uplink_elements[client];
        if self.uplink_indexed {
            2 * n
        } else {
            n
        }
    }

    /// Largest per-client uplink scalar count (clients transmit in parallel,
    /// so the slowest link determines the round's uplink time). Cached at
    /// construction; O(1).
    pub fn max_uplink_scalars(&self) -> usize {
        self.max_uplink_scalars
    }

    /// Scalars transmitted on the downlink to each client.
    pub fn downlink_scalars(&self) -> usize {
        if self.downlink_indexed {
            2 * self.downlink_elements
        } else {
            self.downlink_elements
        }
    }
}

/// A gradient sparsification method: decides what clients upload and how the
/// server selects/aggregates the downlink message.
///
/// Implementations are stateless selection logic (all per-round state lives in
/// the FL simulator and the caller-owned [`SelectionScratch`]), which keeps
/// them trivially reusable both inside the simulator and in the unit/property
/// tests of this crate.
pub trait Sparsifier: Send + Sync + std::fmt::Debug {
    /// Human-readable method name used in reports (e.g. `"FAB-top-k"`).
    fn name(&self) -> &'static str;

    /// Decides what clients upload this round.
    ///
    /// `dim` is the model dimension `D` and `k` the current sparsity degree.
    /// The RNG is used by randomized plans (periodic-k).
    fn upload_plan(&self, dim: usize, k: usize, rng: &mut dyn RngCore) -> UploadPlan;

    /// Server-side selection: from the client uploads, produce the aggregated
    /// sparse gradient, the per-client reset sets and the communication
    /// accounting.
    ///
    /// This is the hot path of Algorithm 1's server. All temporaries live in
    /// `scratch`; a caller that reuses one workspace across rounds (as
    /// `agsfl_fl::Simulation::run_round` does) performs no per-round heap
    /// allocation beyond the returned result itself.
    ///
    /// # Panics
    ///
    /// Implementations panic if an upload references an index `>= dim`.
    fn select_into(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        scratch: &mut SelectionScratch,
    ) -> SelectionResult;

    /// Convenience wrapper over [`Sparsifier::select_into`] that allocates a
    /// throwaway [`SelectionScratch`]. Handy in tests and one-shot callers;
    /// round loops should own a scratch and call `select_into` directly.
    fn select(&self, uploads: &[ClientUpload], dim: usize, k: usize) -> SelectionResult {
        let mut scratch = SelectionScratch::new();
        self.select_into(uploads, dim, k, &mut scratch)
    }

    /// Multi-threaded server selection over per-worker dimension stripes.
    ///
    /// Bit-identical to [`Sparsifier::select_into`] for every executor and
    /// shard count — see the [`crate::shard`] module docs for why the
    /// striped decomposition makes this exact rather than approximate, and
    /// `tests/select_equivalence.rs` for the proptests pinning it against
    /// the seed implementations across 1–8 shards.
    ///
    /// The default method is the one-shard case: it simply runs the serial
    /// path on the workspace's embedded [`SelectionScratch`]. Sparsifiers
    /// with a genuinely parallel engine override it and fall back to the
    /// same serial path when `exec` is single-threaded, the round has fewer
    /// uploads than [`Executor::min_items`] (spawning threads for a tiny
    /// round costs more than it saves), or the round is degenerate (no
    /// uploads, `k == 0`).
    fn select_parallel(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        scratch: &mut ShardedScratch,
        _exec: &Executor,
    ) -> SelectionResult {
        self.select_into(uploads, dim, k, scratch.serial_scratch())
    }
}

/// Aggregates uploaded values for a set of selected indices:
/// `b_j = Σ_i weight_i · a_ij · Il[j ∈ J_i]` (Line 10 of Algorithm 1).
///
/// Also returns, per client, the subset of `selected` the client uploaded
/// (`J ∩ J_i`) — used both for accumulator resets and for the fairness CDF.
///
/// `selected` must be sorted ascending and duplicate-free; sums accumulate in
/// the scratch's epoch-stamped dense `f64` buffer (no hashing) and the output
/// entries are emitted in index order, so the sparse gradient is built with
/// the sort-free [`SparseGradient::from_sorted_entries`] constructor.
/// Accumulation visits uploads in order, which keeps the floating-point
/// results bit-identical to the historical `HashMap`-based implementation
/// (see `crate::reference`).
pub(crate) fn aggregate_selected_into(
    uploads: &[ClientUpload],
    selected: &[usize],
    dim: usize,
    scratch: &mut SelectionScratch,
) -> (SparseGradient, Vec<Vec<usize>>) {
    scratch.begin_sums(dim);
    for &j in selected {
        assert!(j < dim, "selected index {j} out of range (dim {dim})");
        scratch.mark_selected(j);
    }
    aggregate_marked(uploads, selected, dim, scratch)
}

/// Core of [`aggregate_selected_into`] for callers that have already marked
/// exactly the `selected` indices in the scratch's current sums generation
/// (FAB does so during its selection phase and skips the re-marking pass).
pub(crate) fn aggregate_marked(
    uploads: &[ClientUpload],
    selected: &[usize],
    dim: usize,
    scratch: &mut SelectionScratch,
) -> (SparseGradient, Vec<Vec<usize>>) {
    debug_assert!(
        selected.windows(2).all(|w| w[0] < w[1]),
        "selected must be sorted"
    );
    let mut reset_indices = vec![Vec::new(); uploads.len()];
    for (slot, upload) in uploads.iter().enumerate() {
        let resets = &mut reset_indices[slot];
        for &(j, v) in &upload.entries {
            assert!(j < dim, "upload index {j} out of range (dim {dim})");
            if scratch.accumulate_if_marked(j, upload.weight * v as f64) {
                resets.push(j);
            }
        }
    }
    let entries: Vec<(usize, f32)> = selected
        .iter()
        .map(|&j| (j, scratch.sum(j) as f32))
        .collect();
    (
        SparseGradient::from_sorted_entries(dim, entries),
        reset_indices,
    )
}

/// Builds the full [`SelectionResult`] for sparsifiers whose downlink is a
/// sorted index set: aggregation, reset sets, contribution counts and the
/// communication accounting in one call.
pub(crate) fn result_from_selected(
    uploads: &[ClientUpload],
    selected: &[usize],
    dim: usize,
    scratch: &mut SelectionScratch,
    downlink_indexed: bool,
) -> SelectionResult {
    let (aggregated, reset_indices) = aggregate_selected_into(uploads, selected, dim, scratch);
    SelectionResult::new(
        aggregated,
        reset_indices,
        uploads.iter().map(ClientUpload::len).collect(),
        selected.len(),
        downlink_indexed,
        downlink_indexed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_accessors() {
        let u = ClientUpload::new(3, 0.25, vec![(1, 2.0), (4, -1.0)]);
        assert_eq!(u.len(), 2);
        assert!(!u.is_empty());
        assert_eq!(u.value_at(4), Some(-1.0));
        assert_eq!(u.value_at(0), None);
    }

    #[test]
    #[should_panic]
    fn negative_weight_panics() {
        let _ = ClientUpload::new(0, -0.1, vec![]);
    }

    #[test]
    fn selection_result_scalar_accounting() {
        let r = SelectionResult::new(
            SparseGradient::zeros(10),
            vec![vec![], vec![]],
            vec![3, 5],
            4,
            true,
            true,
        );
        assert_eq!(r.uplink_scalars(0), 6);
        assert_eq!(r.uplink_scalars(1), 10);
        assert_eq!(r.max_uplink_scalars(), 10);
        assert_eq!(r.downlink_scalars(), 8);
        assert_eq!(r.contributions(), vec![0, 0]);
    }

    #[test]
    fn dense_messages_do_not_double_count() {
        let r = SelectionResult::new(
            SparseGradient::zeros(10),
            vec![(0..10).collect()],
            vec![10],
            10,
            false,
            false,
        );
        assert_eq!(r.uplink_scalars(0), 10);
        assert_eq!(r.max_uplink_scalars(), 10);
        assert_eq!(r.downlink_scalars(), 10);
        assert_eq!(r.contributions(), vec![10]);
    }

    #[test]
    fn aggregate_selected_weights_and_masks() {
        let uploads = vec![
            ClientUpload::new(0, 0.75, vec![(1, 4.0), (2, 1.0)]),
            ClientUpload::new(1, 0.25, vec![(1, -4.0), (3, 8.0)]),
        ];
        let mut scratch = SelectionScratch::new();
        let (agg, resets) = aggregate_selected_into(&uploads, &[1, 3], 5, &mut scratch);
        // b_1 = 0.75*4 + 0.25*(-4) = 2.0 ; b_3 = 0.25*8 = 2.0 ; index 2 excluded.
        assert_eq!(agg.get(1), 2.0);
        assert_eq!(agg.get(3), 2.0);
        assert!(!agg.contains(2));
        assert_eq!(resets[0], vec![1]);
        assert_eq!(resets[1], vec![1, 3]);
    }

    #[test]
    fn aggregate_selected_with_no_uploads() {
        let mut scratch = SelectionScratch::new();
        let (agg, resets) = aggregate_selected_into(&[], &[0, 1], 4, &mut scratch);
        assert_eq!(agg.nnz(), 2);
        assert_eq!(agg.get(0), 0.0);
        assert!(resets.is_empty());
    }

    #[test]
    fn aggregate_scratch_reuse_is_stateless() {
        let uploads = vec![ClientUpload::new(0, 1.0, vec![(0, 1.0), (2, 2.0)])];
        let mut scratch = SelectionScratch::new();
        let first = aggregate_selected_into(&uploads, &[0, 2], 3, &mut scratch);
        let second = aggregate_selected_into(&uploads, &[0, 2], 3, &mut scratch);
        assert_eq!(first, second);
        // A different selected set on the same scratch must not see stale sums.
        let (agg, _) = aggregate_selected_into(&uploads, &[1], 3, &mut scratch);
        assert_eq!(agg.get(1), 0.0);
        assert!(!agg.contains(0));
    }
}
