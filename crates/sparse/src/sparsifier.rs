use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::SparseGradient;

/// What each client should upload in the current round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UploadPlan {
    /// Every client uploads the top-`k` entries of its own accumulated
    /// gradient (top-k family of sparsifiers).
    TopKOwn,
    /// Every client uploads exactly these coordinates of its accumulated
    /// gradient (periodic/random-k sparsification — the coordinate set is
    /// common to all clients and chosen by the server).
    Coordinates(Vec<usize>),
    /// Every client uploads its full accumulated gradient (send-all).
    Dense,
}

/// The uplink message of one client: `(client id, C_i / C, entries)`.
///
/// For top-k sparsifiers the entries are ranked by decreasing magnitude, which
/// is how the fairness-aware selection reads per-client prefixes `J_i^κ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientUpload {
    /// Index of the uploading client.
    pub client: usize,
    /// The client's aggregation weight `C_i / C`.
    pub weight: f64,
    /// Uploaded `(index, accumulated value)` pairs.
    pub entries: Vec<(usize, f32)>,
}

impl ClientUpload {
    /// Creates an upload message.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn new(client: usize, weight: f64, entries: Vec<(usize, f32)>) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "invalid client weight {weight}");
        Self {
            client,
            weight,
            entries,
        }
    }

    /// Number of uploaded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the upload is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the uploaded value at `index`, if present.
    pub fn value_at(&self, index: usize) -> Option<f32> {
        self.entries
            .iter()
            .find(|&&(j, _)| j == index)
            .map(|&(_, v)| v)
    }
}

/// Result of the server-side selection and aggregation step of one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionResult {
    /// The aggregated sparse gradient `B = {(j, b_j)}` broadcast to clients.
    pub aggregated: SparseGradient,
    /// Per client: the indices `J ∩ J_i` whose accumulator entries must be
    /// reset (Lines 16–17 of Algorithm 1).
    pub reset_indices: Vec<Vec<usize>>,
    /// Per client: how many of its uploaded elements were used in the
    /// aggregate (`|J ∩ J_i|`). This is the quantity whose CDF the paper
    /// plots in Fig. 4 (right).
    pub contributions: Vec<usize>,
    /// Per client: number of gradient elements it uploaded this round.
    pub uplink_elements: Vec<usize>,
    /// Number of gradient elements broadcast to every client.
    pub downlink_elements: usize,
    /// Whether uplink messages carry explicit indices alongside values
    /// (`true` for sparse messages, `false` for dense full-vector messages).
    pub uplink_indexed: bool,
    /// Whether the downlink message carries explicit indices.
    pub downlink_indexed: bool,
}

impl SelectionResult {
    /// Scalars transmitted on the uplink by client `i` (values plus indices
    /// when the message is indexed). This is what the normalized time model
    /// charges for.
    pub fn uplink_scalars(&self, client: usize) -> usize {
        let n = self.uplink_elements[client];
        if self.uplink_indexed {
            2 * n
        } else {
            n
        }
    }

    /// Largest per-client uplink scalar count (clients transmit in parallel,
    /// so the slowest link determines the round's uplink time).
    pub fn max_uplink_scalars(&self) -> usize {
        (0..self.uplink_elements.len())
            .map(|i| self.uplink_scalars(i))
            .max()
            .unwrap_or(0)
    }

    /// Scalars transmitted on the downlink to each client.
    pub fn downlink_scalars(&self) -> usize {
        if self.downlink_indexed {
            2 * self.downlink_elements
        } else {
            self.downlink_elements
        }
    }
}

/// A gradient sparsification method: decides what clients upload and how the
/// server selects/aggregates the downlink message.
///
/// Implementations are stateless selection logic (all per-round state lives in
/// the FL simulator), which keeps them trivially reusable both inside the
/// simulator and in the unit/property tests of this crate.
pub trait Sparsifier: Send + Sync + std::fmt::Debug {
    /// Human-readable method name used in reports (e.g. `"FAB-top-k"`).
    fn name(&self) -> &'static str;

    /// Decides what clients upload this round.
    ///
    /// `dim` is the model dimension `D` and `k` the current sparsity degree.
    /// The RNG is used by randomized plans (periodic-k).
    fn upload_plan(&self, dim: usize, k: usize, rng: &mut dyn RngCore) -> UploadPlan;

    /// Server-side selection: from the client uploads, produce the aggregated
    /// sparse gradient, the per-client reset sets and the communication
    /// accounting.
    ///
    /// # Panics
    ///
    /// Implementations panic if an upload references an index `>= dim`.
    fn select(&self, uploads: &[ClientUpload], dim: usize, k: usize) -> SelectionResult;
}

/// Aggregates uploaded values for a set of selected indices:
/// `b_j = Σ_i weight_i · a_ij · Il[j ∈ J_i]` (Line 10 of Algorithm 1).
///
/// Also returns, per client, the subset of `selected` the client uploaded
/// (`J ∩ J_i`) — used both for accumulator resets and for the fairness CDF.
pub(crate) fn aggregate_selected(
    uploads: &[ClientUpload],
    selected: &[usize],
    dim: usize,
) -> (SparseGradient, Vec<Vec<usize>>) {
    use std::collections::HashMap;
    let selected_set: std::collections::HashSet<usize> = selected.iter().copied().collect();
    let mut sums: HashMap<usize, f64> = selected.iter().map(|&j| (j, 0.0)).collect();
    let mut reset_indices = vec![Vec::new(); uploads.len()];
    for (slot, upload) in uploads.iter().enumerate() {
        for &(j, v) in &upload.entries {
            assert!(j < dim, "upload index {j} out of range (dim {dim})");
            if selected_set.contains(&j) {
                *sums.get_mut(&j).expect("initialised above") += upload.weight * v as f64;
                reset_indices[slot].push(j);
            }
        }
    }
    let entries: Vec<(usize, f32)> = sums.into_iter().map(|(j, v)| (j, v as f32)).collect();
    (SparseGradient::from_entries(dim, entries), reset_indices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_accessors() {
        let u = ClientUpload::new(3, 0.25, vec![(1, 2.0), (4, -1.0)]);
        assert_eq!(u.len(), 2);
        assert!(!u.is_empty());
        assert_eq!(u.value_at(4), Some(-1.0));
        assert_eq!(u.value_at(0), None);
    }

    #[test]
    #[should_panic]
    fn negative_weight_panics() {
        let _ = ClientUpload::new(0, -0.1, vec![]);
    }

    #[test]
    fn selection_result_scalar_accounting() {
        let r = SelectionResult {
            aggregated: SparseGradient::zeros(10),
            reset_indices: vec![vec![], vec![]],
            contributions: vec![0, 0],
            uplink_elements: vec![3, 5],
            downlink_elements: 4,
            uplink_indexed: true,
            downlink_indexed: true,
        };
        assert_eq!(r.uplink_scalars(0), 6);
        assert_eq!(r.uplink_scalars(1), 10);
        assert_eq!(r.max_uplink_scalars(), 10);
        assert_eq!(r.downlink_scalars(), 8);
    }

    #[test]
    fn dense_messages_do_not_double_count() {
        let r = SelectionResult {
            aggregated: SparseGradient::zeros(10),
            reset_indices: vec![vec![]],
            contributions: vec![10],
            uplink_elements: vec![10],
            downlink_elements: 10,
            uplink_indexed: false,
            downlink_indexed: false,
        };
        assert_eq!(r.uplink_scalars(0), 10);
        assert_eq!(r.downlink_scalars(), 10);
    }

    #[test]
    fn aggregate_selected_weights_and_masks() {
        let uploads = vec![
            ClientUpload::new(0, 0.75, vec![(1, 4.0), (2, 1.0)]),
            ClientUpload::new(1, 0.25, vec![(1, -4.0), (3, 8.0)]),
        ];
        let (agg, resets) = aggregate_selected(&uploads, &[1, 3], 5);
        // b_1 = 0.75*4 + 0.25*(-4) = 2.0 ; b_3 = 0.25*8 = 2.0 ; index 2 excluded.
        assert_eq!(agg.get(1), 2.0);
        assert_eq!(agg.get(3), 2.0);
        assert!(!agg.contains(2));
        assert_eq!(resets[0], vec![1]);
        assert_eq!(resets[1], vec![1, 3]);
    }

    #[test]
    fn aggregate_selected_with_no_uploads() {
        let (agg, resets) = aggregate_selected(&[], &[0, 1], 4);
        assert_eq!(agg.nnz(), 2);
        assert_eq!(agg.get(0), 0.0);
        assert!(resets.is_empty());
    }
}
