use agsfl_exec::Executor;
use rand::RngCore;

use crate::scratch::SelectionScratch;
use crate::shard::{result_from_selected_sharded, ShardedScratch};
use crate::sparsifier::{
    result_from_selected, ClientUpload, SelectionResult, Sparsifier, UploadPlan,
};

/// Always-send-all: clients upload their full accumulated gradients and the
/// server broadcasts the full aggregated gradient every round.
///
/// This is the no-sparsification upper baseline of Fig. 4: it makes the most
/// learning progress per round but pays the full communication cost every
/// round. Because every coordinate is exchanged, messages are dense and carry
/// no index overhead.
///
/// # Examples
///
/// ```
/// use agsfl_sparse::{SendAll, Sparsifier, UploadPlan};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// assert_eq!(SendAll::new().upload_plan(100, 5, &mut rng), UploadPlan::Dense);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendAll;

impl SendAll {
    /// Creates the sparsifier.
    pub fn new() -> Self {
        Self
    }
}

impl Sparsifier for SendAll {
    fn name(&self) -> &'static str {
        "Always send all"
    }

    fn upload_plan(&self, _dim: usize, _k: usize, _rng: &mut dyn RngCore) -> UploadPlan {
        UploadPlan::Dense
    }

    fn select_into(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        _k: usize,
        scratch: &mut SelectionScratch,
    ) -> SelectionResult {
        scratch.selected.clear();
        scratch.selected.extend(0..dim);
        let selected = std::mem::take(&mut scratch.selected);
        let result = result_from_selected(uploads, &selected, dim, scratch, false);
        scratch.selected = selected;
        result
    }

    fn select_parallel(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        scratch: &mut ShardedScratch,
        exec: &Executor,
    ) -> SelectionResult {
        if !exec.should_parallelize(uploads.len()) {
            return self.select_into(uploads, dim, k, scratch.serial_scratch());
        }
        scratch.stripe(dim, exec.threads());
        scratch.selected.clear();
        scratch.selected.extend(0..dim);
        result_from_selected_sharded(uploads, dim, scratch, exec, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dense_upload(client: usize, weight: f64, values: &[f32]) -> ClientUpload {
        ClientUpload::new(
            client,
            weight,
            values.iter().enumerate().map(|(j, &v)| (j, v)).collect(),
        )
    }

    #[test]
    fn aggregates_every_coordinate() {
        let uploads = vec![
            dense_upload(0, 0.5, &[1.0, 2.0, 3.0]),
            dense_upload(1, 0.5, &[3.0, 2.0, 1.0]),
        ];
        let result = SendAll::new().select(&uploads, 3, 1);
        assert_eq!(result.downlink_elements, 3);
        assert_eq!(result.aggregated.to_dense(), vec![2.0, 2.0, 2.0]);
        assert_eq!(result.contributions(), vec![3, 3]);
        assert!(!result.uplink_indexed());
        assert!(!result.downlink_indexed);
    }

    #[test]
    fn scalar_accounting_is_dense() {
        let uploads = vec![dense_upload(0, 1.0, &[1.0, 2.0, 3.0, 4.0])];
        let result = SendAll::new().select(&uploads, 4, 2);
        assert_eq!(result.uplink_scalars(0), 4);
        assert_eq!(result.downlink_scalars(), 4);
    }

    #[test]
    fn name_and_plan() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(SendAll::new().name(), "Always send all");
        assert_eq!(
            SendAll::new().upload_plan(7, 3, &mut rng),
            UploadPlan::Dense
        );
    }

    #[test]
    fn reset_covers_all_uploaded_indices() {
        let uploads = vec![dense_upload(0, 1.0, &[0.5, -0.5])];
        let result = SendAll::new().select(&uploads, 2, 1);
        assert_eq!(result.reset_indices[0], vec![0, 1]);
    }
}
