use agsfl_exec::Executor;
use rand::seq::SliceRandom;
use rand::RngCore;

use crate::scratch::SelectionScratch;
use crate::shard::{result_from_selected_sharded, ShardedScratch};
use crate::sparsifier::{
    result_from_selected, ClientUpload, SelectionResult, Sparsifier, UploadPlan,
};

/// Periodic / random-k sparsification.
///
/// Every round the server picks `k` coordinates uniformly at random (the same
/// set for every client); clients upload their accumulated values at exactly
/// those coordinates and the server aggregates and broadcasts them. Over
/// enough rounds every coordinate is visited, which is the "periodic
/// averaging" family of GS methods (\[8\], \[30\] in the paper). The random
/// choice ignores gradient magnitudes, which is why it generally loses to
/// top-k selection.
///
/// # Examples
///
/// ```
/// use agsfl_sparse::{PeriodicK, Sparsifier, UploadPlan};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let periodic = PeriodicK::new();
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// match periodic.upload_plan(100, 5, &mut rng) {
///     UploadPlan::Coordinates(coords) => assert_eq!(coords.len(), 5),
///     other => panic!("unexpected plan {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeriodicK;

impl PeriodicK {
    /// Creates the sparsifier.
    pub fn new() -> Self {
        Self
    }
}

impl Sparsifier for PeriodicK {
    fn name(&self) -> &'static str {
        "Periodic-k"
    }

    fn upload_plan(&self, dim: usize, k: usize, rng: &mut dyn RngCore) -> UploadPlan {
        let k = k.min(dim);
        // Sample k distinct coordinates uniformly at random.
        let mut pool: Vec<usize> = (0..dim).collect();
        let (chosen, _) = pool.partial_shuffle(rng, k);
        let mut coords = chosen.to_vec();
        coords.sort_unstable();
        UploadPlan::Coordinates(coords)
    }

    fn select_into(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        _k: usize,
        scratch: &mut SelectionScratch,
    ) -> SelectionResult {
        // Every client uploaded the same coordinate set; the selection is that
        // set (taken from the first upload; empty if there are no clients).
        // The server chose the coordinates sorted and distinct
        // (`UploadPlan::Coordinates`), but sort/dedup defensively for direct
        // callers handing in arbitrary uploads. Duplicate coordinates are
        // out of contract: the seed implementation double-counted them in
        // `downlink_elements`; this path canonicalizes them away instead.
        scratch.selected.clear();
        if let Some(first) = uploads.first() {
            scratch
                .selected
                .extend(first.entries.iter().map(|&(j, _)| j));
        }
        scratch.selected.sort_unstable();
        scratch.selected.dedup();

        let selected = std::mem::take(&mut scratch.selected);
        let result = result_from_selected(uploads, &selected, dim, scratch, true);
        scratch.selected = selected;
        result
    }

    fn select_parallel(
        &self,
        uploads: &[ClientUpload],
        dim: usize,
        k: usize,
        scratch: &mut ShardedScratch,
        exec: &Executor,
    ) -> SelectionResult {
        if !exec.should_parallelize(uploads.len()) {
            return self.select_into(uploads, dim, k, scratch.serial_scratch());
        }
        scratch.stripe(dim, exec.threads());
        // Same canonicalization as the serial path: the common coordinate
        // set, sorted and deduplicated.
        scratch.selected.clear();
        if let Some(first) = uploads.first() {
            scratch
                .selected
                .extend(first.entries.iter().map(|&(j, _)| j));
        }
        scratch.selected.sort_unstable();
        scratch.selected.dedup();
        result_from_selected_sharded(uploads, dim, scratch, exec, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn plan_has_k_distinct_sorted_coordinates() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        match PeriodicK::new().upload_plan(50, 8, &mut rng) {
            UploadPlan::Coordinates(coords) => {
                assert_eq!(coords.len(), 8);
                assert!(coords.windows(2).all(|w| w[0] < w[1]));
                assert!(coords.iter().all(|&c| c < 50));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn plan_clamps_k_to_dim() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        match PeriodicK::new().upload_plan(3, 10, &mut rng) {
            UploadPlan::Coordinates(coords) => assert_eq!(coords, vec![0, 1, 2]),
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn coordinates_vary_across_rounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = PeriodicK::new().upload_plan(1000, 10, &mut rng);
        let b = PeriodicK::new().upload_plan(1000, 10, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn select_aggregates_common_coordinates() {
        let uploads = vec![
            ClientUpload::new(0, 0.5, vec![(2, 1.0), (7, -2.0)]),
            ClientUpload::new(1, 0.5, vec![(2, 3.0), (7, 2.0)]),
        ];
        let result = PeriodicK::new().select(&uploads, 10, 2);
        assert_eq!(result.downlink_elements, 2);
        assert!((result.aggregated.get(2) - 2.0).abs() < 1e-6);
        assert!((result.aggregated.get(7) - 0.0).abs() < 1e-6);
        assert_eq!(result.contributions(), vec![2, 2]);
    }

    #[test]
    fn empty_uploads_select_nothing() {
        let result = PeriodicK::new().select(&[], 10, 4);
        assert!(result.aggregated.is_empty());
        assert_eq!(result.downlink_elements, 0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(PeriodicK::new().name(), "Periodic-k");
    }
}
