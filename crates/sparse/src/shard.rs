//! Sharded (multi-threaded) server selection: the per-worker
//! [`ScratchShard`]s behind [`Sparsifier::select_parallel`] and their
//! deterministic merge.
//!
//! # Why sharding by dimension stripe
//!
//! [`ShardedScratch`] splits the model dimension `0..D` into contiguous
//! stripes and gives each worker thread exclusive ownership of one
//! [`ScratchShard`] — its stripe's epoch-stamped rank/sum buffers plus the
//! stripe-local index lists. Every worker sweeps the *full* upload list but
//! only touches entries whose index falls inside its stripe. Compared to
//! splitting the uploads across workers, striping the dimension is what
//! makes the parallel result **bit-identical** to the serial
//! [`Sparsifier::select_into`] path, for any shard count:
//!
//! * **Floating-point sums never reassociate.** The aggregated value of
//!   coordinate `j` is a left-fold of `weight_i · a_ij` in client order.
//!   Each stripe worker visits uploads in exactly that order, so it
//!   computes the serial fold verbatim — had we split the *uploads*
//!   instead, each worker would hold a partial sum and the merge would add
//!   partials in a different association, which is not bit-stable in IEEE
//!   arithmetic.
//! * **Everything that does cross shards merges exactly.** Min-rank
//!   histograms are integer counts (summed elementwise), the selected
//!   downlink set is a union of disjoint stripe-local sets (concatenated
//!   and sorted), and per-client reset lists are reassembled from entry
//!   *positions* (merged ascending, restoring the serial upload-order
//!   walk). None of these merges involves floating point.
//!
//! The result is the repository's load-bearing determinism invariant —
//! identical seeds give identical runs — independent of thread count,
//! shard count and OS scheduling, by construction rather than by test
//! luck. The reference-equivalence proptests in
//! `tests/select_equivalence.rs` still pin it for 1–8 shards against the
//! seed implementations in [`crate::reference`].
//!
//! # Thread safety
//!
//! Workers receive disjoint `&mut ScratchShard` borrows (plus a shared
//! `&[ClientUpload]`), so the borrow checker proves non-interference; the
//! crate forbids `unsafe`. Cross-phase coordination (e.g. FAB's `κ`
//! decision between the rank pass and the union marking) happens over
//! `std::sync::mpsc` channels carrying small owned values, never shared
//! mutable state. Worker panics propagate to the caller because
//! [`std::thread::scope`] re-raises them on join; a coordination partner
//! that observes a closed channel simply returns and lets the original
//! panic surface.
//!
//! [`Sparsifier::select_into`]: crate::Sparsifier::select_into
//! [`Sparsifier::select_parallel`]: crate::Sparsifier::select_parallel

use std::sync::mpsc;

use agsfl_exec::Executor;

use crate::scratch::{note_demand_and_shrink, SelectionScratch, StampedBuf};
use crate::sparsifier::{ClientUpload, SelectionResult};
use crate::SparseGradient;

/// A cached in-stripe upload entry: which upload (`slot`), which position
/// inside it (`pos` — the magnitude rank for top-k uploads), and the
/// `(index, value)` pair. Workers that sweep the full upload list once can
/// record their stripe's entries and run every later phase over the cache
/// (`O(U/S)` instead of re-scanning all `U` entries).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CachedEntry {
    pub(crate) slot: u32,
    pub(crate) pos: u32,
    pub(crate) j: usize,
    pub(crate) v: f32,
}

/// One worker's slice of the selection workspace: the epoch-stamped
/// rank/sum buffers for a contiguous stripe `lo..hi` of the model
/// dimension, plus stripe-local scratch lists.
///
/// A shard only ever stores state for indices inside its stripe
/// (`contains`), addressed relative to `lo`, so `S` shards together use
/// the same memory one [`SelectionScratch`] would.
#[derive(Debug, Clone, Default)]
pub struct ScratchShard {
    /// Stripe start (inclusive).
    lo: usize,
    /// Stripe end (exclusive).
    hi: usize,
    /// Per-index minimum upload rank (or membership), stripe-local slots.
    ranks: StampedBuf<usize>,
    /// Per-index weighted aggregation sums, stripe-local slots.
    sums: StampedBuf<f64>,
    /// Stripe-local histogram of minimum ranks (FAB).
    pub(crate) rank_counts: Vec<usize>,
    /// Stripe-local distinct indices in first-appearance order (FUB).
    pub(crate) touched: Vec<usize>,
    /// Stripe-local selected indices (global index values).
    pub(crate) selected: Vec<usize>,
    /// Cache of this stripe's upload entries in serial `(slot, pos)` scan
    /// order, recorded by a worker's first full sweep.
    pub(crate) entries: Vec<CachedEntry>,
    /// Per upload slot: entry positions this stripe matched during its
    /// aggregation/membership sweep, ascending. Merged across shards into
    /// the per-client reset lists by [`merge_reset_positions`].
    pub(crate) reset_positions: Vec<Vec<usize>>,
    /// Decaying demand marks for the stripe-local lists, in field order
    /// (`rank_counts`, `touched`, `selected`, `entries`); see
    /// [`ScratchShard::shrink_to_recent_demand`].
    list_demand: [usize; 4],
}

impl ScratchShard {
    fn width(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether global index `j` belongs to this stripe.
    #[inline]
    pub(crate) fn contains(&self, j: usize) -> bool {
        j >= self.lo && j < self.hi
    }

    #[inline]
    fn local(&self, j: usize) -> usize {
        debug_assert!(
            self.contains(j),
            "index {j} outside stripe {}..{}",
            self.lo,
            self.hi
        );
        j - self.lo
    }

    /// Starts a new rank generation covering the stripe.
    pub(crate) fn begin_ranks(&mut self) {
        let w = self.width();
        self.ranks.begin(w);
    }

    /// Starts a new sums generation covering the stripe.
    pub(crate) fn begin_sums(&mut self) {
        let w = self.width();
        self.sums.begin(w);
    }

    /// Starts a membership generation (shares the ranks buffer, exactly as
    /// [`SelectionScratch::begin_members`] does).
    pub(crate) fn begin_members(&mut self) {
        self.begin_ranks();
    }

    /// Records that `j` was uploaded at `rank`, keeping the stripe-local
    /// minimum; returns the previously recorded rank.
    #[inline]
    pub(crate) fn observe_rank(&mut self, j: usize, rank: usize) -> Option<usize> {
        let l = self.local(j);
        self.ranks.observe_min(l, rank)
    }

    /// The recorded minimum rank of `j`, if observed this generation.
    #[inline]
    pub(crate) fn min_rank(&self, j: usize) -> Option<usize> {
        self.ranks.get(self.local(j))
    }

    /// Adds `j` to the membership set.
    #[inline]
    pub(crate) fn add_member(&mut self, j: usize) {
        let l = self.local(j);
        self.ranks.set(l, 0);
    }

    /// Whether `j` is in the membership set.
    #[inline]
    pub(crate) fn is_member(&self, j: usize) -> bool {
        self.ranks.is_set(self.local(j))
    }

    /// Marks `j` for aggregation (sum starts at zero).
    #[inline]
    pub(crate) fn mark_selected(&mut self, j: usize) {
        let l = self.local(j);
        self.sums.set(l, 0.0);
    }

    /// Whether `j` is marked for aggregation.
    #[inline]
    pub(crate) fn is_marked(&self, j: usize) -> bool {
        self.sums.is_set(self.local(j))
    }

    /// Adds `v` to the sum of `j` if marked; returns whether it was.
    #[inline]
    pub(crate) fn accumulate_if_marked(&mut self, j: usize, v: f64) -> bool {
        let l = self.local(j);
        self.sums.add_if_set(l, v)
    }

    /// The accumulated sum of a marked index.
    #[inline]
    pub(crate) fn sum(&self, j: usize) -> f64 {
        self.sums.get_unchecked(self.local(j))
    }

    /// Clears the per-slot reset-position lists, sized for `n_clients`.
    pub(crate) fn reset_positions_for(&mut self, n_clients: usize) {
        self.reset_positions.truncate(n_clients);
        for v in &mut self.reset_positions {
            v.clear();
        }
        if self.reset_positions.len() < n_clients {
            self.reset_positions.resize_with(n_clients, Vec::new);
        }
    }

    /// Aggregation sweep over all uploads for this stripe: accumulates
    /// `weight · value` into every *marked* in-stripe coordinate (in client
    /// order — the serial fold) and records the matching entry positions
    /// per upload slot for the reset-list merge.
    pub(crate) fn sweep_marked(&mut self, uploads: &[ClientUpload]) {
        self.reset_positions_for(uploads.len());
        for (slot, upload) in uploads.iter().enumerate() {
            let w = upload.weight;
            for (pos, &(j, v)) in upload.entries.iter().enumerate() {
                if !self.contains(j) {
                    continue;
                }
                if self.accumulate_if_marked(j, w * v as f64) {
                    self.reset_positions[slot].push(pos);
                }
            }
        }
    }

    /// [`ScratchShard::sweep_marked`] over the entry cache recorded by an
    /// earlier full sweep: same accumulation order (the cache preserves the
    /// serial `(slot, pos)` scan order), `O(U/S)` work.
    pub(crate) fn sweep_marked_cached(&mut self, uploads: &[ClientUpload]) {
        self.reset_positions_for(uploads.len());
        for i in 0..self.entries.len() {
            let e = self.entries[i];
            let w = uploads[e.slot as usize].weight;
            if self.accumulate_if_marked(e.j, w * e.v as f64) {
                self.reset_positions[e.slot as usize].push(e.pos as usize);
            }
        }
    }

    /// Discovers and aggregates **every** in-stripe coordinate from the
    /// entry cache in serial `(slot, pos)` scan order: first appearance
    /// marks the coordinate (recorded in `touched`), every appearance
    /// accumulates `weight · value` — the client-order fold of the serial
    /// FUB/unidirectional pass, `O(U/S)` per worker after a bucket
    /// exchange.
    pub(crate) fn aggregate_union_cached(&mut self, uploads: &[ClientUpload]) {
        self.begin_sums();
        self.touched.clear();
        for i in 0..self.entries.len() {
            let e = self.entries[i];
            if !self.is_marked(e.j) {
                self.mark_selected(e.j);
                self.touched.push(e.j);
            }
            self.accumulate_if_marked(e.j, uploads[e.slot as usize].weight * e.v as f64);
        }
    }

    /// Membership sweep over the entry cache: records, per upload slot, the
    /// positions of cached entries in the current membership set (FUB's
    /// reset pass; the sums generation is untouched). The cache's
    /// `(slot, pos)` order keeps every per-slot position list ascending,
    /// as [`merge_reset_positions`] requires.
    pub(crate) fn sweep_members_cached(&mut self, n_clients: usize) {
        self.reset_positions_for(n_clients);
        for i in 0..self.entries.len() {
            let e = self.entries[i];
            if self.is_member(e.j) {
                self.reset_positions[e.slot as usize].push(e.pos as usize);
            }
        }
    }

    /// Applies the decaying-demand shrink policy to the stripe-local lists
    /// (the entry cache is the big one — it scales with `cohort · k / S`),
    /// using their current lengths as the demand observation. The per-slot
    /// reset-position lists already release excess slots in
    /// [`ScratchShard::reset_positions_for`] (truncation drops the inner
    /// vectors). The stamped stripe buffers shrink on their own in
    /// `begin_*()` when the stripe width demand drops.
    fn shrink_to_recent_demand(&mut self) {
        let used = self.rank_counts.len();
        note_demand_and_shrink(&mut self.rank_counts, &mut self.list_demand[0], used);
        let used = self.touched.len();
        note_demand_and_shrink(&mut self.touched, &mut self.list_demand[1], used);
        let used = self.selected.len();
        note_demand_and_shrink(&mut self.selected, &mut self.list_demand[2], used);
        let used = self.entries.len();
        note_demand_and_shrink(&mut self.entries, &mut self.list_demand[3], used);
    }
}

/// A bucket-exchange channel pair per stripe worker (the "shuffle" wiring
/// of the map–shuffle pass).
pub(crate) type BucketChannels = (
    Vec<mpsc::Sender<(usize, Vec<CachedEntry>)>>,
    Vec<mpsc::Receiver<(usize, Vec<CachedEntry>)>>,
);

/// Creates one bucket channel per stripe worker.
pub(crate) fn bucket_channels(shard_count: usize) -> BucketChannels {
    let mut txs = Vec::with_capacity(shard_count);
    let mut rxs = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let (tx, rx) = mpsc::channel();
        txs.push(tx);
        rxs.push(rx);
    }
    (txs, rxs)
}

/// The map–shuffle bucket exchange run by stripe worker `w`: buckets the
/// worker's contiguous *upload slice* by stripe, exchanges buckets over the
/// channels, and rebuilds this stripe's entry cache in `entries` — so every
/// upload entry is scanned once **in total** across workers instead of once
/// per worker.
///
/// Each bucket preserves the serial `(slot, pos)` scan order, and the
/// received buckets are concatenated in sender order (sender `t` covers the
/// slot chunk `t`), so the cache lists the stripe's entries exactly in the
/// order the serial sweep would visit them — the property every cached
/// sweep's floating-point fold relies on.
///
/// The bucketing pass is the one place every upload entry is scanned, so
/// the serial path's bounds check lives here: an index `>= dim` panics
/// with the canonical message (the scope re-raises it on the caller), the
/// engines that exchange entries need no separate [`validate_uploads`]
/// sweep.
///
/// Returns `false` if a peer's channel closed (the peer panicked); the
/// caller should return and let the scope re-raise the panic.
pub(crate) fn exchange_entries(
    w: usize,
    uploads: &[ClientUpload],
    dim: usize,
    width: usize,
    bucket_tx: Vec<mpsc::Sender<(usize, Vec<CachedEntry>)>>,
    my_rx: &mpsc::Receiver<(usize, Vec<CachedEntry>)>,
    entries: &mut Vec<CachedEntry>,
) -> bool {
    let shard_count = bucket_tx.len();
    let slot_chunk = uploads.len().div_ceil(shard_count);
    let lo_slot = (w * slot_chunk).min(uploads.len());
    let hi_slot = ((w + 1) * slot_chunk).min(uploads.len());
    let mut buckets: Vec<Vec<CachedEntry>> = vec![Vec::new(); shard_count];
    for (slot, upload) in uploads[lo_slot..hi_slot].iter().enumerate() {
        let slot = (lo_slot + slot) as u32;
        for (rank, &(j, v)) in upload.entries.iter().enumerate() {
            assert!(j < dim, "upload index {j} out of range (dim {dim})");
            buckets[j / width].push(CachedEntry {
                slot,
                pos: rank as u32,
                j,
                v,
            });
        }
    }
    let mut own_bucket = None;
    for (t, bucket) in buckets.into_iter().enumerate() {
        if t == w {
            own_bucket = Some(bucket);
        } else if bucket_tx[t].send((w, bucket)).is_err() {
            return false;
        }
    }
    drop(bucket_tx);
    let mut received: Vec<Option<Vec<CachedEntry>>> = (0..shard_count).map(|_| None).collect();
    received[w] = own_bucket;
    for _ in 0..shard_count - 1 {
        let Ok((from, bucket)) = my_rx.recv() else {
            return false;
        };
        received[from] = Some(bucket);
    }
    entries.clear();
    for bucket in received.into_iter().flatten() {
        entries.extend_from_slice(&bucket);
    }
    true
}

/// Reusable workspace for [`Sparsifier::select_parallel`]: per-worker
/// [`ScratchShard`]s plus the shared merge buffers and an embedded
/// [`SelectionScratch`] for the serial (one-shard) fallback.
///
/// Like [`SelectionScratch`], the workspace grows to the largest dimension
/// seen, invalidates by epoch bumps, and carries no state across calls —
/// repeated calls with the same inputs return identical results. The
/// stripe layout adapts to the executor's thread count on every call;
/// because the sharded algorithms are exact (see the [module docs]), the
/// layout never influences results.
///
/// [`Sparsifier::select_parallel`]: crate::Sparsifier::select_parallel
/// [module docs]: self
#[derive(Debug, Default)]
pub struct ShardedScratch {
    /// The per-worker stripes.
    pub(crate) shards: Vec<ScratchShard>,
    /// Stripe width of the current layout.
    pub(crate) width: usize,
    /// Serial fallback / executable-spec workspace.
    serial: SelectionScratch,
    /// Merged FAB histogram.
    pub(crate) rank_counts: Vec<usize>,
    /// The selected downlink set, sorted ascending.
    pub(crate) selected: Vec<usize>,
    /// Merged fill candidates.
    pub(crate) candidates: Vec<(usize, f32)>,
    /// Decaying demand marks for the merge buffers above, in field order
    /// (`rank_counts`, `selected`, `candidates`); see
    /// [`ShardedScratch::shrink_to_recent_demand`].
    list_demand: [usize; 3],
}

impl ShardedScratch {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The embedded serial workspace, used when the executor is serial and
    /// by [`Sparsifier::select_parallel`]'s default (fallback) method.
    ///
    /// [`Sparsifier::select_parallel`]: crate::Sparsifier::select_parallel
    pub fn serial_scratch(&mut self) -> &mut SelectionScratch {
        &mut self.serial
    }

    /// Lays out `shard_count` stripes over dimension `dim`. Stripes are
    /// `ceil(dim / shard_count)` wide; trailing empty stripes are dropped
    /// so every shard owns at least one index (unless `dim == 0`).
    pub(crate) fn stripe(&mut self, dim: usize, shard_count: usize) {
        let count = shard_count.max(1);
        let width = dim.div_ceil(count).max(1);
        let count = dim.div_ceil(width).max(1);
        self.width = width;
        if self.shards.len() != count {
            self.shards.resize_with(count, ScratchShard::default);
        }
        for (s, shard) in self.shards.iter_mut().enumerate() {
            shard.lo = (s * width).min(dim);
            shard.hi = ((s + 1) * width).min(dim);
        }
    }

    /// The shard index owning global index `j` in the current layout.
    #[inline]
    pub(crate) fn shard_of(&self, j: usize) -> usize {
        j / self.width
    }

    /// Whether `j` is marked for aggregation (routed to its shard).
    #[cfg(test)]
    pub(crate) fn is_marked(&self, j: usize) -> bool {
        self.shards[self.shard_of(j)].is_marked(j)
    }

    /// Marks `j` for aggregation (routed to its shard).
    #[cfg(test)]
    pub(crate) fn mark_selected(&mut self, j: usize) {
        let s = self.shard_of(j);
        self.shards[s].mark_selected(j);
    }

    /// The accumulated sum of a marked index (routed to its shard).
    #[inline]
    pub(crate) fn sum(&self, j: usize) -> f64 {
        self.shards[self.shard_of(j)].sum(j)
    }

    /// Concatenates the stripe-local selected lists (stripe order) into
    /// `self.selected` and sorts ascending. Because stripes partition the
    /// dimension, the result equals the serial path's sorted selection.
    pub(crate) fn gather_selected(&mut self) {
        self.selected.clear();
        for shard in &self.shards {
            self.selected.extend_from_slice(&shard.selected);
        }
        self.selected.sort_unstable();
    }

    /// Applies the decaying-demand shrink policy to every reusable list in
    /// the workspace — the merge buffers, each stripe's local lists (the
    /// per-stripe entry caches are the dominant `O(cohort · k)` term) and
    /// the embedded serial workspace — using current lengths as the demand
    /// observation.
    ///
    /// Call once per round after selection. A workspace that served a much
    /// larger round (bigger cohort, wider union, more uploads) releases
    /// that memory after a few smaller rounds instead of pinning its
    /// high-water mark forever; in steady state (stable round footprint)
    /// the decayed demand tracks the observed sizes and no allocation or
    /// release ever happens, preserving the allocation-free hot path.
    pub fn shrink_to_recent_demand(&mut self) {
        let used = self.rank_counts.len();
        note_demand_and_shrink(&mut self.rank_counts, &mut self.list_demand[0], used);
        let used = self.selected.len();
        note_demand_and_shrink(&mut self.selected, &mut self.list_demand[1], used);
        let used = self.candidates.len();
        note_demand_and_shrink(&mut self.candidates, &mut self.list_demand[2], used);
        for shard in &mut self.shards {
            shard.shrink_to_recent_demand();
        }
        self.serial.shrink_to_recent_demand();
    }

    /// Emits the `(index, sum)` entries for the sorted selected set.
    pub(crate) fn emit_entries(&self) -> Vec<(usize, f32)> {
        debug_assert!(self.selected.windows(2).all(|w| w[0] < w[1]));
        self.selected
            .iter()
            .map(|&j| (j, self.sum(j) as f32))
            .collect()
    }
}

/// Panics (like the serial sweeps do) if any upload references an index
/// `>= dim`. Used by the engines whose stripe workers sweep the raw upload
/// list and simply skip out-of-stripe indices (periodic-k/send-all via
/// [`result_from_selected_sharded`]) — run on the coordinating thread,
/// overlapped with the workers, so the error is not masked. The
/// bucket-exchange engines (FAB/FUB/unidirectional) don't need it: their
/// single bucketing scan asserts every index in [`exchange_entries`].
pub(crate) fn validate_uploads(uploads: &[ClientUpload], dim: usize) {
    for upload in uploads {
        for &(j, _) in &upload.entries {
            assert!(j < dim, "upload index {j} out of range (dim {dim})");
        }
    }
}

/// Reassembles the per-client reset lists from the shards' entry-position
/// records: for every upload slot, the positions matched by each stripe
/// are merged ascending and mapped back to indices — exactly the list the
/// serial upload-order sweep would have produced.
pub(crate) fn merge_reset_positions(
    uploads: &[ClientUpload],
    shards: &[ScratchShard],
) -> Vec<Vec<usize>> {
    let mut reset_indices: Vec<Vec<usize>> = Vec::with_capacity(uploads.len());
    let mut positions: Vec<usize> = Vec::new();
    for (slot, upload) in uploads.iter().enumerate() {
        positions.clear();
        for shard in shards {
            if let Some(p) = shard.reset_positions.get(slot) {
                positions.extend_from_slice(p);
            }
        }
        // Each stripe's positions are ascending; the union across stripes
        // is duplicate-free (stripes are disjoint), so one sort restores
        // the serial entry order.
        positions.sort_unstable();
        reset_indices.push(positions.iter().map(|&p| upload.entries[p].0).collect());
    }
    reset_indices
}

/// Sharded equivalent of [`crate::sparsifier::result_from_selected`]: given
/// the sorted, duplicate-free downlink set in `sharded.selected`, marks it
/// across stripes, runs the striped aggregation sweep and reassembles the
/// reset lists. Used by the sparsifiers whose selection itself is trivial
/// (periodic-k, send-all).
pub(crate) fn result_from_selected_sharded(
    uploads: &[ClientUpload],
    dim: usize,
    sharded: &mut ShardedScratch,
    exec: &Executor,
    downlink_indexed: bool,
) -> SelectionResult {
    debug_assert!(exec.threads() > 1);
    let ShardedScratch {
        shards, selected, ..
    } = sharded;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards.len());
        let mut rest: &[usize] = selected;
        for shard in shards.iter_mut() {
            let cut = rest.partition_point(|&j| j < shard.hi);
            let (mine, tail) = rest.split_at(cut);
            rest = tail;
            handles.push(scope.spawn(move || {
                shard.begin_sums();
                for &j in mine {
                    assert!(j < dim, "selected index {j} out of range (dim {dim})");
                    shard.mark_selected(j);
                }
                shard.sweep_marked(uploads);
            }));
        }
        // Overlap the range check with the workers' sweep.
        validate_uploads(uploads, dim);
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    let reset_indices = merge_reset_positions(uploads, &sharded.shards);
    let entries = sharded.emit_entries();
    SelectionResult::new(
        SparseGradient::from_sorted_entries(dim, entries),
        reset_indices,
        uploads.iter().map(ClientUpload::len).collect(),
        sharded.selected.len(),
        downlink_indexed,
        downlink_indexed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_layout_partitions_dimension() {
        let mut sharded = ShardedScratch::new();
        sharded.stripe(10, 4);
        let spans: Vec<(usize, usize)> = sharded.shards.iter().map(|s| (s.lo, s.hi)).collect();
        assert_eq!(spans, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        for j in 0..10 {
            let s = sharded.shard_of(j);
            assert!(sharded.shards[s].contains(j), "j={j} routed to {s}");
        }
    }

    #[test]
    fn stripe_with_more_shards_than_indices() {
        let mut sharded = ShardedScratch::new();
        sharded.stripe(3, 8);
        assert_eq!(sharded.shards.len(), 3);
        assert!(sharded.shards.iter().all(|s| s.width() == 1));
    }

    #[test]
    fn restriping_does_not_leak_marks() {
        let mut sharded = ShardedScratch::new();
        sharded.stripe(16, 2);
        for shard in &mut sharded.shards {
            shard.begin_sums();
        }
        sharded.mark_selected(9);
        assert!(sharded.is_marked(9));
        // Re-stripe to a different layout: fresh generations, nothing leaks.
        sharded.stripe(16, 4);
        for shard in &mut sharded.shards {
            shard.begin_sums();
        }
        for j in 0..16 {
            assert!(!sharded.is_marked(j), "stale mark leaked at {j}");
        }
    }

    #[test]
    fn shard_accumulates_only_in_stripe() {
        let mut sharded = ShardedScratch::new();
        sharded.stripe(8, 2);
        let uploads = vec![ClientUpload::new(0, 0.5, vec![(1, 2.0), (6, 4.0)])];
        for shard in &mut sharded.shards {
            shard.begin_sums();
        }
        sharded.mark_selected(1);
        sharded.mark_selected(6);
        for shard in &mut sharded.shards {
            shard.sweep_marked(&uploads);
        }
        assert_eq!(sharded.sum(1), 1.0);
        assert_eq!(sharded.sum(6), 2.0);
        let resets = merge_reset_positions(&uploads, &sharded.shards);
        assert_eq!(resets, vec![vec![1, 6]]);
    }

    #[test]
    fn merged_reset_positions_restore_entry_order() {
        // Entries deliberately not index-sorted: positions, not indices,
        // define the serial order.
        let uploads = vec![ClientUpload::new(
            0,
            1.0,
            vec![(6, 1.0), (1, 2.0), (7, 3.0)],
        )];
        let mut sharded = ShardedScratch::new();
        sharded.stripe(8, 2);
        for shard in &mut sharded.shards {
            shard.begin_sums();
        }
        for j in [1, 6, 7] {
            sharded.mark_selected(j);
        }
        for shard in &mut sharded.shards {
            shard.sweep_marked(&uploads);
        }
        let resets = merge_reset_positions(&uploads, &sharded.shards);
        assert_eq!(
            resets,
            vec![vec![6, 1, 7]],
            "upload entry order, not index order"
        );
    }
}
