//! Selection of the `k` largest-magnitude coordinates of a dense vector.
//!
//! Clients in Algorithm 1 compute `J_i`, the indices of the top-`k` absolute
//! values of their accumulated gradient `a_i`. The helpers here implement
//! that selection in `O(D)` expected time via `select_nth_unstable`, with a
//! deterministic tie-break on the index so results are reproducible.
//!
//! # Examples
//!
//! ```
//! use agsfl_sparse::topk::top_k_indices;
//!
//! let values = [0.1, -5.0, 3.0, 0.0, 4.0];
//! let mut top2 = top_k_indices(&values, 2);
//! top2.sort_unstable();
//! assert_eq!(top2, vec![1, 4]);
//! ```

use std::cmp::Ordering;

/// Compares two `(index, |value|)` candidates: larger magnitude first, then
/// smaller index first so ties are broken deterministically.
fn magnitude_then_index(a: &(usize, f32), b: &(usize, f32)) -> Ordering {
    match b.1.partial_cmp(&a.1) {
        Some(Ordering::Equal) | None => a.0.cmp(&b.0),
        Some(ord) => ord,
    }
}

/// Returns the indices of the `k` largest absolute values of `values`.
///
/// If `k >= values.len()` all indices are returned. The output is **not**
/// sorted by index; callers that need index order must sort it themselves.
/// NaN values are treated as ties (ranked by index), which in practice never
/// occurs for finite gradients.
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    top_k_entries(values, k)
        .into_iter()
        .map(|(j, _)| j)
        .collect()
}

/// Returns `(index, value)` pairs of the `k` largest absolute values,
/// ordered by decreasing magnitude (ties broken by index).
///
/// Allocates a fresh `O(k)` candidate buffer; hot paths that run every
/// round should use [`top_k_entries_with`] and reuse one.
pub fn top_k_entries(values: &[f32], k: usize) -> Vec<(usize, f32)> {
    top_k_entries_with(values, k, &mut Vec::new())
}

/// [`top_k_entries`] with a caller-provided candidate buffer.
///
/// The selection streams over `values` with a *bounded* candidate buffer of
/// at most `2k` entries: once the buffer fills, a partial quickselect
/// (`select_nth_unstable_by`) compacts it to the current best `k` and every
/// later candidate is admitted only if it beats the running `k`-th best
/// under the same total order (magnitude descending, index ascending as the
/// tie-break). Because the order is total over distinct indices, the
/// surviving set — and therefore the returned ranking — is exactly what the
/// historical full-copy implementation produced, while the former
/// `16·D`-byte full-dimension candidate sweep is gone: the buffer is
/// `O(k)`, and in expectation only `O(D)` comparisons plus a handful of
/// compactions are performed.
///
/// `scratch` is cleared and refilled on every call; reusing one buffer
/// across rounds (as `agsfl_fl::Client` does) makes the steady-state path
/// allocation-free apart from the returned vector, which holds only the
/// `k` selected entries and is handed off to the upload message.
pub fn top_k_entries_with(
    values: &[f32],
    k: usize,
    scratch: &mut Vec<(usize, f32)>,
) -> Vec<(usize, f32)> {
    let mut out = Vec::new();
    top_k_entries_into(values, k, scratch, &mut out);
    out
}

/// [`top_k_entries_with`] writing the ranked selection into a caller-owned
/// output buffer (cleared first): identical selection and order, zero
/// allocation once both buffers have grown. This is the cohort engine's
/// per-slot uplink builder.
pub fn top_k_entries_into(
    values: &[f32],
    k: usize,
    scratch: &mut Vec<(usize, f32)>,
    out: &mut Vec<(usize, f32)>,
) {
    out.clear();
    scratch.clear();
    let k = k.min(values.len());
    if k == 0 {
        return;
    }
    let cap = 2 * k;
    if cap >= values.len() {
        // Small dimension (or k close to D): the bounded buffer would hold
        // everything anyway, so take the direct path.
        scratch.extend(values.iter().enumerate().map(|(j, &v)| (j, v.abs())));
    } else {
        // Streaming pass with periodic compaction. `threshold` is the
        // current k-th best candidate; anything not strictly better can
        // never enter the final top-k and is skipped without buffering.
        let mut threshold: Option<(usize, f32)> = None;
        for (j, &v) in values.iter().enumerate() {
            let cand = (j, v.abs());
            if let Some(t) = threshold {
                if magnitude_then_index(&cand, &t) != Ordering::Less {
                    continue;
                }
            }
            scratch.push(cand);
            if scratch.len() == cap {
                scratch.select_nth_unstable_by(k - 1, magnitude_then_index);
                scratch.truncate(k);
                threshold = Some(scratch[k - 1]);
            }
        }
    }
    if k < scratch.len() {
        scratch.select_nth_unstable_by(k - 1, magnitude_then_index);
        scratch.truncate(k);
    }
    scratch.sort_unstable_by(magnitude_then_index);
    out.extend(scratch.iter().map(|&(j, _)| (j, values[j])));
}

/// Returns the `kappa` largest-magnitude entries of an *already ranked*
/// upload list (entries sorted by decreasing magnitude), i.e. the per-client
/// `J_i^kappa` sets used by the fairness-aware selection.
pub fn prefix_indices(
    ranked_entries: &[(usize, f32)],
    kappa: usize,
) -> impl Iterator<Item = usize> + '_ {
    ranked_entries.iter().take(kappa).map(|&(j, _)| j)
}

/// Sorts entries by decreasing magnitude with deterministic index tie-break.
pub fn rank_by_magnitude(entries: &mut [(usize, f32)]) {
    entries.sort_unstable_by(compare_magnitude_then_index);
}

/// The ranking comparator behind [`rank_by_magnitude`]: larger magnitude
/// first, ties broken by smaller index. Exposed for partial-selection
/// callers (`select_nth_unstable_by`) that need the same total order.
pub fn compare_magnitude_then_index(a: &(usize, f32), b: &(usize, f32)) -> Ordering {
    magnitude_then_index(&(a.0, a.1.abs()), &(b.0, b.1.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selects_largest_magnitudes() {
        let v = [1.0, -10.0, 5.0, 0.5, -6.0];
        let entries = top_k_entries(&v, 3);
        assert_eq!(entries, vec![(1, -10.0), (4, -6.0), (2, 5.0)]);
    }

    #[test]
    fn k_zero_and_k_too_large() {
        let v = [1.0, 2.0];
        assert!(top_k_entries(&v, 0).is_empty());
        let all = top_k_indices(&v, 10);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn ties_are_broken_by_index() {
        let v = [2.0, -2.0, 2.0, 1.0];
        let idx = top_k_indices(&v, 2);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn scratch_variant_matches_allocating_variant() {
        let v = [1.0, -10.0, 5.0, 0.5, -6.0, 0.0, 3.25];
        let mut scratch = Vec::new();
        for k in 0..=v.len() + 1 {
            assert_eq!(
                top_k_entries_with(&v, k, &mut scratch),
                top_k_entries(&v, k)
            );
        }
    }

    /// Pins the streaming/compaction path against a naive full sort on
    /// inputs large enough that `2k < D` (the bounded-buffer branch), with
    /// adversarial duplicates so the index tie-break is exercised.
    #[test]
    fn streaming_path_matches_full_sort_reference() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut scratch = Vec::new();
        for (dim, k) in [(500, 5), (500, 32), (1000, 1), (257, 100), (64, 31)] {
            // Quantized values force plenty of exact magnitude ties.
            let values: Vec<f32> = (0..dim)
                .map(|_| (rng.gen_range(-50i32..50) as f32) * 0.25)
                .collect();
            let mut ranked: Vec<(usize, f32)> =
                values.iter().enumerate().map(|(j, &v)| (j, v)).collect();
            ranked.sort_by(compare_magnitude_then_index);
            let expected: Vec<(usize, f32)> = ranked.into_iter().take(k).collect();
            let got = top_k_entries_with(&values, k, &mut scratch);
            assert_eq!(got, expected, "dim={dim}, k={k}");
        }
    }

    #[test]
    fn values_are_preserved_with_sign() {
        let v = [0.0, -3.5, 2.0];
        let entries = top_k_entries(&v, 2);
        assert_eq!(entries[0], (1, -3.5));
        assert_eq!(entries[1], (2, 2.0));
    }

    #[test]
    fn rank_by_magnitude_orders_descending() {
        let mut entries = vec![(0, 1.0), (5, -4.0), (2, 2.5)];
        rank_by_magnitude(&mut entries);
        assert_eq!(entries, vec![(5, -4.0), (2, 2.5), (0, 1.0)]);
    }

    #[test]
    fn prefix_indices_takes_leading_entries() {
        let ranked = vec![(5, -4.0), (2, 2.5), (0, 1.0)];
        let first_two: Vec<usize> = prefix_indices(&ranked, 2).collect();
        assert_eq!(first_two, vec![5, 2]);
        let none: Vec<usize> = prefix_indices(&ranked, 0).collect();
        assert!(none.is_empty());
    }

    proptest! {
        #[test]
        fn prop_topk_returns_true_top_k(
            values in proptest::collection::vec(-100.0f32..100.0, 1..80),
            k_raw in 0usize..80,
        ) {
            let k = k_raw % (values.len() + 1);
            let selected = top_k_indices(&values, k);
            prop_assert_eq!(selected.len(), k.min(values.len()));
            // The smallest selected magnitude is >= the largest unselected one.
            let selected_set: std::collections::HashSet<usize> = selected.iter().copied().collect();
            let min_selected = selected.iter().map(|&j| values[j].abs()).fold(f32::INFINITY, f32::min);
            let max_unselected = values
                .iter()
                .enumerate()
                .filter(|(j, _)| !selected_set.contains(j))
                .map(|(_, v)| v.abs())
                .fold(f32::NEG_INFINITY, f32::max);
            if k > 0 && k < values.len() {
                prop_assert!(min_selected >= max_unselected - 1e-6);
            }
        }

        #[test]
        fn prop_topk_entries_sorted_by_magnitude(
            values in proptest::collection::vec(-10.0f32..10.0, 1..40),
            k_raw in 1usize..40,
        ) {
            let k = 1 + k_raw % values.len();
            let entries = top_k_entries(&values, k);
            prop_assert!(entries.windows(2).all(|w| w[0].1.abs() >= w[1].1.abs() - 1e-6));
            // No duplicate indices.
            let mut idx: Vec<usize> = entries.iter().map(|&(j, _)| j).collect();
            idx.sort_unstable();
            idx.dedup();
            prop_assert_eq!(idx.len(), entries.len());
        }
    }
}
