//! The historical (seed) server-selection implementations, kept verbatim as
//! an executable specification.
//!
//! [`Sparsifier::select_into`](crate::Sparsifier::select_into) replaced these
//! hash-based paths with epoch-stamped scratch buffers and single-pass union
//! counting. The functions here are the slow-but-obviously-correct baselines
//! they are checked against:
//!
//! * the reference-equivalence property test in `tests/select_equivalence.rs`
//!   asserts the fast paths return byte-identical `SelectionResult`s for all
//!   five sparsifiers over random uploads, dims and `k`;
//! * `benches/kernels.rs` and the `bench-report` binary time the fast paths
//!   against these baselines, which is where the headline FAB selection
//!   speedup is measured.
//!
//! Complexity of the FAB baseline: each binary-search probe rebuilds a
//! `HashSet` over all uploads — O(Σ|uploads|) hashing per probe and O(log k)
//! probes — and aggregation runs through a `HashMap` plus a sort in
//! `SparseGradient::from_entries`. The fast path does one O(Σ|uploads|)
//! array sweep, no hashing, and emits already-sorted entries.

use std::collections::{HashMap, HashSet};

use crate::sparsifier::{ClientUpload, SelectionResult};
use crate::{topk, SparseGradient};

/// The seed implementation of `aggregate_selected`: `HashSet` membership,
/// `HashMap` accumulation, sort-and-dedup gradient construction.
pub fn aggregate_selected(
    uploads: &[ClientUpload],
    selected: &[usize],
    dim: usize,
) -> (SparseGradient, Vec<Vec<usize>>) {
    let selected_set: HashSet<usize> = selected.iter().copied().collect();
    let mut sums: HashMap<usize, f64> = selected.iter().map(|&j| (j, 0.0)).collect();
    let mut reset_indices = vec![Vec::new(); uploads.len()];
    for (slot, upload) in uploads.iter().enumerate() {
        for &(j, v) in &upload.entries {
            assert!(j < dim, "upload index {j} out of range (dim {dim})");
            if selected_set.contains(&j) {
                *sums.get_mut(&j).expect("initialised above") += upload.weight * v as f64;
                reset_indices[slot].push(j);
            }
        }
    }
    let entries: Vec<(usize, f32)> = sums.into_iter().map(|(j, v)| (j, v as f32)).collect();
    (SparseGradient::from_entries(dim, entries), reset_indices)
}

fn result_from(
    uploads: &[ClientUpload],
    selected: &[usize],
    dim: usize,
    indexed: bool,
) -> SelectionResult {
    let (aggregated, reset_indices) = aggregate_selected(uploads, selected, dim);
    SelectionResult::new(
        aggregated,
        reset_indices,
        uploads.iter().map(ClientUpload::len).collect(),
        selected.len(),
        indexed,
        indexed,
    )
}

/// Size of `∪_i J_i^κ`, rebuilt from scratch — the per-probe cost the fast
/// path eliminates.
pub fn fab_union_size(uploads: &[ClientUpload], kappa: usize) -> usize {
    let mut set = HashSet::new();
    for upload in uploads {
        set.extend(topk::prefix_indices(&upload.entries, kappa));
    }
    set.len()
}

/// The seed FAB-top-k downlink selection: binary search over `κ` with a
/// hash-set union rebuild per probe. Returns the selected set **sorted** so
/// results compare directly against the fast path (the seed returned
/// hash-set iteration order; every downstream consumer re-sorted).
pub fn fab_select_indices(uploads: &[ClientUpload], k: usize) -> Vec<usize> {
    if k == 0 || uploads.is_empty() {
        return Vec::new();
    }
    let max_prefix = uploads.iter().map(ClientUpload::len).max().unwrap_or(0);
    let mut lo = 0usize;
    let mut hi = max_prefix.min(k);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if fab_union_size(uploads, mid) <= k {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let kappa = lo;

    let mut selected: HashSet<usize> = HashSet::new();
    for upload in uploads {
        selected.extend(topk::prefix_indices(&upload.entries, kappa));
    }

    if selected.len() < k && kappa < max_prefix {
        let mut candidates: Vec<(usize, f32)> = Vec::new();
        for upload in uploads {
            if let Some(&(j, v)) = upload.entries.get(kappa) {
                if !selected.contains(&j) {
                    candidates.push((j, v));
                }
            }
        }
        topk::rank_by_magnitude(&mut candidates);
        for (j, _) in candidates {
            if selected.len() >= k {
                break;
            }
            selected.insert(j);
        }
    }
    let mut out: Vec<usize> = selected.into_iter().collect();
    out.sort_unstable();
    out
}

/// Seed FAB-top-k server selection.
pub fn fab_select(uploads: &[ClientUpload], dim: usize, k: usize) -> SelectionResult {
    let selected = fab_select_indices(uploads, k);
    result_from(uploads, &selected, dim, true)
}

/// Seed FUB-top-k server selection (hash-map aggregation, then global top-k).
pub fn fub_select(uploads: &[ClientUpload], dim: usize, k: usize) -> SelectionResult {
    let mut sums: HashMap<usize, f64> = HashMap::new();
    for upload in uploads {
        for &(j, v) in &upload.entries {
            assert!(j < dim, "upload index {j} out of range (dim {dim})");
            *sums.entry(j).or_insert(0.0) += upload.weight * v as f64;
        }
    }
    let mut candidates: Vec<(usize, f32)> = sums.into_iter().map(|(j, v)| (j, v as f32)).collect();
    topk::rank_by_magnitude(&mut candidates);
    candidates.truncate(k);
    let selected: Vec<usize> = candidates.iter().map(|&(j, _)| j).collect();
    result_from(uploads, &selected, dim, true)
}

/// Seed periodic-k server selection (first upload's coordinate set).
pub fn periodic_select(uploads: &[ClientUpload], dim: usize) -> SelectionResult {
    let selected: Vec<usize> = uploads
        .first()
        .map(|u| u.entries.iter().map(|&(j, _)| j).collect())
        .unwrap_or_default();
    result_from(uploads, &selected, dim, true)
}

/// Seed send-all server selection (every coordinate, dense messages).
pub fn send_all_select(uploads: &[ClientUpload], dim: usize) -> SelectionResult {
    let selected: Vec<usize> = (0..dim).collect();
    result_from(uploads, &selected, dim, false)
}

/// The seed client-side top-k: materializes a full-dimension `(index,
/// |value|)` candidate copy, partially selects and sorts it.
///
/// [`topk::top_k_entries_with`] replaced this with a streaming select over
/// a bounded `O(k)` buffer; this baseline keeps the historical cost
/// measurable (`bench-report`'s `client_top_k` pair) and the new path's
/// output equivalence testable.
pub fn top_k_entries(values: &[f32], k: usize) -> Vec<(usize, f32)> {
    let mut candidates: Vec<(usize, f32)> = values
        .iter()
        .enumerate()
        .map(|(j, &v)| (j, v.abs()))
        .collect();
    let k = k.min(candidates.len());
    if k == 0 {
        return Vec::new();
    }
    if k < candidates.len() {
        candidates.select_nth_unstable_by(k - 1, topk::compare_magnitude_then_index);
        candidates.truncate(k);
    }
    candidates.sort_unstable_by(topk::compare_magnitude_then_index);
    candidates.iter().map(|&(j, _)| (j, values[j])).collect()
}

/// Seed unidirectional top-k server selection (union of all uploads).
pub fn unidirectional_select(uploads: &[ClientUpload], dim: usize) -> SelectionResult {
    let mut selected: Vec<usize> = uploads
        .iter()
        .flat_map(|u| u.entries.iter().map(|&(j, _)| j))
        .collect();
    selected.sort_unstable();
    selected.dedup();
    result_from(uploads, &selected, dim, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fab_union_size_counts_distinct_prefix_indices() {
        let uploads = vec![
            ClientUpload::new(0, 0.5, vec![(0, 5.0), (1, 4.0), (2, 3.0)]),
            ClientUpload::new(1, 0.5, vec![(0, 5.0), (3, 4.0), (4, 3.0)]),
        ];
        assert_eq!(fab_union_size(&uploads, 0), 0);
        assert_eq!(fab_union_size(&uploads, 1), 1);
        assert_eq!(fab_union_size(&uploads, 2), 3);
        assert_eq!(fab_union_size(&uploads, 3), 5);
    }

    #[test]
    fn seed_top_k_matches_streaming_implementation() {
        let values: Vec<f32> = (0..600)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.25)
            .collect();
        for k in [0, 1, 7, 100, 599, 600, 700] {
            assert_eq!(
                top_k_entries(&values, k),
                topk::top_k_entries(&values, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn reference_fab_matches_seed_behaviour() {
        let uploads = vec![
            ClientUpload::new(0, 0.5, vec![(0, 10.0), (1, 9.0), (2, 8.0)]),
            ClientUpload::new(1, 0.5, vec![(5, 0.3), (6, 0.2), (7, 0.1)]),
        ];
        let result = fab_select(&uploads, 8, 2);
        assert_eq!(result.aggregated.nnz(), 2);
        assert!(result.contributions()[1] >= 1);
    }
}
