use serde::{Deserialize, Serialize};

use crate::topk;

/// The per-client accumulated local gradient `a_i` of Algorithm 1.
///
/// Every round the client adds its freshly computed full local gradient to
/// the accumulator, uploads the top-`k` entries, and — after hearing from the
/// server which of its entries were actually used — resets exactly those
/// coordinates to zero (Lines 4, 6 and 16–17 of Algorithm 1). Coordinates
/// that were *not* used keep accumulating, which is the error-feedback
/// mechanism that lets top-k sparsification converge.
///
/// # Examples
///
/// ```
/// use agsfl_sparse::ResidualAccumulator;
///
/// let mut acc = ResidualAccumulator::new(4);
/// acc.add(&[1.0, -5.0, 0.5, 2.0]);
/// let upload = acc.top_k_entries(2);
/// assert_eq!(upload[0].0, 1); // largest magnitude first
/// acc.reset_indices(&[1]);
/// assert_eq!(acc.as_slice()[1], 0.0);
/// assert_eq!(acc.as_slice()[3], 2.0); // unused coordinate keeps its residual
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidualAccumulator {
    residual: Vec<f32>,
}

impl ResidualAccumulator {
    /// Creates a zero accumulator of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            residual: vec![0.0; dim],
        }
    }

    /// Dimension `D`.
    pub fn dim(&self) -> usize {
        self.residual.len()
    }

    /// Borrows the accumulated gradient.
    pub fn as_slice(&self) -> &[f32] {
        &self.residual
    }

    /// Overwrites the residual with a previously captured snapshot
    /// (checkpoint restore); the copy is bit-exact.
    ///
    /// # Panics
    ///
    /// Panics if `residual.len() != dim()`.
    pub fn restore(&mut self, residual: &[f32]) {
        assert_eq!(
            residual.len(),
            self.residual.len(),
            "restored residual length mismatch"
        );
        self.residual.copy_from_slice(residual);
    }

    /// Adds a freshly computed local gradient (Line 4 of Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != dim()`.
    pub fn add(&mut self, grad: &[f32]) {
        assert_eq!(grad.len(), self.residual.len(), "gradient length mismatch");
        for (r, g) in self.residual.iter_mut().zip(grad.iter()) {
            *r += g;
        }
    }

    /// Returns the top-`k` entries `(index, accumulated value)` ranked by
    /// decreasing magnitude — the uplink message `A_i`.
    ///
    /// Allocates a fresh `O(k)` candidate buffer; per-round callers should
    /// prefer [`ResidualAccumulator::top_k_entries_with`] with a reused
    /// scratch buffer.
    pub fn top_k_entries(&self, k: usize) -> Vec<(usize, f32)> {
        topk::top_k_entries(&self.residual, k)
    }

    /// [`ResidualAccumulator::top_k_entries`] with a caller-provided
    /// candidate buffer. The selection streams over the residual with a
    /// bounded `O(k)` buffer (see [`topk::top_k_entries_with`]) — no
    /// full-dimension candidate copy is ever materialized — and reusing
    /// one buffer across rounds makes the steady-state uplink path
    /// allocation-free apart from the returned message.
    pub fn top_k_entries_with(
        &self,
        k: usize,
        scratch: &mut Vec<(usize, f32)>,
    ) -> Vec<(usize, f32)> {
        topk::top_k_entries_with(&self.residual, k, scratch)
    }

    /// [`ResidualAccumulator::top_k_entries_with`] writing the ranked
    /// selection into a caller-owned buffer (cleared first) — the fully
    /// allocation-free uplink builder of the cohort engine.
    pub fn top_k_entries_into(
        &self,
        k: usize,
        scratch: &mut Vec<(usize, f32)>,
        out: &mut Vec<(usize, f32)>,
    ) {
        topk::top_k_entries_into(&self.residual, k, scratch, out);
    }

    /// Returns the values at the given indices (used by sparsifiers where the
    /// server dictates the coordinate set, e.g. periodic-k).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn entries_at(&self, indices: &[usize]) -> Vec<(usize, f32)> {
        let mut out = Vec::with_capacity(indices.len());
        self.entries_at_into(indices, &mut out);
        out
    }

    /// [`ResidualAccumulator::entries_at`] writing into a caller-owned
    /// buffer (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn entries_at_into(&self, indices: &[usize], out: &mut Vec<(usize, f32)>) {
        out.clear();
        out.extend(indices.iter().map(|&j| {
            assert!(j < self.residual.len(), "index {j} out of range");
            (j, self.residual[j])
        }));
    }

    /// Writes every coordinate `(j, a_j)` into a caller-owned buffer
    /// (cleared first) — the [`crate::UploadPlan::Dense`] upload.
    pub fn dense_entries_into(&self, out: &mut Vec<(usize, f32)>) {
        out.clear();
        out.extend(self.residual.iter().copied().enumerate());
    }

    /// Swaps the accumulator's backing storage with the caller's buffer in
    /// O(1), without validation or copying.
    ///
    /// This is the population-row hydration primitive of the FL simulator's
    /// cohort engine: a cohort slot installs a stored client's residual
    /// before the round and the same swap puts it back afterwards. The
    /// caller is responsible for the buffer holding a residual of the right
    /// dimension when the accumulator is subsequently used
    /// ([`ResidualAccumulator::add`] still asserts the length at use time).
    pub fn swap_storage(&mut self, buf: &mut Vec<f32>) {
        std::mem::swap(&mut self.residual, buf);
    }

    /// Resets the accumulator to a zero residual of dimension `dim`,
    /// reusing the current buffer's capacity.
    ///
    /// Equivalent to `*self = ResidualAccumulator::new(dim)` without the
    /// allocation; used when a cohort slot is hydrated for a client that
    /// has no stored row yet.
    pub fn reset_to_dim(&mut self, dim: usize) {
        self.residual.clear();
        self.residual.resize(dim, 0.0);
    }

    /// Resets the given coordinates to zero (Lines 16–17 of Algorithm 1:
    /// `a_ij <- 0` for `j ∈ J ∩ J_i`).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn reset_indices(&mut self, indices: &[usize]) {
        for &j in indices {
            assert!(j < self.residual.len(), "index {j} out of range");
            self.residual[j] = 0.0;
        }
    }

    /// Resets the given coordinates, seeding each with its quantization
    /// error instead of zero — the lossy-tier extension of
    /// [`ResidualAccumulator::reset_indices`].
    ///
    /// `errors` holds `(j, v - v̂)` pairs sorted by index: the gap between
    /// what the client computed and what the lossy wire codec actually
    /// delivered. A transmitted coordinate that the codec reproduced
    /// exactly (or that has no entry in `errors`) resets to zero exactly as
    /// before, so with an empty `errors` slice this is bit-identical to
    /// `reset_indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn reset_indices_to(&mut self, indices: &[usize], errors: &[(usize, f32)]) {
        for &j in indices {
            assert!(j < self.residual.len(), "index {j} out of range");
            self.residual[j] = errors
                .binary_search_by_key(&j, |&(i, _)| i)
                .map(|p| errors[p].1)
                .unwrap_or(0.0);
        }
    }

    /// Resets the whole accumulator to zero (used by send-all / FedAvg where
    /// every coordinate is transmitted).
    pub fn reset_all(&mut self) {
        self.residual.fill(0.0);
    }

    /// Sum of absolute residual values — a measure of how much gradient mass
    /// is still waiting to be communicated.
    pub fn residual_l1(&self) -> f32 {
        self.residual.iter().map(|r| r.abs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_accumulates_across_rounds() {
        let mut acc = ResidualAccumulator::new(3);
        acc.add(&[1.0, 2.0, 3.0]);
        acc.add(&[1.0, -1.0, 0.0]);
        assert_eq!(acc.as_slice(), &[2.0, 1.0, 3.0]);
    }

    #[test]
    fn reset_indices_only_clears_listed() {
        let mut acc = ResidualAccumulator::new(4);
        acc.add(&[1.0, 2.0, 3.0, 4.0]);
        acc.reset_indices(&[0, 2]);
        assert_eq!(acc.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn reset_all_clears_everything() {
        let mut acc = ResidualAccumulator::new(3);
        acc.add(&[1.0, 2.0, 3.0]);
        acc.reset_all();
        assert_eq!(acc.residual_l1(), 0.0);
    }

    #[test]
    fn top_k_entries_come_from_residual() {
        let mut acc = ResidualAccumulator::new(5);
        acc.add(&[0.1, -4.0, 2.0, 0.0, 3.0]);
        let top = acc.top_k_entries(2);
        assert_eq!(top, vec![(1, -4.0), (4, 3.0)]);
    }

    #[test]
    fn entries_at_returns_requested_coordinates() {
        let mut acc = ResidualAccumulator::new(4);
        acc.add(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(acc.entries_at(&[3, 0]), vec![(3, 4.0), (0, 1.0)]);
    }

    #[test]
    fn unsent_coordinates_keep_accumulating() {
        let mut acc = ResidualAccumulator::new(3);
        for _ in 0..5 {
            acc.add(&[0.1, 1.0, 0.1]);
            // Suppose only index 1 is ever selected and reset.
            acc.reset_indices(&[1]);
        }
        assert!((acc.as_slice()[0] - 0.5).abs() < 1e-6);
        assert_eq!(acc.as_slice()[1], 0.0);
    }

    #[test]
    fn reset_indices_to_seeds_quantization_errors() {
        let mut acc = ResidualAccumulator::new(4);
        acc.add(&[1.0, 2.0, 3.0, 4.0]);
        // Index 0 was delivered exactly, index 2 lost 0.25 to quantization.
        acc.reset_indices_to(&[0, 2], &[(2, 0.25)]);
        assert_eq!(acc.as_slice(), &[0.0, 2.0, 0.25, 4.0]);
    }

    #[test]
    fn reset_indices_to_with_empty_errors_matches_reset_indices() {
        let mut a = ResidualAccumulator::new(4);
        let mut b = ResidualAccumulator::new(4);
        a.add(&[1.0, -2.0, 3.0, -4.0]);
        b.add(&[1.0, -2.0, 3.0, -4.0]);
        a.reset_indices(&[1, 3]);
        b.reset_indices_to(&[1, 3], &[]);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic]
    fn add_length_mismatch_panics() {
        let mut acc = ResidualAccumulator::new(2);
        acc.add(&[1.0]);
    }

    proptest! {
        #[test]
        fn prop_reset_then_l1_decreases(
            grad in proptest::collection::vec(-5.0f32..5.0, 8),
            k in 0usize..8,
        ) {
            let mut acc = ResidualAccumulator::new(8);
            acc.add(&grad);
            let before = acc.residual_l1();
            let top: Vec<usize> = acc.top_k_entries(k).into_iter().map(|(j, _)| j).collect();
            acc.reset_indices(&top);
            prop_assert!(acc.residual_l1() <= before + 1e-6);
        }
    }
}
