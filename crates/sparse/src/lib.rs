//! Gradient sparsification methods for federated learning.
//!
//! This crate implements the communication-side machinery of the paper:
//!
//! * [`SparseGradient`] — an index/value representation of a sparse gradient
//!   vector together with merge/apply helpers,
//! * [`topk`] — selection of the `k` largest-magnitude coordinates,
//! * [`ResidualAccumulator`] — the per-client accumulated local gradient
//!   `a_i` of Algorithm 1 (error feedback / residual accumulation),
//! * [`Sparsifier`] implementations:
//!   [`FabTopK`] (the paper's fairness-aware bidirectional top-k),
//!   [`FubTopK`] (fairness-unaware bidirectional top-k, as in global top-k),
//!   [`UnidirectionalTopK`] (downlink may carry up to `kN` elements),
//!   [`PeriodicK`] (random `k` coordinates each round) and
//!   [`SendAll`] (dense exchange every round).
//!
//! The sparsifiers are pure selection/aggregation logic: they know nothing
//! about models, datasets or time. The federated-learning simulator in
//! `agsfl-fl` drives them round by round.
//!
//! # Example
//!
//! ```
//! use agsfl_sparse::{ClientUpload, FabTopK, Sparsifier};
//!
//! let sparsifier = FabTopK::new();
//! // Two clients, dimension 6, k = 2.
//! let uploads = vec![
//!     ClientUpload::new(0, 0.5, vec![(0, 4.0), (3, -3.0)]),
//!     ClientUpload::new(1, 0.5, vec![(5, 2.0), (1, 1.0)]),
//! ];
//! let result = sparsifier.select(&uploads, 6, 2);
//! assert_eq!(result.aggregated.nnz(), 2);
//! // Fairness: each client contributes at least floor(k/N) = 1 element.
//! assert!(result.contributions.iter().all(|&c| c >= 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accumulator;
mod fab;
mod fub;
mod periodic;
mod send_all;
mod sparse_vec;
mod sparsifier;
pub mod topk;
mod unidirectional;

pub use accumulator::ResidualAccumulator;
pub use fab::FabTopK;
pub use fub::FubTopK;
pub use periodic::PeriodicK;
pub use send_all::SendAll;
pub use sparse_vec::SparseGradient;
pub use sparsifier::{ClientUpload, SelectionResult, Sparsifier, UploadPlan};
pub use unidirectional::UnidirectionalTopK;
