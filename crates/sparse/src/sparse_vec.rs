use serde::{Deserialize, Serialize};

/// A sparse gradient vector stored as sorted `(index, value)` pairs.
///
/// This is the object exchanged between clients and the server: the uplink
/// message `A_i = {(j, a_ij)}` and the downlink message `B = {(j, b_j)}` of
/// Algorithm 1 are both `SparseGradient`s.
///
/// Invariants: indices are strictly increasing and all indices are `< dim`.
///
/// # Examples
///
/// ```
/// use agsfl_sparse::SparseGradient;
///
/// let g = SparseGradient::from_entries(8, vec![(5, 1.0), (2, -3.0)]);
/// assert_eq!(g.nnz(), 2);
/// assert_eq!(g.get(2), -3.0);
/// assert_eq!(g.get(3), 0.0);
///
/// let dense = g.to_dense();
/// assert_eq!(dense[5], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseGradient {
    dim: usize,
    entries: Vec<(usize, f32)>,
}

impl SparseGradient {
    /// Creates an empty sparse gradient of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            dim,
            entries: Vec::new(),
        }
    }

    /// Creates a sparse gradient from unsorted entries.
    ///
    /// Entries are sorted by index; duplicate indices are summed.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= dim`.
    pub fn from_entries(dim: usize, mut entries: Vec<(usize, f32)>) -> Self {
        assert!(
            entries.iter().all(|&(j, _)| j < dim),
            "sparse gradient index out of range (dim {dim})"
        );
        entries.sort_unstable_by_key(|&(j, _)| j);
        let mut dedup: Vec<(usize, f32)> = Vec::with_capacity(entries.len());
        for (j, v) in entries {
            match dedup.last_mut() {
                Some((last_j, last_v)) if *last_j == j => *last_v += v,
                _ => dedup.push((j, v)),
            }
        }
        Self {
            dim,
            entries: dedup,
        }
    }

    /// Creates a sparse gradient from entries that are **already sorted by
    /// strictly increasing index** with no duplicates, skipping the
    /// sort/dedup pass of [`SparseGradient::from_entries`].
    ///
    /// This is the fast path used by the scratch-based aggregation in
    /// [`crate::Sparsifier::select_into`], which emits entries in index
    /// order by construction.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= dim`; debug-asserts the ordering
    /// invariant (strictly increasing indices).
    pub fn from_sorted_entries(dim: usize, entries: Vec<(usize, f32)>) -> Self {
        // The range check covers every entry (not just the last) so an
        // unsorted input cannot smuggle an out-of-range index past it in
        // release builds; the ordering invariant itself stays a debug
        // assertion since this is the hot-path constructor.
        assert!(
            entries.iter().all(|&(j, _)| j < dim),
            "sparse gradient index out of range (dim {dim})"
        );
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted_entries requires strictly increasing indices"
        );
        Self { dim, entries }
    }

    /// Creates a sparse gradient holding every non-zero coordinate of a dense
    /// vector.
    pub fn from_dense(dense: &[f32]) -> Self {
        let entries = dense
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != 0.0)
            .map(|(j, &v)| (j, v))
            .collect();
        Self {
            dim: dense.len(),
            entries,
        }
    }

    /// Dimension `D` of the underlying dense space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored entries as sorted `(index, value)` pairs.
    pub fn entries(&self) -> &[(usize, f32)] {
        &self.entries
    }

    /// The stored indices, sorted ascending.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|&(j, _)| j)
    }

    /// Value at index `j` (zero if not stored).
    ///
    /// # Panics
    ///
    /// Panics if `j >= dim`.
    pub fn get(&self, j: usize) -> f32 {
        assert!(j < self.dim, "index {j} out of range (dim {})", self.dim);
        match self.entries.binary_search_by_key(&j, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Returns `true` if index `j` is stored.
    pub fn contains(&self, j: usize) -> bool {
        self.entries.binary_search_by_key(&j, |&(i, _)| i).is_ok()
    }

    /// Expands to a dense vector of length `dim`.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut dense = vec![0.0f32; self.dim];
        for &(j, v) in &self.entries {
            dense[j] = v;
        }
        dense
    }

    /// Scales every stored value by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for (_, v) in &mut self.entries {
            *v *= s;
        }
    }

    /// Adds `alpha * other` into `self` (union of supports).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn axpy(&mut self, alpha: f32, other: &SparseGradient) {
        assert_eq!(self.dim, other.dim, "dimension mismatch in sparse axpy");
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.entries.len() || b < other.entries.len() {
            match (self.entries.get(a), other.entries.get(b)) {
                (Some(&(ja, va)), Some(&(jb, vb))) => {
                    if ja == jb {
                        merged.push((ja, va + alpha * vb));
                        a += 1;
                        b += 1;
                    } else if ja < jb {
                        merged.push((ja, va));
                        a += 1;
                    } else {
                        merged.push((jb, alpha * vb));
                        b += 1;
                    }
                }
                (Some(&(ja, va)), None) => {
                    merged.push((ja, va));
                    a += 1;
                }
                (None, Some(&(jb, vb))) => {
                    merged.push((jb, alpha * vb));
                    b += 1;
                }
                (None, None) => unreachable!("loop condition guarantees progress"),
            }
        }
        self.entries = merged;
    }

    /// Applies the sparse gradient to a dense weight vector:
    /// `weights[j] -= lr * value` for every stored entry. This is exactly the
    /// weight update of Eq. (1) restricted to the sparse support.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != dim`.
    pub fn apply_sgd(&self, weights: &mut [f32], lr: f32) {
        assert_eq!(weights.len(), self.dim, "weight vector length mismatch");
        for &(j, v) in &self.entries {
            weights[j] -= lr * v;
        }
    }

    /// Sum of absolute values of stored entries.
    pub fn l1_norm(&self) -> f32 {
        self.entries.iter().map(|(_, v)| v.abs()).sum()
    }

    /// Euclidean norm of stored entries.
    pub fn l2_norm(&self) -> f32 {
        self.entries.iter().map(|(_, v)| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_entries_sorts_and_dedups() {
        let g = SparseGradient::from_entries(10, vec![(7, 1.0), (2, 2.0), (7, 3.0)]);
        assert_eq!(g.entries(), &[(2, 2.0), (7, 4.0)]);
        assert_eq!(g.nnz(), 2);
    }

    #[test]
    fn from_sorted_entries_matches_from_entries() {
        let entries = vec![(1, 2.0), (4, -1.0), (9, 0.5)];
        let fast = SparseGradient::from_sorted_entries(10, entries.clone());
        let slow = SparseGradient::from_entries(10, entries);
        assert_eq!(fast, slow);
    }

    #[test]
    #[should_panic]
    fn from_sorted_entries_rejects_out_of_range() {
        let _ = SparseGradient::from_sorted_entries(3, vec![(1, 1.0), (3, 1.0)]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic]
    fn from_sorted_entries_debug_asserts_order() {
        let _ = SparseGradient::from_sorted_entries(5, vec![(2, 1.0), (1, 1.0)]);
    }

    #[test]
    fn from_dense_round_trip() {
        let dense = vec![0.0, 1.5, 0.0, -2.0, 0.0];
        let g = SparseGradient::from_dense(&dense);
        assert_eq!(g.nnz(), 2);
        assert_eq!(g.to_dense(), dense);
    }

    #[test]
    fn get_and_contains() {
        let g = SparseGradient::from_entries(6, vec![(1, 5.0), (4, -1.0)]);
        assert_eq!(g.get(1), 5.0);
        assert_eq!(g.get(0), 0.0);
        assert!(g.contains(4));
        assert!(!g.contains(2));
    }

    #[test]
    #[should_panic]
    fn out_of_range_entry_panics() {
        let _ = SparseGradient::from_entries(3, vec![(3, 1.0)]);
    }

    #[test]
    fn scale_and_norms() {
        let mut g = SparseGradient::from_entries(4, vec![(0, 3.0), (2, -4.0)]);
        assert_eq!(g.l1_norm(), 7.0);
        assert!((g.l2_norm() - 5.0).abs() < 1e-6);
        g.scale(2.0);
        assert_eq!(g.get(0), 6.0);
        assert_eq!(g.get(2), -8.0);
    }

    #[test]
    fn axpy_merges_supports() {
        let mut a = SparseGradient::from_entries(6, vec![(0, 1.0), (3, 2.0)]);
        let b = SparseGradient::from_entries(6, vec![(3, 1.0), (5, -1.0)]);
        a.axpy(2.0, &b);
        assert_eq!(a.entries(), &[(0, 1.0), (3, 4.0), (5, -2.0)]);
    }

    #[test]
    fn apply_sgd_matches_dense_update() {
        let g = SparseGradient::from_entries(4, vec![(1, 2.0), (3, -1.0)]);
        let mut w_sparse = vec![1.0, 1.0, 1.0, 1.0];
        g.apply_sgd(&mut w_sparse, 0.5);
        let mut w_dense = vec![1.0, 1.0, 1.0, 1.0];
        let dense = g.to_dense();
        for (w, d) in w_dense.iter_mut().zip(dense.iter()) {
            *w -= 0.5 * d;
        }
        assert_eq!(w_sparse, w_dense);
    }

    #[test]
    fn zeros_is_empty() {
        let g = SparseGradient::zeros(5);
        assert!(g.is_empty());
        assert_eq!(g.dim(), 5);
        assert_eq!(g.to_dense(), vec![0.0; 5]);
    }

    proptest! {
        #[test]
        fn prop_to_dense_from_dense_round_trip(
            dense in proptest::collection::vec(-10.0f32..10.0, 1..64)
        ) {
            let g = SparseGradient::from_dense(&dense);
            prop_assert_eq!(g.to_dense(), dense);
        }

        #[test]
        fn prop_axpy_matches_dense_axpy(
            a_dense in proptest::collection::vec(-5.0f32..5.0, 16),
            b_dense in proptest::collection::vec(-5.0f32..5.0, 16),
            alpha in -2.0f32..2.0,
        ) {
            let mut a = SparseGradient::from_dense(&a_dense);
            let b = SparseGradient::from_dense(&b_dense);
            a.axpy(alpha, &b);
            let got = a.to_dense();
            for j in 0..16 {
                let expected = a_dense[j] + alpha * b_dense[j];
                prop_assert!((got[j] - expected).abs() < 1e-4);
            }
        }

        #[test]
        fn prop_entries_sorted_and_unique(
            raw in proptest::collection::vec((0usize..32, -3.0f32..3.0), 0..40)
        ) {
            let g = SparseGradient::from_entries(32, raw);
            let idx: Vec<usize> = g.indices().collect();
            prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
