//! Reference-equivalence and scratch-soundness tests for the fast selection
//! pipeline.
//!
//! `Sparsifier::select_into` replaced the seed's hash-based selection with
//! epoch-stamped scratch buffers; these tests pin the fast paths to the seed
//! implementations kept in `agsfl_sparse::reference`:
//!
//! * for all five sparsifiers, random uploads/dims/k must produce
//!   **byte-identical** `SelectionResult`s (the aggregation accumulates in
//!   the same order, so even the floating point output is bit-equal);
//! * repeated `select_into` calls on one shared scratch must return
//!   identical results — i.e. epoch stamping really does isolate rounds and
//!   no stale generation ever leaks.

use agsfl_sparse::{
    reference, ClientUpload, Executor, FabTopK, FubTopK, PeriodicK, SelectionResult,
    SelectionScratch, SendAll, ShardedScratch, Sparsifier, UnidirectionalTopK,
};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds ranked top-k uploads from random dense per-client accumulators.
fn random_topk_uploads(
    rng: &mut ChaCha8Rng,
    n_clients: usize,
    dim: usize,
    k: usize,
) -> Vec<ClientUpload> {
    (0..n_clients)
        .map(|i| {
            let dense: Vec<f32> = (0..dim).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
            ClientUpload::new(
                i,
                1.0 / n_clients as f64,
                agsfl_sparse::topk::top_k_entries(&dense, k),
            )
        })
        .collect()
}

/// Builds uploads sharing one random sorted coordinate set (periodic-k).
fn random_coordinate_uploads(
    rng: &mut ChaCha8Rng,
    n_clients: usize,
    dim: usize,
    k: usize,
) -> Vec<ClientUpload> {
    let mut pool: Vec<usize> = (0..dim).collect();
    let (chosen, _) = pool.partial_shuffle(rng, k.min(dim));
    let mut coords = chosen.to_vec();
    coords.sort_unstable();
    (0..n_clients)
        .map(|i| {
            let entries = coords
                .iter()
                .map(|&j| (j, rng.gen_range(-5.0f32..5.0)))
                .collect();
            ClientUpload::new(i, 1.0 / n_clients as f64, entries)
        })
        .collect()
}

/// Builds dense uploads (send-all).
fn random_dense_uploads(rng: &mut ChaCha8Rng, n_clients: usize, dim: usize) -> Vec<ClientUpload> {
    (0..n_clients)
        .map(|i| {
            let entries = (0..dim).map(|j| (j, rng.gen_range(-5.0f32..5.0))).collect();
            ClientUpload::new(i, 1.0 / n_clients as f64, entries)
        })
        .collect()
}

/// Asserts the fast path equals `expected` both through the default-method
/// wrapper and through an explicitly shared scratch called twice (scratch
/// reuse must be observationally pure).
fn assert_equivalent(
    sparsifier: &dyn Sparsifier,
    uploads: &[ClientUpload],
    dim: usize,
    k: usize,
    expected: &SelectionResult,
    scratch: &mut SelectionScratch,
) {
    let via_wrapper = sparsifier.select(uploads, dim, k);
    assert_eq!(
        &via_wrapper,
        expected,
        "{} select() diverged from the reference implementation",
        sparsifier.name()
    );
    let first = sparsifier.select_into(uploads, dim, k, scratch);
    let second = sparsifier.select_into(uploads, dim, k, scratch);
    assert_eq!(
        &first,
        expected,
        "{} select_into() diverged from the reference implementation",
        sparsifier.name()
    );
    assert_eq!(
        first,
        second,
        "{} select_into() is not idempotent on a reused scratch",
        sparsifier.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All five sparsifiers, random workloads, one shared scratch:
    /// byte-identical to the seed implementation.
    #[test]
    fn prop_select_into_matches_reference(
        seed in 0u64..10_000,
        n_clients in 1usize..7,
        dim in 2usize..48,
        k_raw in 1usize..24,
    ) {
        let k = 1 + k_raw % dim;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // One scratch shared by every sparsifier and both calls per check:
        // cross-sparsifier reuse is exactly what `Simulation::run_round`
        // does with its probe selection.
        let mut scratch = SelectionScratch::new();

        let topk_uploads = random_topk_uploads(&mut rng, n_clients, dim, k);
        let expected = reference::fab_select(&topk_uploads, dim, k);
        assert_equivalent(&FabTopK::new(), &topk_uploads, dim, k, &expected, &mut scratch);

        let expected = reference::fub_select(&topk_uploads, dim, k);
        assert_equivalent(&FubTopK::new(), &topk_uploads, dim, k, &expected, &mut scratch);

        let expected = reference::unidirectional_select(&topk_uploads, dim);
        assert_equivalent(
            &UnidirectionalTopK::new(), &topk_uploads, dim, k, &expected, &mut scratch,
        );

        let coord_uploads = random_coordinate_uploads(&mut rng, n_clients, dim, k);
        let expected = reference::periodic_select(&coord_uploads, dim);
        assert_equivalent(&PeriodicK::new(), &coord_uploads, dim, k, &expected, &mut scratch);

        let dense_uploads = random_dense_uploads(&mut rng, n_clients, dim);
        let expected = reference::send_all_select(&dense_uploads, dim);
        assert_equivalent(&SendAll::new(), &dense_uploads, dim, k, &expected, &mut scratch);
    }

    /// Sharded selection across 1–8 shards: every sparsifier, every shard
    /// count, byte-identical to the seed implementation. This is the
    /// load-bearing determinism invariant of the parallel round engine —
    /// thread/shard count must never perturb results, down to the floating
    /// point bits (the striped decomposition accumulates every coordinate
    /// in the serial client order; see `agsfl_sparse::shard`).
    #[test]
    fn prop_select_parallel_matches_reference(
        seed in 0u64..10_000,
        n_clients in 1usize..7,
        dim in 2usize..48,
        k_raw in 1usize..24,
    ) {
        let k = 1 + k_raw % dim;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let topk_uploads = random_topk_uploads(&mut rng, n_clients, dim, k);
        let coord_uploads = random_coordinate_uploads(&mut rng, n_clients, dim, k);
        let dense_uploads = random_dense_uploads(&mut rng, n_clients, dim);

        let fab_expected = reference::fab_select(&topk_uploads, dim, k);
        let fub_expected = reference::fub_select(&topk_uploads, dim, k);
        let uni_expected = reference::unidirectional_select(&topk_uploads, dim);
        let periodic_expected = reference::periodic_select(&coord_uploads, dim);
        let send_all_expected = reference::send_all_select(&dense_uploads, dim);

        // One sharded workspace reused across every shard count and
        // sparsifier — re-striping must be as stateless as epoch bumps.
        let mut sharded = ShardedScratch::new();
        for shards in 1usize..=8 {
            let exec = Executor::new(shards).with_min_items(1);
            let checks: [(&dyn Sparsifier, &[ClientUpload], &SelectionResult); 5] = [
                (&FabTopK::new(), &topk_uploads, &fab_expected),
                (&FubTopK::new(), &topk_uploads, &fub_expected),
                (&UnidirectionalTopK::new(), &topk_uploads, &uni_expected),
                (&PeriodicK::new(), &coord_uploads, &periodic_expected),
                (&SendAll::new(), &dense_uploads, &send_all_expected),
            ];
            for (sparsifier, uploads, expected) in checks {
                let got = sparsifier.select_parallel(uploads, dim, k, &mut sharded, &exec);
                prop_assert_eq!(
                    &got, expected,
                    "{} diverged from the reference with {} shard(s)",
                    sparsifier.name(), shards
                );
            }
        }
    }

    /// FAB's sorted `select_indices` equals the (sorted) reference selection.
    #[test]
    fn prop_fab_select_indices_sorted_and_equal(
        seed in 0u64..10_000,
        n_clients in 1usize..6,
        dim in 2usize..40,
        k_raw in 1usize..16,
    ) {
        let k = 1 + k_raw % dim;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let uploads = random_topk_uploads(&mut rng, n_clients, dim, k);
        let fast = FabTopK::select_indices(&uploads, k);
        let slow = reference::fab_select_indices(&uploads, k);
        prop_assert!(fast.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(fast, slow);
    }
}

/// Epoch-stamping soundness: many rounds of shifting workloads on one
/// scratch, each checked against a fresh-scratch run and the reference.
#[test]
fn scratch_reuse_across_shifting_workloads_is_sound() {
    let mut rng = ChaCha8Rng::seed_from_u64(2020);
    let mut shared = SelectionScratch::new();
    let fab = FabTopK::new();
    // Dimensions intentionally shrink and grow to exercise buffer reuse with
    // stale high-index state present.
    for &(dim, n, k) in &[
        (64, 5, 9),
        (8, 2, 3),
        (128, 7, 17),
        (16, 3, 4),
        (128, 7, 17),
    ] {
        let uploads = random_topk_uploads(&mut rng, n, dim, k);
        let expected = reference::fab_select(&uploads, dim, k);
        let got = fab.select_into(&uploads, dim, k, &mut shared);
        assert_eq!(got, expected, "dim {dim}, n {n}, k {k}");
        let again = fab.select_into(&uploads, dim, k, &mut shared);
        assert_eq!(again, expected, "repeat on same scratch: dim {dim}");
    }
}

/// Sharded workspace reuse across shifting dimensions and shard counts:
/// like the serial scratch-soundness test, but re-striping between rounds
/// with stale high-index state present.
#[test]
fn sharded_scratch_reuse_across_shifting_workloads_is_sound() {
    let mut rng = ChaCha8Rng::seed_from_u64(4040);
    let mut sharded = ShardedScratch::new();
    let fab = FabTopK::new();
    for &(dim, n, k, shards) in &[
        (64, 5, 9, 4),
        (8, 2, 3, 8),
        (128, 7, 17, 2),
        (16, 3, 4, 3),
        (128, 7, 17, 5),
    ] {
        let exec = Executor::new(shards).with_min_items(1);
        let uploads = random_topk_uploads(&mut rng, n, dim, k);
        let expected = reference::fab_select(&uploads, dim, k);
        let got = fab.select_parallel(&uploads, dim, k, &mut sharded, &exec);
        assert_eq!(got, expected, "dim {dim}, n {n}, k {k}, shards {shards}");
        let again = fab.select_parallel(&uploads, dim, k, &mut sharded, &exec);
        assert_eq!(again, expected, "repeat on same sharded scratch: dim {dim}");
    }
}

/// Degenerate sharded inputs fall back to (and equal) the serial path.
#[test]
fn degenerate_sharded_inputs_match_reference() {
    let mut sharded = ShardedScratch::new();
    let exec = Executor::new(4).with_min_items(1);
    let fab = FabTopK::new();

    let expected = reference::fab_select(&[], 10, 3);
    assert_eq!(
        fab.select_parallel(&[], 10, 3, &mut sharded, &exec),
        expected
    );

    let uploads = vec![ClientUpload::new(0, 1.0, vec![(1, 2.0), (3, -1.0)])];
    let expected = reference::fab_select(&uploads, 5, 0);
    assert_eq!(
        fab.select_parallel(&uploads, 5, 0, &mut sharded, &exec),
        expected
    );

    // Clients with empty uploads mixed in, more shards than indices.
    let uploads = vec![
        ClientUpload::new(0, 0.5, vec![]),
        ClientUpload::new(1, 0.5, vec![(2, 4.0), (0, -3.0)]),
    ];
    let expected = reference::fab_select(&uploads, 4, 2);
    let exec = Executor::new(8).with_min_items(1);
    assert_eq!(
        fab.select_parallel(&uploads, 4, 2, &mut sharded, &exec),
        expected
    );
}

/// An out-of-range upload index must panic (as the serial path does), not
/// deadlock the coordination: the bucketing pass's bounds check and the
/// per-worker result channels guarantee the scope unwinds.
#[test]
#[should_panic]
fn sharded_out_of_range_index_panics_instead_of_hanging() {
    let uploads: Vec<ClientUpload> = (0..4)
        .map(|i| ClientUpload::new(i, 0.25, vec![(i, 1.0), (9, 1.0)]))
        .collect();
    let exec = Executor::new(4).with_min_items(1);
    let mut sharded = ShardedScratch::new();
    let _ = FabTopK::new().select_parallel(&uploads, 5, 2, &mut sharded, &exec);
}

/// Degenerate inputs go through the same equivalence check.
#[test]
fn degenerate_inputs_match_reference() {
    let mut scratch = SelectionScratch::new();
    let fab = FabTopK::new();

    // No uploads at all.
    let expected = reference::fab_select(&[], 10, 3);
    assert_eq!(fab.select_into(&[], 10, 3, &mut scratch), expected);

    // k = 0.
    let uploads = vec![ClientUpload::new(0, 1.0, vec![(1, 2.0), (3, -1.0)])];
    let expected = reference::fab_select(&uploads, 5, 0);
    assert_eq!(fab.select_into(&uploads, 5, 0, &mut scratch), expected);

    // Clients with empty uploads mixed in.
    let uploads = vec![
        ClientUpload::new(0, 0.5, vec![]),
        ClientUpload::new(1, 0.5, vec![(2, 4.0), (0, -3.0)]),
    ];
    let expected = reference::fab_select(&uploads, 4, 2);
    assert_eq!(fab.select_into(&uploads, 4, 2, &mut scratch), expected);
}
