//! Reusable workspace for the im2col convolution lowering.
//!
//! [`SimpleCnn`] lowers its 3x3 valid convolution to a matrix multiply: the
//! input batch is unrolled into a *column matrix* whose column `(b, y, x)`
//! holds the flattened receptive field of output position `(y, x)` of sample
//! `b`, so the whole batch's convolution becomes one
//! `weights (O x C·9) · columns (C·9 x B·P)` product against
//! [`agsfl_tensor::Matrix`]. The ReLU + 2x2 average pooling pass is fused
//! directly over the column-major convolution output, and the backward pass
//! reuses the same column buffer: both weight gradients are matrix products
//! against matrices already in the workspace (`∂L/∂W_conv = dpre · columnsᵀ`,
//! the col2im-style contraction), so no scatter back to image layout is ever
//! needed — the convolution is the first layer and input gradients are not
//! required.
//!
//! [`Im2colScratch`] owns every intermediate of that pipeline. Like
//! `SelectionScratch` in `agsfl-sparse`, it is epoch-stamped and
//! demand-tracked: [`Im2colScratch::begin`] bumps the generation counter
//! and reshapes the buffers for the call's geometry, reusing their
//! allocations (every active slot is either fully overwritten by its
//! producer pass or explicitly cleared), so a caller that holds one scratch
//! across rounds runs the CNN hot path allocation-free in steady state.
//! Capacity is not pinned at the high-water mark: each buffer remembers an
//! exponentially decaying demand and releases memory once its capacity
//! exceeds four times recent use. The
//! workspace carries no state between generations: two identical calls on a
//! shared scratch return identical results (pinned by the reference
//! proptests in `crates/ml/tests/cnn_equivalence.rs`).
//!
//! [`SimpleCnn`]: crate::model::SimpleCnn

use agsfl_tensor::Matrix;

/// Reusable buffers for [`SimpleCnn`]'s im2col forward and backward passes.
///
/// Create one with [`Im2colScratch::new`] and pass it to
/// [`SimpleCnn::forward_with`] / [`SimpleCnn::loss_and_grad_with`]; the
/// buffers are sized on first use and reused afterwards. See the module docs
/// for the lowering itself.
///
/// # Examples
///
/// ```
/// use agsfl_ml::model::{Im2colScratch, Model, SimpleCnn};
/// use agsfl_tensor::Matrix;
///
/// let cnn = SimpleCnn::new(1, 6, 6, 2, 3);
/// let params = vec![0.01; cnn.num_params()];
/// let x = Matrix::zeros(4, cnn.input_dim());
///
/// let mut scratch = Im2colScratch::new();
/// let a = cnn.forward_with(&params, &x, &mut scratch);
/// let b = cnn.forward_with(&params, &x, &mut scratch); // allocation-free reuse
/// assert_eq!(a, b);
/// assert_eq!(scratch.epoch(), 2);
/// ```
///
/// [`SimpleCnn`]: crate::model::SimpleCnn
/// [`SimpleCnn::forward_with`]: crate::model::SimpleCnn::forward_with
/// [`SimpleCnn::loss_and_grad_with`]: crate::model::SimpleCnn::loss_and_grad_with
#[derive(Debug, Clone, Default)]
pub struct Im2colScratch {
    /// Generation counter: bumped by [`Im2colScratch::begin`]; buffers are
    /// only meaningful within the generation that produced them.
    epoch: u64,
    /// Column matrix, shape `(C·K·K) x (B·P)`: column `b·P + p` is the
    /// receptive field of output position `p` of sample `b`.
    pub(crate) cols: Matrix,
    /// Pre-activation convolution output, shape `O x (B·P)`.
    pub(crate) pre: Matrix,
    /// Pooled activations, shape `B x (O·ph·pw)` — the fully connected
    /// layer's input batch.
    pub(crate) pooled: Matrix,
    /// Convolution weights staged as an `O x (C·K·K)` matrix (a row-major
    /// copy of the flat parameter block).
    pub(crate) conv_w: Matrix,
    /// Fully connected weights staged as a `pooled_dim x num_classes`
    /// matrix (a row-major copy of the flat parameter block).
    pub(crate) fc_w: Matrix,
    /// Backward: gradient at the convolution pre-activations, `O x (B·P)`.
    pub(crate) dpre: Matrix,
    /// Backward: gradient at the pooled activations, `B x (O·ph·pw)`.
    pub(crate) dpooled: Matrix,
    /// Decaying demand marks (elements) for the seven buffers above, in
    /// field order; see [`Im2colScratch::begin`].
    demand: [usize; 7],
}

/// Smallest capacity (elements; 16 KiB of `f32`) a workspace buffer bothers
/// shrinking below.
const SHRINK_FLOOR: usize = 4096;

/// The decaying-demand shrink policy of `agsfl_sparse`'s and `agsfl_wire`'s
/// scratches, applied to a [`Matrix`] buffer: the element count of the
/// generation that just ended refreshes an exponentially decaying
/// high-water mark, and capacity is released once it exceeds four times
/// that demand. Steady-state geometry never triggers an allocation or a
/// release; a workspace that once served a much larger batch (e.g. an
/// evaluation sweep's test chunks) lets go of that memory after a few
/// smaller generations.
fn note_demand_and_shrink(m: &mut Matrix, demand: &mut usize) {
    let used = m.rows() * m.cols();
    *demand = used.max(*demand / 2).max(SHRINK_FLOOR);
    if m.capacity() > *demand * 4 {
        m.shrink_capacity_to(*demand * 2);
    }
}

impl Im2colScratch {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current generation counter (starts at 0, bumped once per
    /// forward/backward call). Exposed for tests and diagnostics.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total backing capacity across all buffers, in elements (for memory
    /// audits and the shrink tests).
    pub fn capacity_elems(&self) -> usize {
        [
            &self.cols,
            &self.pre,
            &self.pooled,
            &self.conv_w,
            &self.fc_w,
            &self.dpre,
            &self.dpooled,
        ]
        .iter()
        .map(|m| m.capacity())
        .sum()
    }

    /// Starts a new generation: bumps the epoch and returns `&mut self` for
    /// the producing pass to reshape the buffers it needs. O(1) unless the
    /// geometry grew — or unless the decayed per-buffer demand (observed
    /// from the shapes the previous generation left behind) dropped far
    /// below a buffer's held capacity, in which case that memory is
    /// released rather than pinned at its high-water mark forever.
    pub(crate) fn begin(&mut self) {
        let Self {
            cols,
            pre,
            pooled,
            conv_w,
            fc_w,
            dpre,
            dpooled,
            demand,
            ..
        } = self;
        for (m, d) in [cols, pre, pooled, conv_w, fc_w, dpre, dpooled]
            .into_iter()
            .zip(demand.iter_mut())
        {
            note_demand_and_shrink(m, d);
        }
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_shrink_when_batch_demand_drops() {
        let mut scratch = Im2colScratch::new();
        scratch.begin();
        scratch.cols.resize_for_overwrite(512, 4096);
        let peak = scratch.capacity_elems();
        assert!(peak >= 512 * 4096);
        for _ in 0..24 {
            scratch.begin();
            scratch.cols.resize_for_overwrite(16, 64);
        }
        scratch.begin();
        assert!(
            scratch.capacity_elems() < peak / 4,
            "capacity {} did not shrink from peak {}",
            scratch.capacity_elems(),
            peak
        );
    }

    #[test]
    fn steady_state_capacity_is_stable() {
        let mut scratch = Im2colScratch::new();
        scratch.begin();
        scratch.cols.resize_for_overwrite(64, 1024);
        scratch.begin();
        scratch.cols.resize_for_overwrite(64, 1024);
        let settled = scratch.capacity_elems();
        for _ in 0..50 {
            scratch.begin();
            scratch.cols.resize_for_overwrite(64, 1024);
        }
        assert_eq!(scratch.capacity_elems(), settled);
    }
}
