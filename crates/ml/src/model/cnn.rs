use agsfl_tensor::{init, ops, Matrix};
use rand::RngCore;

use crate::loss::batch_cross_entropy_with_grad;
use crate::model::im2col::Im2colScratch;
use crate::model::{check_input, check_params, Model};

/// A small convolutional network: one 3x3 convolution, ReLU, 2x2 average
/// pooling and a fully connected soft-max output layer.
///
/// The paper trains a CNN with more than 400,000 weights; this model provides
/// the same *kind* of parameter structure (convolutional filters followed by a
/// dense classifier) at a configurable size, so experiments that want a
/// convolutional gradient spectrum rather than an MLP one can use it (see
/// DESIGN.md, substitution table). Inputs are flattened images in
/// channel-major order: element `(c, y, x)` lives at index
/// `c * height * width + y * width + x`.
///
/// Parameter layout in the flat vector:
///
/// 1. convolution weights `[out_channels][in_channels][3][3]`,
/// 2. convolution biases `[out_channels]`,
/// 3. fully connected weights `[pooled_dim x num_classes]` (row-major),
/// 4. fully connected biases `[num_classes]`.
///
/// # Implementation
///
/// Both passes run through an **im2col lowering** (see
/// [`Im2colScratch`]): the batch is unrolled into a column matrix once, the
/// convolution becomes a single `(O x C·9) · (C·9 x B·P)` matrix product,
/// ReLU + average pooling are fused over the column layout, and the backward
/// pass contracts the gradient against the same column buffer
/// (`∂L/∂W_conv = dpre · colsᵀ`) instead of re-walking receptive fields. The
/// original scalar-loop implementation survives as the executable spec in
/// [`crate::reference`], and `crates/ml/tests/cnn_equivalence.rs` pins the
/// two against each other. The plain [`Model`] methods reuse a per-thread
/// workspace, so `dyn Model` callers (the FL round engine) amortize the
/// buffers too; callers that want explicit control can hold an
/// [`Im2colScratch`] and use [`SimpleCnn::forward_with`] /
/// [`SimpleCnn::loss_and_grad_with`].
///
/// # Examples
///
/// ```
/// use agsfl_ml::model::{Model, SimpleCnn};
///
/// let cnn = SimpleCnn::new(1, 8, 8, 4, 10);
/// assert_eq!(cnn.input_dim(), 64);
/// assert!(cnn.num_params() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleCnn {
    in_channels: usize,
    height: usize,
    width: usize,
    out_channels: usize,
    num_classes: usize,
}

const KERNEL: usize = 3;

thread_local! {
    /// Per-thread im2col workspace behind the plain [`Model`] methods, so
    /// trait-object callers (the FL round engine's `dyn Model` clients) get
    /// scratch reuse without threading a workspace through the trait: a
    /// round-engine worker processing its chunk of clients allocates once
    /// per thread, not once per client. Sound because the scratch carries no
    /// state between generations (observational purity, pinned by the
    /// equivalence proptests), so the shared buffer never changes results.
    static THREAD_SCRATCH: std::cell::RefCell<Im2colScratch> =
        std::cell::RefCell::new(Im2colScratch::new());
}

impl SimpleCnn {
    /// Creates a CNN for `in_channels x height x width` inputs with
    /// `out_channels` 3x3 filters and `num_classes` outputs.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the image is smaller than the 3x3
    /// kernel.
    pub fn new(
        in_channels: usize,
        height: usize,
        width: usize,
        out_channels: usize,
        num_classes: usize,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && num_classes > 0);
        assert!(
            height >= KERNEL && width >= KERNEL,
            "image must be at least {KERNEL}x{KERNEL}"
        );
        Self {
            in_channels,
            height,
            width,
            out_channels,
            num_classes,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Input image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Input image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of 3x3 convolution filters (output channels).
    pub fn filters(&self) -> usize {
        self.out_channels
    }

    /// Spatial size of the convolution output (`height - 2`, `width - 2`).
    pub fn conv_output_size(&self) -> (usize, usize) {
        (self.height - KERNEL + 1, self.width - KERNEL + 1)
    }

    /// Spatial size after 2x2 average pooling.
    pub fn pooled_size(&self) -> (usize, usize) {
        let (ch, cw) = self.conv_output_size();
        (ch / 2, cw / 2)
    }

    /// Length of a flattened receptive field (`in_channels · 3 · 3`) — the
    /// row count of the im2col column matrix.
    fn patch_dim(&self) -> usize {
        self.in_channels * KERNEL * KERNEL
    }

    fn conv_weight_len(&self) -> usize {
        self.out_channels * self.patch_dim()
    }

    fn pooled_dim(&self) -> usize {
        let (ph, pw) = self.pooled_size();
        self.out_channels * ph * pw
    }

    fn fc_weight_len(&self) -> usize {
        self.pooled_dim() * self.num_classes
    }

    /// Offsets of the four parameter blocks: `(conv_w, conv_b, fc_w, fc_b)`.
    pub(crate) fn offsets(&self) -> (usize, usize, usize, usize) {
        let conv_w = 0;
        let conv_b = conv_w + self.conv_weight_len();
        let fc_w = conv_b + self.out_channels;
        let fc_b = fc_w + self.fc_weight_len();
        (conv_w, conv_b, fc_w, fc_b)
    }

    #[inline]
    pub(crate) fn input_index(&self, c: usize, y: usize, x: usize) -> usize {
        c * self.height * self.width + y * self.width + x
    }

    #[inline]
    pub(crate) fn conv_w_index(&self, o: usize, c: usize, ky: usize, kx: usize) -> usize {
        ((o * self.in_channels + c) * KERNEL + ky) * KERNEL + kx
    }

    /// Stages the two weight blocks of `params` as matrices in the scratch.
    ///
    /// Both blocks are already row-major in the layouts the lowering needs
    /// (`O x C·9` and `pooled_dim x num_classes`), so this is two memcpys.
    fn load_weights(&self, params: &[f32], scratch: &mut Im2colScratch) {
        let (conv_w_off, _, fc_w_off, fc_b_off) = self.offsets();
        scratch
            .conv_w
            .resize_for_overwrite(self.out_channels, self.patch_dim());
        scratch
            .conv_w
            .as_mut_slice()
            .copy_from_slice(&params[conv_w_off..conv_w_off + self.conv_weight_len()]);
        scratch
            .fc_w
            .resize_for_overwrite(self.pooled_dim(), self.num_classes);
        scratch
            .fc_w
            .as_mut_slice()
            .copy_from_slice(&params[fc_w_off..fc_b_off]);
    }

    /// Unrolls the batch into the column matrix: column `b·P + p` holds the
    /// flattened receptive field of output position `p` of sample `b`.
    ///
    /// Row `(c·3 + ky)·3 + kx` of the result is filled with contiguous
    /// `copy_from_slice` runs of one output row each, because for fixed
    /// `(c, ky, kx)` the receptive-field pixels of output positions
    /// `(y, 0..cw)` are exactly the input pixels `(c, y+ky, kx..kx+cw)`.
    fn im2col(&self, x: &Matrix, cols: &mut Matrix) {
        let (ch, cw) = self.conv_output_size();
        let positions = ch * cw;
        let batch = x.rows();
        cols.resize_for_overwrite(self.patch_dim(), batch * positions);
        for c in 0..self.in_channels {
            for ky in 0..KERNEL {
                for kx in 0..KERNEL {
                    let row = cols.row_mut((c * KERNEL + ky) * KERNEL + kx);
                    for b in 0..batch {
                        let sample = x.row(b);
                        let dst = &mut row[b * positions..(b + 1) * positions];
                        for y in 0..ch {
                            let src_start = self.input_index(c, y + ky, kx);
                            dst[y * cw..(y + 1) * cw]
                                .copy_from_slice(&sample[src_start..src_start + cw]);
                        }
                    }
                }
            }
        }
    }

    /// Runs im2col, the convolution matmul (+ bias) and the fused
    /// ReLU/average-pooling pass, leaving `cols`, `pre` and `pooled` staged
    /// in the scratch for the backward pass.
    fn forward_conv(&self, params: &[f32], x: &Matrix, scratch: &mut Im2colScratch) {
        let (_, conv_b_off, _, _) = self.offsets();
        let (ch, cw) = self.conv_output_size();
        let (ph, pw) = self.pooled_size();
        let positions = ch * cw;
        let batch = x.rows();

        self.load_weights(params, scratch);
        self.im2col(x, &mut scratch.cols);
        // Seed the pre-activations with the bias and accumulate the matmul
        // on top: one write pass instead of a zero fill plus a read-modify
        // bias pass, and the same bias-first fold as the scalar reference.
        scratch
            .pre
            .resize_for_overwrite(self.out_channels, batch * positions);
        for o in 0..self.out_channels {
            let bias = params[conv_b_off + o];
            scratch.pre.row_mut(o).fill(bias);
        }
        scratch.conv_w.matmul_acc(&scratch.cols, &mut scratch.pre);

        // Fused ReLU + 2x2 average pooling straight off the column layout.
        scratch
            .pooled
            .resize_for_overwrite(batch, self.pooled_dim());
        for b in 0..batch {
            let pre = &scratch.pre;
            let pooled_row = scratch.pooled.row_mut(b);
            for o in 0..self.out_channels {
                let pre_row = &pre.row(o)[b * positions..(b + 1) * positions];
                for py in 0..ph {
                    let r0 = &pre_row[py * 2 * cw..py * 2 * cw + cw];
                    let r1 = &pre_row[(py * 2 + 1) * cw..(py * 2 + 1) * cw + cw];
                    let dst = &mut pooled_row[(o * ph + py) * pw..(o * ph + py) * pw + pw];
                    // Same fold order as the scalar reference: (dy,dx) in
                    // (0,0), (0,1), (1,0), (1,1).
                    for (px, d) in dst.iter_mut().enumerate() {
                        *d = (ops::relu(r0[px * 2])
                            + ops::relu(r0[px * 2 + 1])
                            + ops::relu(r1[px * 2])
                            + ops::relu(r1[px * 2 + 1]))
                            / 4.0;
                    }
                }
            }
        }
    }

    /// Forward pass reusing an explicit [`Im2colScratch`] (the
    /// allocation-free hot path; the [`Model::forward`] impl wraps this with
    /// a per-call workspace).
    ///
    /// # Panics
    ///
    /// Panics on parameter/input dimension mismatches, like
    /// [`Model::forward`].
    pub fn forward_with(&self, params: &[f32], x: &Matrix, scratch: &mut Im2colScratch) -> Matrix {
        check_params(self, params);
        check_input(self, x);
        let (_, _, _, fc_b_off) = self.offsets();
        scratch.begin();
        self.forward_conv(params, x, scratch);
        let mut logits = scratch.pooled.matmul(&scratch.fc_w);
        logits.add_row_broadcast(&params[fc_b_off..fc_b_off + self.num_classes]);
        logits
    }

    /// Row-parallel forward pass: splits the batch into one contiguous
    /// row chunk per worker of `exec`'s persistent pool and runs
    /// [`Model::forward`] on each chunk concurrently (each worker reuses
    /// its own thread-local [`Im2colScratch`]), concatenating the logit
    /// rows in chunk order.
    ///
    /// **Bit-identical to the unsplit forward pass** for every executor
    /// configuration: each logit is a fold over the patch dimension (conv)
    /// and the pooled dimension (fully connected), and the gemm kernels'
    /// fold order over that contraction axis does not depend on how many
    /// batch rows share the product — so evaluating a sample alone or
    /// inside any batch produces the same bits (this is the row
    /// independence the [`Model`] contract documents, and
    /// `forward_batched_is_bit_identical` pins it per thread count). The
    /// backward pass deliberately has **no** such sibling: its weight
    /// gradients accumulate across the batch in a fixed fold order, so
    /// row-splitting it would reassociate floating-point sums and break
    /// the golden trajectories.
    ///
    /// Falls back to the plain forward when `exec` would not parallelize
    /// `x.rows()` items. Nested inside another executor region (for
    /// example the round engine's per-client pass) the chunks run inline
    /// serially — same bits, no deadlock.
    ///
    /// # Panics
    ///
    /// Panics on parameter/input dimension mismatches, like
    /// [`Model::forward`].
    pub fn forward_batched(
        &self,
        params: &[f32],
        x: &Matrix,
        exec: &agsfl_exec::Executor,
    ) -> Matrix {
        // Observation-only accounting (see `crate::stats`): disabled runs
        // pay one relaxed load and never read the clock.
        let t0 = crate::stats::enabled().then(std::time::Instant::now);
        let out = self.forward_batched_inner(params, x, exec);
        if let Some(t0) = t0 {
            crate::stats::record(out.rows() as u64, t0.elapsed().as_nanos() as u64);
        }
        out
    }

    fn forward_batched_inner(
        &self,
        params: &[f32],
        x: &Matrix,
        exec: &agsfl_exec::Executor,
    ) -> Matrix {
        check_params(self, params);
        check_input(self, x);
        let batch = x.rows();
        if !exec.should_parallelize(batch) {
            return self.forward(params, x);
        }
        let cols = x.cols();
        let chunk = batch.div_ceil(exec.threads());
        let ranges: Vec<std::ops::Range<usize>> = (0..batch.div_ceil(chunk))
            .map(|i| i * chunk..((i + 1) * chunk).min(batch))
            .collect();
        // The chunk list already encodes the parallelize decision, so the
        // map must not re-apply the executor's min-items gate.
        let parts: Vec<Matrix> = exec.clone().with_min_items(1).map_ref(&ranges, |r| {
            let rows = Matrix::from_vec(
                r.len(),
                cols,
                x.as_slice()[r.start * cols..r.end * cols].to_vec(),
            );
            self.forward(params, &rows)
        });
        let mut flat = Vec::with_capacity(batch * self.num_classes);
        for part in parts {
            flat.extend_from_slice(part.as_slice());
        }
        Matrix::from_vec(batch, self.num_classes, flat)
    }

    /// Loss + gradient reusing an explicit [`Im2colScratch`] (the
    /// allocation-free hot path; the [`Model::loss_and_grad`] impl wraps
    /// this with a per-call workspace).
    ///
    /// The backward pass is the col2im-style contraction described on
    /// [`Im2colScratch`]: both weight gradients are matrix products
    /// accumulated directly into the flat gradient vector, in the
    /// sample-major order documented on the [`Model`] trait.
    ///
    /// # Panics
    ///
    /// Panics on parameter/input/label dimension mismatches, like
    /// [`Model::loss_and_grad`].
    pub fn loss_and_grad_with(
        &self,
        params: &[f32],
        x: &Matrix,
        labels: &[usize],
        scratch: &mut Im2colScratch,
    ) -> (f32, Vec<f32>) {
        check_params(self, params);
        check_input(self, x);
        let (conv_w_off, conv_b_off, fc_w_off, fc_b_off) = self.offsets();
        let (ch, cw) = self.conv_output_size();
        let (ph, pw) = self.pooled_size();
        let positions = ch * cw;
        let batch = x.rows();

        scratch.begin();
        self.forward_conv(params, x, scratch);
        let mut logits = scratch.pooled.matmul(&scratch.fc_w);
        logits.add_row_broadcast(&params[fc_b_off..fc_b_off + self.num_classes]);
        let (loss, dlogits) = batch_cross_entropy_with_grad(&logits, labels);

        let mut grad = vec![0.0f32; self.num_params()];

        // Fully connected layer: both gradients and the back-propagated
        // pooled gradient are single matmuls.
        scratch
            .pooled
            .transpose_matmul_acc(&dlogits, &mut grad[fc_w_off..fc_b_off]);
        grad[fc_b_off..fc_b_off + self.num_classes].copy_from_slice(&dlogits.sum_rows());
        scratch
            .dpooled
            .resize_for_overwrite(batch, self.pooled_dim());
        scratch.dpooled.fill(0.0);
        dlogits.matmul_transpose_acc(&scratch.fc_w, scratch.dpooled.as_mut_slice());

        // Average pooling + ReLU backward into the column-layout
        // pre-activations. Positions not covered by a 2x2 pooling window
        // (odd trailing row/column) keep a zero gradient.
        scratch
            .dpre
            .resize_for_overwrite(self.out_channels, batch * positions);
        scratch.dpre.fill(0.0);
        for b in 0..batch {
            let dpooled_row = scratch.dpooled.row(b);
            for o in 0..self.out_channels {
                let pre_row = &scratch.pre.row(o)[b * positions..(b + 1) * positions];
                let dpre_row = &mut scratch.dpre.row_mut(o)[b * positions..(b + 1) * positions];
                for py in 0..ph {
                    for px in 0..pw {
                        let g = dpooled_row[(o * ph + py) * pw + px] / 4.0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = (py * 2 + dy) * cw + px * 2 + dx;
                                dpre_row[idx] = g * ops::relu_grad(pre_row[idx]);
                            }
                        }
                    }
                }
            }
        }

        // Convolution gradients: the bias gradient is a row sum and the
        // weight gradient the col2im contraction against the column buffer.
        for o in 0..self.out_channels {
            let mut acc = 0.0f32;
            for &g in scratch.dpre.row(o) {
                acc += g;
            }
            grad[conv_b_off + o] = acc;
        }
        scratch
            .dpre
            .matmul_transpose_acc(&scratch.cols, &mut grad[conv_w_off..conv_b_off]);

        (loss, grad)
    }
}

impl Model for SimpleCnn {
    fn input_dim(&self) -> usize {
        self.in_channels * self.height * self.width
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn num_params(&self) -> usize {
        self.conv_weight_len() + self.out_channels + self.fc_weight_len() + self.num_classes
    }

    fn init_params(&self, rng: &mut dyn RngCore) -> Vec<f32> {
        let mut params = Vec::with_capacity(self.num_params());
        let conv_fan_in = self.in_channels * KERNEL * KERNEL;
        params.extend(init::normal_vec(
            self.conv_weight_len(),
            0.0,
            (2.0 / conv_fan_in as f32).sqrt(),
            rng,
        ));
        params.extend(std::iter::repeat_n(0.0f32, self.out_channels));
        let fc = init::xavier_uniform(self.pooled_dim(), self.num_classes, rng);
        params.extend_from_slice(fc.as_slice());
        params.extend(std::iter::repeat_n(0.0f32, self.num_classes));
        params
    }

    fn forward(&self, params: &[f32], x: &Matrix) -> Matrix {
        THREAD_SCRATCH.with(|s| self.forward_with(params, x, &mut s.borrow_mut()))
    }

    fn loss_and_grad(&self, params: &[f32], x: &Matrix, labels: &[usize]) -> (f32, Vec<f32>) {
        THREAD_SCRATCH.with(|s| self.loss_and_grad_with(params, x, labels, &mut s.borrow_mut()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_check;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_cnn() -> SimpleCnn {
        SimpleCnn::new(1, 6, 6, 2, 3)
    }

    fn toy_batch(model: &SimpleCnn, batch: usize) -> (Matrix, Vec<usize>) {
        let x = Matrix::from_fn(batch, model.input_dim(), |i, j| {
            (((i * 13 + j * 7) % 11) as f32) * 0.1 - 0.5
        });
        let labels = (0..batch).map(|i| i % model.num_classes()).collect();
        (x, labels)
    }

    #[test]
    fn dimensions_and_param_count() {
        let m = toy_cnn();
        assert_eq!(m.input_dim(), 36);
        assert_eq!(m.conv_output_size(), (4, 4));
        assert_eq!(m.pooled_size(), (2, 2));
        // conv: 2*1*3*3 = 18, conv bias 2, fc: 2*2*2*3 = 24, fc bias 3.
        assert_eq!(m.num_params(), 18 + 2 + 24 + 3);
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let m = toy_cnn();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let params = m.init_params(&mut rng);
        assert_eq!(params.len(), m.num_params());
        let (x, _) = toy_batch(&m, 3);
        let logits = m.forward(&params, &x);
        assert_eq!(logits.shape(), (3, 3));
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_matches_reference_loops() {
        let m = SimpleCnn::new(2, 7, 6, 3, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let params = m.init_params(&mut rng);
        let (x, _) = toy_batch(&m, 5);
        let fast = m.forward(&params, &x);
        let slow = crate::reference::cnn_forward(&m, &params, &x);
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice().iter()) {
            assert!(
                (a - b).abs() <= 1e-4 * a.abs().max(b.abs()).max(1.0),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let m = toy_cnn();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let params = m.init_params(&mut rng);
        let (x, labels) = toy_batch(&m, 4);
        let coords: Vec<usize> = (0..m.num_params()).step_by(2).collect();
        let worst = finite_difference_check(&m, &params, &x, &labels, &coords, 1e-2);
        assert!(worst < 1.5e-2, "worst deviation {worst}");
    }

    #[test]
    fn scratch_reuse_is_observationally_pure() {
        let m = SimpleCnn::new(1, 6, 6, 2, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let params = m.init_params(&mut rng);
        let (x, labels) = toy_batch(&m, 4);
        let mut scratch = Im2colScratch::new();
        // Warm the scratch on a *different* geometry first: stale contents
        // must never leak into a later generation.
        let other = SimpleCnn::new(2, 8, 5, 4, 2);
        let other_params = vec![0.02; other.num_params()];
        let (ox, olabels) = toy_batch(&other, 3);
        let _ = other.loss_and_grad_with(&other_params, &ox, &olabels, &mut scratch);

        let fresh = m.loss_and_grad(&params, &x, &labels);
        let reused = m.loss_and_grad_with(&params, &x, &labels, &mut scratch);
        assert_eq!(fresh, reused);
        let again = m.loss_and_grad_with(&params, &x, &labels, &mut scratch);
        assert_eq!(reused, again);
        assert_eq!(
            m.forward(&params, &x),
            m.forward_with(&params, &x, &mut scratch)
        );
    }

    #[test]
    fn zero_filter_model_predicts_from_bias_only() {
        let m = toy_cnn();
        let mut params = vec![0.0f32; m.num_params()];
        let (_, _, _, fc_b_off) = m.offsets();
        params[fc_b_off + 1] = 3.0;
        let (x, _) = toy_batch(&m, 2);
        let logits = m.forward(&params, &x);
        for i in 0..2 {
            assert_eq!(agsfl_tensor::vecops::argmax(logits.row(i)), Some(1));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let m = toy_cnn();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let params = m.init_params(&mut rng);
        let x = Matrix::zeros(0, m.input_dim());
        assert_eq!(m.forward(&params, &x).shape(), (0, 3));
        let (loss, grad) = m.loss_and_grad(&params, &x, &[]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.len(), m.num_params());
    }

    #[test]
    fn training_reduces_loss() {
        let m = SimpleCnn::new(1, 6, 6, 4, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut params = m.init_params(&mut rng);
        // Class 0: bright top-left corner; class 1: bright bottom-right corner.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for s in 0..8 {
            let class = s % 2;
            let mut img = vec![0.0f32; 36];
            if class == 0 {
                img[0] = 1.0;
                img[1] = 1.0;
                img[6] = 1.0;
                img[7] = 1.0;
            } else {
                img[35] = 1.0;
                img[34] = 1.0;
                img[29] = 1.0;
                img[28] = 1.0;
            }
            // A little per-sample jitter so the batch is not two duplicated rows.
            img[12 + s] += 0.1;
            rows.push(img);
            labels.push(class);
        }
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let x = Matrix::from_vec(8, 36, flat);
        let initial = m.loss(&params, &x, &labels);
        let mut scratch = Im2colScratch::new();
        for _ in 0..500 {
            let (_, grad) = m.loss_and_grad_with(&params, &x, &labels, &mut scratch);
            crate::optim::sgd_step(&mut params, &grad, 0.3);
        }
        let trained = m.loss(&params, &x, &labels);
        assert!(trained < initial, "loss {initial} -> {trained}");
        assert!(m.accuracy(&params, &x, &labels) >= 0.75);
    }

    #[test]
    #[should_panic]
    fn too_small_image_panics() {
        let _ = SimpleCnn::new(1, 2, 2, 1, 2);
    }

    #[test]
    fn forward_batched_is_bit_identical() {
        let m = SimpleCnn::new(2, 7, 6, 3, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let params = m.init_params(&mut rng);
        let (x, _) = toy_batch(&m, 23);
        let serial = m.forward(&params, &x);
        for threads in [1usize, 2, 4, 8] {
            let exec = agsfl_exec::Executor::new(threads).with_min_items(1);
            let batched = m.forward_batched(&params, &x, &exec);
            assert_eq!(batched.shape(), serial.shape(), "threads={threads}");
            for (a, b) in batched.as_slice().iter().zip(serial.as_slice().iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn forward_batched_handles_tiny_and_empty_batches() {
        let m = toy_cnn();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let params = m.init_params(&mut rng);
        let exec = agsfl_exec::Executor::new(4);
        let empty = Matrix::zeros(0, m.input_dim());
        assert_eq!(m.forward_batched(&params, &empty, &exec).shape(), (0, 3));
        let (x, _) = toy_batch(&m, 2);
        let got = m.forward_batched(&params, &x, &exec);
        let want = m.forward(&params, &x);
        assert_eq!(got.as_slice(), want.as_slice());
    }
}
