use agsfl_tensor::{init, ops, Matrix};
use rand::RngCore;

use crate::loss::batch_cross_entropy_with_grad;
use crate::model::{check_input, check_params, Model};

/// A small convolutional network: one 3x3 convolution, ReLU, 2x2 average
/// pooling and a fully connected soft-max output layer.
///
/// The paper trains a CNN with more than 400,000 weights; this model provides
/// the same *kind* of parameter structure (convolutional filters followed by a
/// dense classifier) at a configurable size, so experiments that want a
/// convolutional gradient spectrum rather than an MLP one can use it (see
/// DESIGN.md, substitution table). Inputs are flattened images in
/// channel-major order: element `(c, y, x)` lives at index
/// `c * height * width + y * width + x`.
///
/// Parameter layout in the flat vector:
///
/// 1. convolution weights `[out_channels][in_channels][3][3]`,
/// 2. convolution biases `[out_channels]`,
/// 3. fully connected weights `[pooled_dim x num_classes]` (row-major),
/// 4. fully connected biases `[num_classes]`.
///
/// # Examples
///
/// ```
/// use agsfl_ml::model::{Model, SimpleCnn};
///
/// let cnn = SimpleCnn::new(1, 8, 8, 4, 10);
/// assert_eq!(cnn.input_dim(), 64);
/// assert!(cnn.num_params() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleCnn {
    in_channels: usize,
    height: usize,
    width: usize,
    out_channels: usize,
    num_classes: usize,
}

const KERNEL: usize = 3;

impl SimpleCnn {
    /// Creates a CNN for `in_channels x height x width` inputs with
    /// `out_channels` 3x3 filters and `num_classes` outputs.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the image is smaller than the 3x3
    /// kernel.
    pub fn new(
        in_channels: usize,
        height: usize,
        width: usize,
        out_channels: usize,
        num_classes: usize,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && num_classes > 0);
        assert!(
            height >= KERNEL && width >= KERNEL,
            "image must be at least {KERNEL}x{KERNEL}"
        );
        Self {
            in_channels,
            height,
            width,
            out_channels,
            num_classes,
        }
    }

    /// Spatial size of the convolution output (`height - 2`, `width - 2`).
    pub fn conv_output_size(&self) -> (usize, usize) {
        (self.height - KERNEL + 1, self.width - KERNEL + 1)
    }

    /// Spatial size after 2x2 average pooling.
    pub fn pooled_size(&self) -> (usize, usize) {
        let (ch, cw) = self.conv_output_size();
        (ch / 2, cw / 2)
    }

    fn conv_weight_len(&self) -> usize {
        self.out_channels * self.in_channels * KERNEL * KERNEL
    }

    fn pooled_dim(&self) -> usize {
        let (ph, pw) = self.pooled_size();
        self.out_channels * ph * pw
    }

    fn fc_weight_len(&self) -> usize {
        self.pooled_dim() * self.num_classes
    }

    /// Offsets of the four parameter blocks: `(conv_w, conv_b, fc_w, fc_b)`.
    fn offsets(&self) -> (usize, usize, usize, usize) {
        let conv_w = 0;
        let conv_b = conv_w + self.conv_weight_len();
        let fc_w = conv_b + self.out_channels;
        let fc_b = fc_w + self.fc_weight_len();
        (conv_w, conv_b, fc_w, fc_b)
    }

    #[inline]
    fn input_index(&self, c: usize, y: usize, x: usize) -> usize {
        c * self.height * self.width + y * self.width + x
    }

    #[inline]
    fn conv_w_index(&self, o: usize, c: usize, ky: usize, kx: usize) -> usize {
        ((o * self.in_channels + c) * KERNEL + ky) * KERNEL + kx
    }

    /// Convolution + ReLU + average pooling for one sample.
    ///
    /// Returns `(pre_activation, pooled)` where `pre_activation` is the raw
    /// convolution output (needed for the ReLU derivative).
    fn forward_sample(&self, params: &[f32], sample: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let (conv_w_off, conv_b_off, _, _) = self.offsets();
        let (ch, cw) = self.conv_output_size();
        let mut pre = vec![0.0f32; self.out_channels * ch * cw];
        for o in 0..self.out_channels {
            let bias = params[conv_b_off + o];
            for y in 0..ch {
                for x in 0..cw {
                    let mut acc = bias;
                    for c in 0..self.in_channels {
                        for ky in 0..KERNEL {
                            for kx in 0..KERNEL {
                                acc += sample[self.input_index(c, y + ky, x + kx)]
                                    * params[conv_w_off + self.conv_w_index(o, c, ky, kx)];
                            }
                        }
                    }
                    pre[(o * ch + y) * cw + x] = acc;
                }
            }
        }
        let (ph, pw) = self.pooled_size();
        let mut pooled = vec![0.0f32; self.out_channels * ph * pw];
        for o in 0..self.out_channels {
            for py in 0..ph {
                for px in 0..pw {
                    let mut acc = 0.0f32;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let y = py * 2 + dy;
                            let x = px * 2 + dx;
                            acc += ops::relu(pre[(o * ch + y) * cw + x]);
                        }
                    }
                    pooled[(o * ph + py) * pw + px] = acc / 4.0;
                }
            }
        }
        (pre, pooled)
    }
}

impl Model for SimpleCnn {
    fn input_dim(&self) -> usize {
        self.in_channels * self.height * self.width
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn num_params(&self) -> usize {
        self.conv_weight_len() + self.out_channels + self.fc_weight_len() + self.num_classes
    }

    fn init_params(&self, rng: &mut dyn RngCore) -> Vec<f32> {
        let mut params = Vec::with_capacity(self.num_params());
        let conv_fan_in = self.in_channels * KERNEL * KERNEL;
        params.extend(init::normal_vec(
            self.conv_weight_len(),
            0.0,
            (2.0 / conv_fan_in as f32).sqrt(),
            rng,
        ));
        params.extend(std::iter::repeat(0.0f32).take(self.out_channels));
        let fc = init::xavier_uniform(self.pooled_dim(), self.num_classes, rng);
        params.extend_from_slice(fc.as_slice());
        params.extend(std::iter::repeat(0.0f32).take(self.num_classes));
        params
    }

    fn forward(&self, params: &[f32], x: &Matrix) -> Matrix {
        check_params(self, params);
        check_input(self, x);
        let (_, _, fc_w_off, fc_b_off) = self.offsets();
        let pooled_dim = self.pooled_dim();
        let mut logits = Matrix::zeros(x.rows(), self.num_classes);
        for i in 0..x.rows() {
            let (_, pooled) = self.forward_sample(params, x.row(i));
            let out = logits.row_mut(i);
            for j in 0..self.num_classes {
                let mut acc = params[fc_b_off + j];
                for (p, &v) in pooled.iter().enumerate() {
                    acc += v * params[fc_w_off + p * self.num_classes + j];
                }
                let _ = pooled_dim;
                out[j] = acc;
            }
        }
        logits
    }

    fn loss_and_grad(&self, params: &[f32], x: &Matrix, labels: &[usize]) -> (f32, Vec<f32>) {
        check_params(self, params);
        check_input(self, x);
        let (conv_w_off, conv_b_off, fc_w_off, fc_b_off) = self.offsets();
        let (ch, cw) = self.conv_output_size();
        let (ph, pw) = self.pooled_size();

        // Forward pass, caching per-sample intermediates.
        let mut pres = Vec::with_capacity(x.rows());
        let mut pooleds = Vec::with_capacity(x.rows());
        let mut logits = Matrix::zeros(x.rows(), self.num_classes);
        for i in 0..x.rows() {
            let (pre, pooled) = self.forward_sample(params, x.row(i));
            let out = logits.row_mut(i);
            for j in 0..self.num_classes {
                let mut acc = params[fc_b_off + j];
                for (p, &v) in pooled.iter().enumerate() {
                    acc += v * params[fc_w_off + p * self.num_classes + j];
                }
                out[j] = acc;
            }
            pres.push(pre);
            pooleds.push(pooled);
        }
        let (loss, dlogits) = batch_cross_entropy_with_grad(&logits, labels);

        let mut grad = vec![0.0f32; self.num_params()];
        for i in 0..x.rows() {
            let sample = x.row(i);
            let dlog = dlogits.row(i);
            let pooled = &pooleds[i];
            let pre = &pres[i];

            // Fully connected layer gradients and back-propagated pooled grad.
            let mut dpooled = vec![0.0f32; pooled.len()];
            for (p, &pv) in pooled.iter().enumerate() {
                for j in 0..self.num_classes {
                    grad[fc_w_off + p * self.num_classes + j] += pv * dlog[j];
                    dpooled[p] += params[fc_w_off + p * self.num_classes + j] * dlog[j];
                }
            }
            for j in 0..self.num_classes {
                grad[fc_b_off + j] += dlog[j];
            }

            // Average pooling + ReLU backward into the convolution output.
            let mut dpre = vec![0.0f32; pre.len()];
            for o in 0..self.out_channels {
                for py in 0..ph {
                    for px in 0..pw {
                        let g = dpooled[(o * ph + py) * pw + px] / 4.0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let y = py * 2 + dy;
                                let x_ = px * 2 + dx;
                                let idx = (o * ch + y) * cw + x_;
                                dpre[idx] += g * ops::relu_grad(pre[idx]);
                            }
                        }
                    }
                }
            }

            // Convolution weight and bias gradients.
            for o in 0..self.out_channels {
                for y in 0..ch {
                    for x_ in 0..cw {
                        let g = dpre[(o * ch + y) * cw + x_];
                        if g == 0.0 {
                            continue;
                        }
                        grad[conv_b_off + o] += g;
                        for c in 0..self.in_channels {
                            for ky in 0..KERNEL {
                                for kx in 0..KERNEL {
                                    grad[conv_w_off + self.conv_w_index(o, c, ky, kx)] +=
                                        g * sample[self.input_index(c, y + ky, x_ + kx)];
                                }
                            }
                        }
                    }
                }
            }
        }
        (loss, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_check;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_cnn() -> SimpleCnn {
        SimpleCnn::new(1, 6, 6, 2, 3)
    }

    fn toy_batch(model: &SimpleCnn, batch: usize) -> (Matrix, Vec<usize>) {
        let x = Matrix::from_fn(batch, model.input_dim(), |i, j| {
            (((i * 13 + j * 7) % 11) as f32) * 0.1 - 0.5
        });
        let labels = (0..batch).map(|i| i % model.num_classes()).collect();
        (x, labels)
    }

    #[test]
    fn dimensions_and_param_count() {
        let m = toy_cnn();
        assert_eq!(m.input_dim(), 36);
        assert_eq!(m.conv_output_size(), (4, 4));
        assert_eq!(m.pooled_size(), (2, 2));
        // conv: 2*1*3*3 = 18, conv bias 2, fc: 2*2*2*3 = 24, fc bias 3.
        assert_eq!(m.num_params(), 18 + 2 + 24 + 3);
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let m = toy_cnn();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let params = m.init_params(&mut rng);
        assert_eq!(params.len(), m.num_params());
        let (x, _) = toy_batch(&m, 3);
        let logits = m.forward(&params, &x);
        assert_eq!(logits.shape(), (3, 3));
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let m = toy_cnn();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let params = m.init_params(&mut rng);
        let (x, labels) = toy_batch(&m, 4);
        let coords: Vec<usize> = (0..m.num_params()).step_by(2).collect();
        let worst = finite_difference_check(&m, &params, &x, &labels, &coords, 1e-2);
        assert!(worst < 1.5e-2, "worst deviation {worst}");
    }

    #[test]
    fn zero_filter_model_predicts_from_bias_only() {
        let m = toy_cnn();
        let mut params = vec![0.0f32; m.num_params()];
        let (_, _, _, fc_b_off) = m.offsets();
        params[fc_b_off + 1] = 3.0;
        let (x, _) = toy_batch(&m, 2);
        let logits = m.forward(&params, &x);
        for i in 0..2 {
            assert_eq!(agsfl_tensor::vecops::argmax(logits.row(i)), Some(1));
        }
    }

    #[test]
    fn training_reduces_loss() {
        let m = SimpleCnn::new(1, 6, 6, 4, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut params = m.init_params(&mut rng);
        // Class 0: bright top-left corner; class 1: bright bottom-right corner.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for s in 0..8 {
            let class = s % 2;
            let mut img = vec![0.0f32; 36];
            if class == 0 {
                img[0] = 1.0;
                img[1] = 1.0;
                img[6] = 1.0;
                img[7] = 1.0;
            } else {
                img[35] = 1.0;
                img[34] = 1.0;
                img[29] = 1.0;
                img[28] = 1.0;
            }
            // A little per-sample jitter so the batch is not two duplicated rows.
            img[12 + s] += 0.1;
            rows.push(img);
            labels.push(class);
        }
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let x = Matrix::from_vec(8, 36, flat);
        let initial = m.loss(&params, &x, &labels);
        for _ in 0..500 {
            let (_, grad) = m.loss_and_grad(&params, &x, &labels);
            crate::optim::sgd_step(&mut params, &grad, 0.3);
        }
        let trained = m.loss(&params, &x, &labels);
        assert!(trained < initial, "loss {initial} -> {trained}");
        assert!(m.accuracy(&params, &x, &labels) >= 0.75);
    }

    #[test]
    #[should_panic]
    fn too_small_image_panics() {
        let _ = SimpleCnn::new(1, 2, 2, 1, 2);
    }
}
