//! Models with flat parameter vectors.
//!
//! Every model implements [`Model`], which exposes the model as an opaque
//! `D`-dimensional parameter vector plus functions to compute logits, loss and
//! the loss gradient on a mini-batch. Keeping the parameters flat is what lets
//! the sparsification layer (`agsfl-sparse`) and the FL simulator (`agsfl-fl`)
//! treat the model exactly as the paper does: a weight vector `w ∈ R^D`
//! updated by `w(m) = w(m-1) - η ∇_s L(w(m-1))` (Eq. (1)).

mod cnn;
mod im2col;
mod linear;
mod mlp;

pub use cnn::SimpleCnn;
pub use im2col::Im2colScratch;
pub use linear::LinearSoftmax;
pub use mlp::Mlp;

use agsfl_tensor::Matrix;
use rand::RngCore;

use crate::loss::batch_cross_entropy;

/// A classification model whose parameters live in a single flat `Vec<f32>`.
///
/// # Contract
///
/// Implementations must uphold the following, which the rest of the
/// workspace (the sparsification layer, the parallel round engine and the
/// sharded evaluation sweeps) relies on:
///
/// * **Purity.** Every method is a pure function of `(params, inputs)`: the
///   model object itself holds only the architecture (dimensions), never
///   learned state. This guarantees that two federated clients holding
///   identical parameter vectors compute identical losses and gradients —
///   the synchronization invariant of Algorithm 1 in the paper.
/// * **Stable parameter layout.** A model defines a fixed layout of its
///   parameter blocks inside the flat vector (documented per model, e.g.
///   [`SimpleCnn`]'s `conv_w | conv_b | fc_w | fc_b`), and
///   [`Model::init_params`] and [`Model::loss_and_grad`] must agree on it.
///   The sparsifiers treat coordinates as opaque, so the layout may never
///   change between calls.
/// * **Sample-major gradient accumulation order.** The gradient returned by
///   [`Model::loss_and_grad`] is accumulated over the batch rows in
///   ascending sample order (row 0 first). Callers compare gradients across
///   implementations (the `agsfl_ml::reference` equivalence tests), so the
///   accumulation order is part of the observable behaviour, not an
///   implementation detail.
/// * **Row independence.** [`Model::forward`] must compute each output row
///   as a function of that row's input alone — no batch statistics. This is
///   what makes the executor's row-chunked evaluation sweeps
///   ([`crate::metrics`]) bit-identical to the serial pass for any chunking:
///   splitting a batch into contiguous sub-batches and concatenating the
///   logits yields exactly the bits of the unsplit call.
pub trait Model: Send + Sync + std::fmt::Debug {
    /// Dimension of a single input feature vector.
    fn input_dim(&self) -> usize;

    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Total number of parameters `D`.
    fn num_params(&self) -> usize;

    /// Draws an initial parameter vector.
    ///
    /// The returned vector always has length [`Model::num_params`].
    fn init_params(&self, rng: &mut dyn RngCore) -> Vec<f32>;

    /// Computes logits for a batch `x` of shape `(batch, input_dim)`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params.len() != self.num_params()` or the
    /// input width differs from [`Model::input_dim`].
    fn forward(&self, params: &[f32], x: &Matrix) -> Matrix;

    /// Computes the mean cross-entropy loss and its gradient with respect to
    /// the flat parameter vector on a mini-batch.
    ///
    /// The gradient has length [`Model::num_params`].
    fn loss_and_grad(&self, params: &[f32], x: &Matrix, labels: &[usize]) -> (f32, Vec<f32>);

    /// Computes the mean cross-entropy loss on a mini-batch.
    ///
    /// The default implementation runs [`Model::forward`] and evaluates the
    /// batch cross-entropy; implementations may override it with a cheaper
    /// fused version.
    fn loss(&self, params: &[f32], x: &Matrix, labels: &[usize]) -> f32 {
        batch_cross_entropy(&self.forward(params, x), labels)
    }

    /// Loss of a single sample, used by the derivative-sign estimator of the
    /// paper (Section IV-E) which evaluates one randomly chosen sample per
    /// client per round.
    fn sample_loss(&self, params: &[f32], features: &[f32], label: usize) -> f32 {
        let x = Matrix::from_vec(1, features.len(), features.to_vec());
        self.loss(params, &x, &[label])
    }

    /// Classification accuracy on a batch, in `[0, 1]`.
    fn accuracy(&self, params: &[f32], x: &Matrix, labels: &[usize]) -> f32 {
        if labels.is_empty() {
            return 0.0;
        }
        let logits = self.forward(params, x);
        let mut correct = 0usize;
        for (row, &label) in logits.iter_rows().zip(labels.iter()) {
            if agsfl_tensor::vecops::argmax(row) == Some(label) {
                correct += 1;
            }
        }
        correct as f32 / labels.len() as f32
    }
}

/// Checks a parameter slice against the model's expected dimension.
///
/// Shared helper used by all model implementations.
pub(crate) fn check_params(model: &dyn Model, params: &[f32]) {
    assert_eq!(
        params.len(),
        model.num_params(),
        "parameter vector has length {} but the model expects {}",
        params.len(),
        model.num_params()
    );
}

/// Checks a batch against the model's expected input width.
pub(crate) fn check_input(model: &dyn Model, x: &Matrix) {
    assert_eq!(
        x.cols(),
        model.input_dim(),
        "input batch has width {} but the model expects {}",
        x.cols(),
        model.input_dim()
    );
}

/// Verifies a model's analytic gradient against a central finite difference
/// on a handful of randomly selected coordinates.
///
/// Exposed as a public helper so downstream crates (and the property-based
/// test suites) can sanity-check new model implementations.
///
/// Returns the maximum absolute deviation observed.
pub fn finite_difference_check(
    model: &dyn Model,
    params: &[f32],
    x: &Matrix,
    labels: &[usize],
    coords: &[usize],
    eps: f32,
) -> f32 {
    let (_, grad) = model.loss_and_grad(params, x, labels);
    let mut worst = 0.0f32;
    for &c in coords {
        assert!(c < params.len(), "coordinate {c} out of range");
        let mut plus = params.to_vec();
        plus[c] += eps;
        let mut minus = params.to_vec();
        minus[c] -= eps;
        let fd = (model.loss(&plus, x, labels) - model.loss(&minus, x, labels)) / (2.0 * eps);
        worst = worst.max((fd - grad[c]).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_batch(input_dim: usize, classes: usize) -> (Matrix, Vec<usize>) {
        let x = Matrix::from_fn(4, input_dim, |i, j| {
            ((i * 7 + j * 3) % 5) as f32 * 0.1 - 0.2
        });
        let labels = (0..4).map(|i| i % classes).collect();
        (x, labels)
    }

    #[test]
    fn default_loss_matches_forward_cross_entropy() {
        let model = LinearSoftmax::new(6, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let params = model.init_params(&mut rng);
        let (x, labels) = tiny_batch(6, 3);
        let via_default = model.loss(&params, &x, &labels);
        let via_forward = batch_cross_entropy(&model.forward(&params, &x), &labels);
        assert!((via_default - via_forward).abs() < 1e-6);
    }

    #[test]
    fn sample_loss_matches_batch_of_one() {
        let model = LinearSoftmax::new(5, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let params = model.init_params(&mut rng);
        let features: Vec<f32> = (0..5).map(|i| i as f32 * 0.1).collect();
        let single = model.sample_loss(&params, &features, 2);
        let batch = model.loss(&params, &Matrix::from_vec(1, 5, features), &[2]);
        assert!((single - batch).abs() < 1e-6);
    }

    #[test]
    fn accuracy_is_between_zero_and_one() {
        let model = Mlp::new(8, &[6], 3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let params = model.init_params(&mut rng);
        let (x, labels) = tiny_batch(8, 3);
        let acc = model.accuracy(&params, &x, &labels);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn accuracy_of_empty_batch_is_zero() {
        let model = LinearSoftmax::new(3, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let params = model.init_params(&mut rng);
        assert_eq!(model.accuracy(&params, &Matrix::zeros(0, 3), &[]), 0.0);
    }

    #[test]
    fn models_are_object_safe() {
        let models: Vec<Box<dyn Model>> = vec![
            Box::new(LinearSoftmax::new(4, 2)),
            Box::new(Mlp::new(4, &[3], 2)),
        ];
        for m in &models {
            assert!(m.num_params() > 0);
        }
    }
}
