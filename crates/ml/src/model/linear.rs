use agsfl_tensor::{init, Matrix};
use rand::RngCore;

use crate::loss::batch_cross_entropy_with_grad;
use crate::model::{check_input, check_params, Model};

/// Multinomial logistic regression (a single linear layer followed by
/// soft-max cross-entropy).
///
/// Parameter layout in the flat vector: the `input_dim x num_classes` weight
/// matrix in row-major order, followed by the `num_classes` bias terms.
///
/// # Examples
///
/// ```
/// use agsfl_ml::model::{LinearSoftmax, Model};
/// use agsfl_tensor::Matrix;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let model = LinearSoftmax::new(4, 3);
/// assert_eq!(model.num_params(), 4 * 3 + 3);
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let params = model.init_params(&mut rng);
/// let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3, 0.4]]);
/// let logits = model.forward(&params, &x);
/// assert_eq!(logits.shape(), (1, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearSoftmax {
    input_dim: usize,
    num_classes: usize,
}

impl LinearSoftmax {
    /// Creates a logistic-regression model for `input_dim`-dimensional inputs
    /// and `num_classes` output classes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(input_dim: usize, num_classes: usize) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        assert!(num_classes > 0, "num_classes must be positive");
        Self {
            input_dim,
            num_classes,
        }
    }

    fn weight_len(&self) -> usize {
        self.input_dim * self.num_classes
    }

    /// Borrows the weight matrix portion of a flat parameter slice as a
    /// `(input_dim, num_classes)` matrix copy.
    fn weights(&self, params: &[f32]) -> Matrix {
        Matrix::from_vec(
            self.input_dim,
            self.num_classes,
            params[..self.weight_len()].to_vec(),
        )
    }

    fn biases<'p>(&self, params: &'p [f32]) -> &'p [f32] {
        &params[self.weight_len()..]
    }
}

impl Model for LinearSoftmax {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn num_params(&self) -> usize {
        self.weight_len() + self.num_classes
    }

    fn init_params(&self, rng: &mut dyn RngCore) -> Vec<f32> {
        let mut params = init::xavier_uniform(self.input_dim, self.num_classes, rng).into_vec();
        params.extend(std::iter::repeat_n(0.0f32, self.num_classes));
        params
    }

    fn forward(&self, params: &[f32], x: &Matrix) -> Matrix {
        check_params(self, params);
        check_input(self, x);
        let mut logits = x.matmul(&self.weights(params));
        logits.add_row_broadcast(self.biases(params));
        logits
    }

    fn loss_and_grad(&self, params: &[f32], x: &Matrix, labels: &[usize]) -> (f32, Vec<f32>) {
        let logits = self.forward(params, x);
        let (loss, dlogits) = batch_cross_entropy_with_grad(&logits, labels);
        // dW = X^T * dLogits, db = column sums of dLogits.
        let dw = x
            .transpose_matmul(&dlogits)
            .expect("shapes checked in forward");
        let db = dlogits.sum_rows();
        let mut grad = dw.into_vec();
        grad.extend_from_slice(&db);
        debug_assert_eq!(grad.len(), self.num_params());
        (loss, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_check;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn num_params_layout() {
        let m = LinearSoftmax::new(10, 4);
        assert_eq!(m.num_params(), 44);
        assert_eq!(m.input_dim(), 10);
        assert_eq!(m.num_classes(), 4);
    }

    #[test]
    fn init_params_length_and_zero_bias() {
        let m = LinearSoftmax::new(7, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let p = m.init_params(&mut rng);
        assert_eq!(p.len(), m.num_params());
        assert!(p[21..].iter().all(|&b| b == 0.0));
    }

    #[test]
    fn forward_zero_params_gives_zero_logits() {
        let m = LinearSoftmax::new(3, 2);
        let params = vec![0.0; m.num_params()];
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let logits = m.forward(&params, &x);
        assert!(logits.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn forward_known_values() {
        let m = LinearSoftmax::new(2, 2);
        // W = [[1, 0], [0, 1]], b = [0.5, -0.5]
        let params = vec![1.0, 0.0, 0.0, 1.0, 0.5, -0.5];
        let x = Matrix::from_rows(&[&[2.0, 3.0]]);
        let logits = m.forward(&params, &x);
        assert_eq!(logits.as_slice(), &[2.5, 2.5]);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let m = LinearSoftmax::new(5, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let params = m.init_params(&mut rng);
        let x = Matrix::from_fn(6, 5, |i, j| ((i + 2 * j) % 7) as f32 * 0.1 - 0.3);
        let labels = vec![0, 1, 2, 0, 1, 2];
        let coords: Vec<usize> = (0..m.num_params()).step_by(3).collect();
        let worst = finite_difference_check(&m, &params, &x, &labels, &coords, 1e-2);
        assert!(worst < 5e-3, "worst deviation {worst}");
    }

    #[test]
    fn training_reduces_loss() {
        let m = LinearSoftmax::new(4, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut params = m.init_params(&mut rng);
        // Linearly separable toy data.
        let x = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0, 0.0],
            &[0.9, 1.1, 0.1, 0.0],
            &[0.0, 0.0, 1.0, 1.0],
            &[0.1, 0.0, 0.9, 1.1],
        ]);
        let labels = vec![0, 0, 1, 1];
        let initial = m.loss(&params, &x, &labels);
        for _ in 0..200 {
            let (_, grad) = m.loss_and_grad(&params, &x, &labels);
            crate::optim::sgd_step(&mut params, &grad, 0.5);
        }
        let trained = m.loss(&params, &x, &labels);
        assert!(trained < initial * 0.2, "loss {initial} -> {trained}");
        assert_eq!(m.accuracy(&params, &x, &labels), 1.0);
    }

    #[test]
    #[should_panic]
    fn wrong_param_length_panics() {
        let m = LinearSoftmax::new(3, 2);
        let x = Matrix::zeros(1, 3);
        let _ = m.forward(&[0.0; 4], &x);
    }

    #[test]
    #[should_panic]
    fn wrong_input_width_panics() {
        let m = LinearSoftmax::new(3, 2);
        let params = vec![0.0; m.num_params()];
        let _ = m.forward(&params, &Matrix::zeros(1, 5));
    }

    proptest! {
        #[test]
        fn prop_gradient_length_is_num_params(
            input_dim in 1usize..8,
            classes in 2usize..6,
            batch in 1usize..5,
        ) {
            let m = LinearSoftmax::new(input_dim, classes);
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let params = m.init_params(&mut rng);
            let x = Matrix::from_fn(batch, input_dim, |i, j| ((i + j) % 3) as f32 - 1.0);
            let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
            let (loss, grad) = m.loss_and_grad(&params, &x, &labels);
            prop_assert!(loss.is_finite());
            prop_assert_eq!(grad.len(), m.num_params());
        }
    }
}
