use agsfl_tensor::{init, ops, Matrix};
use rand::RngCore;

use crate::loss::batch_cross_entropy_with_grad;
use crate::model::{check_input, check_params, Model};

/// A fully connected multi-layer perceptron with ReLU activations.
///
/// The architecture is `input_dim -> hidden[0] -> ... -> hidden[n-1] ->
/// num_classes`, with ReLU after every hidden layer and raw logits at the
/// output. Parameters are stored flat, layer by layer, each layer contributing
/// its row-major `in x out` weight matrix followed by its `out` biases.
///
/// This is the default experiment model of the reproduction: with
/// `Mlp::new(784, &[128], 62)` it has ~100k parameters, which plays the role
/// of the paper's >400k-parameter CNN at a size that keeps the full benchmark
/// suite runnable on a laptop (see DESIGN.md, substitution table).
///
/// # Examples
///
/// ```
/// use agsfl_ml::model::{Mlp, Model};
///
/// let mlp = Mlp::new(16, &[8, 8], 4);
/// assert_eq!(mlp.num_params(), 16 * 8 + 8 + 8 * 8 + 8 + 8 * 4 + 4);
/// assert_eq!(mlp.layer_dims(), &[16, 8, 8, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mlp {
    /// Layer widths including input and output: `[input, h1, ..., classes]`.
    dims: Vec<usize>,
}

impl Mlp {
    /// Creates an MLP with the given hidden layer widths.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` or `num_classes` is zero, or any hidden width is
    /// zero.
    pub fn new(input_dim: usize, hidden: &[usize], num_classes: usize) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        assert!(num_classes > 0, "num_classes must be positive");
        assert!(
            hidden.iter().all(|&h| h > 0),
            "hidden layer widths must be positive"
        );
        let mut dims = Vec::with_capacity(hidden.len() + 2);
        dims.push(input_dim);
        dims.extend_from_slice(hidden);
        dims.push(num_classes);
        Self { dims }
    }

    /// All layer widths including the input and output layers.
    pub fn layer_dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of weight layers (hidden layers + output layer).
    pub fn num_layers(&self) -> usize {
        self.dims.len() - 1
    }

    /// Returns `(weight_offset, bias_offset, in, out)` for layer `l`.
    fn layer_offsets(&self, l: usize) -> (usize, usize, usize, usize) {
        let mut offset = 0usize;
        for i in 0..l {
            offset += self.dims[i] * self.dims[i + 1] + self.dims[i + 1];
        }
        let fan_in = self.dims[l];
        let fan_out = self.dims[l + 1];
        (offset, offset + fan_in * fan_out, fan_in, fan_out)
    }

    fn layer_weights(&self, params: &[f32], l: usize) -> Matrix {
        let (w_off, b_off, fan_in, fan_out) = self.layer_offsets(l);
        Matrix::from_vec(fan_in, fan_out, params[w_off..b_off].to_vec())
    }

    fn layer_biases<'p>(&self, params: &'p [f32], l: usize) -> &'p [f32] {
        let (_, b_off, _, fan_out) = self.layer_offsets(l);
        &params[b_off..b_off + fan_out]
    }

    /// Runs the forward pass keeping the pre-activation of every layer, which
    /// the backward pass needs.
    ///
    /// Returns `(activations, pre_activations)` where `activations[0]` is the
    /// input batch and `activations[i]` the post-ReLU output of layer `i-1`.
    fn forward_cached(&self, params: &[f32], x: &Matrix) -> (Vec<Matrix>, Vec<Matrix>) {
        let layers = self.num_layers();
        let mut activations: Vec<Matrix> = Vec::with_capacity(layers + 1);
        let mut pre_activations: Vec<Matrix> = Vec::with_capacity(layers);
        activations.push(x.clone());
        for l in 0..layers {
            let mut z = activations[l].matmul(&self.layer_weights(params, l));
            z.add_row_broadcast(self.layer_biases(params, l));
            pre_activations.push(z.clone());
            if l + 1 < layers {
                z.map_inplace(ops::relu);
            }
            activations.push(z);
        }
        (activations, pre_activations)
    }
}

impl Model for Mlp {
    fn input_dim(&self) -> usize {
        self.dims[0]
    }

    fn num_classes(&self) -> usize {
        *self.dims.last().expect("dims is never empty")
    }

    fn num_params(&self) -> usize {
        (0..self.num_layers())
            .map(|l| self.dims[l] * self.dims[l + 1] + self.dims[l + 1])
            .sum()
    }

    fn init_params(&self, rng: &mut dyn RngCore) -> Vec<f32> {
        let mut params = Vec::with_capacity(self.num_params());
        for l in 0..self.num_layers() {
            let fan_in = self.dims[l];
            let fan_out = self.dims[l + 1];
            // He initialisation for ReLU hidden layers, Xavier for the output.
            let w = if l + 1 < self.num_layers() {
                init::he_normal(fan_in, fan_out, rng)
            } else {
                init::xavier_uniform(fan_in, fan_out, rng)
            };
            params.extend_from_slice(w.as_slice());
            params.extend(std::iter::repeat_n(0.0f32, fan_out));
        }
        params
    }

    fn forward(&self, params: &[f32], x: &Matrix) -> Matrix {
        check_params(self, params);
        check_input(self, x);
        let (activations, _) = self.forward_cached(params, x);
        activations.into_iter().last().expect("at least the input")
    }

    fn loss_and_grad(&self, params: &[f32], x: &Matrix, labels: &[usize]) -> (f32, Vec<f32>) {
        check_params(self, params);
        check_input(self, x);
        let layers = self.num_layers();
        let (activations, pre_activations) = self.forward_cached(params, x);
        let logits = activations.last().expect("forward produced output");
        let (loss, mut delta) = batch_cross_entropy_with_grad(logits, labels);

        let mut grad = vec![0.0f32; self.num_params()];
        // Backwards over layers: delta is dLoss/dZ_l for the current layer l.
        for l in (0..layers).rev() {
            let (w_off, b_off, fan_in, fan_out) = self.layer_offsets(l);
            // dW_l = A_{l}^T * delta ; db_l = column sums of delta.
            let dw = activations[l]
                .transpose_matmul(&delta)
                .expect("activation/delta shapes agree");
            grad[w_off..w_off + fan_in * fan_out].copy_from_slice(dw.as_slice());
            grad[b_off..b_off + fan_out].copy_from_slice(&delta.sum_rows());
            if l > 0 {
                // delta_{l-1} = (delta_l * W_l^T) ⊙ relu'(Z_{l-1})
                let w = self.layer_weights(params, l);
                let mut prev = delta.matmul_transpose(&w).expect("delta/W shapes agree");
                let z_prev = &pre_activations[l - 1];
                for i in 0..prev.rows() {
                    let row = prev.row_mut(i);
                    for (v, &z) in row.iter_mut().zip(z_prev.row(i).iter()) {
                        *v *= ops::relu_grad(z);
                    }
                }
                delta = prev;
            }
        }
        (loss, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_check;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn param_count_matches_layout() {
        let m = Mlp::new(10, &[5, 4], 3);
        assert_eq!(m.num_params(), 10 * 5 + 5 + 5 * 4 + 4 + 4 * 3 + 3);
        assert_eq!(m.num_layers(), 3);
    }

    #[test]
    fn no_hidden_layers_reduces_to_linear_shape() {
        let m = Mlp::new(6, &[], 4);
        assert_eq!(m.num_params(), 6 * 4 + 4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let params = m.init_params(&mut rng);
        let x = Matrix::from_fn(2, 6, |i, j| (i + j) as f32 * 0.1);
        assert_eq!(m.forward(&params, &x).shape(), (2, 4));
    }

    #[test]
    fn layer_offsets_are_contiguous() {
        let m = Mlp::new(7, &[5, 3], 2);
        let mut expected = 0usize;
        for l in 0..m.num_layers() {
            let (w_off, b_off, fan_in, fan_out) = m.layer_offsets(l);
            assert_eq!(w_off, expected);
            assert_eq!(b_off, expected + fan_in * fan_out);
            expected = b_off + fan_out;
        }
        assert_eq!(expected, m.num_params());
    }

    #[test]
    fn forward_shape() {
        let m = Mlp::new(12, &[9], 5);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let params = m.init_params(&mut rng);
        let x = Matrix::from_fn(3, 12, |i, j| ((i * j) % 4) as f32 * 0.25 - 0.5);
        assert_eq!(m.forward(&params, &x).shape(), (3, 5));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let m = Mlp::new(6, &[5], 3);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let params = m.init_params(&mut rng);
        let x = Matrix::from_fn(5, 6, |i, j| ((i * 3 + j) % 7) as f32 * 0.15 - 0.4);
        let labels = vec![0, 1, 2, 1, 0];
        let coords: Vec<usize> = (0..m.num_params()).step_by(5).collect();
        let worst = finite_difference_check(&m, &params, &x, &labels, &coords, 1e-2);
        assert!(worst < 1e-2, "worst deviation {worst}");
    }

    #[test]
    fn deep_gradient_matches_finite_difference() {
        let m = Mlp::new(4, &[6, 5], 3);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let params = m.init_params(&mut rng);
        let x = Matrix::from_fn(4, 4, |i, j| ((i + j * 2) % 5) as f32 * 0.2 - 0.4);
        let labels = vec![2, 0, 1, 2];
        let coords: Vec<usize> = (0..m.num_params()).step_by(7).collect();
        let worst = finite_difference_check(&m, &params, &x, &labels, &coords, 1e-2);
        assert!(worst < 1.5e-2, "worst deviation {worst}");
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let m = Mlp::new(2, &[8], 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut params = m.init_params(&mut rng);
        // XOR-ish data that a linear model cannot fit but an MLP can.
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[0.0, 1.0], &[1.0, 0.0]]);
        let labels = vec![0, 0, 1, 1];
        let initial = m.loss(&params, &x, &labels);
        for _ in 0..2000 {
            let (_, grad) = m.loss_and_grad(&params, &x, &labels);
            crate::optim::sgd_step(&mut params, &grad, 0.5);
        }
        let trained = m.loss(&params, &x, &labels);
        assert!(trained < initial * 0.5, "loss {initial} -> {trained}");
        assert!(m.accuracy(&params, &x, &labels) >= 0.75);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_gradient_is_finite_and_right_sized(
            hidden in 1usize..6,
            batch in 1usize..4,
        ) {
            let m = Mlp::new(5, &[hidden], 3);
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let params = m.init_params(&mut rng);
            let x = Matrix::from_fn(batch, 5, |i, j| ((i * 2 + j) % 3) as f32 * 0.3 - 0.3);
            let labels: Vec<usize> = (0..batch).map(|i| i % 3).collect();
            let (loss, grad) = m.loss_and_grad(&params, &x, &labels);
            prop_assert!(loss.is_finite());
            prop_assert_eq!(grad.len(), m.num_params());
            prop_assert!(grad.iter().all(|g| g.is_finite()));
        }
    }
}
