//! Process-wide batched-forward accounting.
//!
//! [`SimpleCnn::forward_batched`](crate::model::SimpleCnn::forward_batched)
//! is the one compute kernel the round engine calls through a trait object,
//! so the per-round telemetry cannot thread a recorder into it without
//! widening the [`Model`](crate::model::Model) contract for every
//! implementor. Instead the kernel reports into these relaxed statics —
//! call count, logit rows produced, and wall nanoseconds — and whoever owns
//! the recorder drains them with [`take`] at stage boundaries.
//!
//! The counters are process-global and observation only: disabled by
//! default (the kernel pays one relaxed load per call and never reads the
//! clock), and concurrent simulations drain from the same pool, so an
//! overlapping run shows up in whichever drain happens next. That is the
//! accepted trade for keeping the `Model` trait untouched.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static CALLS: AtomicU64 = AtomicU64::new(0);
static ROWS: AtomicU64 = AtomicU64::new(0);
static NANOS: AtomicU64 = AtomicU64::new(0);

/// Whether batched-forward accounting is on (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns batched-forward accounting on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Adds one batched-forward invocation to the pool (called by the kernel;
/// the caller checks [`enabled`] first so disabled runs never time).
pub fn record(rows: u64, nanos: u64) {
    CALLS.fetch_add(1, Ordering::Relaxed);
    ROWS.fetch_add(rows, Ordering::Relaxed);
    NANOS.fetch_add(nanos, Ordering::Relaxed);
}

/// Drains the accumulated `(calls, rows, nanoseconds)` since the previous
/// drain, resetting the pool to zero.
pub fn take() -> (u64, u64, u64) {
    (
        CALLS.swap(0, Ordering::Relaxed),
        ROWS.swap(0, Ordering::Relaxed),
        NANOS.swap(0, Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_take_round_trips() {
        // Statics are process-global: drain whatever other tests left.
        let _ = take();
        record(10, 500);
        record(6, 250);
        let (calls, rows, nanos) = take();
        assert!(calls >= 2 && rows >= 16 && nanos >= 750);
        // Drained: a second take with no records in between is empty (other
        // tests run in this process, so only check our own residue is gone
        // by draining again immediately).
        let _ = take();
    }
}
