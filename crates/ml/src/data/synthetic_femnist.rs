//! Synthetic stand-in for the FEMNIST dataset.
//!
//! FEMNIST partitions handwritten characters by *writer*: each federated
//! client holds the samples of one writer, so shards are non-i.i.d. both in
//! label distribution (writers don't write all 62 symbols equally often) and
//! in feature distribution (every writer has a personal style). The synthetic
//! generator reproduces both effects:
//!
//! * every class `c` has a global prototype vector `p_c`,
//! * every client (writer) `i` has a style-shift vector `s_i` and a random
//!   subset of classes it writes,
//! * a sample of class `c` at client `i` is `p_c + s_i + noise`.
//!
//! The held-out test set is drawn from all classes with fresh writer styles,
//! mimicking FEMNIST's unseen-writer evaluation.

use agsfl_tensor::{init, Matrix};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::data::{ClientShard, FederatedDataset};

/// Configuration of the synthetic FEMNIST generator.
///
/// The defaults mirror the paper's setup scaled to laptop size: 156 clients,
/// 62 classes, roughly 222 samples per client (the paper's 34,659 training
/// samples over 156 clients), with a reduced feature dimension (64 instead of
/// 784) to keep the full benchmark suite fast. All fields are public so
/// experiments can override any of them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticFemnistConfig {
    /// Number of clients (writers). Paper: 156.
    pub num_clients: usize,
    /// Training samples per client. Paper average: ~222.
    pub samples_per_client: usize,
    /// Dimension of each feature vector.
    pub feature_dim: usize,
    /// Number of classes. FEMNIST has 62 (digits + upper/lower case letters).
    pub num_classes: usize,
    /// How many distinct classes each writer produces.
    pub classes_per_client: usize,
    /// Standard deviation of the per-writer style shift.
    pub writer_shift_std: f32,
    /// Standard deviation of per-sample noise.
    pub noise_std: f32,
    /// Number of held-out test samples.
    pub test_samples: usize,
}

impl Default for SyntheticFemnistConfig {
    fn default() -> Self {
        Self {
            num_clients: 156,
            samples_per_client: 222,
            feature_dim: 64,
            num_classes: 62,
            classes_per_client: 12,
            writer_shift_std: 0.4,
            noise_std: 0.3,
            test_samples: 4_073,
        }
    }
}

impl SyntheticFemnistConfig {
    /// A small configuration suitable for unit tests and the quickstart
    /// example (8 clients, 10 classes, 32 samples each).
    pub fn tiny() -> Self {
        Self {
            num_clients: 8,
            samples_per_client: 32,
            feature_dim: 16,
            num_classes: 10,
            classes_per_client: 4,
            writer_shift_std: 0.4,
            noise_std: 0.3,
            test_samples: 64,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `classes_per_client > num_classes`.
    pub(crate) fn validate(&self) {
        assert!(self.num_clients > 0, "num_clients must be positive");
        assert!(
            self.samples_per_client > 0,
            "samples_per_client must be positive"
        );
        assert!(self.feature_dim > 0, "feature_dim must be positive");
        assert!(self.num_classes > 1, "num_classes must be at least 2");
        assert!(
            (1..=self.num_classes).contains(&self.classes_per_client),
            "classes_per_client must be in 1..=num_classes"
        );
        assert!(self.writer_shift_std >= 0.0 && self.noise_std >= 0.0);
    }
}

/// Generator for the synthetic FEMNIST-like federated dataset.
///
/// # Examples
///
/// ```
/// use agsfl_ml::data::{SyntheticFemnist, SyntheticFemnistConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
/// assert_eq!(fed.num_clients(), 8);
/// assert_eq!(fed.num_classes(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticFemnist {
    config: SyntheticFemnistConfig,
}

impl SyntheticFemnist {
    /// Creates a generator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SyntheticFemnistConfig`]).
    pub fn new(config: SyntheticFemnistConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &SyntheticFemnistConfig {
        &self.config
    }

    /// Generates the federated dataset.
    ///
    /// The output is fully determined by the RNG state, so passing a seeded
    /// RNG yields a reproducible dataset.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> FederatedDataset {
        let cfg = &self.config;
        let prototypes = class_prototypes(cfg.num_classes, cfg.feature_dim, rng);

        let mut clients = Vec::with_capacity(cfg.num_clients);
        for _ in 0..cfg.num_clients {
            let mut shard = ClientShard::empty(cfg.feature_dim);
            write_writer_shard(cfg, &prototypes, rng, &mut shard);
            clients.push(shard);
        }

        // Test set: unseen writers, uniform over classes.
        let mut flat = Vec::with_capacity(cfg.test_samples * cfg.feature_dim);
        let mut labels = Vec::with_capacity(cfg.test_samples);
        for _ in 0..cfg.test_samples {
            let class = rng.gen_range(0..cfg.num_classes);
            let style = init::normal_vec(cfg.feature_dim, 0.0, cfg.writer_shift_std, rng);
            flat.extend(sample_features(
                prototypes.row(class),
                Some(&style),
                cfg.noise_std,
                rng,
            ));
            labels.push(class);
        }
        let test = ClientShard::new(
            Matrix::from_vec(cfg.test_samples, cfg.feature_dim, flat),
            labels,
        );

        FederatedDataset::new(clients, test, cfg.num_classes)
    }
}

/// Draws well-separated class prototype vectors.
pub(crate) fn class_prototypes<R: Rng + ?Sized>(
    num_classes: usize,
    feature_dim: usize,
    rng: &mut R,
) -> Matrix {
    // Unit-ish normal prototypes scaled so classes are separable but not
    // trivially so once writer shift and noise are added.
    let mut m = Matrix::from_vec(
        num_classes,
        feature_dim,
        init::normal_vec(num_classes * feature_dim, 0.0, 1.0, rng),
    );
    m.scale(1.2);
    m
}

/// Generates one feature vector `prototype + style + noise`.
pub(crate) fn sample_features<R: Rng + ?Sized>(
    prototype: &[f32],
    style: Option<&[f32]>,
    noise_std: f32,
    rng: &mut R,
) -> Vec<f32> {
    let mut out = vec![0.0; prototype.len()];
    sample_features_into(prototype, style, noise_std, rng, &mut out);
    out
}

/// [`sample_features`] writing into a caller-owned row buffer: identical
/// draws and arithmetic, no per-sample allocation.
pub(crate) fn sample_features_into<R: Rng + ?Sized>(
    prototype: &[f32],
    style: Option<&[f32]>,
    noise_std: f32,
    rng: &mut R,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), prototype.len());
    for (j, (o, &p)) in out.iter_mut().zip(prototype.iter()).enumerate() {
        let s = style.map(|s| s[j]).unwrap_or(0.0);
        *o = p + s + init::normal(0.0, noise_std, rng);
    }
}

/// Writes one writer's shard into `out`, reusing its buffers.
///
/// Draws exactly the random stream the eager generator's per-client loop
/// consumes — style vector, class-subset shuffle, preference weights, then
/// one `(class slot, features)` draw per sample — so materializing a client
/// from a snapshot of the RNG state at its loop position is bit-identical
/// to the eager dataset. This is the shared kernel behind both
/// [`SyntheticFemnist::generate`] and the lazy per-client source used by
/// million-client simulations.
pub(crate) fn write_writer_shard<R: Rng + ?Sized>(
    cfg: &SyntheticFemnistConfig,
    prototypes: &Matrix,
    rng: &mut R,
    out: &mut ClientShard,
) {
    let style = init::normal_vec(cfg.feature_dim, 0.0, cfg.writer_shift_std, rng);
    // Pick the writer's class subset.
    let mut class_pool: Vec<usize> = (0..cfg.num_classes).collect();
    class_pool.shuffle(rng);
    let writer_classes = &class_pool[..cfg.classes_per_client];
    // Give the writer a skewed preference over its classes so label
    // frequencies are non-uniform even within a writer.
    let prefs: Vec<f64> = (0..writer_classes.len())
        .map(|_| rng.gen_range(0.2f64..1.0))
        .collect();

    out.features
        .resize_for_overwrite(cfg.samples_per_client, cfg.feature_dim);
    out.labels.clear();
    for row in 0..cfg.samples_per_client {
        let slot = init::sample_weighted(&prefs, rng).unwrap_or(0);
        let class = writer_classes[slot];
        sample_features_into(
            prototypes.row(class),
            Some(&style),
            cfg.noise_std,
            rng,
            out.features.row_mut(row),
        );
        out.labels.push(class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_config_matches_paper_scale() {
        let cfg = SyntheticFemnistConfig::default();
        assert_eq!(cfg.num_clients, 156);
        assert_eq!(cfg.num_classes, 62);
    }

    #[test]
    fn generated_shapes_match_config() {
        let cfg = SyntheticFemnistConfig::tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let fed = SyntheticFemnist::new(cfg).generate(&mut rng);
        assert_eq!(fed.num_clients(), cfg.num_clients);
        assert_eq!(fed.num_classes(), cfg.num_classes);
        assert_eq!(fed.feature_dim(), cfg.feature_dim);
        assert!(fed
            .clients()
            .iter()
            .all(|c| c.len() == cfg.samples_per_client));
        assert_eq!(fed.test().len(), cfg.test_samples);
    }

    #[test]
    fn clients_are_label_skewed() {
        let cfg = SyntheticFemnistConfig::tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let fed = SyntheticFemnist::new(cfg).generate(&mut rng);
        for client in fed.clients() {
            let distinct = client.distinct_labels();
            assert!(distinct.len() <= cfg.classes_per_client);
            assert!(!distinct.is_empty());
        }
        // Different clients should not all share the same class set.
        let first = fed.client(0).distinct_labels();
        assert!(fed.clients().iter().any(|c| c.distinct_labels() != first));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SyntheticFemnistConfig::tiny();
        let a = SyntheticFemnist::new(cfg).generate(&mut ChaCha8Rng::seed_from_u64(7));
        let b = SyntheticFemnist::new(cfg).generate(&mut ChaCha8Rng::seed_from_u64(7));
        let c = SyntheticFemnist::new(cfg).generate(&mut ChaCha8Rng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dataset_is_learnable_by_linear_model() {
        use crate::model::{LinearSoftmax, Model};
        use crate::optim::sgd_step;
        let cfg = SyntheticFemnistConfig {
            num_clients: 4,
            samples_per_client: 64,
            feature_dim: 16,
            num_classes: 5,
            classes_per_client: 3,
            writer_shift_std: 0.2,
            noise_std: 0.2,
            test_samples: 50,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let fed = SyntheticFemnist::new(cfg).generate(&mut rng);
        let model = LinearSoftmax::new(cfg.feature_dim, cfg.num_classes);
        let mut params = model.init_params(&mut rng);
        // Pool all client data and train centrally for a few epochs.
        let initial: f32 = crate::metrics::global_loss(&model, &params, fed.clients());
        for _ in 0..60 {
            for shard in fed.clients() {
                let (_, grad) = model.loss_and_grad(&params, &shard.features, &shard.labels);
                sgd_step(&mut params, &grad, 0.3);
            }
        }
        let trained = crate::metrics::global_loss(&model, &params, fed.clients());
        assert!(trained < initial * 0.6, "loss {initial} -> {trained}");
        let test_acc = model.accuracy(&params, &fed.test().features, &fed.test().labels);
        assert!(test_acc > 0.5, "test accuracy {test_acc}");
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let cfg = SyntheticFemnistConfig {
            classes_per_client: 100,
            ..SyntheticFemnistConfig::tiny()
        };
        let _ = SyntheticFemnist::new(cfg);
    }
}
