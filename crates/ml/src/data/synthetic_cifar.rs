//! Synthetic stand-in for the one-class-per-client CIFAR-10 setup.
//!
//! The paper's CIFAR-10 experiment uses a deliberately pathological
//! partition: 100 clients, each holding images of exactly **one** class
//! (class `i % 10` for client `i`), with the images of each class split
//! randomly among the clients assigned to it. This module generates a
//! synthetic 10-class dataset and applies exactly that partition via
//! [`partition_one_class_per_client`].

use agsfl_tensor::{init, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::data::synthetic_femnist::{class_prototypes, sample_features};
use crate::data::{partition_one_class_per_client, ClientShard, FederatedDataset};

/// Configuration of the synthetic CIFAR-10-like generator.
///
/// Defaults follow the paper (100 clients, 10 classes) with a reduced number
/// of samples and feature dimension so the full sweep of Fig. 8 stays fast.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticCifarConfig {
    /// Number of clients. Paper: 100.
    pub num_clients: usize,
    /// Number of classes. CIFAR-10 has 10.
    pub num_classes: usize,
    /// Total number of training samples (split across clients by class).
    pub train_samples: usize,
    /// Number of held-out test samples.
    pub test_samples: usize,
    /// Dimension of each feature vector.
    pub feature_dim: usize,
    /// Standard deviation of per-sample noise. Larger values make the task
    /// harder, mimicking the higher intrinsic difficulty of CIFAR-10 relative
    /// to FEMNIST.
    pub noise_std: f32,
}

impl Default for SyntheticCifarConfig {
    fn default() -> Self {
        Self {
            num_clients: 100,
            num_classes: 10,
            train_samples: 10_000,
            test_samples: 1_000,
            feature_dim: 96,
            noise_std: 0.8,
        }
    }
}

impl SyntheticCifarConfig {
    /// A small configuration for tests (10 clients, 400 samples).
    pub fn tiny() -> Self {
        Self {
            num_clients: 10,
            num_classes: 10,
            train_samples: 400,
            test_samples: 100,
            feature_dim: 24,
            noise_std: 0.6,
        }
    }

    fn validate(&self) {
        assert!(self.num_clients > 0, "num_clients must be positive");
        assert!(self.num_classes > 1, "num_classes must be at least 2");
        assert!(
            self.train_samples >= self.num_clients,
            "need at least one sample per client"
        );
        assert!(self.feature_dim > 0, "feature_dim must be positive");
        assert!(self.noise_std >= 0.0, "noise_std must be non-negative");
    }
}

/// Generator for the synthetic CIFAR-10-like federated dataset with the
/// paper's one-class-per-client partition.
///
/// # Examples
///
/// ```
/// use agsfl_ml::data::{SyntheticCifar, SyntheticCifarConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let fed = SyntheticCifar::new(SyntheticCifarConfig::tiny()).generate(&mut rng);
/// assert_eq!(fed.num_clients(), 10);
/// // Every client holds exactly one class.
/// assert!(fed.clients().iter().all(|c| c.distinct_labels().len() == 1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticCifar {
    config: SyntheticCifarConfig,
}

impl SyntheticCifar {
    /// Creates a generator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SyntheticCifarConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &SyntheticCifarConfig {
        &self.config
    }

    /// Generates the federated dataset with the one-class-per-client
    /// partition.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> FederatedDataset {
        let cfg = &self.config;
        let prototypes = class_prototypes(cfg.num_classes, cfg.feature_dim, rng);

        // Pooled training data with (roughly) balanced classes.
        let pool = generate_pool(cfg.train_samples, &prototypes, cfg.noise_std, rng);
        let clients = partition_one_class_per_client(&pool, cfg.num_clients, cfg.num_classes, rng);

        let test = generate_pool(cfg.test_samples, &prototypes, cfg.noise_std, rng);
        FederatedDataset::new(clients, test, cfg.num_classes)
    }
}

fn generate_pool<R: Rng + ?Sized>(
    samples: usize,
    prototypes: &Matrix,
    noise_std: f32,
    rng: &mut R,
) -> ClientShard {
    let num_classes = prototypes.rows();
    let dim = prototypes.cols();
    let mut flat = Vec::with_capacity(samples * dim);
    let mut labels = Vec::with_capacity(samples);
    for s in 0..samples {
        // Round-robin class assignment keeps classes balanced; the partition
        // step shuffles within each class.
        let class = s % num_classes;
        // Per-sample "scene" shift models the higher intra-class variance of
        // natural images compared to handwritten characters.
        let scene = init::normal_vec(dim, 0.0, noise_std * 0.5, rng);
        flat.extend(sample_features(
            prototypes.row(class),
            Some(&scene),
            noise_std,
            rng,
        ));
        labels.push(class);
    }
    ClientShard::new(Matrix::from_vec(samples, dim, flat), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_config_matches_paper_scale() {
        let cfg = SyntheticCifarConfig::default();
        assert_eq!(cfg.num_clients, 100);
        assert_eq!(cfg.num_classes, 10);
    }

    #[test]
    fn every_client_has_exactly_one_class() {
        let cfg = SyntheticCifarConfig::tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let fed = SyntheticCifar::new(cfg).generate(&mut rng);
        assert_eq!(fed.num_clients(), cfg.num_clients);
        for (i, client) in fed.clients().iter().enumerate() {
            let distinct = client.distinct_labels();
            assert_eq!(distinct.len(), 1, "client {i} holds classes {distinct:?}");
            assert_eq!(distinct[0], i % cfg.num_classes);
        }
    }

    #[test]
    fn all_training_samples_are_assigned() {
        let cfg = SyntheticCifarConfig::tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let fed = SyntheticCifar::new(cfg).generate(&mut rng);
        assert_eq!(fed.total_samples(), cfg.train_samples);
        assert_eq!(fed.test().len(), cfg.test_samples);
    }

    #[test]
    fn more_clients_than_classes_is_supported() {
        let cfg = SyntheticCifarConfig {
            num_clients: 25,
            ..SyntheticCifarConfig::tiny()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let fed = SyntheticCifar::new(cfg).generate(&mut rng);
        assert_eq!(fed.num_clients(), 25);
        assert!(fed.clients().iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticCifarConfig::tiny();
        let a = SyntheticCifar::new(cfg).generate(&mut ChaCha8Rng::seed_from_u64(4));
        let b = SyntheticCifar::new(cfg).generate(&mut ChaCha8Rng::seed_from_u64(4));
        assert_eq!(a, b);
    }

    #[test]
    fn dataset_is_learnable_centrally() {
        use crate::model::{LinearSoftmax, Model};
        use crate::optim::sgd_step;
        let cfg = SyntheticCifarConfig {
            num_clients: 10,
            num_classes: 5,
            train_samples: 300,
            test_samples: 80,
            feature_dim: 20,
            noise_std: 0.4,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let fed = SyntheticCifar::new(cfg).generate(&mut rng);
        let model = LinearSoftmax::new(cfg.feature_dim, cfg.num_classes);
        let mut params = model.init_params(&mut rng);
        for _ in 0..40 {
            for shard in fed.clients() {
                let (_, grad) = model.loss_and_grad(&params, &shard.features, &shard.labels);
                sgd_step(&mut params, &grad, 0.2);
            }
        }
        let acc = model.accuracy(&params, &fed.test().features, &fed.test().labels);
        assert!(acc > 0.5, "test accuracy {acc}");
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let cfg = SyntheticCifarConfig {
            train_samples: 1,
            num_clients: 10,
            ..SyntheticCifarConfig::tiny()
        };
        let _ = SyntheticCifar::new(cfg);
    }
}
