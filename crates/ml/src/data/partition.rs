//! Partitioners splitting a pooled dataset into per-client shards.
//!
//! The paper's CIFAR-10 setup assigns **one class per client** ("each client
//! only has one class of images that is randomly partitioned among all the
//! clients with this image class"); [`partition_one_class_per_client`]
//! reproduces that. [`partition_iid`] and [`partition_dirichlet`] are the
//! usual i.i.d. and Dirichlet label-skew baselines used for ablations.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::data::ClientShard;

/// Splits the pooled shard into `num_clients` shards by uniformly shuffling
/// samples (i.i.d. partition).
///
/// Sample counts differ by at most one between clients.
///
/// # Panics
///
/// Panics if `num_clients == 0`.
pub fn partition_iid<R: Rng + ?Sized>(
    pool: &ClientShard,
    num_clients: usize,
    rng: &mut R,
) -> Vec<ClientShard> {
    assert!(num_clients > 0, "num_clients must be positive");
    let mut indices: Vec<usize> = (0..pool.len()).collect();
    indices.shuffle(rng);
    let mut shards = Vec::with_capacity(num_clients);
    for c in 0..num_clients {
        let client_indices: Vec<usize> = indices
            .iter()
            .copied()
            .skip(c)
            .step_by(num_clients)
            .collect();
        shards.push(pool.subset(&client_indices));
    }
    shards
}

/// Assigns every client exactly one class: client `i` receives a random
/// subset of the samples of class `i % num_classes`, and the samples of each
/// class are split evenly among the clients assigned to that class.
///
/// This is the paper's "strong non-i.i.d." CIFAR-10 partition.
///
/// # Panics
///
/// Panics if `num_clients == 0` or `num_classes == 0`.
pub fn partition_one_class_per_client<R: Rng + ?Sized>(
    pool: &ClientShard,
    num_clients: usize,
    num_classes: usize,
    rng: &mut R,
) -> Vec<ClientShard> {
    assert!(num_clients > 0, "num_clients must be positive");
    assert!(num_classes > 0, "num_classes must be positive");
    // Group sample indices by class and shuffle within each class.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &label) in pool.labels.iter().enumerate() {
        assert!(label < num_classes, "label {label} out of range");
        by_class[label].push(i);
    }
    for class_indices in &mut by_class {
        class_indices.shuffle(rng);
    }
    // Count how many clients serve each class so we can split evenly.
    let mut clients_per_class = vec![0usize; num_classes];
    for client in 0..num_clients {
        clients_per_class[client % num_classes] += 1;
    }
    let mut next_slot = vec![0usize; num_classes];
    let mut shards = Vec::with_capacity(num_clients);
    for client in 0..num_clients {
        let class = client % num_classes;
        let total = by_class[class].len();
        let parts = clients_per_class[class];
        let slot = next_slot[class];
        next_slot[class] += 1;
        let start = total * slot / parts;
        let end = total * (slot + 1) / parts;
        shards.push(pool.subset(&by_class[class][start..end]));
    }
    shards
}

/// Dirichlet label-skew partition: for each class, the class's samples are
/// distributed over clients according to a Dirichlet(`alpha`) draw. Smaller
/// `alpha` means stronger skew.
///
/// # Panics
///
/// Panics if `num_clients == 0`, `num_classes == 0` or `alpha <= 0`.
pub fn partition_dirichlet<R: Rng + ?Sized>(
    pool: &ClientShard,
    num_clients: usize,
    num_classes: usize,
    alpha: f64,
    rng: &mut R,
) -> Vec<ClientShard> {
    assert!(
        num_clients > 0 && num_classes > 0,
        "empty partition request"
    );
    assert!(alpha > 0.0, "alpha must be positive");
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &label) in pool.labels.iter().enumerate() {
        assert!(label < num_classes, "label {label} out of range");
        by_class[label].push(i);
    }
    let mut client_indices: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
    for class_indices in &mut by_class {
        class_indices.shuffle(rng);
        let weights = dirichlet_sample(num_clients, alpha, rng);
        // Convert weights to cumulative cut points over this class's samples.
        let n = class_indices.len();
        let mut cuts = Vec::with_capacity(num_clients + 1);
        cuts.push(0usize);
        let mut acc = 0.0f64;
        for w in &weights[..num_clients - 1] {
            acc += w;
            cuts.push(((acc * n as f64).round() as usize).min(n));
        }
        cuts.push(n);
        for c in 0..num_clients {
            let (start, end) = (cuts[c], cuts[c + 1].max(cuts[c]));
            client_indices[c].extend_from_slice(&class_indices[start..end]);
        }
    }
    client_indices.iter().map(|idx| pool.subset(idx)).collect()
}

/// Draws a sample from a symmetric Dirichlet(alpha) distribution using the
/// Gamma-ratio construction with Marsaglia–Tsang gamma sampling.
fn dirichlet_sample<R: Rng + ?Sized>(n: usize, alpha: f64, rng: &mut R) -> Vec<f64> {
    let mut draws: Vec<f64> = (0..n).map(|_| gamma_sample(alpha, rng)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Numerically degenerate (tiny alpha): fall back to a one-hot draw.
        let winner = rng.gen_range(0..n);
        draws = vec![0.0; n];
        draws[winner] = 1.0;
        return draws;
    }
    draws.iter_mut().for_each(|d| *d /= sum);
    draws
}

/// Marsaglia–Tsang sampler for Gamma(shape, 1).
fn gamma_sample<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma_sample(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal64(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

fn normal64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use agsfl_tensor::Matrix;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn pool(samples_per_class: usize, num_classes: usize, dim: usize) -> ClientShard {
        let n = samples_per_class * num_classes;
        let labels: Vec<usize> = (0..n).map(|i| i % num_classes).collect();
        ClientShard::new(Matrix::from_fn(n, dim, |i, j| (i * dim + j) as f32), labels)
    }

    #[test]
    fn iid_partition_conserves_samples() {
        let p = pool(10, 4, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let shards = partition_iid(&p, 7, &mut rng);
        assert_eq!(shards.len(), 7);
        let total: usize = shards.iter().map(ClientShard::len).sum();
        assert_eq!(total, p.len());
        // Balanced to within one sample.
        let min = shards.iter().map(ClientShard::len).min().unwrap();
        let max = shards.iter().map(ClientShard::len).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn one_class_per_client_is_pure() {
        let p = pool(20, 5, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let shards = partition_one_class_per_client(&p, 10, 5, &mut rng);
        assert_eq!(shards.len(), 10);
        for (c, shard) in shards.iter().enumerate() {
            let distinct = shard.distinct_labels();
            assert_eq!(distinct.len(), 1, "client {c} has classes {distinct:?}");
            assert_eq!(distinct[0], c % 5);
        }
        let total: usize = shards.iter().map(ClientShard::len).sum();
        assert_eq!(total, p.len());
    }

    #[test]
    fn one_class_per_client_fewer_clients_than_classes() {
        let p = pool(6, 4, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let shards = partition_one_class_per_client(&p, 2, 4, &mut rng);
        assert_eq!(shards.len(), 2);
        // Only classes 0 and 1 are used; samples of other classes are unused.
        assert_eq!(shards[0].distinct_labels(), vec![0]);
        assert_eq!(shards[1].distinct_labels(), vec![1]);
    }

    #[test]
    fn dirichlet_partition_conserves_samples() {
        let p = pool(30, 3, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let shards = partition_dirichlet(&p, 5, 3, 0.5, &mut rng);
        assert_eq!(shards.len(), 5);
        let total: usize = shards.iter().map(ClientShard::len).sum();
        assert_eq!(total, p.len());
    }

    #[test]
    fn dirichlet_low_alpha_is_more_skewed_than_high_alpha() {
        let p = pool(100, 4, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let skewed = partition_dirichlet(&p, 8, 4, 0.05, &mut rng);
        let uniform = partition_dirichlet(&p, 8, 4, 100.0, &mut rng);
        let var = |shards: &[ClientShard]| {
            let sizes: Vec<f64> = shards.iter().map(|s| s.len() as f64).collect();
            let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
            sizes.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sizes.len() as f64
        };
        assert!(
            var(&skewed) > var(&uniform),
            "{} vs {}",
            var(&skewed),
            var(&uniform)
        );
    }

    #[test]
    fn gamma_sample_mean_close_to_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for &shape in &[0.5f64, 1.0, 3.0] {
            let mean: f64 = (0..5000)
                .map(|_| gamma_sample(shape, &mut rng))
                .sum::<f64>()
                / 5000.0;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape} mean {mean}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_partitions_never_lose_or_duplicate_samples(
            clients in 1usize..9,
            classes in 1usize..5,
            per_class in 1usize..12,
        ) {
            let p = pool(per_class, classes, 2);
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let shards = partition_iid(&p, clients, &mut rng);
            let total: usize = shards.iter().map(ClientShard::len).sum();
            prop_assert_eq!(total, p.len());
            let shards = partition_dirichlet(&p, clients, classes, 1.0, &mut rng);
            let total: usize = shards.iter().map(ClientShard::len).sum();
            prop_assert_eq!(total, p.len());
        }
    }
}
