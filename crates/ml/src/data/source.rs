//! Lazily materialized federated data: the [`ShardSource`] abstraction.
//!
//! A [`FederatedDataset`] holds every client shard in memory, which caps
//! simulated populations in the low thousands. A [`ShardSource`] inverts
//! the contract: it *describes* the population (client count, per-client
//! shard sizes, label space) up front and materializes any single client's
//! shard on demand into a caller-owned buffer. A million-client simulation
//! then keeps O(cohort) shards resident instead of O(N).
//!
//! Determinism contract: `materialize_into(i, …)` must be a pure function
//! of the source and `i` — same source, same client, same bytes — so a
//! cohort-sampled simulation stays bit-identical regardless of which rounds
//! touch which clients and of the order slots hydrate. [`FederatedDataset`]
//! implements the trait by copying its eager shards;
//! [`LazySyntheticFemnist`] regenerates a writer's shard from a per-writer
//! RNG stream derived from the source seed.

use agsfl_tensor::init;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::data::synthetic_femnist::{sample_features_into, write_writer_shard};
use crate::data::{ClientShard, FederatedDataset, SyntheticFemnistConfig};
use agsfl_tensor::Matrix;

/// A federated client population whose shards can be materialized one at a
/// time (see the module docs for the determinism contract).
pub trait ShardSource: Send + Sync + std::fmt::Debug {
    /// Number of clients `N`.
    fn num_clients(&self) -> usize;

    /// Number of label classes.
    fn num_classes(&self) -> usize;

    /// Dimension of each feature vector.
    fn feature_dim(&self) -> usize;

    /// Number of local samples `C_i` of client `client`, without
    /// materializing the shard.
    fn shard_len(&self, client: usize) -> usize;

    /// Total number of training samples `C = Σ_i C_i`.
    ///
    /// The default sums [`ShardSource::shard_len`] over every client; O(1)
    /// sources should override it.
    fn total_samples(&self) -> usize {
        (0..self.num_clients()).map(|i| self.shard_len(i)).sum()
    }

    /// The held-out test shard (always resident — it is O(test), not O(N)).
    fn test(&self) -> &ClientShard;

    /// Writes client `client`'s shard into `out`, reusing its buffers.
    ///
    /// Must be a pure function of `(self, client)`.
    ///
    /// # Panics
    ///
    /// Panics if `client >= num_clients()`.
    fn materialize_into(&self, client: usize, out: &mut ClientShard);

    /// Borrows the fully materialized dataset when the source is eager.
    ///
    /// Cohort simulations use this to keep the exact legacy evaluation
    /// sweeps (which want `&[ClientShard]`) on eager datasets; lazy sources
    /// return `None` and evaluation streams shard by shard instead.
    fn as_dataset(&self) -> Option<&FederatedDataset> {
        None
    }
}

impl ShardSource for FederatedDataset {
    fn num_clients(&self) -> usize {
        FederatedDataset::num_clients(self)
    }

    fn num_classes(&self) -> usize {
        FederatedDataset::num_classes(self)
    }

    fn feature_dim(&self) -> usize {
        FederatedDataset::feature_dim(self)
    }

    fn shard_len(&self, client: usize) -> usize {
        self.client(client).len()
    }

    fn total_samples(&self) -> usize {
        FederatedDataset::total_samples(self)
    }

    fn test(&self) -> &ClientShard {
        FederatedDataset::test(self)
    }

    fn materialize_into(&self, client: usize, out: &mut ClientShard) {
        let src = self.client(client);
        out.features
            .resize_for_overwrite(src.features.rows(), src.features.cols());
        out.features
            .as_mut_slice()
            .copy_from_slice(src.features.as_slice());
        out.labels.clear();
        out.labels.extend_from_slice(&src.labels);
    }

    fn as_dataset(&self) -> Option<&FederatedDataset> {
        Some(self)
    }
}

/// Mixes the source seed and a writer id into the writer's private data
/// seed (a splitmix-style affine step; any fixed injective-ish mix works —
/// what matters is that it is a pure function of `(seed, client)`).
fn writer_seed(seed: u64, client: usize) -> u64 {
    (seed ^ 0xA5A5_5EED_0F00_0001).wrapping_add((client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// [`SyntheticFemnist`](crate::data::SyntheticFemnist) as a lazy
/// [`ShardSource`]: prototypes and the test set are generated at
/// construction, but a writer's shard only exists while a round holds it.
///
/// Each writer's shard is regenerated on demand from its own
/// `ChaCha8Rng` stream seeded by `(seed, writer)`, so `materialize_into`
/// is pure and the resident footprint is O(prototypes + test), independent
/// of `num_clients`. Note the stream layout differs from the eager
/// generator (which interleaves every writer on one master RNG), so a lazy
/// source and an eager dataset built from the same seed hold *different*
/// (equally distributed) data.
#[derive(Debug, Clone)]
pub struct LazySyntheticFemnist {
    config: SyntheticFemnistConfig,
    seed: u64,
    prototypes: Matrix,
    test: ClientShard,
}

impl LazySyntheticFemnist {
    /// Creates the source: draws class prototypes and the held-out test set
    /// from a master RNG seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SyntheticFemnistConfig`]).
    pub fn new(config: SyntheticFemnistConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let prototypes = super::synthetic_femnist::class_prototypes(
            config.num_classes,
            config.feature_dim,
            &mut rng,
        );
        // Test set: unseen writers, uniform over classes (same recipe as the
        // eager generator's test block).
        let mut test = ClientShard::empty(config.feature_dim);
        test.features
            .resize_for_overwrite(config.test_samples, config.feature_dim);
        for row in 0..config.test_samples {
            let class = rng.gen_range(0..config.num_classes);
            let style =
                init::normal_vec(config.feature_dim, 0.0, config.writer_shift_std, &mut rng);
            sample_features_into(
                prototypes.row(class),
                Some(&style),
                config.noise_std,
                &mut rng,
                test.features.row_mut(row),
            );
            test.labels.push(class);
        }
        Self {
            config,
            seed,
            prototypes,
            test,
        }
    }

    /// The source's configuration.
    pub fn config(&self) -> &SyntheticFemnistConfig {
        &self.config
    }

    /// The source seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl ShardSource for LazySyntheticFemnist {
    fn num_clients(&self) -> usize {
        self.config.num_clients
    }

    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn feature_dim(&self) -> usize {
        self.config.feature_dim
    }

    fn shard_len(&self, client: usize) -> usize {
        assert!(
            client < self.config.num_clients,
            "client {client} out of range"
        );
        self.config.samples_per_client
    }

    fn total_samples(&self) -> usize {
        self.config.num_clients * self.config.samples_per_client
    }

    fn test(&self) -> &ClientShard {
        &self.test
    }

    fn materialize_into(&self, client: usize, out: &mut ClientShard) {
        assert!(
            client < self.config.num_clients,
            "client {client} out of range"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(writer_seed(self.seed, client));
        write_writer_shard(&self.config, &self.prototypes, &mut rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{SyntheticFemnist, SyntheticFemnistConfig};

    #[test]
    fn eager_dataset_source_copies_shards_bit_exactly() {
        let cfg = SyntheticFemnistConfig::tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let fed = SyntheticFemnist::new(cfg).generate(&mut rng);
        let mut out = ClientShard::empty(cfg.feature_dim);
        for i in 0..ShardSource::num_clients(&fed) {
            fed.materialize_into(i, &mut out);
            assert_eq!(out.features.as_slice(), fed.client(i).features.as_slice());
            assert_eq!(out.labels, fed.client(i).labels);
        }
        assert_eq!(ShardSource::total_samples(&fed), fed.total_samples());
        assert!(fed.as_dataset().is_some());
    }

    #[test]
    fn lazy_source_is_pure_per_client() {
        let cfg = SyntheticFemnistConfig::tiny();
        let src = LazySyntheticFemnist::new(cfg, 9);
        let mut a = ClientShard::empty(cfg.feature_dim);
        let mut b = ClientShard::empty(cfg.feature_dim);
        // Materialize in different orders and into dirty buffers: bytes must
        // depend only on (source, client).
        src.materialize_into(3, &mut a);
        src.materialize_into(0, &mut b);
        src.materialize_into(3, &mut b);
        assert_eq!(a.features.as_slice(), b.features.as_slice());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.len(), cfg.samples_per_client);
        assert_eq!(src.shard_len(3), cfg.samples_per_client);
        assert_eq!(
            src.total_samples(),
            cfg.num_clients * cfg.samples_per_client
        );
        assert_eq!(src.test().len(), cfg.test_samples);
        assert!(src.as_dataset().is_none());
    }

    #[test]
    fn lazy_source_distinguishes_clients_and_seeds() {
        let cfg = SyntheticFemnistConfig::tiny();
        let src_a = LazySyntheticFemnist::new(cfg, 1);
        let src_b = LazySyntheticFemnist::new(cfg, 2);
        let mut x = ClientShard::empty(cfg.feature_dim);
        let mut y = ClientShard::empty(cfg.feature_dim);
        src_a.materialize_into(0, &mut x);
        src_a.materialize_into(1, &mut y);
        assert_ne!(x.features.as_slice(), y.features.as_slice());
        src_b.materialize_into(0, &mut y);
        assert_ne!(x.features.as_slice(), y.features.as_slice());
    }
}
