//! Mini-batch sampling from a client shard.

use agsfl_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::data::ClientShard;

/// Epoch-based mini-batch sampler over a single client's shard.
///
/// Samples are visited in a random order that is reshuffled every epoch; when
/// the shard is smaller than the batch size the whole shard is returned. This
/// matches the paper's setup of a fixed mini-batch size of 32 per client per
/// round.
///
/// # Examples
///
/// ```
/// use agsfl_ml::data::{ClientShard, MinibatchSampler};
/// use agsfl_tensor::Matrix;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let shard = ClientShard::new(Matrix::from_fn(10, 4, |i, j| (i + j) as f32),
///                              (0..10).map(|i| i % 2).collect());
/// let mut sampler = MinibatchSampler::new(&shard, 4);
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let (batch, labels, indices) = sampler.next_batch(&shard, &mut rng);
/// assert_eq!(batch.rows(), 4);
/// assert_eq!(labels.len(), 4);
/// assert_eq!(indices.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct MinibatchSampler {
    batch_size: usize,
    order: Vec<usize>,
    cursor: usize,
}

impl MinibatchSampler {
    /// Creates a sampler for the given shard and batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(shard: &ClientShard, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        Self {
            batch_size,
            order: (0..shard.len()).collect(),
            cursor: 0,
        }
    }

    /// Configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The current epoch's visit order (for checkpointing).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Position of the next sample within [`MinibatchSampler::order`]
    /// (for checkpointing).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Restores a position previously captured via
    /// [`MinibatchSampler::order`]/[`MinibatchSampler::cursor`], so a
    /// resumed run draws exactly the batches the uninterrupted run would.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the current sample set or
    /// `cursor` is out of range.
    pub fn restore(&mut self, order: Vec<usize>, cursor: usize) {
        assert_eq!(
            order.len(),
            self.order.len(),
            "restored order length does not match the shard"
        );
        assert!(
            cursor < order.len().max(1),
            "restored cursor {cursor} out of range"
        );
        let mut seen = vec![false; order.len()];
        for &i in &order {
            assert!(
                i < order.len() && !seen[i],
                "restored order is not a permutation"
            );
            seen[i] = true;
        }
        self.order = order;
        self.cursor = cursor;
    }

    /// Swaps the sampler's epoch state (visit order and cursor) with the
    /// caller's buffers in O(1), without validation.
    ///
    /// This is the population-row hydration primitive of the FL simulator's
    /// cohort engine: a client slot installs a stored row's epoch state
    /// before the round and the same swap puts it back afterwards, so no
    /// per-round allocation or permutation check happens. Callers are
    /// responsible for only installing state captured from a sampler over a
    /// shard of the same length (the [`MinibatchSampler::next_batch`]
    /// length assertion still catches mismatches at draw time).
    pub fn swap_state(&mut self, order: &mut Vec<usize>, cursor: &mut usize) {
        std::mem::swap(&mut self.order, order);
        std::mem::swap(&mut self.cursor, cursor);
    }

    /// Resets the sampler to the start of a fresh identity-order epoch over
    /// a shard of `len` samples, reusing the order buffer's capacity.
    ///
    /// Equivalent to `MinibatchSampler::new` over the new shard, but
    /// allocation-free once the buffer has grown.
    pub fn reset_identity(&mut self, len: usize) {
        self.order.clear();
        self.order.extend(0..len);
        self.cursor = 0;
    }

    /// Draws the next mini-batch, reshuffling at epoch boundaries.
    ///
    /// Returns `(features, labels, sample_indices)`; the indices refer to rows
    /// of the shard and are needed by the derivative-sign estimator, which
    /// re-evaluates the loss of one specific sample.
    ///
    /// # Panics
    ///
    /// Panics if the shard is empty or its length changed since construction.
    pub fn next_batch<R: Rng + ?Sized>(
        &mut self,
        shard: &ClientShard,
        rng: &mut R,
    ) -> (Matrix, Vec<usize>, Vec<usize>) {
        assert!(!shard.is_empty(), "cannot sample from an empty shard");
        assert_eq!(
            shard.len(),
            self.order.len(),
            "shard size changed after the sampler was created"
        );
        let effective = self.batch_size.min(shard.len());
        let mut indices = Vec::with_capacity(effective);
        while indices.len() < effective {
            if self.cursor == 0 {
                self.order.shuffle(rng);
            }
            indices.push(self.order[self.cursor]);
            self.cursor = (self.cursor + 1) % self.order.len();
        }
        let batch = shard.subset(&indices);
        (batch.features, batch.labels, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn shard(n: usize) -> ClientShard {
        ClientShard::new(
            Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f32),
            (0..n).map(|i| i % 3).collect(),
        )
    }

    #[test]
    fn batch_has_requested_size() {
        let s = shard(10);
        let mut sampler = MinibatchSampler::new(&s, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (x, y, idx) = sampler.next_batch(&s, &mut rng);
        assert_eq!(x.rows(), 4);
        assert_eq!(y.len(), 4);
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn small_shard_returns_whole_shard() {
        let s = shard(3);
        let mut sampler = MinibatchSampler::new(&s, 32);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (x, y, _) = sampler.next_batch(&s, &mut rng);
        assert_eq!(x.rows(), 3);
        assert_eq!(y.len(), 3);
    }

    #[test]
    fn every_sample_visited_once_per_epoch() {
        let s = shard(8);
        let mut sampler = MinibatchSampler::new(&s, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut seen = Vec::new();
        for _ in 0..2 {
            let (_, _, idx) = sampler.next_batch(&s, &mut rng);
            seen.extend(idx);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn batch_content_matches_indices() {
        let s = shard(6);
        let mut sampler = MinibatchSampler::new(&s, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (x, y, idx) = sampler.next_batch(&s, &mut rng);
        for (row, &i) in idx.iter().enumerate() {
            assert_eq!(x.row(row), s.features.row(i));
            assert_eq!(y[row], s.labels[i]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = shard(9);
        let mut a = MinibatchSampler::new(&s, 4);
        let mut b = MinibatchSampler::new(&s, 4);
        let mut rng_a = ChaCha8Rng::seed_from_u64(5);
        let mut rng_b = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..5 {
            let (_, _, ia) = a.next_batch(&s, &mut rng_a);
            let (_, _, ib) = b.next_batch(&s, &mut rng_b);
            assert_eq!(ia, ib);
        }
    }

    #[test]
    fn restore_resumes_mid_epoch() {
        let s = shard(9);
        let mut a = MinibatchSampler::new(&s, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        a.next_batch(&s, &mut rng); // leaves the cursor mid-epoch
        let order = a.order().to_vec();
        let cursor = a.cursor();
        let mut b = MinibatchSampler::new(&s, 4);
        b.restore(order, cursor);
        let mut rng_b = rng.clone();
        for _ in 0..6 {
            let (_, _, ia) = a.next_batch(&s, &mut rng);
            let (_, _, ib) = b.next_batch(&s, &mut rng_b);
            assert_eq!(ia, ib);
        }
    }

    #[test]
    #[should_panic]
    fn restore_rejects_non_permutation() {
        let s = shard(4);
        let mut sampler = MinibatchSampler::new(&s, 2);
        sampler.restore(vec![0, 0, 1, 2], 0);
    }

    #[test]
    #[should_panic]
    fn empty_shard_panics() {
        let s = ClientShard::empty(2);
        let mut sampler = MinibatchSampler::new(&s, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = sampler.next_batch(&s, &mut rng);
    }

    #[test]
    #[should_panic]
    fn zero_batch_size_panics() {
        let s = shard(4);
        let _ = MinibatchSampler::new(&s, 0);
    }
}
