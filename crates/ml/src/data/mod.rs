//! Synthetic federated datasets and partitioning utilities.
//!
//! The paper evaluates on FEMNIST (156 writer-partitioned clients, 62
//! classes) and CIFAR-10 (100 clients, one class each). Real image corpora
//! are not available offline, so this module generates *synthetic* datasets
//! that preserve the properties the algorithms react to:
//!
//! * non-i.i.d. shards (label skew and per-client feature shift),
//! * a classification loss that decreases under SGD,
//! * per-client sample counts `C_i` used for weighted aggregation.
//!
//! See `DESIGN.md` for the full substitution rationale.

mod partition;
mod sampler;
mod source;
mod synthetic_cifar;
mod synthetic_femnist;

pub use partition::{partition_dirichlet, partition_iid, partition_one_class_per_client};
pub use sampler::MinibatchSampler;
pub use source::{LazySyntheticFemnist, ShardSource};
pub use synthetic_cifar::{SyntheticCifar, SyntheticCifarConfig};
pub use synthetic_femnist::{SyntheticFemnist, SyntheticFemnistConfig};

use agsfl_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// The local dataset of one federated client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientShard {
    /// Feature matrix of shape `(samples, feature_dim)`.
    pub features: Matrix,
    /// Integer class label per sample.
    pub labels: Vec<usize>,
}

impl ClientShard {
    /// Creates a shard from a feature matrix and labels.
    ///
    /// # Panics
    ///
    /// Panics if `features.rows() != labels.len()`.
    pub fn new(features: Matrix, labels: Vec<usize>) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "shard has {} feature rows but {} labels",
            features.rows(),
            labels.len()
        );
        Self { features, labels }
    }

    /// Creates an empty shard with the given feature dimension.
    pub fn empty(feature_dim: usize) -> Self {
        Self {
            features: Matrix::zeros(0, feature_dim),
            labels: Vec::new(),
        }
    }

    /// Number of samples in the shard.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the shard has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Returns `(features, label)` of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn sample(&self, i: usize) -> (&[f32], usize) {
        (self.features.row(i), self.labels[i])
    }

    /// Builds a sub-shard from the given sample indices (used by mini-batch
    /// sampling and partitioners).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> ClientShard {
        let dim = self.feature_dim();
        let mut flat = Vec::with_capacity(indices.len() * dim);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            flat.extend_from_slice(self.features.row(i));
            labels.push(self.labels[i]);
        }
        ClientShard::new(Matrix::from_vec(indices.len(), dim, flat), labels)
    }

    /// Set of distinct labels present in the shard, sorted ascending.
    pub fn distinct_labels(&self) -> Vec<usize> {
        let mut labels = self.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        labels
    }
}

/// A complete federated dataset: one shard per client plus a held-out test
/// shard used for global accuracy reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedDataset {
    clients: Vec<ClientShard>,
    test: ClientShard,
    num_classes: usize,
}

impl FederatedDataset {
    /// Creates a federated dataset from client shards and a test shard.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty, if the shards disagree on feature
    /// dimension, or if any label is `>= num_classes`.
    pub fn new(clients: Vec<ClientShard>, test: ClientShard, num_classes: usize) -> Self {
        assert!(
            !clients.is_empty(),
            "a federated dataset needs at least one client"
        );
        let dim = clients[0].feature_dim();
        for (i, shard) in clients.iter().enumerate() {
            assert_eq!(shard.feature_dim(), dim, "client {i} feature dim mismatch");
            assert!(
                shard.labels.iter().all(|&l| l < num_classes),
                "client {i} has a label >= num_classes"
            );
        }
        assert_eq!(test.feature_dim(), dim, "test shard feature dim mismatch");
        assert!(
            test.labels.iter().all(|&l| l < num_classes),
            "test shard has a label >= num_classes"
        );
        Self {
            clients,
            test,
            num_classes,
        }
    }

    /// Number of clients `N`.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.clients[0].feature_dim()
    }

    /// Borrows client `i`'s shard.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_clients()`.
    pub fn client(&self, i: usize) -> &ClientShard {
        &self.clients[i]
    }

    /// All client shards.
    pub fn clients(&self) -> &[ClientShard] {
        &self.clients
    }

    /// The held-out test shard.
    pub fn test(&self) -> &ClientShard {
        &self.test
    }

    /// Per-client sample counts `C_i`.
    pub fn client_sizes(&self) -> Vec<usize> {
        self.clients.iter().map(ClientShard::len).collect()
    }

    /// Total number of training samples `C`.
    pub fn total_samples(&self) -> usize {
        self.clients.iter().map(ClientShard::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(labels: Vec<usize>, dim: usize) -> ClientShard {
        let n = labels.len();
        ClientShard::new(Matrix::from_fn(n, dim, |i, j| (i + j) as f32), labels)
    }

    #[test]
    fn shard_basic_accessors() {
        let s = shard(vec![0, 1, 1], 3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.feature_dim(), 3);
        assert_eq!(s.sample(1).1, 1);
        assert_eq!(s.distinct_labels(), vec![0, 1]);
    }

    #[test]
    fn empty_shard() {
        let s = ClientShard::empty(4);
        assert!(s.is_empty());
        assert_eq!(s.feature_dim(), 4);
        assert!(s.distinct_labels().is_empty());
    }

    #[test]
    fn subset_preserves_rows() {
        let s = shard(vec![0, 1, 2, 3], 2);
        let sub = s.subset(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels, vec![3, 1]);
        assert_eq!(sub.features.row(0), s.features.row(3));
        assert_eq!(sub.features.row(1), s.features.row(1));
    }

    #[test]
    #[should_panic]
    fn shard_length_mismatch_panics() {
        let _ = ClientShard::new(Matrix::zeros(2, 2), vec![0]);
    }

    #[test]
    fn federated_dataset_accessors() {
        let clients = vec![shard(vec![0, 1], 2), shard(vec![1], 2)];
        let test = shard(vec![0, 1], 2);
        let fed = FederatedDataset::new(clients, test, 2);
        assert_eq!(fed.num_clients(), 2);
        assert_eq!(fed.num_classes(), 2);
        assert_eq!(fed.feature_dim(), 2);
        assert_eq!(fed.client_sizes(), vec![2, 1]);
        assert_eq!(fed.total_samples(), 3);
        assert_eq!(fed.client(1).len(), 1);
        assert_eq!(fed.test().len(), 2);
    }

    #[test]
    #[should_panic]
    fn federated_dataset_rejects_bad_labels() {
        let clients = vec![shard(vec![0, 5], 2)];
        let test = shard(vec![0], 2);
        let _ = FederatedDataset::new(clients, test, 2);
    }

    #[test]
    #[should_panic]
    fn federated_dataset_rejects_dim_mismatch() {
        let clients = vec![shard(vec![0], 2), shard(vec![0], 3)];
        let test = shard(vec![0], 2);
        let _ = FederatedDataset::new(clients, test, 2);
    }
}
