//! Evaluation helpers: weighted global loss/accuracy over federated clients.
//!
//! The paper's global loss is the data-size-weighted average of per-client
//! losses, `L(w) = Σ_i C_i L(w, i) / C` (Section III-A); [`global_loss`] and
//! [`global_accuracy`] implement that weighting for any [`Model`].
//!
//! # Executor-sharded sweeps
//!
//! At every evaluation point the simulators sweep **all** `N` clients (and
//! the test set) at the current `D`-dimensional weights — an `O(N·D)` pass
//! that dominates wall time at `eval_every` rounds once the per-round engine
//! is parallel. The `*_parallel` variants and the fused
//! [`global_evaluation`] run those sweeps through an
//! [`agsfl_exec::Executor`] as chunked maps whose results come back in item
//! order, with the reduction performed serially on the caller's thread in
//! exactly the serial path's association. Results are therefore
//! **bit-identical** to the serial functions for every thread count:
//!
//! * per-shard losses/accuracies are computed independently (purity of
//!   [`Model`]), so each item's value matches the serial pass bit-for-bit;
//! * the test set is split into contiguous *row* chunks, which is bit-stable
//!   because [`Model::forward`] is row-independent (see the trait contract)
//!   and per-chunk correct counts merge by integer addition;
//! * the weighted folds over shards run on the caller's thread in shard
//!   order, the serial association.
//!
//! [`global_evaluation`] additionally fuses the three sweeps the figure
//! pipelines report (train loss, train accuracy, test accuracy) into one
//! parallel region over one work list, so an evaluation point spawns one
//! set of workers and forwards every shard once instead of twice.

use agsfl_exec::Executor;
use agsfl_tensor::Matrix;

use crate::data::ClientShard;
use crate::loss::batch_cross_entropy;
use crate::model::Model;

/// Fraction of correctly classified rows of `x` under `params`, in `[0, 1]`.
///
/// Convenience wrapper around [`Model::accuracy`] for callers that hold the
/// model behind a reference.
pub fn accuracy(model: &dyn Model, params: &[f32], x: &Matrix, labels: &[usize]) -> f32 {
    model.accuracy(params, x, labels)
}

/// Data-size-weighted global loss `Σ_i C_i L(w, i) / C` over client shards.
///
/// Returns `0.0` if the shards hold no samples at all.
pub fn global_loss(model: &dyn Model, params: &[f32], shards: &[ClientShard]) -> f32 {
    let total: usize = shards.iter().map(ClientShard::len).sum();
    if total == 0 {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for shard in shards {
        if shard.is_empty() {
            continue;
        }
        let loss = model.loss(params, &shard.features, &shard.labels) as f64;
        acc += loss * shard.len() as f64;
    }
    (acc / total as f64) as f32
}

/// Data-size-weighted global accuracy over client shards, in `[0, 1]`.
///
/// Returns `0.0` if the shards hold no samples at all.
pub fn global_accuracy(model: &dyn Model, params: &[f32], shards: &[ClientShard]) -> f32 {
    let total: usize = shards.iter().map(ClientShard::len).sum();
    if total == 0 {
        return 0.0;
    }
    let mut correct = 0.0f64;
    for shard in shards {
        if shard.is_empty() {
            continue;
        }
        let acc = model.accuracy(params, &shard.features, &shard.labels) as f64;
        correct += acc * shard.len() as f64;
    }
    (correct / total as f64) as f32
}

/// Number of correctly classified rows of `x` under `params`.
///
/// The integer building block behind the chunked accuracy sweeps: counts
/// merge exactly across chunks, unlike the `f32` fraction
/// [`Model::accuracy`] returns.
pub fn correct_count(model: &dyn Model, params: &[f32], x: &Matrix, labels: &[usize]) -> usize {
    let logits = model.forward(params, x);
    logits
        .iter_rows()
        .zip(labels.iter())
        .filter(|(row, &label)| agsfl_tensor::vecops::argmax(row) == Some(label))
        .count()
}

/// Splits `rows` into one contiguous chunk per executor worker (or a single
/// chunk when the executor would not parallelize the sweep).
fn row_chunks(rows: usize, exec: &Executor) -> Vec<std::ops::Range<usize>> {
    if !exec.should_parallelize(rows) {
        return std::iter::once(0..rows).collect();
    }
    let chunk = rows.div_ceil(exec.threads());
    (0..rows.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(rows))
        .collect()
}

/// Copies the contiguous row range `rows` of `x` into its own matrix.
///
/// One memcpy (rows are contiguous in the row-major layout); negligible next
/// to the forward pass the chunk is about to run.
fn row_slice(x: &Matrix, rows: &std::ops::Range<usize>) -> Matrix {
    let cols = x.cols();
    Matrix::from_vec(
        rows.len(),
        cols,
        x.as_slice()[rows.start * cols..rows.end * cols].to_vec(),
    )
}

/// Row-chunked accuracy sweep, in `[0, 1]`.
///
/// Bit-identical to [`Model::accuracy`] for every executor configuration:
/// each chunk's logits match the unsplit forward pass row-for-row (row
/// independence, see the [`Model`] contract) and chunk counts merge by
/// integer addition before the single final division.
pub fn accuracy_parallel(
    model: &dyn Model,
    params: &[f32],
    x: &Matrix,
    labels: &[usize],
    exec: &Executor,
) -> f32 {
    if labels.is_empty() {
        return 0.0;
    }
    let chunks = row_chunks(x.rows(), exec);
    if chunks.len() == 1 {
        // Serial fallback: forward the matrix directly, no row copy.
        return correct_count(model, params, x, labels) as f32 / labels.len() as f32;
    }
    // `row_chunks` already made the parallelize-or-not decision, so the map
    // must not re-apply the executor's min-items gate to the (small) chunk
    // count — a 2-chunk sweep on a 2-thread executor should actually spawn.
    let counts = exec.clone().with_min_items(1).map_ref(&chunks, |rows| {
        correct_count(model, params, &row_slice(x, rows), &labels[rows.clone()])
    });
    counts.iter().sum::<usize>() as f32 / labels.len() as f32
}

/// Executor-sharded [`global_loss`]: one parallel map over the shards, with
/// the weighted fold run serially in shard order. Bit-identical to the
/// serial function for every executor configuration.
pub fn global_loss_parallel(
    model: &dyn Model,
    params: &[f32],
    shards: &[ClientShard],
    exec: &Executor,
) -> f32 {
    let total: usize = shards.iter().map(ClientShard::len).sum();
    if total == 0 {
        return 0.0;
    }
    let losses = exec.map_ref(shards, |shard| {
        if shard.is_empty() {
            None
        } else {
            Some(model.loss(params, &shard.features, &shard.labels))
        }
    });
    let mut acc = 0.0f64;
    for (shard, loss) in shards.iter().zip(losses) {
        if let Some(loss) = loss {
            acc += loss as f64 * shard.len() as f64;
        }
    }
    (acc / total as f64) as f32
}

/// Executor-sharded [`global_accuracy`]; bit-identical to the serial
/// function for every executor configuration (same structure as
/// [`global_loss_parallel`]).
pub fn global_accuracy_parallel(
    model: &dyn Model,
    params: &[f32],
    shards: &[ClientShard],
    exec: &Executor,
) -> f32 {
    let total: usize = shards.iter().map(ClientShard::len).sum();
    if total == 0 {
        return 0.0;
    }
    let fractions = exec.map_ref(shards, |shard| {
        if shard.is_empty() {
            None
        } else {
            Some(model.accuracy(params, &shard.features, &shard.labels))
        }
    });
    let mut correct = 0.0f64;
    for (shard, frac) in shards.iter().zip(fractions) {
        if let Some(frac) = frac {
            correct += frac as f64 * shard.len() as f64;
        }
    }
    (correct / total as f64) as f32
}

/// Everything an evaluation point reports, computed by one fused sweep
/// ([`global_evaluation`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalEvaluation {
    /// Data-size-weighted global training loss `L(w)`.
    pub train_loss: f32,
    /// Data-size-weighted training accuracy, in `[0, 1]`.
    pub train_accuracy: f32,
    /// Held-out test accuracy, in `[0, 1]`.
    pub test_accuracy: f32,
}

/// One work item of the fused evaluation sweep.
enum EvalItem<'a> {
    /// A client shard, evaluated for loss and accuracy from one forward pass.
    Shard(&'a ClientShard),
    /// A contiguous row chunk of the test set.
    TestChunk(std::ops::Range<usize>),
}

/// Per-item result of the fused evaluation sweep.
enum EvalPartial {
    Shard { loss: f32, accuracy: f32 },
    TestCorrect(usize),
}

/// Fused evaluation sweep: global train loss, global train accuracy and test
/// accuracy in **one** parallel region over one work list (client shards
/// plus test-row chunks), forwarding every shard exactly once.
///
/// Bit-identical to the serial reference
/// (`global_loss` / `global_accuracy` / [`Model::accuracy`] on the test set)
/// for every executor configuration: per-shard loss and accuracy come from
/// the same logits the serial functions would compute, the weighted folds
/// run on the caller's thread in shard order, and test chunks merge by
/// integer addition. Pinned by `serial_and_parallel_evaluations_match` tests
/// in `agsfl-ml` and the simulator crates.
pub fn global_evaluation(
    model: &dyn Model,
    params: &[f32],
    shards: &[ClientShard],
    test: &ClientShard,
    exec: &Executor,
) -> GlobalEvaluation {
    let mut items: Vec<EvalItem> = shards
        .iter()
        .filter(|s| !s.is_empty())
        .map(EvalItem::Shard)
        .collect();
    let num_shards = items.len();
    if !test.is_empty() {
        // The test chunking ignores the shard items when deciding whether to
        // split: the shard map alone already keeps the workers busy, and a
        // deterministic chunk layout keeps the work list reproducible.
        items.extend(
            row_chunks(test.len(), exec)
                .into_iter()
                .map(EvalItem::TestChunk),
        );
    }
    // Parallelize when either the shard list clears the executor's gate or
    // the test set was big enough to be split; the map itself then runs with
    // min_items = 1, because the work list already encodes that decision (a
    // few-item list on a 2-thread executor must still spawn).
    let map_exec = if exec.should_parallelize(num_shards) || items.len() > num_shards + 1 {
        exec.clone().with_min_items(1)
    } else {
        Executor::serial()
    };
    let partials = map_exec.map_ref(&items, |item| match item {
        EvalItem::Shard(shard) => {
            let logits = model.forward(params, &shard.features);
            let correct = logits
                .iter_rows()
                .zip(shard.labels.iter())
                .filter(|(row, &label)| agsfl_tensor::vecops::argmax(row) == Some(label))
                .count();
            EvalPartial::Shard {
                loss: batch_cross_entropy(&logits, &shard.labels),
                accuracy: correct as f32 / shard.len() as f32,
            }
        }
        EvalItem::TestChunk(rows) => EvalPartial::TestCorrect(correct_count(
            model,
            params,
            &row_slice(&test.features, rows),
            &test.labels[rows.clone()],
        )),
    });

    let total: usize = shards.iter().map(ClientShard::len).sum();
    let mut loss_acc = 0.0f64;
    let mut correct_acc = 0.0f64;
    let mut test_correct = 0usize;
    for (item, partial) in items.iter().zip(partials) {
        match (item, partial) {
            (EvalItem::Shard(shard), EvalPartial::Shard { loss, accuracy }) => {
                loss_acc += loss as f64 * shard.len() as f64;
                correct_acc += accuracy as f64 * shard.len() as f64;
            }
            (EvalItem::TestChunk(_), EvalPartial::TestCorrect(count)) => test_correct += count,
            _ => unreachable!("map_ref preserves item order"),
        }
    }
    GlobalEvaluation {
        train_loss: if total == 0 {
            0.0
        } else {
            (loss_acc / total as f64) as f32
        },
        train_accuracy: if total == 0 {
            0.0
        } else {
            (correct_acc / total as f64) as f32
        },
        test_accuracy: if test.is_empty() {
            0.0
        } else {
            test_correct as f32 / test.len() as f32
        },
    }
}

/// A labelled confusion matrix over `num_classes` classes.
///
/// Row = true class, column = predicted class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    num_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty confusion matrix.
    pub fn new(num_classes: usize) -> Self {
        Self {
            num_classes,
            counts: vec![0; num_classes * num_classes],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either class index is out of range.
    pub fn record(&mut self, true_class: usize, predicted: usize) {
        assert!(true_class < self.num_classes && predicted < self.num_classes);
        self.counts[true_class * self.num_classes + predicted] += 1;
    }

    /// Fills the matrix from model predictions on a batch.
    pub fn record_batch(
        &mut self,
        model: &dyn Model,
        params: &[f32],
        x: &Matrix,
        labels: &[usize],
    ) {
        let logits = model.forward(params, x);
        for (row, &label) in logits.iter_rows().zip(labels.iter()) {
            let pred = agsfl_tensor::vecops::argmax(row).unwrap_or(0);
            self.record(label, pred);
        }
    }

    /// Count for `(true_class, predicted)`.
    pub fn count(&self, true_class: usize, predicted: usize) -> u64 {
        self.counts[true_class * self.num_classes + predicted]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (trace / total), `0.0` when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.num_classes).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Per-class recall (`None` for classes never observed).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row_total: u64 = (0..self.num_classes).map(|j| self.count(class, j)).sum();
        if row_total == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row_total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ClientShard;
    use crate::model::LinearSoftmax;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn shard(features: Vec<Vec<f32>>, labels: Vec<usize>) -> ClientShard {
        let dim = features[0].len();
        let flat: Vec<f32> = features.into_iter().flatten().collect();
        ClientShard::new(Matrix::from_vec(labels.len(), dim, flat), labels)
    }

    #[test]
    fn global_loss_is_weighted_by_client_size() {
        let model = LinearSoftmax::new(2, 2);
        let params = vec![0.0; model.num_params()];
        // Uniform logits -> loss = ln(2) per sample everywhere, so weighting is
        // invisible; instead check against the unweighted formula explicitly.
        let a = shard(vec![vec![1.0, 0.0]; 3], vec![0, 0, 0]);
        let b = shard(vec![vec![0.0, 1.0]; 1], vec![1]);
        let loss = global_loss(&model, &params, &[a.clone(), b.clone()]);
        let expected = (model.loss(&params, &a.features, &a.labels) * 3.0
            + model.loss(&params, &b.features, &b.labels))
            / 4.0;
        assert!((loss - expected).abs() < 1e-6);
    }

    #[test]
    fn global_metrics_empty_shards() {
        let model = LinearSoftmax::new(2, 2);
        let params = vec![0.0; model.num_params()];
        assert_eq!(global_loss(&model, &params, &[]), 0.0);
        assert_eq!(global_accuracy(&model, &params, &[]), 0.0);
    }

    #[test]
    fn global_accuracy_perfect_model() {
        let model = LinearSoftmax::new(2, 2);
        // Weights mapping feature 0 -> class 0, feature 1 -> class 1.
        let params = vec![5.0, -5.0, -5.0, 5.0, 0.0, 0.0];
        let a = shard(vec![vec![1.0, 0.0], vec![0.0, 1.0]], vec![0, 1]);
        assert_eq!(global_accuracy(&model, &params, &[a]), 1.0);
    }

    #[test]
    fn confusion_matrix_counts_and_accuracy() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 2);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.count(0, 1), 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.recall(1), Some(1.0));
    }

    #[test]
    fn confusion_matrix_record_batch() {
        let model = LinearSoftmax::new(2, 2);
        let params = vec![5.0, -5.0, -5.0, 5.0, 0.0, 0.0];
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]]);
        let labels = vec![0, 1, 1];
        let mut cm = ConfusionMatrix::new(2);
        cm.record_batch(&model, &params, &x, &labels);
        assert_eq!(cm.total(), 3);
        assert_eq!(cm.count(1, 0), 1); // the mislabelled third sample
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn recall_of_unseen_class_is_none() {
        let cm = ConfusionMatrix::new(2);
        assert_eq!(cm.recall(0), None);
        assert_eq!(cm.accuracy(), 0.0);
    }

    /// The evaluation-sweep invariant: serial and parallel sweeps are
    /// bit-identical for 1–8 workers, and the fused sweep matches the three
    /// individual serial functions exactly.
    #[test]
    fn serial_and_parallel_evaluations_match() {
        use agsfl_exec::Executor;
        let model = LinearSoftmax::new(6, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let params = model.init_params(&mut rng);
        let shards: Vec<ClientShard> = (0..9)
            .map(|s| {
                let n = 3 + (s * 5) % 7;
                ClientShard::new(
                    Matrix::from_fn(n, 6, |i, j| {
                        ((i * 31 + j * 17 + s * 13) % 23) as f32 * 0.1 - 1.0
                    }),
                    (0..n).map(|i| (i + s) % 4).collect(),
                )
            })
            .collect();
        let test = ClientShard::new(
            Matrix::from_fn(25, 6, |i, j| ((i * 7 + j * 29) % 19) as f32 * 0.1 - 0.9),
            (0..25).map(|i| i % 4).collect(),
        );

        let expected_loss = global_loss(&model, &params, &shards);
        let expected_acc = global_accuracy(&model, &params, &shards);
        let expected_test = model.accuracy(&params, &test.features, &test.labels);
        for threads in 1..=8 {
            let exec = Executor::new(threads).with_min_items(1);
            assert_eq!(
                global_loss_parallel(&model, &params, &shards, &exec),
                expected_loss,
                "threads={threads}"
            );
            assert_eq!(
                global_accuracy_parallel(&model, &params, &shards, &exec),
                expected_acc,
                "threads={threads}"
            );
            assert_eq!(
                accuracy_parallel(&model, &params, &test.features, &test.labels, &exec),
                expected_test,
                "threads={threads}"
            );
            let fused = global_evaluation(&model, &params, &shards, &test, &exec);
            assert_eq!(fused.train_loss, expected_loss, "threads={threads}");
            assert_eq!(fused.train_accuracy, expected_acc, "threads={threads}");
            assert_eq!(fused.test_accuracy, expected_test, "threads={threads}");
        }
    }

    #[test]
    fn fused_evaluation_handles_empty_inputs() {
        use agsfl_exec::Executor;
        let model = LinearSoftmax::new(2, 2);
        let params = vec![0.0; model.num_params()];
        let exec = Executor::new(4).with_min_items(1);
        let empty = global_evaluation(&model, &params, &[], &ClientShard::empty(2), &exec);
        assert_eq!(empty.train_loss, 0.0);
        assert_eq!(empty.train_accuracy, 0.0);
        assert_eq!(empty.test_accuracy, 0.0);
        // Empty shards in a non-empty list are skipped, like global_loss.
        let a = shard(vec![vec![1.0, 0.0]; 2], vec![0, 0]);
        let with_hole = vec![a.clone(), ClientShard::empty(2), a];
        let fused = global_evaluation(&model, &params, &with_hole, &ClientShard::empty(2), &exec);
        assert_eq!(fused.train_loss, global_loss(&model, &params, &with_hole));
    }

    #[test]
    fn global_accuracy_matches_model_accuracy_single_shard() {
        let model = LinearSoftmax::new(3, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let params = model.init_params(&mut rng);
        let s = shard(vec![vec![0.1, 0.2, 0.3], vec![0.3, 0.2, 0.1]], vec![0, 1]);
        let a = global_accuracy(&model, &params, std::slice::from_ref(&s));
        let b = model.accuracy(&params, &s.features, &s.labels);
        assert!((a - b).abs() < 1e-6);
    }
}
