//! Evaluation helpers: weighted global loss/accuracy over federated clients.
//!
//! The paper's global loss is the data-size-weighted average of per-client
//! losses, `L(w) = Σ_i C_i L(w, i) / C` (Section III-A); [`global_loss`] and
//! [`global_accuracy`] implement that weighting for any [`Model`].

use agsfl_tensor::Matrix;

use crate::data::ClientShard;
use crate::model::Model;

/// Fraction of correctly classified rows of `x` under `params`, in `[0, 1]`.
///
/// Convenience wrapper around [`Model::accuracy`] for callers that hold the
/// model behind a reference.
pub fn accuracy(model: &dyn Model, params: &[f32], x: &Matrix, labels: &[usize]) -> f32 {
    model.accuracy(params, x, labels)
}

/// Data-size-weighted global loss `Σ_i C_i L(w, i) / C` over client shards.
///
/// Returns `0.0` if the shards hold no samples at all.
pub fn global_loss(model: &dyn Model, params: &[f32], shards: &[ClientShard]) -> f32 {
    let total: usize = shards.iter().map(ClientShard::len).sum();
    if total == 0 {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for shard in shards {
        if shard.is_empty() {
            continue;
        }
        let loss = model.loss(params, &shard.features, &shard.labels) as f64;
        acc += loss * shard.len() as f64;
    }
    (acc / total as f64) as f32
}

/// Data-size-weighted global accuracy over client shards, in `[0, 1]`.
///
/// Returns `0.0` if the shards hold no samples at all.
pub fn global_accuracy(model: &dyn Model, params: &[f32], shards: &[ClientShard]) -> f32 {
    let total: usize = shards.iter().map(ClientShard::len).sum();
    if total == 0 {
        return 0.0;
    }
    let mut correct = 0.0f64;
    for shard in shards {
        if shard.is_empty() {
            continue;
        }
        let acc = model.accuracy(params, &shard.features, &shard.labels) as f64;
        correct += acc * shard.len() as f64;
    }
    (correct / total as f64) as f32
}

/// A labelled confusion matrix over `num_classes` classes.
///
/// Row = true class, column = predicted class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    num_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty confusion matrix.
    pub fn new(num_classes: usize) -> Self {
        Self {
            num_classes,
            counts: vec![0; num_classes * num_classes],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either class index is out of range.
    pub fn record(&mut self, true_class: usize, predicted: usize) {
        assert!(true_class < self.num_classes && predicted < self.num_classes);
        self.counts[true_class * self.num_classes + predicted] += 1;
    }

    /// Fills the matrix from model predictions on a batch.
    pub fn record_batch(&mut self, model: &dyn Model, params: &[f32], x: &Matrix, labels: &[usize]) {
        let logits = model.forward(params, x);
        for (row, &label) in logits.iter_rows().zip(labels.iter()) {
            let pred = agsfl_tensor::vecops::argmax(row).unwrap_or(0);
            self.record(label, pred);
        }
    }

    /// Count for `(true_class, predicted)`.
    pub fn count(&self, true_class: usize, predicted: usize) -> u64 {
        self.counts[true_class * self.num_classes + predicted]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (trace / total), `0.0` when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.num_classes).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Per-class recall (`None` for classes never observed).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row_total: u64 = (0..self.num_classes).map(|j| self.count(class, j)).sum();
        if row_total == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row_total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ClientShard;
    use crate::model::LinearSoftmax;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn shard(features: Vec<Vec<f32>>, labels: Vec<usize>) -> ClientShard {
        let dim = features[0].len();
        let flat: Vec<f32> = features.into_iter().flatten().collect();
        ClientShard::new(Matrix::from_vec(labels.len(), dim, flat), labels)
    }

    #[test]
    fn global_loss_is_weighted_by_client_size() {
        let model = LinearSoftmax::new(2, 2);
        let params = vec![0.0; model.num_params()];
        // Uniform logits -> loss = ln(2) per sample everywhere, so weighting is
        // invisible; instead check against the unweighted formula explicitly.
        let a = shard(vec![vec![1.0, 0.0]; 3], vec![0, 0, 0]);
        let b = shard(vec![vec![0.0, 1.0]; 1], vec![1]);
        let loss = global_loss(&model, &params, &[a.clone(), b.clone()]);
        let expected = (model.loss(&params, &a.features, &a.labels) * 3.0
            + model.loss(&params, &b.features, &b.labels))
            / 4.0;
        assert!((loss - expected).abs() < 1e-6);
    }

    #[test]
    fn global_metrics_empty_shards() {
        let model = LinearSoftmax::new(2, 2);
        let params = vec![0.0; model.num_params()];
        assert_eq!(global_loss(&model, &params, &[]), 0.0);
        assert_eq!(global_accuracy(&model, &params, &[]), 0.0);
    }

    #[test]
    fn global_accuracy_perfect_model() {
        let model = LinearSoftmax::new(2, 2);
        // Weights mapping feature 0 -> class 0, feature 1 -> class 1.
        let params = vec![5.0, -5.0, -5.0, 5.0, 0.0, 0.0];
        let a = shard(vec![vec![1.0, 0.0], vec![0.0, 1.0]], vec![0, 1]);
        assert_eq!(global_accuracy(&model, &params, &[a]), 1.0);
    }

    #[test]
    fn confusion_matrix_counts_and_accuracy() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 2);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.count(0, 1), 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.recall(1), Some(1.0));
    }

    #[test]
    fn confusion_matrix_record_batch() {
        let model = LinearSoftmax::new(2, 2);
        let params = vec![5.0, -5.0, -5.0, 5.0, 0.0, 0.0];
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]]);
        let labels = vec![0, 1, 1];
        let mut cm = ConfusionMatrix::new(2);
        cm.record_batch(&model, &params, &x, &labels);
        assert_eq!(cm.total(), 3);
        assert_eq!(cm.count(1, 0), 1); // the mislabelled third sample
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn recall_of_unseen_class_is_none() {
        let cm = ConfusionMatrix::new(2);
        assert_eq!(cm.recall(0), None);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn global_accuracy_matches_model_accuracy_single_shard() {
        let model = LinearSoftmax::new(3, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let params = model.init_params(&mut rng);
        let s = shard(vec![vec![0.1, 0.2, 0.3], vec![0.3, 0.2, 0.1]], vec![0, 1]);
        let a = global_accuracy(&model, &params, std::slice::from_ref(&s));
        let b = model.accuracy(&params, &s.features, &s.labels);
        assert!((a - b).abs() < 1e-6);
    }
}
