//! Optimizers operating on flat parameter vectors.
//!
//! Federated learning in the paper uses plain synchronous SGD with step size
//! `η` (Eq. (1)): `w(m) = w(m-1) - η ∇_s L(w(m-1))`. [`sgd_step`] implements
//! exactly that; [`SgdMomentum`] is provided for local (non-federated)
//! baselines and ablation experiments.
//!
//! # Examples
//!
//! ```
//! use agsfl_ml::optim::sgd_step;
//!
//! let mut w = vec![1.0, 2.0];
//! sgd_step(&mut w, &[0.5, -1.0], 0.1);
//! assert_eq!(w, vec![0.95, 2.1]);
//! ```

use agsfl_tensor::vecops;
use serde::{Deserialize, Serialize};

/// Applies one SGD step `w -= lr * grad` in place.
///
/// # Panics
///
/// Panics if `weights.len() != grad.len()`.
pub fn sgd_step(weights: &mut [f32], grad: &[f32], lr: f32) {
    vecops::axpy(weights, -lr, grad);
}

/// Applies one SGD step using a *sparse* gradient given as `(index, value)`
/// pairs: `w[j] -= lr * value` for every pair.
///
/// This is the update every client performs after receiving the aggregated
/// sparse gradient `B` from the server (Lines 13–15 of Algorithm 1).
///
/// # Panics
///
/// Panics if any index is out of range.
pub fn sgd_step_sparse(weights: &mut [f32], sparse_grad: &[(usize, f32)], lr: f32) {
    for &(j, v) in sparse_grad {
        assert!(j < weights.len(), "sparse gradient index {j} out of range");
        weights[j] -= lr * v;
    }
}

/// SGD with classical (heavy-ball) momentum, used by non-federated baselines.
///
/// # Examples
///
/// ```
/// use agsfl_ml::optim::SgdMomentum;
///
/// let mut opt = SgdMomentum::new(2, 0.1, 0.9);
/// let mut w = vec![0.0, 0.0];
/// opt.step(&mut w, &[1.0, -1.0]);
/// assert_eq!(w, vec![-0.1, 0.1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgdMomentum {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl SgdMomentum {
    /// Creates an optimizer for parameter vectors of length `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is not in `[0, 1)`.
    pub fn new(dim: usize, lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: vec![0.0; dim],
        }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Applies one update `v = momentum * v + grad; w -= lr * v`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` or `grad` length differs from the optimizer's
    /// dimension.
    pub fn step(&mut self, weights: &mut [f32], grad: &[f32]) {
        assert_eq!(weights.len(), self.velocity.len(), "weight length mismatch");
        assert_eq!(grad.len(), self.velocity.len(), "gradient length mismatch");
        for ((v, w), g) in self
            .velocity
            .iter_mut()
            .zip(weights.iter_mut())
            .zip(grad.iter())
        {
            *v = self.momentum * *v + g;
            *w -= self.lr * *v;
        }
    }

    /// Resets the accumulated velocity to zero.
    pub fn reset(&mut self) {
        vecops::zero(&mut self.velocity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sgd_step_matches_axpy() {
        let mut w = vec![1.0, -1.0, 0.5];
        sgd_step(&mut w, &[1.0, 1.0, 1.0], 0.1);
        assert_eq!(w, vec![0.9, -1.1, 0.4]);
    }

    #[test]
    fn sparse_step_only_touches_listed_indices() {
        let mut w = vec![1.0; 5];
        sgd_step_sparse(&mut w, &[(1, 2.0), (4, -2.0)], 0.5);
        assert_eq!(w, vec![1.0, 0.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn sparse_step_equals_dense_step_on_masked_gradient() {
        let dense_grad = vec![0.0, 3.0, 0.0, -1.0];
        let sparse: Vec<(usize, f32)> = dense_grad
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != 0.0)
            .map(|(i, v)| (i, *v))
            .collect();
        let mut w_dense = vec![1.0, 1.0, 1.0, 1.0];
        let mut w_sparse = w_dense.clone();
        sgd_step(&mut w_dense, &dense_grad, 0.25);
        sgd_step_sparse(&mut w_sparse, &sparse, 0.25);
        assert_eq!(w_dense, w_sparse);
    }

    #[test]
    #[should_panic]
    fn sparse_step_out_of_range_panics() {
        let mut w = vec![0.0; 2];
        sgd_step_sparse(&mut w, &[(5, 1.0)], 0.1);
    }

    #[test]
    fn momentum_zero_equals_plain_sgd() {
        let grad = vec![1.0, -2.0];
        let mut w_plain = vec![0.0, 0.0];
        sgd_step(&mut w_plain, &grad, 0.1);
        let mut opt = SgdMomentum::new(2, 0.1, 0.0);
        let mut w_mom = vec![0.0, 0.0];
        opt.step(&mut w_mom, &grad);
        assert_eq!(w_plain, w_mom);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = SgdMomentum::new(1, 1.0, 0.5);
        let mut w = vec![0.0];
        opt.step(&mut w, &[1.0]); // v = 1, w = -1
        opt.step(&mut w, &[1.0]); // v = 1.5, w = -2.5
        assert!((w[0] + 2.5).abs() < 1e-6);
        opt.reset();
        opt.step(&mut w, &[0.0]);
        assert!((w[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn invalid_momentum_panics() {
        let _ = SgdMomentum::new(1, 0.1, 1.0);
    }

    proptest! {
        #[test]
        fn prop_sgd_step_is_linear_in_lr(
            w0 in proptest::collection::vec(-5.0f32..5.0, 1..20),
            lr in 0.001f32..1.0,
        ) {
            let grad: Vec<f32> = w0.iter().map(|x| x * 0.5 + 0.1).collect();
            let mut one_step = w0.clone();
            sgd_step(&mut one_step, &grad, lr);
            let mut two_half_steps = w0.clone();
            sgd_step(&mut two_half_steps, &grad, lr / 2.0);
            sgd_step(&mut two_half_steps, &grad, lr / 2.0);
            for i in 0..w0.len() {
                prop_assert!((one_step[i] - two_half_steps[i]).abs() < 1e-4);
            }
        }
    }
}
