//! Seed (pre-im2col) model kernels kept as the executable specification.
//!
//! Mirroring `agsfl_sparse::reference`, this module preserves the original
//! scalar-loop implementation of [`SimpleCnn`]'s forward and backward passes
//! exactly as the seed wrote them: six nested loops per convolution, an
//! explicit pooling/ReLU pass and per-sample fully connected accumulation.
//! The optimized im2col lowering (see [`crate::model::Im2colScratch`]) is
//! property-tested against these functions in
//! `crates/ml/tests/cnn_equivalence.rs`.
//!
//! **Equivalence is ULP-level, not bit-level.** The im2col path computes the
//! same left-fold over each receptive field but adds the bias *after* the
//! fold instead of seeding the accumulator with it, and the fully connected
//! matmul accumulates from `0.0` before the bias broadcast. IEEE additions
//! reassociated this way can differ in the last bits, so the equivalence
//! tests assert a small relative tolerance instead of byte equality — in
//! contrast to the selection kernels in `agsfl-sparse`, whose folds are
//! reproduced order-exactly and are therefore pinned bit-identical.
//!
//! These functions are also the `cnn_forward` baseline timed by
//! `bench-report` (see `BENCH_kernels.json`).
//!
//! [`SimpleCnn`]: crate::model::SimpleCnn

use agsfl_tensor::{ops, Matrix};

use crate::loss::batch_cross_entropy_with_grad;
use crate::model::{Model, SimpleCnn};

const KERNEL: usize = 3;

/// Seed convolution + ReLU + average pooling for one sample.
///
/// Returns `(pre_activation, pooled)` where `pre_activation` is the raw
/// convolution output (needed for the ReLU derivative).
pub fn cnn_forward_sample(
    model: &SimpleCnn,
    params: &[f32],
    sample: &[f32],
) -> (Vec<f32>, Vec<f32>) {
    let (conv_w_off, conv_b_off, _, _) = model.offsets();
    let (ch, cw) = model.conv_output_size();
    let out_channels = model.filters();
    let in_channels = model.in_channels();
    let mut pre = vec![0.0f32; out_channels * ch * cw];
    for o in 0..out_channels {
        let bias = params[conv_b_off + o];
        for y in 0..ch {
            for x in 0..cw {
                let mut acc = bias;
                for c in 0..in_channels {
                    for ky in 0..KERNEL {
                        for kx in 0..KERNEL {
                            acc += sample[model.input_index(c, y + ky, x + kx)]
                                * params[conv_w_off + model.conv_w_index(o, c, ky, kx)];
                        }
                    }
                }
                pre[(o * ch + y) * cw + x] = acc;
            }
        }
    }
    let (ph, pw) = model.pooled_size();
    let mut pooled = vec![0.0f32; out_channels * ph * pw];
    for o in 0..out_channels {
        for py in 0..ph {
            for px in 0..pw {
                let mut acc = 0.0f32;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let y = py * 2 + dy;
                        let x = px * 2 + dx;
                        acc += ops::relu(pre[(o * ch + y) * cw + x]);
                    }
                }
                pooled[(o * ph + py) * pw + px] = acc / 4.0;
            }
        }
    }
    (pre, pooled)
}

/// Seed forward pass: per-sample scalar convolution loops plus a strided
/// per-class fully connected accumulation.
pub fn cnn_forward(model: &SimpleCnn, params: &[f32], x: &Matrix) -> Matrix {
    let (_, _, fc_w_off, fc_b_off) = model.offsets();
    let num_classes = model.num_classes();
    let mut logits = Matrix::zeros(x.rows(), num_classes);
    for i in 0..x.rows() {
        let (_, pooled) = cnn_forward_sample(model, params, x.row(i));
        let out = logits.row_mut(i);
        for (j, out_j) in out.iter_mut().enumerate() {
            let mut acc = params[fc_b_off + j];
            for (p, &v) in pooled.iter().enumerate() {
                acc += v * params[fc_w_off + p * num_classes + j];
            }
            *out_j = acc;
        }
    }
    logits
}

/// Seed backward pass: the original nested-loop backpropagation.
pub fn cnn_loss_and_grad(
    model: &SimpleCnn,
    params: &[f32],
    x: &Matrix,
    labels: &[usize],
) -> (f32, Vec<f32>) {
    let (conv_w_off, conv_b_off, fc_w_off, fc_b_off) = model.offsets();
    let (ch, cw) = model.conv_output_size();
    let (ph, pw) = model.pooled_size();
    let out_channels = model.filters();
    let in_channels = model.in_channels();
    let num_classes = model.num_classes();

    // Forward pass, caching per-sample intermediates.
    let mut pres = Vec::with_capacity(x.rows());
    let mut pooleds = Vec::with_capacity(x.rows());
    let mut logits = Matrix::zeros(x.rows(), num_classes);
    for i in 0..x.rows() {
        let (pre, pooled) = cnn_forward_sample(model, params, x.row(i));
        let out = logits.row_mut(i);
        for (j, out_j) in out.iter_mut().enumerate() {
            let mut acc = params[fc_b_off + j];
            for (p, &v) in pooled.iter().enumerate() {
                acc += v * params[fc_w_off + p * num_classes + j];
            }
            *out_j = acc;
        }
        pres.push(pre);
        pooleds.push(pooled);
    }
    let (loss, dlogits) = batch_cross_entropy_with_grad(&logits, labels);

    let mut grad = vec![0.0f32; model.num_params()];
    for i in 0..x.rows() {
        let sample = x.row(i);
        let dlog = dlogits.row(i);
        let pooled = &pooleds[i];
        let pre = &pres[i];

        // Fully connected layer gradients and back-propagated pooled grad.
        let mut dpooled = vec![0.0f32; pooled.len()];
        for (p, &pv) in pooled.iter().enumerate() {
            for j in 0..num_classes {
                grad[fc_w_off + p * num_classes + j] += pv * dlog[j];
                dpooled[p] += params[fc_w_off + p * num_classes + j] * dlog[j];
            }
        }
        for j in 0..num_classes {
            grad[fc_b_off + j] += dlog[j];
        }

        // Average pooling + ReLU backward into the convolution output.
        let mut dpre = vec![0.0f32; pre.len()];
        for o in 0..out_channels {
            for py in 0..ph {
                for px in 0..pw {
                    let g = dpooled[(o * ph + py) * pw + px] / 4.0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let y = py * 2 + dy;
                            let x_ = px * 2 + dx;
                            let idx = (o * ch + y) * cw + x_;
                            dpre[idx] += g * ops::relu_grad(pre[idx]);
                        }
                    }
                }
            }
        }

        // Convolution weight and bias gradients.
        for o in 0..out_channels {
            for y in 0..ch {
                for x_ in 0..cw {
                    let g = dpre[(o * ch + y) * cw + x_];
                    if g == 0.0 {
                        continue;
                    }
                    grad[conv_b_off + o] += g;
                    for c in 0..in_channels {
                        for ky in 0..KERNEL {
                            for kx in 0..KERNEL {
                                grad[conv_w_off + model.conv_w_index(o, c, ky, kx)] +=
                                    g * sample[model.input_index(c, y + ky, x_ + kx)];
                            }
                        }
                    }
                }
            }
        }
    }
    (loss, grad)
}
