//! Cross-entropy loss over mini-batches of logits.
//!
//! The paper trains classification models with the standard soft-max
//! cross-entropy objective; the global loss `L(w)` is the data-size-weighted
//! average of the per-client losses (Section III-A).
//!
//! # Examples
//!
//! ```
//! use agsfl_ml::loss::batch_cross_entropy;
//! use agsfl_tensor::Matrix;
//!
//! let logits = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
//! let loss = batch_cross_entropy(&logits, &[0, 1]);
//! assert!(loss > 0.0 && loss < 0.2);
//! ```

use agsfl_tensor::ops;
use agsfl_tensor::Matrix;

/// Mean cross-entropy of a batch of logits against integer class labels.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn batch_cross_entropy(logits: &Matrix, labels: &[usize]) -> f32 {
    assert_eq!(
        logits.rows(),
        labels.len(),
        "batch_cross_entropy: {} logit rows vs {} labels",
        logits.rows(),
        labels.len()
    );
    if labels.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f32;
    for (row, &label) in logits.iter_rows().zip(labels.iter()) {
        total += ops::cross_entropy_with_logits(row, label);
    }
    total / labels.len() as f32
}

/// Gradient of the mean cross-entropy with respect to the logits.
///
/// Returns a matrix of the same shape as `logits` containing
/// `(softmax(logits) - one_hot(label)) / batch_size` per row, which is the
/// quantity back-propagated through the network layers.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn cross_entropy_logit_grad(logits: &Matrix, labels: &[usize]) -> Matrix {
    assert_eq!(
        logits.rows(),
        labels.len(),
        "cross_entropy_logit_grad: {} logit rows vs {} labels",
        logits.rows(),
        labels.len()
    );
    let batch = labels.len().max(1) as f32;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    for (i, &label) in labels.iter().enumerate() {
        let probs = ops::softmax(logits.row(i));
        assert!(label < logits.cols(), "label {label} out of range");
        let row = grad.row_mut(i);
        for (j, p) in probs.into_iter().enumerate() {
            row[j] = (p - if j == label { 1.0 } else { 0.0 }) / batch;
        }
    }
    grad
}

/// Loss and logit gradient in one pass (avoids recomputing the soft-max).
pub fn batch_cross_entropy_with_grad(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    (
        batch_cross_entropy(logits, labels),
        cross_entropy_logit_grad(logits, labels),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn loss_of_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[&[20.0, 0.0], &[0.0, 20.0]]);
        assert!(batch_cross_entropy(&logits, &[0, 1]) < 1e-6);
    }

    #[test]
    fn loss_of_uniform_prediction_is_log_classes() {
        let logits = Matrix::zeros(3, 4);
        let loss = batch_cross_entropy(&logits, &[0, 1, 2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn empty_batch_is_zero_loss() {
        let logits = Matrix::zeros(0, 4);
        assert_eq!(batch_cross_entropy(&logits, &[]), 0.0);
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 0.0, 0.0]]);
        let grad = cross_entropy_logit_grad(&logits, &[2, 0]);
        for i in 0..grad.rows() {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6, "row {i} sums to {s}");
        }
    }

    #[test]
    fn grad_points_away_from_true_class() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let grad = cross_entropy_logit_grad(&logits, &[0]);
        assert!(grad.get(0, 0) < 0.0);
        assert!(grad.get(0, 1) > 0.0);
    }

    #[test]
    fn combined_matches_separate() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0], &[-1.0, 0.5]]);
        let (l, g) = batch_cross_entropy_with_grad(&logits, &[1, 0]);
        assert_eq!(l, batch_cross_entropy(&logits, &[1, 0]));
        assert_eq!(g, cross_entropy_logit_grad(&logits, &[1, 0]));
    }

    #[test]
    #[should_panic]
    fn mismatched_labels_panic() {
        let logits = Matrix::zeros(2, 2);
        let _ = batch_cross_entropy(&logits, &[0]);
    }

    proptest! {
        #[test]
        fn prop_grad_is_finite_difference_of_loss(
            base in proptest::collection::vec(-3.0f32..3.0, 6),
        ) {
            // Single-sample batch, 6 logits; compare analytic gradient with a
            // central finite difference.
            let labels = [3usize];
            let logits = Matrix::from_vec(1, 6, base.clone());
            let grad = cross_entropy_logit_grad(&logits, &labels);
            let eps = 1e-2f32;
            for j in 0..6 {
                let mut plus = base.clone();
                plus[j] += eps;
                let mut minus = base.clone();
                minus[j] -= eps;
                let lp = batch_cross_entropy(&Matrix::from_vec(1, 6, plus), &labels);
                let lm = batch_cross_entropy(&Matrix::from_vec(1, 6, minus), &labels);
                let fd = (lp - lm) / (2.0 * eps);
                prop_assert!((fd - grad.get(0, j)).abs() < 2e-2,
                    "j={} fd={} analytic={}", j, fd, grad.get(0, j));
            }
        }
    }
}
