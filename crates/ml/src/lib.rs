//! Machine-learning substrate for the AGSFL paper reproduction.
//!
//! The adaptive gradient-sparsification algorithms of the paper operate on a
//! *flat* gradient vector of dimension `D`; they are agnostic to where that
//! gradient comes from. This crate provides everything needed to produce such
//! gradients and evaluate the resulting models:
//!
//! * [`model`] — neural-network models ([`model::LinearSoftmax`],
//!   [`model::Mlp`], [`model::SimpleCnn`]) that store their parameters in a
//!   single flat `Vec<f32>` so the sparsification layer can treat the model as
//!   an opaque `D`-dimensional vector, exactly as the paper does,
//! * [`loss`] — cross-entropy loss over mini-batches,
//! * [`optim`] — plain SGD on flat parameter vectors (Eq. (1) of the paper),
//! * [`data`] — synthetic federated datasets reproducing the *structure* of
//!   FEMNIST (per-writer non-i.i.d. shards) and the one-class-per-client
//!   CIFAR-10 partition used in the paper's evaluation, plus generic
//!   partitioners and a mini-batch sampler,
//! * [`metrics`] — accuracy and loss evaluation helpers, both serial and
//!   executor-sharded (bit-identical) parallel sweeps,
//! * [`mod@reference`] — the seed scalar-loop CNN kernels kept as the executable
//!   specification for the im2col fast path.
//!
//! # Example
//!
//! ```
//! use agsfl_ml::data::{SyntheticFemnist, SyntheticFemnistConfig};
//! use agsfl_ml::model::{LinearSoftmax, Model};
//! use agsfl_ml::optim::sgd_step;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let fed = SyntheticFemnist::new(SyntheticFemnistConfig {
//!     num_clients: 4,
//!     samples_per_client: 16,
//!     ..Default::default()
//! })
//! .generate(&mut rng);
//!
//! let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
//! let mut params = model.init_params(&mut rng);
//! let shard = fed.client(0);
//! let (loss, grad) = model.loss_and_grad(&params, &shard.features, &shard.labels);
//! assert!(loss > 0.0);
//! sgd_step(&mut params, &grad, 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod reference;
pub mod stats;

pub use data::{ClientShard, FederatedDataset};
pub use model::Model;
