//! Reference-equivalence proptests for the im2col CNN fast path.
//!
//! `SimpleCnn` lowers its convolution to matrix multiplies against a reused
//! column workspace (`Im2colScratch`); the seed scalar-loop implementation
//! survives in `agsfl_ml::reference` as the executable specification, and
//! these tests pin the two against each other over random geometries,
//! batches and weights.
//!
//! **Tolerance, not byte equality.** Unlike the selection kernels in
//! `agsfl-sparse` (whose sharded folds reproduce the serial association
//! order-exactly and are pinned bit-identical), the im2col path reassociates
//! floating-point sums: the gemm kernel accumulates the contraction
//! dimension in a fixed 4-way blocking (with 2-row output tiling) and the
//! fully connected bias is broadcast after the fold instead of seeding it.
//! Those are ULP-level reassociation differences, so equivalence is asserted
//! within a small relative tolerance:
//!
//! > `|a − b| ≤ ATOL + RTOL · max(|a|, |b|)` with `ATOL = 1e-4`,
//! > `RTOL = 1e-3`
//!
//! which is orders of magnitude tighter than the finite-difference gradient
//! check but loose enough to absorb any IEEE reassociation of the summands.
//! What *is* exact: the im2col pass itself (pure copies), the pooling fold
//! (same four-term order as the reference) and repeated calls on a shared
//! scratch (observational purity, asserted bit-identical below).

use agsfl_ml::model::{Im2colScratch, Model, SimpleCnn};
use agsfl_ml::reference;
use agsfl_tensor::Matrix;
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const ATOL: f32 = 1e-4;
const RTOL: f32 = 1e-3;

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= ATOL + RTOL * a.abs().max(b.abs())
}

fn assert_all_close(fast: &[f32], slow: &[f32], what: &str) {
    assert_eq!(fast.len(), slow.len(), "{what}: length mismatch");
    for (i, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
        assert!(
            close(*a, *b),
            "{what}[{i}] diverged: im2col {a} vs reference {b}"
        );
    }
}

/// Builds a random CNN, weights and batch from the proptest parameters.
fn build_case(
    seed: u64,
    channels: usize,
    height: usize,
    width: usize,
    filters: usize,
    classes: usize,
    batch: usize,
) -> (SimpleCnn, Vec<f32>, Matrix, Vec<usize>) {
    let model = SimpleCnn::new(channels, height, width, filters, classes);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let params = model.init_params(&mut rng);
    let x = Matrix::from_fn(batch, model.input_dim(), |_, _| rng.gen_range(-1.5f32..1.5));
    let labels = (0..batch)
        .map(|i| (i * 7 + seed as usize) % classes)
        .collect();
    (model, params, x, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forward pass: im2col logits match the scalar reference within the
    /// documented tolerance, for random geometries (odd and even
    /// convolution outputs, so uncovered pooling edges are exercised).
    #[test]
    fn prop_im2col_forward_matches_reference(
        seed in 0u64..10_000,
        channels in 1usize..3,
        height in 3usize..9,
        width in 3usize..9,
        filters in 1usize..5,
        classes in 2usize..5,
        batch in 1usize..6,
    ) {
        let (model, params, x, _) = build_case(seed, channels, height, width, filters, classes, batch);
        let fast = model.forward(&params, &x);
        let slow = reference::cnn_forward(&model, &params, &x);
        assert_all_close(fast.as_slice(), slow.as_slice(), "logits");
    }

    /// Backward pass: loss and every gradient coordinate match the scalar
    /// reference within the documented tolerance.
    #[test]
    fn prop_im2col_backward_matches_reference(
        seed in 0u64..10_000,
        channels in 1usize..3,
        height in 3usize..9,
        width in 3usize..9,
        filters in 1usize..5,
        classes in 2usize..5,
        batch in 1usize..6,
    ) {
        let (model, params, x, labels) =
            build_case(seed, channels, height, width, filters, classes, batch);
        let (fast_loss, fast_grad) = model.loss_and_grad(&params, &x, &labels);
        let (slow_loss, slow_grad) = reference::cnn_loss_and_grad(&model, &params, &x, &labels);
        prop_assert!(
            close(fast_loss, slow_loss),
            "loss diverged: im2col {fast_loss} vs reference {slow_loss}"
        );
        assert_all_close(&fast_grad, &slow_grad, "grad");
    }

    /// Scratch reuse is observationally pure even across alternating
    /// geometries: a workspace warmed on one model must produce bit-equal
    /// results (vs a fresh workspace) on another.
    #[test]
    fn prop_scratch_reuse_across_geometries_is_pure(
        seed in 0u64..10_000,
        height_a in 3usize..9,
        width_a in 3usize..9,
        height_b in 3usize..9,
        width_b in 3usize..9,
        filters in 1usize..5,
        batch in 1usize..5,
    ) {
        let (model_a, params_a, x_a, labels_a) =
            build_case(seed, 1, height_a, width_a, filters, 3, batch);
        let (model_b, params_b, x_b, labels_b) =
            build_case(seed ^ 0xDEAD, 2, height_b, width_b, filters, 4, batch);
        let mut scratch = Im2colScratch::new();
        for _ in 0..2 {
            let warm_a = model_a.loss_and_grad_with(&params_a, &x_a, &labels_a, &mut scratch);
            prop_assert_eq!(warm_a, model_a.loss_and_grad(&params_a, &x_a, &labels_a));
            let warm_b = model_b.loss_and_grad_with(&params_b, &x_b, &labels_b, &mut scratch);
            prop_assert_eq!(warm_b, model_b.loss_and_grad(&params_b, &x_b, &labels_b));
            let fwd = model_a.forward_with(&params_a, &x_a, &mut scratch);
            prop_assert_eq!(fwd, model_a.forward(&params_a, &x_a));
        }
    }
}
