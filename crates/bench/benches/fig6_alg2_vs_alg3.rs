//! Regenerates Fig. 6: Algorithm 2 vs Algorithm 3 at communication time 100.

use agsfl_bench::{banner, femnist_base};
use agsfl_core::figures::fig6::{self, Fig6Config};

fn main() {
    banner("Fig. 6 — Algorithm 2 vs Algorithm 3, communication time 100 (FEMNIST)");
    let config = Fig6Config {
        base: femnist_base(100.0),
        max_time: 5_000.0,
    };
    let result = fig6::run(&config);
    println!("{}", result.render(config.max_time));
    let (loss3, loss2) = result.final_losses();
    let (spread3, spread2) = result.k_spreads(50);
    println!("Final loss:   Algorithm 3 = {loss3:.4}, Algorithm 2 = {loss2:.4}");
    println!("k spread:     Algorithm 3 = {spread3:.0}, Algorithm 2 = {spread2:.0}");
    println!(
        "\nShape check (paper: Algorithm 3 performs better and fluctuates less at large \
         communication time)."
    );
}
