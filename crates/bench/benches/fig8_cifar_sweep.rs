//! Regenerates Fig. 8: the communication-time sweep of Fig. 7 on the
//! one-class-per-client CIFAR-10-like dataset.

use agsfl_bench::{banner, cifar_base};
use agsfl_core::figures::sweep::{self, SweepConfig};

fn main() {
    banner("Fig. 8 — communication-time sweep with cross-applied k sequences (CIFAR-10, one class per client)");
    let config = SweepConfig {
        base: cifar_base(10.0),
        comm_times: vec![0.1, 1.0, 10.0, 100.0],
        adaptation_rounds: 300,
        replay_time_fraction: 0.8,
    };
    let result = sweep::run_cifar(&config);
    println!("{}", result.render());
    println!(
        "Shape checks (paper): adapted k decreases as the communication time grows -> {}; \
         differences between sequences shrink at small communication times due to the \
         strongly non-i.i.d. one-class-per-client partition.",
        result.k_decreases_with_comm_time()
    );
}
