//! Regenerates Fig. 1: empirical validation of Assumption 1.
//!
//! Runs FAB-top-k with several sparsity degrees until the global loss drops
//! below a threshold ψ, then switches every run to the same small k; the
//! phase-2 loss curves should coincide.

use agsfl_bench::{banner, femnist_base};
use agsfl_core::figures::fig1::{self, Fig1Config};
use agsfl_core::ExperimentConfig;

fn main() {
    banner("Fig. 1 — Empirical validation of Assumption 1 (independent costs)");
    let config = Fig1Config {
        base: ExperimentConfig {
            eval_every: 1,
            comm_time: 10.0,
            ..femnist_base(10.0)
        },
        initial_k_fractions: vec![1.0, 0.25, 0.05, 0.01],
        k_after_fraction: 0.01,
        psi_fraction_of_initial: 0.85,
        max_rounds_phase1: 500,
        rounds_phase2: 80,
    };
    let result = fig1::run(&config);
    println!("{}", result.render());
    for curve in &result.curves {
        println!(
            "initial k = {:>6}: reached psi after {:>4} rounds (loss at switch {:.4})",
            curve.initial_k, curve.rounds_to_psi, curve.loss_at_switch
        );
    }
    println!(
        "\nShape check (paper: curves coincide after the switch): max divergence {:.4} vs mean phase-2 loss decrease {:.4}",
        result.max_divergence(),
        result.mean_phase2_decrease()
    );
}
