//! Regenerates Fig. 4: GS method comparison at fixed k (loss/accuracy vs
//! normalized time and the per-client contribution CDF), communication
//! time 10.

use agsfl_bench::{banner, femnist_base};
use agsfl_core::figures::fig4::{self, Fig4Config};

fn main() {
    banner("Fig. 4 — GS methods at fixed k, communication time 10 (FEMNIST)");
    let config = Fig4Config {
        base: femnist_base(10.0),
        // The paper uses k = 1000 of D > 400,000 (~0.25%); 0.5% of the bench
        // model keeps the same order of sparsity.
        k_fraction: 0.005,
        max_time: 800.0,
    };
    let result = fig4::run(&config);
    println!("{}", result.render(config.max_time));

    println!("Final global loss / test accuracy per method:");
    for ((label, loss), (_, acc)) in result.final_losses().iter().zip(result.final_accuracies()) {
        println!("  {label:<24} loss {loss:>8.4}   accuracy {acc:>6.3}");
    }
    println!(
        "\nShape check (paper: FAB-top-k best or tied, FedAvg and periodic-k worst; \
         FAB's contribution CDF has no zero-contribution clients)."
    );
}
