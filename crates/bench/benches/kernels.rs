//! Criterion micro-benchmarks of the computational kernels behind the
//! simulator: top-k selection, the FAB-top-k server selection and a full FL
//! round. These quantify the overhead the sparsification layer adds per
//! round (the paper treats server computation as negligible; this bench
//! backs that assumption for the reproduction).
//!
//! The FAB selection is benchmarked twice at the acceptance workload
//! (dim = 10⁵, N = 40, k = dim/100): once through the seed implementation
//! kept in `agsfl_sparse::reference` and once through the scratch-reusing
//! `select_into` fast path, so the speedup of the zero-allocation pipeline
//! is visible directly in the criterion output. The `bench-report` binary
//! runs the same workloads and writes machine-readable `BENCH_kernels.json`.

use agsfl_bench::femnist_base;
use agsfl_bench::kernel_workload::{
    cnn_workload, eval_workload, fab_workload, wire_workload, CNN_BATCH, FAB_CLIENTS, FAB_DIM,
    FAB_K,
};
use agsfl_core::{Experiment, StopCondition};
use agsfl_exec::Executor;
use agsfl_ml::metrics;
use agsfl_ml::model::{Im2colScratch, Model};
use agsfl_ml::reference as ml_reference;
use agsfl_sparse::{reference, topk, FabTopK, SelectionScratch, ShardedScratch, Sparsifier};
use agsfl_wire::{decode_frame, reference as wire_reference, Codec, DeltaVarint, WireScratch};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_topk_selection(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let dims = [10_000usize, 100_000];
    let mut group = c.benchmark_group("topk_selection");
    for &dim in &dims {
        let values: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let k = dim / 100;
        // The seed full-dimension-copy baseline, kept in `reference`.
        group.bench_function(format!("top_{k}_of_{dim}"), |b| {
            b.iter(|| black_box(reference::top_k_entries(black_box(&values), k)))
        });
        let mut scratch = Vec::new();
        group.bench_function(format!("top_{k}_of_{dim}_scratch"), |b| {
            b.iter(|| {
                black_box(topk::top_k_entries_with(
                    black_box(&values),
                    k,
                    &mut scratch,
                ))
            })
        });
    }
    group.finish();
}

fn bench_fab_selection(c: &mut Criterion) {
    let uploads = fab_workload();
    let mut group = c.benchmark_group("fab_select");
    // The seed implementation: hash-set union rebuild per binary-search
    // probe, hash-map aggregation.
    group.bench_function(
        format!("seed_{FAB_CLIENTS}clients_k{FAB_K}_d{FAB_DIM}"),
        |b| b.iter(|| black_box(reference::fab_select(black_box(&uploads), FAB_DIM, FAB_K))),
    );
    // The scratch fast path, amortised the way `Simulation::run_round`
    // amortises it: one workspace reused across iterations.
    let mut scratch = SelectionScratch::new();
    group.bench_function(
        format!("scratch_{FAB_CLIENTS}clients_k{FAB_K}_d{FAB_DIM}"),
        |b| {
            b.iter(|| {
                black_box(FabTopK::new().select_into(
                    black_box(&uploads),
                    FAB_DIM,
                    FAB_K,
                    &mut scratch,
                ))
            })
        },
    );
    // The sharded path on a multi-thread executor (at least two workers so
    // the engine is exercised even on one core) — the serial-vs-sharded
    // pair `bench-report` tracks in `BENCH_kernels.json`.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let exec = Executor::new(threads);
    let mut sharded = ShardedScratch::new();
    group.bench_function(
        format!("sharded{threads}_{FAB_CLIENTS}clients_k{FAB_K}_d{FAB_DIM}"),
        |b| {
            b.iter(|| {
                black_box(FabTopK::new().select_parallel(
                    black_box(&uploads),
                    FAB_DIM,
                    FAB_K,
                    &mut sharded,
                    &exec,
                ))
            })
        },
    );
    group.finish();
}

fn bench_cnn_forward(c: &mut Criterion) {
    let (cnn, params, x, labels) = cnn_workload();
    let mut group = c.benchmark_group("cnn_forward");
    let d = cnn.num_params();
    // The seed scalar-loop kernels, kept in `agsfl_ml::reference`.
    group.bench_function(format!("loops_d{d}_b{CNN_BATCH}"), |b| {
        b.iter(|| {
            black_box(ml_reference::cnn_forward(
                &cnn,
                black_box(&params),
                black_box(&x),
            ))
        })
    });
    let mut scratch = Im2colScratch::new();
    group.bench_function(format!("im2col_d{d}_b{CNN_BATCH}"), |b| {
        b.iter(|| black_box(cnn.forward_with(black_box(&params), black_box(&x), &mut scratch)))
    });
    group.bench_function(format!("loops_grad_d{d}_b{CNN_BATCH}"), |b| {
        b.iter(|| {
            black_box(ml_reference::cnn_loss_and_grad(
                &cnn,
                black_box(&params),
                black_box(&x),
                &labels,
            ))
        })
    });
    group.bench_function(format!("im2col_grad_d{d}_b{CNN_BATCH}"), |b| {
        b.iter(|| {
            black_box(cnn.loss_and_grad_with(
                black_box(&params),
                black_box(&x),
                &labels,
                &mut scratch,
            ))
        })
    });
    group.finish();
}

fn bench_eval_sweep(c: &mut Criterion) {
    let (model, params, dataset) = eval_workload();
    let model = model.as_ref();
    let shards = dataset.clients();
    let test = dataset.test();
    let mut group = c.benchmark_group("eval_sweep");
    // The seed path: three separate serial passes per evaluation point.
    group.bench_function("serial_three_passes", |b| {
        b.iter(|| {
            black_box(metrics::global_loss(model, black_box(&params), shards));
            black_box(metrics::global_accuracy(model, black_box(&params), shards));
            black_box(metrics::accuracy(
                model,
                black_box(&params),
                &test.features,
                &test.labels,
            ));
        })
    });
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let exec = Executor::new(threads);
    group.bench_function(format!("fused_executor_{threads}threads"), |b| {
        b.iter(|| {
            black_box(metrics::global_evaluation(
                model,
                black_box(&params),
                shards,
                test,
                &exec,
            ))
        })
    });
    group.finish();
}

fn bench_wire_codecs(c: &mut Criterion) {
    let message = wire_workload();
    let mut group = c.benchmark_group("wire_codec");
    // Encode: the allocating byte-at-a-time reference vs the
    // scratch-reusing fast path (byte-identical frames; the `bench-report`
    // binary asserts it).
    group.bench_function(format!("encode_alloc_k{FAB_K}_d{FAB_DIM}"), |b| {
        b.iter(|| {
            black_box(wire_reference::delta_encode(
                message.dim(),
                black_box(message.entries()),
            ))
        })
    });
    let mut scratch = WireScratch::new();
    group.bench_function(format!("encode_scratch_k{FAB_K}_d{FAB_DIM}"), |b| {
        b.iter(|| {
            black_box(
                DeltaVarint
                    .encode_gradient_into(black_box(&message), &mut scratch)
                    .len(),
            )
        })
    });
    // Decode: fresh allocation per call vs a caller-reused entry buffer.
    let frame = DeltaVarint
        .encode_gradient_into(&message, &mut scratch)
        .to_vec();
    group.bench_function(format!("decode_alloc_k{FAB_K}_d{FAB_DIM}"), |b| {
        b.iter(|| black_box(wire_reference::decode(black_box(&frame)).expect("valid frame")))
    });
    let mut entries = Vec::new();
    group.bench_function(format!("decode_scratch_k{FAB_K}_d{FAB_DIM}"), |b| {
        b.iter(|| black_box(decode_frame(black_box(&frame), &mut entries).expect("valid frame")))
    });
    group.finish();
}

fn bench_fl_round(c: &mut Criterion) {
    c.bench_function("fl_round_femnist_bench_k2pct", |b| {
        b.iter_batched(
            || Experiment::new(&femnist_base(10.0)),
            |mut experiment| {
                let k = experiment.dim() / 50;
                black_box(experiment.run_fixed_k(k, &StopCondition::after_rounds(1)))
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_topk_selection, bench_fab_selection, bench_cnn_forward, bench_eval_sweep, bench_wire_codecs, bench_fl_round
}
criterion_main!(kernels);
