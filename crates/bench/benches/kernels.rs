//! Criterion micro-benchmarks of the computational kernels behind the
//! simulator: top-k selection, the FAB-top-k server selection and a full FL
//! round. These quantify the overhead the sparsification layer adds per
//! round (the paper treats server computation as negligible; this bench
//! backs that assumption for the reproduction).

use agsfl_bench::femnist_base;
use agsfl_core::{Experiment, StopCondition};
use agsfl_sparse::{topk, ClientUpload, FabTopK, Sparsifier};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_topk_selection(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let dims = [10_000usize, 100_000];
    let mut group = c.benchmark_group("topk_selection");
    for &dim in &dims {
        let values: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let k = dim / 100;
        group.bench_function(format!("top_{k}_of_{dim}"), |b| {
            b.iter(|| black_box(topk::top_k_entries(black_box(&values), k)))
        });
    }
    group.finish();
}

fn bench_fab_selection(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let dim = 100_000usize;
    let clients = 50usize;
    let k = 1_000usize;
    let uploads: Vec<ClientUpload> = (0..clients)
        .map(|i| {
            let dense: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            ClientUpload::new(i, 1.0 / clients as f64, topk::top_k_entries(&dense, k))
        })
        .collect();
    c.bench_function("fab_select_50clients_k1000_d100k", |b| {
        b.iter(|| black_box(FabTopK::new().select(black_box(&uploads), dim, k)))
    });
}

fn bench_fl_round(c: &mut Criterion) {
    c.bench_function("fl_round_femnist_bench_k2pct", |b| {
        b.iter_batched(
            || Experiment::new(&femnist_base(10.0)),
            |mut experiment| {
                let k = experiment.dim() / 50;
                black_box(experiment.run_fixed_k(k, &StopCondition::after_rounds(1)))
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_topk_selection, bench_fab_selection, bench_fl_round
}
criterion_main!(kernels);
