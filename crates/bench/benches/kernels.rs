//! Criterion micro-benchmarks of the computational kernels behind the
//! simulator: top-k selection, the FAB-top-k server selection and a full FL
//! round. These quantify the overhead the sparsification layer adds per
//! round (the paper treats server computation as negligible; this bench
//! backs that assumption for the reproduction).
//!
//! The FAB selection is benchmarked twice at the acceptance workload
//! (dim = 10⁵, N = 40, k = dim/100): once through the seed implementation
//! kept in `agsfl_sparse::reference` and once through the scratch-reusing
//! `select_into` fast path, so the speedup of the zero-allocation pipeline
//! is visible directly in the criterion output. The `bench-report` binary
//! runs the same workloads and writes machine-readable `BENCH_kernels.json`.

use agsfl_bench::femnist_base;
use agsfl_bench::kernel_workload::{fab_workload, FAB_CLIENTS, FAB_DIM, FAB_K};
use agsfl_core::{Experiment, StopCondition};
use agsfl_exec::Executor;
use agsfl_sparse::{reference, topk, FabTopK, SelectionScratch, ShardedScratch, Sparsifier};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_topk_selection(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let dims = [10_000usize, 100_000];
    let mut group = c.benchmark_group("topk_selection");
    for &dim in &dims {
        let values: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let k = dim / 100;
        // The seed full-dimension-copy baseline, kept in `reference`.
        group.bench_function(format!("top_{k}_of_{dim}"), |b| {
            b.iter(|| black_box(reference::top_k_entries(black_box(&values), k)))
        });
        let mut scratch = Vec::new();
        group.bench_function(format!("top_{k}_of_{dim}_scratch"), |b| {
            b.iter(|| {
                black_box(topk::top_k_entries_with(
                    black_box(&values),
                    k,
                    &mut scratch,
                ))
            })
        });
    }
    group.finish();
}

fn bench_fab_selection(c: &mut Criterion) {
    let uploads = fab_workload();
    let mut group = c.benchmark_group("fab_select");
    // The seed implementation: hash-set union rebuild per binary-search
    // probe, hash-map aggregation.
    group.bench_function(
        format!("seed_{FAB_CLIENTS}clients_k{FAB_K}_d{FAB_DIM}"),
        |b| b.iter(|| black_box(reference::fab_select(black_box(&uploads), FAB_DIM, FAB_K))),
    );
    // The scratch fast path, amortised the way `Simulation::run_round`
    // amortises it: one workspace reused across iterations.
    let mut scratch = SelectionScratch::new();
    group.bench_function(
        format!("scratch_{FAB_CLIENTS}clients_k{FAB_K}_d{FAB_DIM}"),
        |b| {
            b.iter(|| {
                black_box(FabTopK::new().select_into(
                    black_box(&uploads),
                    FAB_DIM,
                    FAB_K,
                    &mut scratch,
                ))
            })
        },
    );
    // The sharded path on a multi-thread executor (at least two workers so
    // the engine is exercised even on one core) — the serial-vs-sharded
    // pair `bench-report` tracks in `BENCH_kernels.json`.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let exec = Executor::new(threads);
    let mut sharded = ShardedScratch::new();
    group.bench_function(
        format!("sharded{threads}_{FAB_CLIENTS}clients_k{FAB_K}_d{FAB_DIM}"),
        |b| {
            b.iter(|| {
                black_box(FabTopK::new().select_parallel(
                    black_box(&uploads),
                    FAB_DIM,
                    FAB_K,
                    &mut sharded,
                    &exec,
                ))
            })
        },
    );
    group.finish();
}

fn bench_fl_round(c: &mut Criterion) {
    c.bench_function("fl_round_femnist_bench_k2pct", |b| {
        b.iter_batched(
            || Experiment::new(&femnist_base(10.0)),
            |mut experiment| {
                let k = experiment.dim() / 50;
                black_box(experiment.run_fixed_k(k, &StopCondition::after_rounds(1)))
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_topk_selection, bench_fab_selection, bench_fl_round
}
criterion_main!(kernels);
