//! Empirically checks the regret bounds of Theorems 1 and 2 on synthetic
//! convex cost sequences (experiment E7 in DESIGN.md).

use agsfl_bench::banner;
use agsfl_core::figures::regret_check::{self, RegretCheckConfig};

fn main() {
    banner("Theorems 1 & 2 — regret of Algorithm 2 vs the G·H·B·sqrt(2M) bounds");
    for (label, flip_prob) in [
        ("good estimator (p = 0.1)", 0.1),
        ("poor estimator (p = 0.35)", 0.35),
    ] {
        let config = RegretCheckConfig {
            rounds: 20_000,
            flip_prob,
            ..RegretCheckConfig::default()
        };
        let result = regret_check::run(&config);
        println!(
            "\n--- noisy-sign setting: {label} (H = {:.2}) ---",
            1.0 / (1.0 - 2.0 * flip_prob)
        );
        println!("{}", result.render());
    }
    println!(
        "Shape check (paper): regret grows sublinearly and stays below the bound; the \
         noisy-sign regret exceeds the exact-sign regret only by a constant factor."
    );
}
