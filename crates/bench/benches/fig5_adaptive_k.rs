//! Regenerates Fig. 5: adaptive-k online learning methods at communication
//! time 10 — the proposed Algorithm 3 vs value-based descent, EXP3 and the
//! continuous bandit.

use agsfl_bench::{banner, femnist_base};
use agsfl_core::figures::fig5::{self, Fig5Config};
use agsfl_core::ControllerSpec;

fn main() {
    banner("Fig. 5 — adaptive-k methods, communication time 10 (FEMNIST)");
    let config = Fig5Config {
        base: femnist_base(10.0),
        max_time: 1_200.0,
        controllers: ControllerSpec::fig5_lineup().to_vec(),
    };
    let result = fig5::run(&config);
    println!("{}", result.render(config.max_time));

    println!("k stability (spread of k over the final 50 rounds):");
    for (label, spread) in result.k_spread(50) {
        println!("  {label:<40} {spread:>8.0}");
    }
    println!("Final losses:");
    for (label, loss) in result.final_losses() {
        println!("  {label:<40} {loss:>8.4}");
    }
    println!(
        "\nShape check (paper: the proposed method reaches lower loss at equal time and \
         keeps a far more stable k than EXP3 and the continuous bandit)."
    );
}
