//! Regenerates Fig. 7: Algorithm 3 across communication times {0.1, 1, 10,
//! 100} on the FEMNIST-like dataset, with every adapted k sequence replayed
//! under every communication time.

use agsfl_bench::{banner, femnist_base};
use agsfl_core::figures::sweep::{self, SweepConfig};

fn main() {
    banner("Fig. 7 — communication-time sweep with cross-applied k sequences (FEMNIST)");
    let config = SweepConfig {
        base: femnist_base(10.0),
        comm_times: vec![0.1, 1.0, 10.0, 100.0],
        adaptation_rounds: 300,
        replay_time_fraction: 0.8,
    };
    let result = sweep::run_femnist(&config);
    println!("{}", result.render());
    println!(
        "Shape checks (paper): adapted k decreases as the communication time grows -> {}",
        result.k_decreases_with_comm_time()
    );
    for &beta in &config.comm_times {
        if let Some(best) = result.best_source_for(beta) {
            println!(
                "  target comm time {beta:>6.1}: best-performing source sequence was adapted for {best:>6.1}"
            );
        }
    }
}
