//! Ablation benchmarks for the design choices called out in DESIGN.md
//! (experiment E8): the FAB fairness guarantee, Algorithm 3's update window
//! `Mu` and inflation factor `α`, and stochastic vs floor rounding of the
//! continuous `k`.

use agsfl_bench::{banner, femnist_base};
use agsfl_core::{ControllerSpec, Experiment, ExperimentConfig, SparsifierSpec, StopCondition};
use agsfl_online::{stochastic_round, ExtendedConfig, ExtendedSignOgd};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn fairness_ablation() {
    banner("Ablation A — fairness-aware vs fairness-unaware selection (one-class-per-client data)");
    let base = agsfl_bench::cifar_base(10.0);
    println!(
        "{:<14}{:>12}{:>12}{:>16}{:>22}",
        "method", "loss", "accuracy", "min contrib", "clients with zero"
    );
    for spec in [SparsifierSpec::FabTopK, SparsifierSpec::FubTopK] {
        let config = ExperimentConfig {
            sparsifier: spec,
            ..base.clone()
        };
        let mut experiment = Experiment::new(&config);
        let k = experiment.dim() / 50;
        let history = experiment.run_fixed_k(k, &StopCondition::after_time(600.0));
        let cdf = history.contribution_cdf();
        println!(
            "{:<14}{:>12.4}{:>12.3}{:>16.0}{:>21.1}%",
            spec.name(),
            history.final_global_loss().unwrap_or(f64::NAN),
            history.final_test_accuracy().unwrap_or(f64::NAN),
            cdf.quantile(0.0).unwrap_or(0.0),
            cdf.eval(0.0) * 100.0
        );
    }
}

fn algorithm3_parameter_ablation() {
    banner("Ablation B — Algorithm 3 sensitivity to the update window Mu and inflation alpha");
    let base = femnist_base(100.0);
    println!(
        "{:<24}{:>12}{:>14}{:>14}",
        "setting", "loss", "tail mean k", "k spread"
    );
    for (label, alpha, mu) in [
        ("paper (a=1.5, Mu=20)", 1.5, 20usize),
        ("narrow (a=1.1, Mu=20)", 1.1, 20),
        ("wide (a=3.0, Mu=20)", 3.0, 20),
        ("short window (Mu=5)", 1.5, 5),
        ("long window (Mu=60)", 1.5, 60),
    ] {
        let mut experiment = Experiment::new(&base);
        let dim = experiment.dim() as f64;
        let mut controller = ExtendedSignOgd::new(ExtendedConfig {
            k_min: (0.002 * dim).max(1.0),
            k_max: dim,
            alpha,
            update_window: mu,
            initial_k: dim / 2.0,
        });
        let history = experiment.run_with_controller(
            &mut controller,
            &StopCondition::after_rounds(400),
            label,
        );
        let ks = history.k_sequence();
        let tail = &ks[ks.len().saturating_sub(100)..];
        let tail_mean = tail.iter().sum::<usize>() as f64 / tail.len() as f64;
        let spread = (*tail.iter().max().unwrap() - *tail.iter().min().unwrap()) as f64;
        println!(
            "{:<24}{:>12.4}{:>14.0}{:>14.0}",
            label,
            history.final_global_loss().unwrap_or(f64::NAN),
            tail_mean,
            spread
        );
    }
}

fn rounding_ablation() {
    banner("Ablation C — stochastic rounding (Definition 2) vs floor rounding of continuous k");
    let mut rng = ChaCha8Rng::seed_from_u64(agsfl_bench::BENCH_SEED);
    let k_values = [10.5f64, 100.25, 999.75];
    println!(
        "{:<12}{:>22}{:>16}{:>18}",
        "k", "stochastic mean", "floor value", "stochastic bias"
    );
    for &k in &k_values {
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| stochastic_round(k, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        println!(
            "{:<12}{:>22.4}{:>16}{:>18.5}",
            k,
            mean,
            k.floor() as usize,
            mean - k
        );
    }
    println!("Stochastic rounding is unbiased; floor rounding systematically under-communicates.");
}

fn main() {
    fairness_ablation();
    algorithm3_parameter_ablation();
    rounding_ablation();
    // Keep a reference to the controller spec list so ablation configs stay in
    // sync with the main experiments if the lineup changes.
    let _ = ControllerSpec::fig5_lineup();
}
