//! Shared configuration for the benchmark harness.
//!
//! Every figure of the paper has its own `cargo bench` target in `benches/`;
//! they all build on the bench-scale workload defined here so results are
//! comparable across figures and reproducible from the fixed seed. The
//! bench scale is a scaled-down version of the paper's setup (see the
//! substitution table in `DESIGN.md`): the qualitative shapes are preserved
//! while the full suite runs in minutes on a laptop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use agsfl_core::{DatasetSpec, ExperimentConfig, ModelSpec};

pub mod kernel_workload;

/// Master seed used by all benchmark workloads.
pub const BENCH_SEED: u64 = 2020;

/// The bench-scale FEMNIST workload: 40 writer-style clients, 20 classes,
/// an MLP of a few thousand parameters, mini-batch 16.
pub fn femnist_base(comm_time: f64) -> ExperimentConfig {
    ExperimentConfig::builder()
        .dataset(DatasetSpec::femnist_bench())
        .model(ModelSpec::Mlp { hidden: vec![32] })
        .learning_rate(0.03)
        .batch_size(16)
        .comm_time(comm_time)
        .eval_every(10)
        .seed(BENCH_SEED)
        .build()
}

/// The bench-scale CIFAR-10 workload: 30 clients, one class per client.
pub fn cifar_base(comm_time: f64) -> ExperimentConfig {
    ExperimentConfig::builder()
        .dataset(DatasetSpec::cifar_bench())
        .model(ModelSpec::Mlp { hidden: vec![32] })
        .learning_rate(0.03)
        .batch_size(16)
        .comm_time(comm_time)
        .eval_every(10)
        .seed(BENCH_SEED)
        .build()
}

/// Prints a figure banner so the tee'd bench output is easy to navigate.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_configs_are_valid() {
        femnist_base(10.0).validate();
        cifar_base(100.0).validate();
    }

    #[test]
    fn bench_configs_use_fixed_seed() {
        assert_eq!(femnist_base(1.0).seed, BENCH_SEED);
        assert_eq!(cifar_base(1.0).seed, BENCH_SEED);
    }
}
