//! The shared kernel workloads.
//!
//! `benches/kernels.rs` (criterion) and the `bench-report` binary (plain
//! timing + `BENCH_kernels.json`) must measure exactly the same inputs so
//! their numbers are comparable across PRs; both build them here. Four
//! workload families are tracked: the FAB server selection, the
//! paper-shape CNN forward pass (im2col vs the seed scalar loops), the
//! per-evaluation `O(N·D)` metric sweep (fused executor sweep vs the
//! seed's three serial passes), and the wire-codec message (encode/decode
//! fast paths vs the allocating reference implementations).

use agsfl_exec::Parallelism;
use agsfl_fl::{ChannelModel, Simulation, SimulationConfig, TimeModel, WireConfig};
use agsfl_ml::data::{FederatedDataset, SyntheticFemnist, SyntheticFemnistConfig};
use agsfl_ml::model::{LinearSoftmax, Mlp, Model, SimpleCnn};
use agsfl_sparse::{topk, ClientUpload, FabTopK, SparseGradient};
use agsfl_tensor::Matrix;
use agsfl_wire::CodecSpec;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Model dimension of the FAB selection workload (the paper's 400k-weight
/// CNN scale is the roadmap target; 10⁵ is the tracked bench point).
pub const FAB_DIM: usize = 100_000;

/// Number of clients in the FAB selection workload.
pub const FAB_CLIENTS: usize = 40;

/// Sparsity degree `k = dim / 100` of the FAB selection workload.
pub const FAB_K: usize = FAB_DIM / 100;

/// Builds the ranked top-k uploads of the FAB selection workload
/// (`FAB_CLIENTS` clients, dimension [`FAB_DIM`], degree [`FAB_K`], fixed
/// seed).
pub fn fab_workload() -> Vec<ClientUpload> {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    (0..FAB_CLIENTS)
        .map(|i| {
            let dense: Vec<f32> = (0..FAB_DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            ClientUpload::new(
                i,
                1.0 / FAB_CLIENTS as f64,
                topk::top_k_entries(&dense, FAB_K),
            )
        })
        .collect()
}

/// Builds the wire-codec workload: one sparse gradient message at the
/// acceptance shape (dim = [`FAB_DIM`] = 10⁵, [`FAB_K`] = 10³ entries,
/// fixed seed) — the message a `k = D/100` round actually broadcasts.
pub fn wire_workload() -> SparseGradient {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let dense: Vec<f32> = (0..FAB_DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let entries = topk::top_k_entries(&dense, FAB_K);
    SparseGradient::from_entries(FAB_DIM, entries)
}

/// Input channels of the CNN forward workload.
pub const CNN_CHANNELS: usize = 1;
/// Input height of the CNN forward workload (FEMNIST-like 28x28 images).
pub const CNN_HEIGHT: usize = 28;
/// Input width of the CNN forward workload.
pub const CNN_WIDTH: usize = 28;
/// Number of 3x3 filters of the CNN forward workload.
pub const CNN_FILTERS: usize = 40;
/// Output classes of the CNN forward workload (FEMNIST's 62).
pub const CNN_CLASSES: usize = 62;
/// Mini-batch size of the CNN forward workload (the paper's 32).
pub const CNN_BATCH: usize = 32;

/// Builds the paper-shape CNN forward workload: a ~420k-parameter
/// `SimpleCnn` (the paper trains a >400k-weight CNN), initialized weights
/// and one mini-batch of synthetic 28x28 images with labels.
pub fn cnn_workload() -> (SimpleCnn, Vec<f32>, Matrix, Vec<usize>) {
    let model = SimpleCnn::new(
        CNN_CHANNELS,
        CNN_HEIGHT,
        CNN_WIDTH,
        CNN_FILTERS,
        CNN_CLASSES,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let params = model.init_params(&mut rng);
    let x = Matrix::from_fn(CNN_BATCH, model.input_dim(), |_, _| {
        rng.gen_range(-1.0f32..1.0)
    });
    let labels = (0..CNN_BATCH).map(|i| i % CNN_CLASSES).collect();
    (model, params, x, labels)
}

/// Number of clients of the evaluation-sweep workload.
pub const EVAL_CLIENTS: usize = 40;
/// Samples per client of the evaluation-sweep workload.
pub const EVAL_SAMPLES_PER_CLIENT: usize = 60;

/// Builds the evaluation-sweep workload: the bench-scale federated FEMNIST
/// dataset (40 clients, 30 classes, 400 test samples) plus an MLP and its
/// initialized weights — the `O(N·D)` pass every `eval_every` round runs.
pub fn eval_workload() -> (Box<dyn Model>, Vec<f32>, FederatedDataset) {
    let mut rng = ChaCha8Rng::seed_from_u64(super::BENCH_SEED);
    let dataset = SyntheticFemnist::new(SyntheticFemnistConfig {
        num_clients: EVAL_CLIENTS,
        samples_per_client: EVAL_SAMPLES_PER_CLIENT,
        feature_dim: 48,
        num_classes: 30,
        classes_per_client: 6,
        writer_shift_std: 0.6,
        noise_std: 0.7,
        test_samples: 400,
    })
    .generate(&mut rng);
    let model = Mlp::new(dataset.feature_dim(), &[64], dataset.num_classes());
    let params = model.init_params(&mut rng);
    (Box::new(model), params, dataset)
}

/// Feature dimension of the checkpoint workload; with [`CKPT_CLASSES`]
/// classes the linear model carries `(6751 + 1) * 62 = 418,624` parameters
/// — the paper's >400k-weight scale.
pub const CKPT_FEATURES: usize = 6_751;
/// Output classes of the checkpoint workload (FEMNIST's 62).
pub const CKPT_CLASSES: usize = 62;
/// Clients of the checkpoint workload.
pub const CKPT_CLIENTS: usize = 8;

fn ckpt_config() -> SyntheticFemnistConfig {
    SyntheticFemnistConfig {
        num_clients: CKPT_CLIENTS,
        samples_per_client: 4,
        feature_dim: CKPT_FEATURES,
        num_classes: CKPT_CLASSES,
        classes_per_client: 4,
        writer_shift_std: 0.4,
        noise_std: 0.3,
        test_samples: 8,
    }
}

fn ckpt_sim_config() -> SimulationConfig {
    SimulationConfig {
        learning_rate: 0.05,
        batch_size: 4,
        time_model: TimeModel::normalized(10.0),
        seed: super::BENCH_SEED,
        parallelism: Parallelism::Serial,
        wire: None,
        fault: None,
        cohort: None,
    }
}

/// Builds the checkpoint workload: a ~420k-parameter linear simulation
/// (8 clients) advanced a few rounds so per-client residuals, RNG streams
/// and the server model all carry non-trivial state.
pub fn checkpoint_workload() -> Simulation {
    let mut sim = fresh_checkpoint_sim();
    for _ in 0..3 {
        sim.run_round(CKPT_FEATURES / 100, None);
    }
    sim
}

/// Builds the checkpoint-workload simulation at round zero — the
/// "rebuild from scratch" baseline a restore is measured against.
pub fn fresh_checkpoint_sim() -> Simulation {
    let mut rng = ChaCha8Rng::seed_from_u64(super::BENCH_SEED);
    let dataset = SyntheticFemnist::new(ckpt_config()).generate(&mut rng);
    let model = LinearSoftmax::new(dataset.feature_dim(), dataset.num_classes());
    Simulation::new(
        Box::new(model),
        dataset,
        Box::new(FabTopK::new()),
        ckpt_sim_config(),
    )
}

/// Clients of the telemetry workload.
pub const TELEM_CLIENTS: usize = 16;
/// Sparsity degree of the telemetry workload.
pub const TELEM_K: usize = 16;

/// Builds the telemetry workload: a wired multi-thread simulation small
/// enough to run thousands of rounds inside the timing budget, so the
/// recorded-vs-noop round pair prices the *instrumentation* (clock reads,
/// histogram buckets, pool counters), not the training math. The wire
/// layer is on so the span set covers encode/decode stages too.
pub fn telemetry_workload() -> Simulation {
    let mut rng = ChaCha8Rng::seed_from_u64(super::BENCH_SEED ^ 0x7e1e);
    let dataset = SyntheticFemnist::new(SyntheticFemnistConfig {
        num_clients: TELEM_CLIENTS,
        samples_per_client: 16,
        feature_dim: 32,
        num_classes: 10,
        classes_per_client: 4,
        writer_shift_std: 0.5,
        noise_std: 0.5,
        test_samples: 32,
    })
    .generate(&mut rng);
    let model = LinearSoftmax::new(dataset.feature_dim(), dataset.num_classes());
    let num_clients = dataset.num_clients();
    Simulation::new(
        Box::new(model),
        dataset,
        Box::new(FabTopK::new()),
        SimulationConfig {
            learning_rate: 0.05,
            batch_size: 8,
            time_model: TimeModel::normalized(5.0),
            seed: super::BENCH_SEED,
            parallelism: Parallelism::Threads(2),
            wire: Some(WireConfig {
                codec: CodecSpec::Auto,
                channel: ChannelModel::uniform(num_clients, 1.0, 2_000.0, 4_000.0, 0.05),
            }),
            fault: None,
            cohort: None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape_matches_acceptance_spec() {
        let uploads = fab_workload();
        assert_eq!(uploads.len(), FAB_CLIENTS);
        assert!(uploads.iter().all(|u| u.len() == FAB_K));
        assert_eq!(FAB_K, FAB_DIM / 100);
    }

    #[test]
    fn cnn_workload_is_paper_scale() {
        let (model, params, x, labels) = cnn_workload();
        assert!(
            model.num_params() > 400_000,
            "paper CNN has >400k weights, got {}",
            model.num_params()
        );
        assert_eq!(params.len(), model.num_params());
        assert_eq!(x.shape(), (CNN_BATCH, model.input_dim()));
        assert_eq!(labels.len(), CNN_BATCH);
    }

    #[test]
    fn wire_workload_is_acceptance_shape() {
        let g = wire_workload();
        assert_eq!(g.dim(), FAB_DIM);
        assert_eq!(g.nnz(), FAB_K);
    }

    #[test]
    fn eval_workload_matches_bench_scale() {
        let (model, params, dataset) = eval_workload();
        assert_eq!(dataset.num_clients(), EVAL_CLIENTS);
        assert_eq!(params.len(), model.num_params());
        assert_eq!(dataset.test().len(), 400);
    }

    #[test]
    fn telemetry_workload_records_wire_spans() {
        use agsfl_telemetry::{CounterId, SpanId, StageRecorder};
        let mut sim = telemetry_workload();
        let mut rec = StageRecorder::new();
        rec.begin_round();
        sim.run_round_recorded(TELEM_K, None, &mut rec);
        assert_eq!(rec.counter_total(CounterId::Rounds), 1);
        assert!(rec.counter_total(CounterId::UplinkBytes) > 0);
        assert_eq!(rec.span_histogram(SpanId::ClientPass).count(), 1);
    }

    #[test]
    fn checkpoint_workload_is_paper_scale_and_restorable() {
        let sim = checkpoint_workload();
        assert!(
            sim.dim() > 400_000,
            "paper scale is >400k weights, got {}",
            sim.dim()
        );
        assert_eq!(sim.num_clients(), CKPT_CLIENTS);
        let blob = sim.save_state();
        let mut fresh = fresh_checkpoint_sim();
        fresh
            .restore_state(&blob)
            .expect("same-fingerprint restore");
        assert_eq!(fresh.save_state(), blob);
    }
}
