//! The shared selection-kernel workload.
//!
//! `benches/kernels.rs` (criterion) and the `bench-report` binary (plain
//! timing + `BENCH_kernels.json`) must measure exactly the same inputs so
//! their numbers are comparable across PRs; both build them here.

use agsfl_sparse::{topk, ClientUpload};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Model dimension of the FAB selection workload (the paper's 400k-weight
/// CNN scale is the roadmap target; 10⁵ is the tracked bench point).
pub const FAB_DIM: usize = 100_000;

/// Number of clients in the FAB selection workload.
pub const FAB_CLIENTS: usize = 40;

/// Sparsity degree `k = dim / 100` of the FAB selection workload.
pub const FAB_K: usize = FAB_DIM / 100;

/// Builds the ranked top-k uploads of the FAB selection workload
/// (`FAB_CLIENTS` clients, dimension [`FAB_DIM`], degree [`FAB_K`], fixed
/// seed).
pub fn fab_workload() -> Vec<ClientUpload> {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    (0..FAB_CLIENTS)
        .map(|i| {
            let dense: Vec<f32> = (0..FAB_DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            ClientUpload::new(
                i,
                1.0 / FAB_CLIENTS as f64,
                topk::top_k_entries(&dense, FAB_K),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape_matches_acceptance_spec() {
        let uploads = fab_workload();
        assert_eq!(uploads.len(), FAB_CLIENTS);
        assert!(uploads.iter().all(|u| u.len() == FAB_K));
        assert_eq!(FAB_K, FAB_DIM / 100);
    }
}
