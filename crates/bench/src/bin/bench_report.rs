//! `bench-report`: times the selection kernels on the bench-scale workload,
//! writes machine-readable `BENCH_kernels.json` (current snapshot) and
//! appends one line of run metadata + timings to `BENCH_history.jsonl`, so
//! the perf trajectory of the server hot path is tracked *across* PRs
//! instead of each run overwriting the last.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p agsfl-bench --bin bench-report [-- OUTPUT.json [HISTORY.jsonl]]
//! ```
//!
//! Three workload families are tracked. The FAB selection workload
//! (dim = 10⁵, N = 40, k = dim/100) is measured through the seed baseline
//! (`agsfl_sparse::reference`), the serial scratch-reusing `select_into`
//! fast path, and the sharded `select_parallel` path on a multi-thread
//! executor (serial vs sharded is the `fab_select_sharded` pair), plus the
//! client-side top-k kernel in both variants. The `pool_dispatch` pair
//! prices one parallel region's *dispatch* — the historical
//! spawn-per-region `thread::scope` baseline vs the persistent channel-fed
//! worker pool — over a trivially small region, so the per-round overhead
//! the pool saves is tracked explicitly. The `cnn_forward` pair times
//! the paper-shape (~420k-weight, batch 32) CNN forward pass through the
//! seed scalar loops (`agsfl_ml::reference`) and the im2col lowering. The
//! `eval_sweep` pair times one evaluation point's `O(N·D)` metric sweep
//! through the seed's three serial passes and the fused executor sweep
//! (`agsfl_ml::metrics::global_evaluation`), asserting on the way that both
//! return identical bits. The `wire_encode`/`wire_decode` pairs time the
//! delta-varint wire codec on a dim = 10⁵, k = 10³ message through the
//! allocating reference implementations (`agsfl_wire::reference`) and the
//! scratch-reusing fast paths, asserting byte-identical frames. The
//! `checkpoint_save`/`checkpoint_load` pairs time simulation snapshots at
//! the paper's >400k-weight scale: allocating `save_state` vs the
//! buffer-reusing `save_state_into`, and rebuilding the simulation from
//! its inputs vs `restore_state` of the serialized blob. The JSON reports
//! nanoseconds per iteration (mean of the fastest half of samples) and
//! baseline/optimized speedups.
//!
//! Beyond the kernels, the report records the process' peak RSS and runs
//! the `figures::scale_sweep` memory audit — fixed-cohort rounds at
//! N = 10³..10⁶ with per-population rounds/sec and resident-set bytes —
//! writing the points into `BENCH_kernels.json` (`"scale"`) and appending
//! a dedicated `scale_sweep` line to the history log, so the O(cohort·k)
//! memory claim is tracked across PRs alongside the timings.

use std::io::Write as _;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use agsfl_bench::kernel_workload::{
    checkpoint_workload, cnn_workload, eval_workload, fab_workload, fresh_checkpoint_sim,
    telemetry_workload, wire_workload, CKPT_CLIENTS, CNN_BATCH, EVAL_CLIENTS, FAB_CLIENTS, FAB_DIM,
    FAB_K, TELEM_CLIENTS, TELEM_K,
};
use agsfl_core::figures::scale_sweep::{self, ScaleSweepConfig};
use agsfl_exec::{mem, Executor};
use agsfl_ml::metrics;
use agsfl_ml::model::{Im2colScratch, Model};
use agsfl_ml::reference as ml_reference;
use agsfl_sparse::{reference, topk, FabTopK, SelectionScratch, ShardedScratch, Sparsifier};
use agsfl_telemetry::{SpanId, StageRecorder};
use agsfl_wire::{
    decode_frame, reference as wire_reference, Codec, DeltaVarint, QLinear8, WireScratch,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// Samples per kernel; each sample runs enough iterations to cover ~20 ms.
const SAMPLES: usize = 12;
const TARGET_SAMPLE_SECS: f64 = 0.02;

/// Times `f`, returning mean nanoseconds per iteration over the fastest
/// half of the samples.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    // Warm-up + calibration.
    let start = Instant::now();
    let mut warmup_iters = 0u64;
    while start.elapsed().as_secs_f64() < 0.05 {
        f();
        warmup_iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / warmup_iters as f64;
    let iters = (TARGET_SAMPLE_SECS / per_iter.max(1e-9)).ceil().max(1.0) as u64;

    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let half = samples.len().div_ceil(2);
    samples[..half].iter().sum::<f64>() / half as f64 * 1e9
}

struct KernelReport {
    name: &'static str,
    dim: usize,
    clients: usize,
    k: usize,
    /// Worker threads used by the optimized variant (1 = serial kernel).
    threads: usize,
    seed_ns: f64,
    scratch_ns: f64,
}

impl KernelReport {
    fn speedup(&self) -> f64 {
        self.seed_ns / self.scratch_ns
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"kernel\": \"{}\",\n",
                "      \"dim\": {},\n",
                "      \"clients\": {},\n",
                "      \"k\": {},\n",
                "      \"threads\": {},\n",
                "      \"seed_ns_per_iter\": {:.1},\n",
                "      \"scratch_ns_per_iter\": {:.1},\n",
                "      \"speedup\": {:.2}\n",
                "    }}"
            ),
            self.name,
            self.dim,
            self.clients,
            self.k,
            self.threads,
            self.seed_ns,
            self.scratch_ns,
            self.speedup()
        )
    }

    fn to_history_json(&self) -> String {
        format!(
            "{{\"kernel\":\"{}\",\"threads\":{},\"seed_ns_per_iter\":{:.1},\"scratch_ns_per_iter\":{:.1},\"speedup\":{:.2}}}",
            self.name,
            self.threads,
            self.seed_ns,
            self.scratch_ns,
            self.speedup()
        )
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let history_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_history.jsonl".to_string());

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The sharded pair is always measured through the parallel engine (at
    // least two workers), so the machinery is exercised and its overhead
    // honestly recorded even on a single-core box.
    let sharded_threads = cores.max(2);

    eprintln!(
        "bench-report: FAB selection workload dim={FAB_DIM}, N={FAB_CLIENTS}, k={FAB_K} ({cores} core(s))"
    );

    // FAB server selection: seed vs serial scratch.
    let uploads = fab_workload();
    let seed_ns = time_ns(|| {
        black_box(reference::fab_select(black_box(&uploads), FAB_DIM, FAB_K));
    });
    let mut scratch = SelectionScratch::new();
    let scratch_ns = time_ns(|| {
        black_box(FabTopK::new().select_into(black_box(&uploads), FAB_DIM, FAB_K, &mut scratch));
    });
    let fab = KernelReport {
        name: "fab_select",
        dim: FAB_DIM,
        clients: FAB_CLIENTS,
        k: FAB_K,
        threads: 1,
        seed_ns,
        scratch_ns,
    };
    eprintln!(
        "  fab_select: seed {:.0} ns, scratch {:.0} ns -> {:.2}x",
        fab.seed_ns,
        fab.scratch_ns,
        fab.speedup()
    );

    // FAB server selection: serial scratch vs sharded `select_parallel`.
    let exec = Executor::new(sharded_threads);
    let mut sharded = ShardedScratch::new();
    let sharded_ns = time_ns(|| {
        black_box(FabTopK::new().select_parallel(
            black_box(&uploads),
            FAB_DIM,
            FAB_K,
            &mut sharded,
            &exec,
        ));
    });
    let fab_sharded = KernelReport {
        name: "fab_select_sharded",
        dim: FAB_DIM,
        clients: FAB_CLIENTS,
        k: FAB_K,
        threads: sharded_threads,
        seed_ns: fab.scratch_ns,
        scratch_ns: sharded_ns,
    };
    eprintln!(
        "  fab_select_sharded: serial {:.0} ns, sharded({} threads) {:.0} ns -> {:.2}x",
        fab_sharded.seed_ns,
        sharded_threads,
        fab_sharded.scratch_ns,
        fab_sharded.speedup()
    );

    // Parallel-region dispatch overhead: the historical spawn-per-region
    // `thread::scope` path (`map_mut_scoped`, the retained baseline) vs the
    // persistent channel-fed pool (`map_mut`), over a deliberately tiny
    // region — trivial per-item work on a small slice — so the pair
    // isolates what *dispatching* one region costs, not what the region
    // computes. The round engine pays this cost several times per round;
    // the acceptance bar is pool dispatch below the scope spawn cost.
    const DISPATCH_ITEMS: usize = 64;
    let dispatch_exec = Executor::new(sharded_threads).with_min_items(1);
    let mut dispatch_items = vec![0u64; DISPATCH_ITEMS];
    let seed_ns = time_ns(|| {
        black_box(
            dispatch_exec.map_mut_scoped(black_box(&mut dispatch_items), |x| {
                *x = x.wrapping_add(1);
                *x
            }),
        );
    });
    let scratch_ns = time_ns(|| {
        black_box(dispatch_exec.map_mut(black_box(&mut dispatch_items), |x| {
            *x = x.wrapping_add(1);
            *x
        }));
    });
    let pool_dispatch = KernelReport {
        name: "pool_dispatch",
        dim: DISPATCH_ITEMS,
        clients: DISPATCH_ITEMS,
        k: 0,
        threads: sharded_threads,
        seed_ns,
        scratch_ns,
    };
    eprintln!(
        "  pool_dispatch ({DISPATCH_ITEMS} items): scope spawn {:.0} ns, pool {:.0} ns -> {:.2}x",
        pool_dispatch.seed_ns,
        pool_dispatch.scratch_ns,
        pool_dispatch.speedup()
    );

    // Client-side top-k extraction: the seed full-dimension-copy baseline
    // (kept in `reference`) vs the streaming bounded-buffer select.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let values: Vec<f32> = (0..FAB_DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let seed_ns = time_ns(|| {
        black_box(reference::top_k_entries(black_box(&values), FAB_K));
    });
    let mut topk_scratch = Vec::new();
    let scratch_ns = time_ns(|| {
        black_box(topk::top_k_entries_with(
            black_box(&values),
            FAB_K,
            &mut topk_scratch,
        ));
    });
    let topk_report = KernelReport {
        name: "client_top_k",
        dim: FAB_DIM,
        clients: 1,
        k: FAB_K,
        threads: 1,
        seed_ns,
        scratch_ns,
    };
    eprintln!(
        "  client_top_k: alloc {:.0} ns, scratch {:.0} ns -> {:.2}x",
        topk_report.seed_ns,
        topk_report.scratch_ns,
        topk_report.speedup()
    );

    // CNN forward at the paper shape (~420k weights, batch 32): the seed
    // scalar-loop kernel kept in `agsfl_ml::reference` vs the im2col
    // lowering with a reused column workspace.
    let (cnn, cnn_params, cnn_x, _) = cnn_workload();
    let seed_ns = time_ns(|| {
        black_box(ml_reference::cnn_forward(
            &cnn,
            black_box(&cnn_params),
            black_box(&cnn_x),
        ));
    });
    let mut im2col = Im2colScratch::new();
    let scratch_ns = time_ns(|| {
        black_box(cnn.forward_with(black_box(&cnn_params), black_box(&cnn_x), &mut im2col));
    });
    let cnn_report = KernelReport {
        name: "cnn_forward",
        dim: cnn.num_params(),
        clients: CNN_BATCH,
        k: cnn.filters(),
        threads: 1,
        seed_ns,
        scratch_ns,
    };
    eprintln!(
        "  cnn_forward (D={}, batch={}): loops {:.0} ns, im2col {:.0} ns -> {:.2}x",
        cnn.num_params(),
        CNN_BATCH,
        cnn_report.seed_ns,
        cnn_report.scratch_ns,
        cnn_report.speedup()
    );

    // Per-evaluation metric sweep: the seed's three serial passes (global
    // loss, global accuracy, test accuracy) vs the fused executor sweep.
    let (eval_model, eval_params, eval_dataset) = eval_workload();
    let model = eval_model.as_ref();
    let shards = eval_dataset.clients();
    let test = eval_dataset.test();
    let seed_ns = time_ns(|| {
        black_box(metrics::global_loss(model, &eval_params, shards));
        black_box(metrics::global_accuracy(model, &eval_params, shards));
        black_box(metrics::accuracy(
            model,
            &eval_params,
            &test.features,
            &test.labels,
        ));
    });
    let eval_exec = Executor::new(sharded_threads);
    let sweep_ns = time_ns(|| {
        black_box(metrics::global_evaluation(
            model,
            &eval_params,
            shards,
            test,
            &eval_exec,
        ));
    });
    // The sweep must be bit-identical to the serial passes it replaces.
    let fused = metrics::global_evaluation(model, &eval_params, shards, test, &eval_exec);
    assert_eq!(
        fused.train_loss,
        metrics::global_loss(model, &eval_params, shards)
    );
    assert_eq!(
        fused.train_accuracy,
        metrics::global_accuracy(model, &eval_params, shards)
    );
    assert_eq!(
        fused.test_accuracy,
        metrics::accuracy(model, &eval_params, &test.features, &test.labels)
    );
    let eval_report = KernelReport {
        name: "eval_sweep",
        dim: eval_model.num_params(),
        clients: EVAL_CLIENTS,
        k: test.len(),
        threads: sharded_threads,
        seed_ns,
        scratch_ns: sweep_ns,
    };
    eprintln!(
        "  eval_sweep (D={}, N={}, test={}): serial x3 {:.0} ns, fused({} threads) {:.0} ns -> {:.2}x",
        eval_model.num_params(),
        EVAL_CLIENTS,
        test.len(),
        eval_report.seed_ns,
        sharded_threads,
        eval_report.scratch_ns,
        eval_report.speedup()
    );

    // Wire codec encode/decode at the acceptance shape (a dim = 10⁵
    // message with k = 10³ entries — what a k = D/100 round broadcasts):
    // the allocating byte-at-a-time reference encoder vs the
    // scratch-reusing `encode_into`, and the allocating reference decode
    // vs `decode_frame` into a caller-reused entry buffer. Frames are
    // byte-identical between the variants (the reference is the executable
    // spec), asserted below.
    let message = wire_workload();
    let seed_ns = time_ns(|| {
        black_box(wire_reference::delta_encode(
            message.dim(),
            black_box(message.entries()),
        ));
    });
    let mut wire_scratch = WireScratch::new();
    let scratch_ns = time_ns(|| {
        black_box(DeltaVarint.encode_gradient_into(black_box(&message), &mut wire_scratch));
    });
    let frame = DeltaVarint
        .encode_gradient_into(&message, &mut wire_scratch)
        .to_vec();
    assert_eq!(
        frame,
        wire_reference::delta_encode(message.dim(), message.entries()),
        "reference encoder must emit the identical frame"
    );
    let wire_encode = KernelReport {
        name: "wire_encode",
        dim: FAB_DIM,
        clients: 1,
        k: FAB_K,
        threads: 1,
        seed_ns,
        scratch_ns,
    };
    eprintln!(
        "  wire_encode (delta-varint, {} B frame): alloc {:.0} ns, scratch {:.0} ns -> {:.2}x",
        frame.len(),
        wire_encode.seed_ns,
        wire_encode.scratch_ns,
        wire_encode.speedup()
    );

    let seed_ns = time_ns(|| {
        black_box(wire_reference::decode(black_box(&frame)).expect("valid frame"));
    });
    let mut entries_buf = Vec::new();
    let scratch_ns = time_ns(|| {
        black_box(decode_frame(black_box(&frame), &mut entries_buf).expect("valid frame"));
    });
    decode_frame(&frame, &mut entries_buf).expect("valid frame");
    assert_eq!(
        entries_buf,
        message.entries(),
        "decode must invert encode bit-exactly"
    );
    let wire_decode = KernelReport {
        name: "wire_decode",
        dim: FAB_DIM,
        clients: 1,
        k: FAB_K,
        threads: 1,
        seed_ns,
        scratch_ns,
    };
    eprintln!(
        "  wire_decode (delta-varint): alloc {:.0} ns, reused-buffer {:.0} ns -> {:.2}x",
        wire_decode.seed_ns,
        wire_decode.scratch_ns,
        wire_decode.speedup()
    );

    // Lossy quantized codec on the same message: the allocating reference
    // QLinear8 encoder (the executable spec of the quantized frame format,
    // including the content-keyed stochastic-rounding stream) vs the
    // scratch-reusing fast path, and the allocating reference decode vs
    // `decode_frame` into a reused buffer. As with the lossless pair, the
    // two encoders must emit byte-identical frames.
    const QUANT_SEED: u64 = 0x9E37_79B9;
    let quant_codec = QLinear8::new(QUANT_SEED);
    let seed_ns = time_ns(|| {
        black_box(wire_reference::qlinear8_encode(
            QUANT_SEED,
            message.dim(),
            black_box(message.entries()),
        ));
    });
    let scratch_ns = time_ns(|| {
        black_box(quant_codec.encode_gradient_into(black_box(&message), &mut wire_scratch));
    });
    let quant_frame = quant_codec
        .encode_gradient_into(&message, &mut wire_scratch)
        .to_vec();
    assert_eq!(
        quant_frame,
        wire_reference::qlinear8_encode(QUANT_SEED, message.dim(), message.entries()),
        "reference quantizer must emit the identical frame"
    );
    let quant_encode = KernelReport {
        name: "quant_encode",
        dim: FAB_DIM,
        clients: 1,
        k: FAB_K,
        threads: 1,
        seed_ns,
        scratch_ns,
    };
    eprintln!(
        "  quant_encode (qlinear8, {} B frame): alloc {:.0} ns, scratch {:.0} ns -> {:.2}x",
        quant_frame.len(),
        quant_encode.seed_ns,
        quant_encode.scratch_ns,
        quant_encode.speedup()
    );

    let seed_ns = time_ns(|| {
        black_box(wire_reference::decode(black_box(&quant_frame)).expect("valid frame"));
    });
    let scratch_ns = time_ns(|| {
        black_box(decode_frame(black_box(&quant_frame), &mut entries_buf).expect("valid frame"));
    });
    decode_frame(&quant_frame, &mut entries_buf).expect("valid frame");
    assert_eq!(
        entries_buf,
        wire_reference::decode(&quant_frame).expect("valid frame").1,
        "both quantized decoders must reconstruct the same bits"
    );
    let quant_decode = KernelReport {
        name: "quant_decode",
        dim: FAB_DIM,
        clients: 1,
        k: FAB_K,
        threads: 1,
        seed_ns,
        scratch_ns,
    };
    eprintln!(
        "  quant_decode (qlinear8): alloc {:.0} ns, reused-buffer {:.0} ns -> {:.2}x",
        quant_decode.seed_ns,
        quant_decode.scratch_ns,
        quant_decode.speedup()
    );

    // Checkpoint save/load at the paper's >400k-weight scale: the fault
    // path's resume story priced as kernels. `checkpoint_save` compares the
    // allocating `save_state` against `save_state_into` reusing one buffer
    // across rounds (the shape periodic checkpointing actually runs);
    // `checkpoint_load` compares rebuilding the simulation from its inputs
    // (dataset regeneration + model init — the no-checkpoint baseline)
    // against `restore_state` of the serialized blob.
    let ckpt_sim = checkpoint_workload();
    let ckpt_dim = ckpt_sim.dim();
    let seed_ns = time_ns(|| {
        black_box(ckpt_sim.save_state());
    });
    let mut ckpt_buf = Vec::new();
    let scratch_ns = time_ns(|| {
        ckpt_sim.save_state_into(black_box(&mut ckpt_buf));
    });
    let ckpt_save = KernelReport {
        name: "checkpoint_save",
        dim: ckpt_dim,
        clients: CKPT_CLIENTS,
        k: 0,
        threads: 1,
        seed_ns,
        scratch_ns,
    };
    eprintln!(
        "  checkpoint_save (D={ckpt_dim}): alloc {:.0} ns, reused-buffer {:.0} ns -> {:.2}x",
        ckpt_save.seed_ns,
        ckpt_save.scratch_ns,
        ckpt_save.speedup()
    );

    let blob = ckpt_sim.save_state();
    let seed_ns = time_ns(|| {
        black_box(fresh_checkpoint_sim());
    });
    let mut target = fresh_checkpoint_sim();
    let scratch_ns = time_ns(|| {
        target
            .restore_state(black_box(&blob))
            .expect("same-fingerprint restore");
    });
    // The restore must reproduce the saved state bit-exactly.
    assert_eq!(target.save_state(), blob, "restore must be bit-exact");
    let ckpt_load = KernelReport {
        name: "checkpoint_load",
        dim: ckpt_dim,
        clients: CKPT_CLIENTS,
        k: 0,
        threads: 1,
        seed_ns,
        scratch_ns,
    };
    eprintln!(
        "  checkpoint_load (D={ckpt_dim}, {} B blob): rebuild {:.0} ns, restore {:.0} ns -> {:.2}x",
        blob.len(),
        ckpt_load.seed_ns,
        ckpt_load.scratch_ns,
        ckpt_load.speedup()
    );

    // Telemetry: the recorded-vs-noop round pair prices what full
    // instrumentation (stage clock reads, histogram buckets, pool
    // counters) costs per round, and the recorder's own output — stage
    // quantiles plus pool busy/idle fractions — goes into the snapshot so
    // stage-share regressions in the round engine are visible across PRs.
    let mut noop_sim = telemetry_workload();
    let telem_dim = noop_sim.dim();
    let seed_ns = time_ns(|| {
        black_box(noop_sim.run_round(TELEM_K, None));
    });
    let mut rec_sim = telemetry_workload();
    rec_sim.executor().set_metrics_enabled(true);
    let mut recorder = StageRecorder::new();
    let scratch_ns = time_ns(|| {
        recorder.begin_round();
        black_box(rec_sim.run_round_recorded(TELEM_K, None, &mut recorder));
    });
    let telemetry_record = KernelReport {
        name: "telemetry_record",
        dim: telem_dim,
        clients: TELEM_CLIENTS,
        k: TELEM_K,
        threads: 2,
        seed_ns,
        scratch_ns,
    };
    let (telem_seed_ns, telem_scratch_ns) = (telemetry_record.seed_ns, telemetry_record.scratch_ns);
    eprintln!(
        "  telemetry_record: noop {telem_seed_ns:.0} ns, recorded {telem_scratch_ns:.0} ns -> {:+.1}% overhead",
        (telem_scratch_ns / telem_seed_ns - 1.0) * 100.0
    );
    let telemetry_spans: Vec<String> = SpanId::ALL
        .into_iter()
        .filter_map(|id| {
            let h = recorder.span_histogram(id);
            (!h.is_empty()).then(|| {
                format!(
                    "{{\"span\":\"{}\",\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                    id.name(),
                    h.count(),
                    h.p50().unwrap_or(0),
                    h.p95().unwrap_or(0),
                    h.p99().unwrap_or(0)
                )
            })
        })
        .collect();
    let telemetry_spans_json: Vec<String> = telemetry_spans
        .iter()
        .map(|s| format!("      {s}"))
        .collect();
    let pool_snapshot = rec_sim.executor().pool_metrics();
    let telemetry_pool_json = pool_snapshot.as_ref().map_or_else(
        || "null".to_string(),
        |s| {
            format!(
                "{{\"workers\":{},\"busy_fraction\":{:.4},\"busy_ns\":{},\"idle_ns\":{},\"tasks\":{},\"queue_depth_peak\":{},\"imbalance\":{:.3}}}",
                s.workers.len(),
                s.busy_fraction(),
                s.total_busy_ns(),
                s.total_idle_ns(),
                s.total_tasks(),
                s.queue_depth_peak,
                s.imbalance_ratio()
            )
        },
    );
    if let Some(s) = &pool_snapshot {
        eprintln!(
            "  pool: {} workers, busy fraction {:.3}, {} tasks, imbalance {:.2}",
            s.workers.len(),
            s.busy_fraction(),
            s.total_tasks(),
            s.imbalance_ratio()
        );
    }

    // Population-scale sweep: fixed-cohort rounds over lazily materialized
    // populations, with resident memory observed by the OS. This is what
    // makes the O(cohort·k) scale claim auditable next to the ns/iter
    // numbers — the rss column must stay flat while N grows 1000x.
    let scale_config = ScaleSweepConfig::default();
    eprintln!(
        "bench-report: scale sweep over N={:?}, cohort={}",
        scale_config.populations, scale_config.cohort
    );
    let scale = scale_sweep::run(&scale_config);
    for p in &scale.points {
        eprintln!(
            "  scale N={}: {:.1} rounds/s, rss {} B (peak {} B), {} resident clients",
            p.population,
            p.rounds_per_sec,
            p.current_rss_bytes.unwrap_or(0),
            p.peak_rss_bytes.unwrap_or(0),
            p.resident_clients
        );
    }
    // Peak RSS of this whole process — an upper bound on every workload
    // above, recorded so memory regressions show up in the snapshot diff.
    let peak_rss = mem::peak_rss_bytes();
    let peak_rss_json = peak_rss.map_or_else(|| "null".to_string(), |b| b.to_string());
    let scale_points_json: Vec<String> = scale
        .points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"population\": {},\n",
                    "      \"cohort\": {},\n",
                    "      \"rounds_per_sec\": {:.1},\n",
                    "      \"resident_clients\": {},\n",
                    "      \"current_rss_bytes\": {},\n",
                    "      \"peak_rss_bytes\": {}\n",
                    "    }}"
                ),
                p.population,
                p.cohort,
                p.rounds_per_sec,
                p.resident_clients,
                p.current_rss_bytes
                    .map_or_else(|| "null".to_string(), |b| b.to_string()),
                p.peak_rss_bytes
                    .map_or_else(|| "null".to_string(), |b| b.to_string()),
            )
        })
        .collect();

    let kernels = [
        fab,
        fab_sharded,
        pool_dispatch,
        topk_report,
        cnn_report,
        eval_report,
        wire_encode,
        wire_decode,
        quant_encode,
        quant_decode,
        ckpt_save,
        ckpt_load,
        telemetry_record,
    ];
    let body: Vec<String> = kernels.iter().map(KernelReport::to_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"suite\": \"selection_kernels\",\n",
            "  \"workload\": {{ \"dim\": {}, \"clients\": {}, \"k\": {} }},\n",
            "  \"cores\": {},\n",
            "  \"peak_rss_bytes\": {},\n",
            "  \"kernels\": [\n{}\n  ],\n",
            "  \"telemetry\": {{\n",
            "    \"spans\": [\n{}\n    ],\n",
            "    \"pool\": {}\n",
            "  }},\n",
            "  \"scale\": [\n{}\n  ]\n",
            "}}\n"
        ),
        FAB_DIM,
        FAB_CLIENTS,
        FAB_K,
        cores,
        peak_rss_json,
        body.join(",\n"),
        telemetry_spans_json.join(",\n"),
        telemetry_pool_json,
        scale_points_json.join(",\n")
    );
    std::fs::write(&out_path, json).expect("failed to write bench report");
    eprintln!("bench-report: wrote {out_path}");

    // Append this run to the history log (one JSON object per line), so
    // selection-kernel regressions across PRs stay visible.
    let unix_secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let history_kernels: Vec<String> = kernels.iter().map(KernelReport::to_history_json).collect();
    let line = format!(
        "{{\"unix_time\":{},\"suite\":\"selection_kernels\",\"workload\":{{\"dim\":{},\"clients\":{},\"k\":{}}},\"cores\":{},\"peak_rss_bytes\":{},\"kernels\":[{}]}}\n",
        unix_secs,
        FAB_DIM,
        FAB_CLIENTS,
        FAB_K,
        cores,
        peak_rss_json,
        history_kernels.join(",")
    );
    let mut history = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history_path)
        .expect("failed to open bench history");
    history
        .write_all(line.as_bytes())
        .expect("failed to append bench history");
    // The telemetry suite gets its own history line: the recorded-vs-noop
    // overhead pair plus the stage quantiles and pool occupancy from the
    // recorded rounds, so both the *cost* of instrumentation and the
    // *shape* of a round (stage shares, worker balance) are tracked.
    let telemetry_line = format!(
        "{{\"unix_time\":{},\"suite\":\"telemetry\",\"workload\":{{\"dim\":{},\"clients\":{},\"k\":{}}},\"noop_ns_per_round\":{:.1},\"recorded_ns_per_round\":{:.1},\"overhead_fraction\":{:.4},\"spans\":[{}],\"pool\":{}}}\n",
        unix_secs,
        telem_dim,
        TELEM_CLIENTS,
        TELEM_K,
        telem_seed_ns,
        telem_scratch_ns,
        telem_scratch_ns / telem_seed_ns - 1.0,
        telemetry_spans.join(","),
        telemetry_pool_json
    );
    history
        .write_all(telemetry_line.as_bytes())
        .expect("failed to append telemetry history");
    // The scale sweep gets its own history line (suite "scale_sweep"):
    // per-population rounds/sec and RSS, so the flat-memory claim is
    // tracked across PRs, not just asserted once.
    history
        .write_all(scale.history_json_line(unix_secs).as_bytes())
        .expect("failed to append scale-sweep history");
    eprintln!("bench-report: appended to {history_path}");
}
