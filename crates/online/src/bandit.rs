//! Continuous one-point bandit baseline (Flaxman et al.).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::sign_ogd::SearchInterval;
use crate::snapshot::{StateError, StateReader, StateWriter};

/// Bandit online convex optimization with a one-point gradient estimate —
/// the third baseline of Fig. 5 ("Continuous bandit").
///
/// The algorithm keeps an iterate `x_m`, plays the perturbed point
/// `k_m = P_K(x_m + δ_m·u_m)` with `u_m ∈ {−1, +1}` uniform, observes the
/// scalar cost `c_m` of the round and updates with the one-point estimator
/// `ĝ_m = c_m·u_m/δ_m`:
///
/// ```text
/// x_{m+1} = P_K(x_m − η_m · ĝ_m)
/// ```
///
/// with `δ_m ∝ m^{-1/4}` and `η_m ∝ m^{-3/4}` (the schedule that gives the
/// classic `O(M^{3/4})` regret, asymptotically worse than the paper's
/// `O(√M)` sign-based method).
#[derive(Debug, Clone)]
pub struct ContinuousBandit {
    interval: SearchInterval,
    x: f64,
    /// Base perturbation radius (scaled by `m^{-1/4}`).
    delta0: f64,
    /// Base step size (scaled by `m^{-3/4}`).
    eta0: f64,
    m: usize,
    current_direction: f64,
    rng: ChaCha8Rng,
}

impl ContinuousBandit {
    /// Creates the baseline.
    ///
    /// `delta0` and `eta0` are the round-1 perturbation radius and step size;
    /// reasonable defaults are `B/10` and `B/10` for interval width `B`.
    ///
    /// # Panics
    ///
    /// Panics if `delta0` or `eta0` is not positive.
    pub fn new(
        interval: SearchInterval,
        initial_k: f64,
        delta0: f64,
        eta0: f64,
        seed: u64,
    ) -> Self {
        assert!(
            delta0 > 0.0 && eta0 > 0.0,
            "delta0 and eta0 must be positive"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let current_direction = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        Self {
            interval,
            x: interval.project(initial_k),
            delta0,
            eta0,
            m: 0,
            current_direction,
            rng,
        }
    }

    /// Creates the baseline with the default `B/10` scales.
    pub fn with_default_scales(interval: SearchInterval, initial_k: f64, seed: u64) -> Self {
        let b = interval.width().max(1.0);
        Self::new(interval, initial_k, b / 10.0, b / 10.0, seed)
    }

    /// The unperturbed iterate `x_m`.
    pub fn center(&self) -> f64 {
        self.x
    }

    /// The search interval.
    pub fn interval(&self) -> &SearchInterval {
        &self.interval
    }

    /// The perturbation radius `δ_m` for the upcoming round.
    pub fn current_delta(&self) -> f64 {
        self.delta0 / ((self.m + 1) as f64).powf(0.25)
    }

    /// The step size `η_m` for the upcoming round.
    pub fn current_eta(&self) -> f64 {
        self.eta0 / ((self.m + 1) as f64).powf(0.75)
    }

    /// The perturbed point `k_m = P_K(x_m + δ_m·u_m)` to play this round.
    pub fn k(&self) -> f64 {
        self.interval
            .project(self.x + self.current_delta() * self.current_direction)
    }

    /// Feeds back the observed scalar cost of the played point and advances
    /// to the next round. Non-finite or negative costs are ignored.
    pub fn observe_cost(&mut self, cost: f64) {
        if cost.is_finite() && cost >= 0.0 {
            let delta = self.current_delta();
            let eta = self.current_eta();
            let grad_estimate = cost * self.current_direction / delta;
            self.x = self.interval.project(self.x - eta * grad_estimate);
            self.m += 1;
        }
        self.current_direction = if self.rng.gen::<bool>() { 1.0 } else { -1.0 };
    }

    pub(crate) fn write_state(&self, w: &mut StateWriter) {
        w.f64(self.x);
        w.usize(self.m);
        w.f64(self.current_direction);
        w.rng(&self.rng);
    }

    pub(crate) fn read_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let x = r.f64()?;
        if !self.interval.contains(x) {
            return Err(StateError::Invalid("iterate outside interval"));
        }
        let m = r.usize()?;
        let direction = r.f64()?;
        if direction != 1.0 && direction != -1.0 {
            return Err(StateError::Invalid("perturbation direction"));
        }
        let rng = r.rng()?;
        self.x = x;
        self.m = m;
        self.current_direction = direction;
        self.rng = rng;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval() -> SearchInterval {
        SearchInterval::new(10.0, 1010.0)
    }

    #[test]
    fn played_point_stays_in_interval() {
        let mut alg = ContinuousBandit::with_default_scales(interval(), 500.0, 0);
        for _ in 0..200 {
            let k = alg.k();
            assert!(interval().contains(k));
            alg.observe_cost(1.0);
        }
    }

    #[test]
    fn schedules_decay() {
        let mut alg = ContinuousBandit::with_default_scales(interval(), 500.0, 1);
        let d1 = alg.current_delta();
        let e1 = alg.current_eta();
        for _ in 0..10 {
            alg.observe_cost(0.5);
        }
        assert!(alg.current_delta() < d1);
        assert!(alg.current_eta() < e1);
        // Eta decays faster than delta.
        assert!(alg.current_eta() / e1 < alg.current_delta() / d1);
    }

    #[test]
    fn moves_toward_lower_cost_region() {
        // Monotone cost in k (normalized to [0, 1]): the gradient estimate
        // should push the iterate towards the low-cost (small-k) end. The
        // one-point estimator is very noisy — this is exactly why the paper's
        // sign-based method beats it — so the step scale must be generous and
        // the assertion is deliberately loose.
        let mut alg = ContinuousBandit::new(interval(), 900.0, 100.0, 20_000.0, 2);
        for _ in 0..3000 {
            let k = alg.k();
            let cost = k / 1010.0;
            alg.observe_cost(cost);
        }
        assert!(
            alg.center() < 700.0,
            "center {} did not move toward the low-cost region",
            alg.center()
        );
    }

    #[test]
    fn invalid_costs_are_ignored() {
        let mut alg = ContinuousBandit::with_default_scales(interval(), 500.0, 3);
        let before_center = alg.center();
        alg.observe_cost(f64::NAN);
        alg.observe_cost(-1.0);
        assert_eq!(alg.center(), before_center);
    }

    #[test]
    #[should_panic]
    fn non_positive_scales_panic() {
        let _ = ContinuousBandit::new(interval(), 100.0, 0.0, 1.0, 0);
    }
}
