//! Stochastic rounding of the continuous sparsity degree (Definition 2).

use rand::Rng;

/// Randomized `k`-element GS (Definition 2 of the paper): a continuous
/// `k ∈ [1, D]` is rounded to `⌊k⌋` with probability `⌈k⌉ − k` and to `⌈k⌉`
/// with probability `k − ⌊k⌋`, so the rounded value is unbiased. Integer `k`
/// is returned unchanged.
///
/// The result is clamped to at least 1.
///
/// # Examples
///
/// ```
/// use agsfl_online::stochastic_round;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// assert_eq!(stochastic_round(7.0, &mut rng), 7);
/// let r = stochastic_round(7.5, &mut rng);
/// assert!(r == 7 || r == 8);
/// ```
///
/// # Panics
///
/// Panics if `k` is not finite or is negative.
pub fn stochastic_round<R: Rng + ?Sized>(k: f64, rng: &mut R) -> usize {
    assert!(
        k.is_finite() && k >= 0.0,
        "k must be finite and non-negative, got {k}"
    );
    let floor = k.floor();
    let frac = k - floor;
    let rounded = if frac == 0.0 {
        floor
    } else if rng.gen::<f64>() < frac {
        floor + 1.0
    } else {
        floor
    };
    (rounded as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn integer_inputs_pass_through() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for k in 1..20 {
            assert_eq!(stochastic_round(k as f64, &mut rng), k);
        }
    }

    #[test]
    fn result_is_floor_or_ceil() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let r = stochastic_round(12.3, &mut rng);
            assert!(r == 12 || r == 13);
        }
    }

    #[test]
    fn rounding_is_unbiased() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let k = 5.25;
        let n = 40_000;
        let sum: usize = (0..n).map(|_| stochastic_round(k, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - k).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn small_values_clamp_to_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(stochastic_round(0.0, &mut rng), 1);
        let r = stochastic_round(0.4, &mut rng);
        assert!(r == 1);
    }

    #[test]
    #[should_panic]
    fn negative_k_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let _ = stochastic_round(-1.0, &mut rng);
    }

    proptest! {
        #[test]
        fn prop_result_within_one_of_input(k in 1.0f64..10_000.0, seed in 0u64..1000) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let r = stochastic_round(k, &mut rng) as f64;
            prop_assert!((r - k).abs() < 1.0 + 1e-9);
        }
    }
}
