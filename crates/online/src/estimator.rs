//! The practical derivative-sign estimator of Section IV-E.

use serde::{Deserialize, Serialize};

/// The per-round measurements the estimator consumes.
///
/// `loss_prev`, `loss_now` and `loss_alt` are the averaged single-sample
/// losses `L̃(w(m-1))`, `L̃(w(m))` and `L̃(w'(m))`; `round_time` is the
/// measured time `τ_m(k_m)` of the round and `alt_round_time` the time
/// `θ_m(k')` one round of `k'`-element GS would take.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorInputs {
    /// The sparsity `k_m` used this round.
    pub k: f64,
    /// The probe sparsity `k'_m` (must differ from `k`).
    pub k_alt: f64,
    /// `L̃(w(m-1))`.
    pub loss_prev: f64,
    /// `L̃(w(m))`.
    pub loss_now: f64,
    /// `L̃(w'(m))`.
    pub loss_alt: f64,
    /// `τ_m(k_m)`: measured time of this round.
    pub round_time: f64,
    /// `θ_m(k'_m)`: time of one round with `k'`-element GS.
    pub alt_round_time: f64,
}

/// Estimates the sign of `∂τ_m/∂k` at `k_m` from three single-sample losses
/// (Eqs. (10)–(11) of the paper).
///
/// The estimator maps the time of one hypothetical `k'`-element round onto
/// the loss interval achieved by the actual `k_m`-element round:
///
/// ```text
/// τ̂_m(k') = θ_m(k') · (L̃(w(m-1)) − L̃(w(m))) / (L̃(w(m-1)) − L̃(w'(m)))
/// ŝ_m = sign( (τ_m(k_m) − τ̂_m(k')) / (k_m − k') )
/// ```
///
/// When either single-sample loss fails to decrease (`L̃(w(m-1)) ≤ L̃(w(m))`
/// or `L̃(w(m-1)) ≤ L̃(w'(m))`), Eq. (10) has no physical meaning and the
/// estimator reports `None`; the online algorithms then leave `k` unchanged
/// for that round.
///
/// # Examples
///
/// ```
/// use agsfl_online::{DerivativeSignEstimator, EstimatorInputs};
///
/// let est = DerivativeSignEstimator::new();
/// // The smaller k' makes the same loss progress in less time, so the
/// // derivative with respect to k is positive (k should decrease).
/// let sign = est.estimate(&EstimatorInputs {
///     k: 100.0,
///     k_alt: 80.0,
///     loss_prev: 2.0,
///     loss_now: 1.9,
///     loss_alt: 1.9,
///     round_time: 10.0,
///     alt_round_time: 8.0,
/// });
/// assert_eq!(sign, Some(1));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DerivativeSignEstimator;

impl DerivativeSignEstimator {
    /// Creates the estimator.
    pub fn new() -> Self {
        Self
    }

    /// The estimated (unsigned) derivative value, or `None` if the inputs are
    /// invalid for Eq. (10). Exposed separately because the value-based
    /// baseline uses the raw estimate without the `sign(·)`.
    pub fn estimate_derivative(&self, inputs: &EstimatorInputs) -> Option<f64> {
        if inputs.k == inputs.k_alt {
            return None;
        }
        let drop_actual = inputs.loss_prev - inputs.loss_now;
        let drop_alt = inputs.loss_prev - inputs.loss_alt;
        // Both one-round loss decreases must be positive for the mapping in
        // Eq. (10) to make sense.
        if drop_actual <= 0.0 || drop_alt <= 0.0 {
            return None;
        }
        let tau_alt = inputs.alt_round_time * drop_actual / drop_alt;
        let derivative = (inputs.round_time - tau_alt) / (inputs.k - inputs.k_alt);
        derivative.is_finite().then_some(derivative)
    }

    /// The estimated derivative sign `ŝ_m ∈ {-1, 0, 1}`, or `None` if the
    /// estimate is unavailable this round.
    pub fn estimate(&self, inputs: &EstimatorInputs) -> Option<i8> {
        self.estimate_derivative(inputs).map(|d| {
            if d > 0.0 {
                1
            } else if d < 0.0 {
                -1
            } else {
                0
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn base() -> EstimatorInputs {
        EstimatorInputs {
            k: 200.0,
            k_alt: 150.0,
            loss_prev: 3.0,
            loss_now: 2.8,
            loss_alt: 2.85,
            round_time: 6.0,
            alt_round_time: 5.0,
        }
    }

    #[test]
    fn positive_derivative_when_smaller_k_is_cheaper_per_loss() {
        // k' reaches almost the same loss in less time: τ̂(k') < τ(k), and
        // k > k', so the derivative is positive.
        let inputs = EstimatorInputs {
            loss_alt: 2.8,
            ..base()
        };
        let est = DerivativeSignEstimator::new();
        assert_eq!(est.estimate(&inputs), Some(1));
    }

    #[test]
    fn negative_derivative_when_smaller_k_is_much_slower() {
        // k' barely reduces the loss, so mapped to the same loss interval it
        // would take far longer: τ̂(k') > τ(k) ⇒ negative derivative.
        let inputs = EstimatorInputs {
            loss_alt: 2.99,
            ..base()
        };
        let est = DerivativeSignEstimator::new();
        assert_eq!(est.estimate(&inputs), Some(-1));
    }

    #[test]
    fn unavailable_when_losses_do_not_decrease() {
        let est = DerivativeSignEstimator::new();
        let no_actual_drop = EstimatorInputs {
            loss_now: 3.1,
            ..base()
        };
        assert_eq!(est.estimate(&no_actual_drop), None);
        let no_alt_drop = EstimatorInputs {
            loss_alt: 3.0,
            ..base()
        };
        assert_eq!(est.estimate(&no_alt_drop), None);
    }

    #[test]
    fn unavailable_when_k_equals_probe() {
        let est = DerivativeSignEstimator::new();
        let same_k = EstimatorInputs {
            k_alt: 200.0,
            ..base()
        };
        assert_eq!(est.estimate(&same_k), None);
    }

    #[test]
    fn derivative_value_matches_formula() {
        let inputs = base();
        let est = DerivativeSignEstimator::new();
        let d = est.estimate_derivative(&inputs).unwrap();
        let tau_alt = 5.0 * (3.0 - 2.8) / (3.0 - 2.85);
        let expected = (6.0 - tau_alt) / (200.0 - 150.0);
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn exactly_equal_times_give_zero_sign() {
        // Construct inputs where τ̂(k') == τ(k).
        let inputs = EstimatorInputs {
            k: 100.0,
            k_alt: 50.0,
            loss_prev: 2.0,
            loss_now: 1.5,
            loss_alt: 1.5,
            round_time: 4.0,
            alt_round_time: 4.0,
        };
        assert_eq!(DerivativeSignEstimator::new().estimate(&inputs), Some(0));
    }

    proptest! {
        #[test]
        fn prop_sign_matches_derivative_sign(
            k in 10.0f64..1000.0,
            dk in 1.0f64..100.0,
            loss_prev in 1.0f64..5.0,
            drop_actual in 0.001f64..0.5,
            drop_alt in 0.001f64..0.5,
            round_time in 0.5f64..50.0,
            alt_round_time in 0.5f64..50.0,
        ) {
            let inputs = EstimatorInputs {
                k,
                k_alt: k - dk,
                loss_prev,
                loss_now: loss_prev - drop_actual,
                loss_alt: loss_prev - drop_alt,
                round_time,
                alt_round_time,
            };
            let est = DerivativeSignEstimator::new();
            let d = est.estimate_derivative(&inputs).unwrap();
            let s = est.estimate(&inputs).unwrap();
            prop_assert_eq!(s as f64, d.signum() * if d == 0.0 { 0.0 } else { 1.0 });
        }
    }
}
