//! The EXP3 non-stochastic multi-armed bandit baseline.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use agsfl_tensor::init::sample_weighted;

use crate::snapshot::{StateError, StateReader, StateWriter};

/// EXP3 (Auer et al.) over a finite set of candidate `k` values.
///
/// The paper's second baseline in Fig. 5: every candidate `k` is an arm of a
/// non-stochastic multi-armed bandit, rewards are fed back only for the arm
/// that was played, and arm probabilities follow the classic exponential
/// weighting with uniform exploration `γ`. Because the algorithm has to try
/// every arm to learn anything about it, its empirical behaviour on the
/// adaptive-`k` problem is far more erratic than the sign-based method,
/// which is exactly what the paper reports.
///
/// Rewards must lie in `[0, 1]`; the caller is responsible for normalizing
/// its cost signal (see `CostNormalizer` in `agsfl-core`).
///
/// # Examples
///
/// ```
/// use agsfl_online::Exp3;
///
/// let mut exp3 = Exp3::new(vec![10.0, 100.0, 1000.0], 0.1, 7);
/// let arm = exp3.draw();
/// exp3.update(arm, 0.8);
/// assert!(exp3.probabilities().iter().all(|&p| p > 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct Exp3 {
    arms: Vec<f64>,
    weights: Vec<f64>,
    gamma: f64,
    rng: ChaCha8Rng,
    draws: usize,
}

impl Exp3 {
    /// Creates an EXP3 instance over the given arms with exploration rate
    /// `gamma ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or `gamma` is outside `(0, 1]`.
    pub fn new(arms: Vec<f64>, gamma: f64, seed: u64) -> Self {
        assert!(!arms.is_empty(), "EXP3 needs at least one arm");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        let n = arms.len();
        Self {
            arms,
            weights: vec![1.0; n],
            gamma,
            rng: ChaCha8Rng::seed_from_u64(seed),
            draws: 0,
        }
    }

    /// Builds the standard geometric arm grid `{kmin, kmin·r, kmin·r², …,
    /// kmax}` with `num_arms` arms, a practical discretization of the paper's
    /// "every integer k is an arm" formulation for large `D`.
    ///
    /// # Panics
    ///
    /// Panics if `num_arms < 2` or the range is invalid.
    pub fn geometric_arms(k_min: f64, k_max: f64, num_arms: usize) -> Vec<f64> {
        assert!(num_arms >= 2, "need at least two arms");
        assert!(k_min >= 1.0 && k_min < k_max, "invalid arm range");
        let ratio = (k_max / k_min).powf(1.0 / (num_arms - 1) as f64);
        (0..num_arms)
            .map(|i| (k_min * ratio.powi(i as i32)).min(k_max))
            .collect()
    }

    /// The candidate `k` values.
    pub fn arms(&self) -> &[f64] {
        &self.arms
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.arms.len()
    }

    /// Number of draws made so far.
    pub fn draws(&self) -> usize {
        self.draws
    }

    /// Current arm-selection probabilities
    /// `p_i = (1-γ)·w_i/Σw + γ/K`.
    pub fn probabilities(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().sum();
        let n = self.arms.len() as f64;
        self.weights
            .iter()
            .map(|w| (1.0 - self.gamma) * w / total + self.gamma / n)
            .collect()
    }

    /// Draws an arm index according to the current probabilities.
    pub fn draw(&mut self) -> usize {
        self.draws += 1;
        let probs = self.probabilities();
        sample_weighted(&probs, &mut self.rng).expect("probabilities are positive")
    }

    /// The `k` value of arm `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn arm_value(&self, index: usize) -> f64 {
        self.arms[index]
    }

    /// Feeds back the reward (in `[0, 1]`) obtained for the arm that was
    /// played. Rewards are clamped into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.arms.len(), "arm {arm} out of range");
        let reward = reward.clamp(0.0, 1.0);
        let probs = self.probabilities();
        let estimated = reward / probs[arm];
        let n = self.arms.len() as f64;
        let exponent = (self.gamma * estimated / n).min(50.0);
        self.weights[arm] *= exponent.exp();
        // Guard against numerical blow-up: rescale when weights get large.
        let max = self.weights.iter().cloned().fold(0.0f64, f64::max);
        if max > 1e100 {
            for w in &mut self.weights {
                *w /= max;
            }
        }
    }

    pub(crate) fn write_state(&self, w: &mut StateWriter) {
        w.f64s(&self.weights);
        w.usize(self.draws);
        w.rng(&self.rng);
    }

    pub(crate) fn read_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let weights = r.f64s()?;
        if weights.len() != self.arms.len() {
            return Err(StateError::Invalid("weight count"));
        }
        if !weights.iter().all(|w| w.is_finite() && *w > 0.0) {
            return Err(StateError::Invalid("weight value"));
        }
        let draws = r.usize()?;
        let rng = r.rng()?;
        self.weights = weights;
        self.draws = draws;
        self.rng = rng;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        let exp3 = Exp3::new(vec![1.0, 2.0, 3.0], 0.2, 0);
        let sum: f64 = exp3.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_arms_span_range() {
        let arms = Exp3::geometric_arms(10.0, 1000.0, 5);
        assert_eq!(arms.len(), 5);
        assert!((arms[0] - 10.0).abs() < 1e-9);
        assert!((arms[4] - 1000.0).abs() < 1e-6);
        assert!(arms.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn rewarded_arm_gains_probability() {
        let mut exp3 = Exp3::new(vec![10.0, 100.0, 1000.0], 0.1, 1);
        let before = exp3.probabilities()[1];
        for _ in 0..50 {
            exp3.update(1, 1.0);
        }
        let after = exp3.probabilities()[1];
        assert!(after > before);
        assert!(after > 0.8);
    }

    #[test]
    fn exploration_floor_is_maintained() {
        let mut exp3 = Exp3::new(vec![1.0, 2.0], 0.2, 2);
        for _ in 0..100 {
            exp3.update(0, 1.0);
        }
        let probs = exp3.probabilities();
        assert!(probs[1] >= 0.2 / 2.0 - 1e-12);
    }

    #[test]
    fn best_arm_is_eventually_preferred() {
        // Arm 2 always yields the best reward.
        let mut exp3 = Exp3::new(Exp3::geometric_arms(1.0, 1000.0, 8), 0.1, 3);
        for _ in 0..400 {
            let arm = exp3.draw();
            let reward = if arm == 2 { 0.9 } else { 0.2 };
            exp3.update(arm, reward);
        }
        let probs = exp3.probabilities();
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 2, "probabilities {probs:?}");
    }

    #[test]
    fn rewards_are_clamped() {
        let mut exp3 = Exp3::new(vec![1.0, 2.0], 0.3, 4);
        exp3.update(0, 100.0);
        exp3.update(1, -5.0);
        let probs = exp3.probabilities();
        assert!(probs.iter().all(|p| p.is_finite() && *p > 0.0));
    }

    #[test]
    fn weights_do_not_overflow() {
        let mut exp3 = Exp3::new(vec![1.0, 2.0], 1.0, 5);
        for _ in 0..10_000 {
            exp3.update(0, 1.0);
        }
        assert!(exp3.probabilities().iter().all(|p| p.is_finite()));
    }

    #[test]
    #[should_panic]
    fn empty_arms_panics() {
        let _ = Exp3::new(vec![], 0.1, 0);
    }

    #[test]
    #[should_panic]
    fn invalid_gamma_panics() {
        let _ = Exp3::new(vec![1.0], 0.0, 0);
    }
}
