//! Online learning algorithms for adapting the gradient sparsity degree `k`.
//!
//! Section IV of the paper formulates the choice of `k` as non-stochastic
//! online convex optimization over the unknown per-unit-loss training time
//! `t(k, l)` and proposes two algorithms that only need the *sign* of the
//! derivative of the per-round cost:
//!
//! * [`SignOgd`] — Algorithm 2, projected sign-descent with step
//!   `δ_m = B / √(2m)` and regret `≤ G·B·√(2M)` (Theorem 1), or
//!   `≤ G·H·B·√(2M)` with an estimated sign (Theorem 2);
//! * [`ExtendedSignOgd`] — Algorithm 3, which shrinks the search interval
//!   (and hence the step size) whenever the recently visited range of `k`
//!   becomes small enough, restarting the inner instance;
//! * [`DerivativeSignEstimator`] — the practical sign estimator of
//!   Section IV-E built from three single-sample loss evaluations per round
//!   (Eqs. (10)–(11)).
//!
//! The baselines the paper compares against are also provided:
//! [`ValueBasedDescent`] (derivative descent without the sign), [`Exp3`]
//! (non-stochastic multi-armed bandit over integer arms) and
//! [`ContinuousBandit`] (one-point gradient estimation), plus synthetic
//! convex cost environments and regret accounting ([`regret`]) used to check
//! the theorems empirically.
//!
//! # Example
//!
//! ```
//! use agsfl_online::{SearchInterval, SignOgd};
//!
//! // Optimal k is small: the derivative sign is +1 whenever k is above it.
//! let mut alg = SignOgd::new(SearchInterval::new(10.0, 1000.0), 800.0);
//! for _ in 0..200 {
//!     let sign = if alg.k() > 50.0 { 1 } else { -1 };
//!     alg.step(Some(sign));
//! }
//! assert!(alg.k() < 300.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandit;
mod controllers;
mod estimator;
mod exp3;
mod extended;
pub mod regret;
mod rounding;
mod sign_ogd;
pub mod snapshot;
mod value_based;

pub use bandit::ContinuousBandit;
pub use controllers::{BanditController, Exp3Controller, FixedK, PrecisionController};
pub use estimator::{DerivativeSignEstimator, EstimatorInputs};
pub use exp3::Exp3;
pub use extended::{ExtendedConfig, ExtendedSignOgd};
pub use rounding::stochastic_round;
pub use sign_ogd::{SearchInterval, SignOgd};
pub use snapshot::StateError;
pub use value_based::ValueBasedDescent;

/// A controller that proposes the sparsity degree `k` for the next round and
/// learns from per-round feedback.
///
/// All algorithms in this crate (the paper's and the baselines) implement this
/// trait so the experiment harness in `agsfl-core` can swap them freely.
pub trait KController: Send + std::fmt::Debug {
    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;

    /// The (possibly fractional) sparsity degree to use in the next round.
    /// Callers convert it to an integer with [`stochastic_round`].
    fn propose_k(&self) -> f64;

    /// The probe sparsity `k'` this controller wants evaluated alongside the
    /// next round, if it needs one for its feedback. For the sign-based
    /// algorithms this is `k_m − δ_m / 2` (Section IV-E).
    fn probe_k(&self) -> Option<f64>;

    /// Feeds back the outcome of the round that used [`KController::propose_k`].
    fn observe(&mut self, feedback: &RoundFeedback);

    /// The uplink precision tier this controller wants for the next round —
    /// the second axis of the 2-D `(k × precision)` action space.
    ///
    /// `None` means "no opinion": the harness leaves the configured wire
    /// codec untouched, so pure-`k` controllers keep their lossless
    /// bit-identity guarantees by default. Controllers that do adapt the
    /// precision (see [`PrecisionController`]) must derive the proposal
    /// deterministically from observed feedback so trajectories stay a pure
    /// function of the seed.
    fn propose_precision(&self) -> Option<agsfl_wire::Precision> {
        None
    }

    /// Serializes the controller's mutable state (bit-exact, including any
    /// internal RNG position) for checkpointing. Restoring the bytes into a
    /// freshly constructed controller with the same configuration via
    /// [`KController::restore_state`] must reproduce the exact decision
    /// sequence the snapshotted controller would have produced.
    fn save_state(&self) -> Vec<u8>;

    /// Restores state previously produced by [`KController::save_state`].
    ///
    /// The controller must already be constructed with the same configuration
    /// (search interval, arms, schedules) the snapshot was taken under; only
    /// the mutable state is transported. Malformed or mismatched bytes leave
    /// the controller untouched and return a [`StateError`].
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), StateError>;
}

/// Feedback given to a [`KController`] after each round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundFeedback {
    /// The integer `k` actually used after stochastic rounding.
    pub k_used: usize,
    /// The measured time of the round, `τ_m(k_m)`.
    pub round_time: f64,
    /// Average single-sample loss at the start-of-round weights, `L̃(w(m-1))`.
    pub probe_loss_prev: Option<f64>,
    /// Average single-sample loss after the `k_m` update, `L̃(w(m))`.
    pub probe_loss_now: Option<f64>,
    /// Average single-sample loss after the hypothetical `k'` update,
    /// `L̃(w'(m))`.
    pub probe_loss_alt: Option<f64>,
    /// Time one round would have taken with `k'`-element GS, `θ_m(k')`.
    pub probe_round_time: Option<f64>,
    /// The probe sparsity `k'` that was evaluated, if any.
    pub probe_k: Option<usize>,
    /// The drop in global training loss achieved by this round, when the
    /// harness tracks it (used by the bandit-style baselines to build their
    /// scalar cost).
    pub loss_decrease: Option<f64>,
}

impl RoundFeedback {
    /// Creates feedback carrying only the round time (sufficient for the
    /// bandit baselines when no loss tracking is available).
    pub fn time_only(k_used: usize, round_time: f64) -> Self {
        Self {
            k_used,
            round_time,
            probe_loss_prev: None,
            probe_loss_now: None,
            probe_loss_alt: None,
            probe_round_time: None,
            probe_k: None,
            loss_decrease: None,
        }
    }
}
