//! Algorithm 2: online learning from the sign of the derivative.

use serde::{Deserialize, Serialize};

use crate::snapshot::{StateError, StateReader, StateWriter};

/// The closed search interval `K = [kmin, kmax]` for the sparsity degree.
///
/// # Examples
///
/// ```
/// use agsfl_online::SearchInterval;
///
/// let interval = SearchInterval::new(10.0, 100.0);
/// assert_eq!(interval.width(), 90.0);
/// assert_eq!(interval.project(5.0), 10.0);
/// assert_eq!(interval.project(55.0), 55.0);
/// assert_eq!(interval.project(1e9), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchInterval {
    min: f64,
    max: f64,
}

impl SearchInterval {
    /// Creates the interval `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `min > max` or `min < 1`.
    pub fn new(min: f64, max: f64) -> Self {
        assert!(min.is_finite() && max.is_finite(), "bounds must be finite");
        assert!(min >= 1.0, "kmin must be at least 1 (got {min})");
        assert!(min <= max, "kmin {min} must not exceed kmax {max}");
        Self { min, max }
    }

    /// Lower bound `kmin`.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound `kmax`.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Width `B = kmax − kmin`.
    pub fn width(&self) -> f64 {
        self.max - self.min
    }

    /// Projection `P_K(k)` onto the interval.
    pub fn project(&self, k: f64) -> f64 {
        k.clamp(self.min, self.max)
    }

    /// Returns `true` if `k` lies within the interval (inclusive).
    pub fn contains(&self, k: f64) -> bool {
        (self.min..=self.max).contains(&k)
    }

    pub(crate) fn write_state(&self, w: &mut StateWriter) {
        w.f64(self.min);
        w.f64(self.max);
    }

    pub(crate) fn read_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let min = r.f64()?;
        let max = r.f64()?;
        if !min.is_finite() || !max.is_finite() || min < 1.0 || min > max {
            return Err(StateError::Invalid("search interval"));
        }
        Ok(Self { min, max })
    }
}

/// Algorithm 2 of the paper: projected descent on the estimated derivative
/// *sign* with step size `δ_m = B / √(2m)`.
///
/// The regret against the best fixed `k*` in hindsight is bounded by
/// `G·B·√(2M)` with exact signs (Theorem 1) and `G·H·B·√(2M)` with estimated
/// signs satisfying Eqs. (6)–(7) (Theorem 2).
///
/// # Examples
///
/// ```
/// use agsfl_online::{SearchInterval, SignOgd};
///
/// let mut alg = SignOgd::new(SearchInterval::new(1.0, 101.0), 90.0);
/// // Step size of round 1 is B/sqrt(2) ≈ 70.7; a positive sign moves k down.
/// let k2 = alg.step(Some(1));
/// assert!(k2 < 90.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignOgd {
    interval: SearchInterval,
    k: f64,
    /// Number of sign observations consumed so far (the `m` in `δ_m`).
    m: usize,
}

impl SignOgd {
    /// Creates the algorithm with search interval `K` and initial `k_1`.
    ///
    /// The initial value is projected onto the interval.
    pub fn new(interval: SearchInterval, initial_k: f64) -> Self {
        Self {
            interval,
            k: interval.project(initial_k),
            m: 0,
        }
    }

    /// The current (continuous) decision `k_m`.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The search interval `K`.
    pub fn interval(&self) -> &SearchInterval {
        &self.interval
    }

    /// Number of sign observations consumed so far.
    pub fn rounds(&self) -> usize {
        self.m
    }

    /// The step size `δ_m = B / √(2m)` that will be applied to the *next*
    /// observed sign (with `m` counted from 1).
    pub fn next_step_size(&self) -> f64 {
        let m = (self.m + 1) as f64;
        self.interval.width() / (2.0 * m).sqrt()
    }

    /// The probe sparsity `k'_m = k_m − δ_m / 2` used by the derivative-sign
    /// estimator (Section IV-E), clamped to stay at least 1.
    pub fn probe_k(&self) -> f64 {
        (self.k - self.next_step_size() / 2.0).max(1.0)
    }

    /// Consumes one (estimated) derivative sign and updates
    /// `k_{m+1} = P_K(k_m − δ_m · s_m)`.
    ///
    /// Passing `None` means the sign was unavailable this round (e.g. the
    /// single-sample losses did not decrease); the paper keeps `k` unchanged
    /// in that case and the round does not advance the step-size schedule.
    ///
    /// Returns the new `k`.
    pub fn step(&mut self, sign: Option<i8>) -> f64 {
        let Some(sign) = sign else {
            return self.k;
        };
        debug_assert!((-1..=1).contains(&sign), "sign must be in {{-1, 0, 1}}");
        self.m += 1;
        let delta = self.interval.width() / (2.0 * self.m as f64).sqrt();
        self.k = self.interval.project(self.k - delta * sign as f64);
        self.k
    }

    pub(crate) fn write_state(&self, w: &mut StateWriter) {
        self.interval.write_state(w);
        w.f64(self.k);
        w.usize(self.m);
    }

    pub(crate) fn read_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let interval = SearchInterval::read_state(r)?;
        let k = r.f64()?;
        if !interval.contains(k) {
            return Err(StateError::Invalid("k outside interval"));
        }
        let m = r.usize()?;
        self.interval = interval;
        self.k = k;
        self.m = m;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interval_validation() {
        let i = SearchInterval::new(2.0, 10.0);
        assert_eq!(i.min(), 2.0);
        assert_eq!(i.max(), 10.0);
        assert!(i.contains(2.0) && i.contains(10.0));
        assert!(!i.contains(1.0));
    }

    #[test]
    #[should_panic]
    fn inverted_interval_panics() {
        let _ = SearchInterval::new(10.0, 2.0);
    }

    #[test]
    #[should_panic]
    fn kmin_below_one_panics() {
        let _ = SearchInterval::new(0.5, 2.0);
    }

    #[test]
    fn initial_k_is_projected() {
        let alg = SignOgd::new(SearchInterval::new(10.0, 20.0), 100.0);
        assert_eq!(alg.k(), 20.0);
    }

    #[test]
    fn step_sizes_decay_as_inverse_sqrt() {
        let alg = SignOgd::new(SearchInterval::new(1.0, 101.0), 50.0);
        let b = 100.0f64;
        assert!((alg.next_step_size() - b / 2.0f64.sqrt()).abs() < 1e-12);
        let mut alg = alg;
        alg.step(Some(0));
        assert!((alg.next_step_size() - b / 4.0f64.sqrt()).abs() < 1e-12);
        alg.step(Some(0));
        assert!((alg.next_step_size() - b / 6.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn positive_sign_decreases_k_and_vice_versa() {
        let mut alg = SignOgd::new(SearchInterval::new(1.0, 1001.0), 500.0);
        let before = alg.k();
        alg.step(Some(1));
        assert!(alg.k() < before);
        let mid = alg.k();
        alg.step(Some(-1));
        assert!(alg.k() > mid);
    }

    #[test]
    fn zero_sign_keeps_k_but_advances_schedule() {
        let mut alg = SignOgd::new(SearchInterval::new(1.0, 101.0), 40.0);
        let s1 = alg.next_step_size();
        alg.step(Some(0));
        assert_eq!(alg.k(), 40.0);
        assert!(alg.next_step_size() < s1);
    }

    #[test]
    fn missing_sign_freezes_everything() {
        let mut alg = SignOgd::new(SearchInterval::new(1.0, 101.0), 40.0);
        let s1 = alg.next_step_size();
        alg.step(None);
        assert_eq!(alg.k(), 40.0);
        assert_eq!(alg.next_step_size(), s1);
        assert_eq!(alg.rounds(), 0);
    }

    #[test]
    fn converges_to_low_k_when_sign_always_positive() {
        let mut alg = SignOgd::new(SearchInterval::new(1.0, 10_001.0), 9_000.0);
        for _ in 0..500 {
            alg.step(Some(1));
        }
        assert!(alg.k() < 2_000.0, "k = {}", alg.k());
    }

    #[test]
    fn tracks_an_interior_optimum() {
        // Simulate a convex cost with minimum at k* = 300: sign is +1 above,
        // -1 below.
        let k_star = 300.0;
        let mut alg = SignOgd::new(SearchInterval::new(1.0, 2_001.0), 1_800.0);
        for _ in 0..2_000 {
            let sign = if alg.k() > k_star { 1 } else { -1 };
            alg.step(Some(sign));
        }
        assert!((alg.k() - k_star).abs() < 150.0, "k = {}", alg.k());
    }

    #[test]
    fn probe_k_is_half_step_below_k() {
        let alg = SignOgd::new(SearchInterval::new(1.0, 101.0), 60.0);
        let expected = 60.0 - alg.next_step_size() / 2.0;
        assert!((alg.probe_k() - expected).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_k_always_stays_in_interval(
            signs in proptest::collection::vec(-1i8..=1, 1..200),
            start in 1.0f64..500.0,
        ) {
            let interval = SearchInterval::new(5.0, 400.0);
            let mut alg = SignOgd::new(interval, start);
            for s in signs {
                let k = alg.step(Some(s));
                prop_assert!(interval.contains(k));
            }
        }
    }
}
