//! Synthetic cost environments and regret accounting.
//!
//! Theorems 1 and 2 of the paper bound the regret of Algorithm 2 by
//! `G·B·√(2M)` (exact signs) and `G·H·B·√(2M)` (estimated signs). The types
//! in this module generate non-stochastic convex cost sequences satisfying
//! Assumption 2 so that the bounds can be checked empirically — this is the
//! "regret_bounds" benchmark of the reproduction (experiment E7 in
//! DESIGN.md).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::sign_ogd::{SearchInterval, SignOgd};

/// A sequence of convex per-round costs `τ_m(k) = a_m · |k − k*| + c_m`
/// sharing the same minimizer `k*` (Item c of Assumption 2), with slopes
/// bounded by `G = max_m a_m` (Item b) and convexity by construction
/// (Item a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticCostEnv {
    k_star: f64,
    slopes: Vec<f64>,
    offsets: Vec<f64>,
}

impl SyntheticCostEnv {
    /// Generates an environment with `rounds` cost functions, minimizer
    /// `k_star`, and slopes drawn uniformly from `[slope_min, slope_max]`.
    ///
    /// # Panics
    ///
    /// Panics if the slope range is invalid or non-positive.
    pub fn generate(rounds: usize, k_star: f64, slope_min: f64, slope_max: f64, seed: u64) -> Self {
        assert!(
            0.0 < slope_min && slope_min <= slope_max,
            "invalid slope range"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let slopes = (0..rounds)
            .map(|_| rng.gen_range(slope_min..=slope_max))
            .collect();
        let offsets = (0..rounds).map(|_| rng.gen_range(0.0..1.0)).collect();
        Self {
            k_star,
            slopes,
            offsets,
        }
    }

    /// Number of rounds in the environment.
    pub fn rounds(&self) -> usize {
        self.slopes.len()
    }

    /// The common minimizer `k*`.
    pub fn k_star(&self) -> f64 {
        self.k_star
    }

    /// The derivative bound `G` of this environment.
    pub fn g_bound(&self) -> f64 {
        self.slopes.iter().cloned().fold(0.0, f64::max)
    }

    /// The cost `τ_m(k)` of round `m` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `m >= rounds()`.
    pub fn cost(&self, m: usize, k: f64) -> f64 {
        self.slopes[m] * (k - self.k_star).abs() + self.offsets[m]
    }

    /// The exact derivative sign of `τ_m` at `k`.
    pub fn derivative_sign(&self, m: usize, k: f64) -> i8 {
        let _ = self.slopes[m];
        if k > self.k_star {
            1
        } else if k < self.k_star {
            -1
        } else {
            0
        }
    }

    /// A noisy sign oracle that flips the exact sign with probability
    /// `flip_prob < 0.5`. Such an oracle satisfies Eqs. (6)–(7) with
    /// `H = 1 / (1 − 2·flip_prob)`.
    pub fn noisy_sign<R: Rng + ?Sized>(&self, m: usize, k: f64, flip_prob: f64, rng: &mut R) -> i8 {
        assert!(
            (0.0..0.5).contains(&flip_prob),
            "flip_prob must be in [0, 0.5)"
        );
        let exact = self.derivative_sign(m, k);
        if rng.gen::<f64>() < flip_prob {
            -exact
        } else {
            exact
        }
    }
}

/// The outcome of running an online algorithm against a synthetic
/// environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretOutcome {
    /// Cumulative regret after each round.
    pub cumulative_regret: Vec<f64>,
    /// The theoretical bound `G·H·B·√(2m)` after each round (with `H = 1`
    /// when exact signs were used).
    pub bound: Vec<f64>,
    /// The sequence of `k` values played.
    pub k_sequence: Vec<f64>,
}

impl RegretOutcome {
    /// Final cumulative regret.
    pub fn final_regret(&self) -> f64 {
        self.cumulative_regret.last().copied().unwrap_or(0.0)
    }

    /// Final theoretical bound.
    pub fn final_bound(&self) -> f64 {
        self.bound.last().copied().unwrap_or(0.0)
    }

    /// Returns `true` if the empirical regret stays at or below the bound in
    /// every round.
    pub fn within_bound(&self) -> bool {
        self.cumulative_regret
            .iter()
            .zip(self.bound.iter())
            .all(|(r, b)| r <= &(b + 1e-9))
    }

    /// Average regret per round at the end of the run (should approach zero
    /// for a no-regret algorithm).
    pub fn average_regret(&self) -> f64 {
        if self.cumulative_regret.is_empty() {
            0.0
        } else {
            self.final_regret() / self.cumulative_regret.len() as f64
        }
    }
}

/// Runs Algorithm 2 against a synthetic environment using exact derivative
/// signs and returns the regret trajectory together with Theorem 1's bound.
pub fn run_sign_ogd_exact(
    env: &SyntheticCostEnv,
    interval: SearchInterval,
    initial_k: f64,
) -> RegretOutcome {
    run_sign_ogd_with_oracle(env, interval, initial_k, 1.0, |env, m, k, _| {
        env.derivative_sign(m, k)
    })
}

/// Runs Algorithm 2 with a noisy sign oracle flipping the sign with
/// probability `flip_prob`, and returns the regret trajectory together with
/// Theorem 2's bound (using `H = 1/(1 − 2·flip_prob)`).
pub fn run_sign_ogd_noisy(
    env: &SyntheticCostEnv,
    interval: SearchInterval,
    initial_k: f64,
    flip_prob: f64,
    seed: u64,
) -> RegretOutcome {
    let h = 1.0 / (1.0 - 2.0 * flip_prob);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    run_sign_ogd_with_oracle(env, interval, initial_k, h, move |env, m, k, _| {
        env.noisy_sign(m, k, flip_prob, &mut rng)
    })
}

fn run_sign_ogd_with_oracle(
    env: &SyntheticCostEnv,
    interval: SearchInterval,
    initial_k: f64,
    h: f64,
    mut oracle: impl FnMut(&SyntheticCostEnv, usize, f64, &SearchInterval) -> i8,
) -> RegretOutcome {
    let mut alg = SignOgd::new(interval, initial_k);
    let g = env.g_bound();
    let b = interval.width();
    let k_star_proj = interval.project(env.k_star());
    let mut cumulative = 0.0f64;
    let mut cumulative_regret = Vec::with_capacity(env.rounds());
    let mut bound = Vec::with_capacity(env.rounds());
    let mut k_sequence = Vec::with_capacity(env.rounds());
    for m in 0..env.rounds() {
        let k = alg.k();
        k_sequence.push(k);
        cumulative += env.cost(m, k) - env.cost(m, k_star_proj);
        cumulative_regret.push(cumulative);
        bound.push(g * h * b * (2.0 * (m + 1) as f64).sqrt());
        let sign = oracle(env, m, k, &interval);
        alg.step(Some(sign));
    }
    RegretOutcome {
        cumulative_regret,
        bound,
        k_sequence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn env(rounds: usize, seed: u64) -> SyntheticCostEnv {
        SyntheticCostEnv::generate(rounds, 300.0, 0.5, 1.5, seed)
    }

    #[test]
    fn cost_is_minimized_at_k_star() {
        let e = env(10, 0);
        for m in 0..10 {
            assert!(e.cost(m, 300.0) <= e.cost(m, 200.0));
            assert!(e.cost(m, 300.0) <= e.cost(m, 400.0));
        }
    }

    #[test]
    fn derivative_sign_matches_geometry() {
        let e = env(5, 1);
        assert_eq!(e.derivative_sign(0, 400.0), 1);
        assert_eq!(e.derivative_sign(0, 200.0), -1);
        assert_eq!(e.derivative_sign(0, 300.0), 0);
    }

    #[test]
    fn g_bound_dominates_all_slopes() {
        let e = env(50, 2);
        let g = e.g_bound();
        assert!((0.5..=1.5).contains(&g));
    }

    #[test]
    fn exact_sign_regret_is_within_theorem_1_bound() {
        let e = env(2_000, 3);
        let interval = SearchInterval::new(1.0, 1001.0);
        let outcome = run_sign_ogd_exact(&e, interval, 900.0);
        assert!(outcome.within_bound(), "regret exceeded Theorem 1 bound");
        // Sub-linear: the average regret at the end is much smaller than the
        // average over the first 100 rounds.
        let early = outcome.cumulative_regret[99] / 100.0;
        assert!(outcome.average_regret() < early * 0.5);
    }

    #[test]
    fn noisy_sign_regret_is_within_theorem_2_bound() {
        let e = env(2_000, 4);
        let interval = SearchInterval::new(1.0, 1001.0);
        let outcome = run_sign_ogd_noisy(&e, interval, 900.0, 0.2, 11);
        assert!(outcome.within_bound(), "regret exceeded Theorem 2 bound");
    }

    #[test]
    fn k_sequence_approaches_k_star() {
        let e = env(3_000, 5);
        let interval = SearchInterval::new(1.0, 1001.0);
        let outcome = run_sign_ogd_exact(&e, interval, 1_000.0);
        let tail = &outcome.k_sequence[outcome.k_sequence.len() - 50..];
        let avg: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((avg - 300.0).abs() < 60.0, "tail average {avg}");
    }

    #[test]
    fn noisy_oracle_respects_flip_probability() {
        let e = env(1, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut flips = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if e.noisy_sign(0, 500.0, 0.3, &mut rng) != e.derivative_sign(0, 500.0) {
                flips += 1;
            }
        }
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "flip rate {rate}");
    }

    #[test]
    #[should_panic]
    fn invalid_flip_probability_panics() {
        let e = env(1, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = e.noisy_sign(0, 100.0, 0.6, &mut rng);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_regret_always_within_bound(
            seed in 0u64..200,
            k_star in 50.0f64..950.0,
            initial in 1.0f64..1000.0,
        ) {
            let e = SyntheticCostEnv::generate(500, k_star, 0.2, 2.0, seed);
            let interval = SearchInterval::new(1.0, 1001.0);
            let outcome = run_sign_ogd_exact(&e, interval, initial);
            prop_assert!(outcome.within_bound());
        }
    }
}
