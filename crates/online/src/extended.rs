//! Algorithm 3: extended online learning with shrinking search intervals.

use serde::{Deserialize, Serialize};

use crate::sign_ogd::SearchInterval;
use crate::snapshot::{StateError, StateReader, StateWriter};

/// Configuration of [`ExtendedSignOgd`] (Algorithm 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtendedConfig {
    /// Absolute lower bound `kmin` of the search range.
    pub k_min: f64,
    /// Absolute upper bound `kmax` of the search range.
    pub k_max: f64,
    /// Interval inflation coefficient `α ≥ 1`: the candidate new interval is
    /// `[k'min / α, k'max · α]` clipped to `[kmin, kmax]`. The paper uses 1.5.
    pub alpha: f64,
    /// Update window `Mu`: how many rounds of observed `k` values are
    /// collected before considering an interval shrink. The paper uses 20.
    pub update_window: usize,
    /// Initial `k_1`.
    pub initial_k: f64,
}

impl ExtendedConfig {
    /// Paper defaults for a model of dimension `dim`: `kmin = 0.002·D`,
    /// `kmax = D`, `α = 1.5`, `Mu = 20`, `k_1 = D/2`.
    pub fn paper_defaults(dim: usize) -> Self {
        let d = dim as f64;
        Self {
            k_min: (0.002 * d).max(1.0),
            k_max: d,
            alpha: 1.5,
            update_window: 20,
            initial_k: d / 2.0,
        }
    }

    fn validate(&self) {
        assert!(
            self.k_min >= 1.0 && self.k_min <= self.k_max,
            "invalid k range"
        );
        assert!(self.alpha >= 1.0, "alpha must be at least 1");
        assert!(self.update_window > 0, "update window must be positive");
    }
}

/// Algorithm 3 of the paper: multiple restarted instances of Algorithm 2 on
/// progressively smaller search intervals.
///
/// Every `Mu` consumed signs the algorithm looks at the range of `k` values
/// visited inside the window, inflates it by `α`, and — if the resulting
/// width `B'` is below `(√2 − 1)·B` **and** the current instance has run at
/// least as long as the previous one — restarts a fresh instance of
/// Algorithm 2 on the smaller interval (Lines 8–15 of Algorithm 3). The
/// restart resets the step-size schedule, so `k` settles faster and
/// fluctuates less, which is what Fig. 6 of the paper demonstrates.
///
/// # Examples
///
/// ```
/// use agsfl_online::{ExtendedConfig, ExtendedSignOgd};
///
/// let mut alg = ExtendedSignOgd::new(ExtendedConfig::paper_defaults(100_000));
/// for _ in 0..100 {
///     let sign = if alg.k() > 500.0 { 1 } else { -1 };
///     alg.step(Some(sign));
/// }
/// assert!(alg.k() < 100_000.0 / 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtendedSignOgd {
    config: ExtendedConfig,
    /// Current instance's search interval `K`.
    interval: SearchInterval,
    /// Current continuous decision `k_m`.
    k: f64,
    /// Signs consumed by the current instance (the `m − m0` of Algorithm 3).
    instance_rounds: usize,
    /// Length (in consumed signs) of the previous instance, `M'`.
    previous_instance_rounds: usize,
    /// Signs consumed since the window statistics were last reset, `n`.
    window_count: usize,
    /// Minimum `k` observed in the current window, `k'min`.
    window_min: f64,
    /// Maximum `k` observed in the current window, `k'max`.
    window_max: f64,
    /// Number of interval shrinks performed so far (for diagnostics).
    restarts: usize,
}

impl ExtendedSignOgd {
    /// Creates the algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ExtendedConfig) -> Self {
        config.validate();
        let interval = SearchInterval::new(config.k_min, config.k_max);
        Self {
            config,
            interval,
            k: interval.project(config.initial_k),
            instance_rounds: 0,
            previous_instance_rounds: 0,
            window_count: 0,
            window_min: f64::INFINITY,
            window_max: 0.0,
            restarts: 0,
        }
    }

    /// The current (continuous) decision `k_m`.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The current instance's search interval.
    pub fn interval(&self) -> &SearchInterval {
        &self.interval
    }

    /// How many times the search interval has been shrunk so far.
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// The configuration this instance was created with.
    pub fn config(&self) -> &ExtendedConfig {
        &self.config
    }

    /// The step size `δ_m = B / √(2(m − m0))` that will be applied to the
    /// next observed sign (instance-local round counted from 1).
    pub fn next_step_size(&self) -> f64 {
        let m = (self.instance_rounds + 1) as f64;
        self.interval.width() / (2.0 * m).sqrt()
    }

    /// The probe sparsity `k'_m = k_m − δ_m / 2`, clamped to at least 1.
    pub fn probe_k(&self) -> f64 {
        (self.k - self.next_step_size() / 2.0).max(1.0)
    }

    /// Consumes one (estimated) derivative sign; `None` keeps everything
    /// unchanged (the paper skips Lines 6–7 when the estimate is
    /// unavailable). Returns the new `k`.
    pub fn step(&mut self, sign: Option<i8>) -> f64 {
        let Some(sign) = sign else {
            return self.k;
        };
        debug_assert!((-1..=1).contains(&sign), "sign must be in {{-1, 0, 1}}");

        // Line 4: k_{m+1} = P_K(k_m − δ_m · s_m).
        self.instance_rounds += 1;
        let delta = self.interval.width() / (2.0 * self.instance_rounds as f64).sqrt();
        self.k = self.interval.project(self.k - delta * sign as f64);

        // Lines 6–7: window statistics.
        self.window_min = self.window_min.min(self.k);
        self.window_max = self.window_max.max(self.k);
        self.window_count += 1;

        // Lines 8–15: consider shrinking the interval.
        if self.window_count >= self.config.update_window {
            let candidate_max = (self.window_max * self.config.alpha).min(self.config.k_max);
            let candidate_min = (self.window_min / self.config.alpha).max(self.config.k_min);
            let b_new = candidate_max - candidate_min;
            let shrink_threshold = (std::f64::consts::SQRT_2 - 1.0) * self.interval.width();
            if b_new < shrink_threshold && self.instance_rounds >= self.previous_instance_rounds {
                self.interval = SearchInterval::new(candidate_min.max(1.0), candidate_max.max(1.0));
                self.k = self.interval.project(self.k);
                self.previous_instance_rounds = self.instance_rounds;
                self.instance_rounds = 0;
                self.restarts += 1;
            }
            self.window_count = 0;
            self.window_min = f64::INFINITY;
            self.window_max = 0.0;
        }
        self.k
    }

    pub(crate) fn write_state(&self, w: &mut StateWriter) {
        self.interval.write_state(w);
        w.f64(self.k);
        w.usize(self.instance_rounds);
        w.usize(self.previous_instance_rounds);
        w.usize(self.window_count);
        w.f64(self.window_min);
        w.f64(self.window_max);
        w.usize(self.restarts);
    }

    pub(crate) fn read_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let interval = SearchInterval::read_state(r)?;
        let k = r.f64()?;
        if !interval.contains(k) {
            return Err(StateError::Invalid("k outside interval"));
        }
        let instance_rounds = r.usize()?;
        let previous_instance_rounds = r.usize()?;
        let window_count = r.usize()?;
        let window_min = r.f64()?;
        let window_max = r.f64()?;
        let restarts = r.usize()?;
        self.interval = interval;
        self.k = k;
        self.instance_rounds = instance_rounds;
        self.previous_instance_rounds = previous_instance_rounds;
        self.window_count = window_count;
        self.window_min = window_min;
        self.window_max = window_max;
        self.restarts = restarts;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn config(dim: usize) -> ExtendedConfig {
        ExtendedConfig::paper_defaults(dim)
    }

    #[test]
    fn paper_defaults_match_section_v() {
        let cfg = config(400_000);
        assert!((cfg.k_min - 800.0).abs() < 1e-9);
        assert_eq!(cfg.k_max, 400_000.0);
        assert_eq!(cfg.alpha, 1.5);
        assert_eq!(cfg.update_window, 20);
    }

    #[test]
    fn k_stays_within_absolute_bounds() {
        let mut alg = ExtendedSignOgd::new(config(10_000));
        for i in 0..500 {
            let sign = if i % 3 == 0 { -1 } else { 1 };
            let k = alg.step(Some(sign));
            assert!(k >= alg.config().k_min - 1e-9);
            assert!(k <= alg.config().k_max + 1e-9);
        }
    }

    #[test]
    fn interval_shrinks_when_signs_stabilize() {
        let mut alg = ExtendedSignOgd::new(config(100_000));
        let initial_width = alg.interval().width();
        // Constant optimum at a small k: the sign is +1 until k gets there,
        // after which it oscillates in a narrow band.
        for _ in 0..400 {
            let sign = if alg.k() > 600.0 { 1 } else { -1 };
            alg.step(Some(sign));
        }
        assert!(alg.restarts() > 0, "expected at least one interval shrink");
        assert!(alg.interval().width() < initial_width * 0.5);
    }

    #[test]
    fn shrunken_interval_reduces_fluctuation_compared_to_algorithm_2() {
        use crate::sign_ogd::SignOgd;
        let dim = 100_000usize;
        let k_star = 500.0;
        let mut alg3 = ExtendedSignOgd::new(config(dim));
        let mut alg2 = SignOgd::new(
            SearchInterval::new(config(dim).k_min, config(dim).k_max),
            config(dim).initial_k,
        );
        let mut trace3 = Vec::new();
        let mut trace2 = Vec::new();
        for _ in 0..600 {
            let s3 = if alg3.k() > k_star { 1 } else { -1 };
            trace3.push(alg3.step(Some(s3)));
            let s2 = if alg2.k() > k_star { 1 } else { -1 };
            trace2.push(alg2.step(Some(s2)));
        }
        // Compare the spread of k over the last 100 rounds.
        let spread = |trace: &[f64]| {
            let tail = &trace[trace.len() - 100..];
            let max = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
            max - min
        };
        assert!(
            spread(&trace3) < spread(&trace2),
            "Algorithm 3 should fluctuate less: {} vs {}",
            spread(&trace3),
            spread(&trace2)
        );
    }

    #[test]
    fn missing_sign_is_a_noop() {
        let mut alg = ExtendedSignOgd::new(config(1_000));
        let before = alg.clone();
        alg.step(None);
        assert_eq!(alg, before);
    }

    #[test]
    fn restart_requires_current_instance_at_least_as_long_as_previous() {
        // After the first restart, the very next window cannot trigger another
        // restart unless it has run at least as many rounds as the first
        // instance did.
        let mut alg = ExtendedSignOgd::new(config(50_000));
        let mut restart_rounds = Vec::new();
        let mut last_restarts = 0;
        for m in 1..=800 {
            let sign = if alg.k() > 300.0 { 1 } else { -1 };
            alg.step(Some(sign));
            if alg.restarts() > last_restarts {
                restart_rounds.push(m);
                last_restarts = alg.restarts();
            }
        }
        // Gaps between consecutive restarts are non-decreasing in instance
        // length terms: each instance must run at least as long as the prior.
        for w in restart_rounds.windows(2) {
            assert!(w[1] - w[0] >= 1);
        }
    }

    #[test]
    #[should_panic]
    fn invalid_alpha_panics() {
        let mut cfg = config(100);
        cfg.alpha = 0.5;
        let _ = ExtendedSignOgd::new(cfg);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_k_never_leaves_absolute_range(
            signs in proptest::collection::vec(-1i8..=1, 1..300),
            dim in 100usize..100_000,
        ) {
            let cfg = config(dim);
            let mut alg = ExtendedSignOgd::new(cfg);
            for s in signs {
                let k = alg.step(Some(s));
                prop_assert!(k >= cfg.k_min - 1e-9 && k <= cfg.k_max + 1e-9);
            }
        }
    }
}
