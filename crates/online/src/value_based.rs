//! Value-based derivative descent baseline.

use serde::{Deserialize, Serialize};

use crate::sign_ogd::SearchInterval;
use crate::snapshot::{StateError, StateReader, StateWriter};

/// Online gradient (derivative) descent that uses the *value* of the
/// estimated derivative rather than only its sign — the first baseline of
/// Fig. 5 ("Value-based gradient/derivative descent").
///
/// The update is `k_{m+1} = P_K(k_m − δ_m · d̂_m)` with the same step size
/// schedule `δ_m = B/√(2m)` as Algorithm 2 and the derivative estimate of
/// Section IV-E. Because `d̂_m` is a noisy ratio of time and loss
/// differences, its magnitude can vary over orders of magnitude, which is why
/// the paper's sign-only update behaves much better in practice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueBasedDescent {
    interval: SearchInterval,
    k: f64,
    m: usize,
}

impl ValueBasedDescent {
    /// Creates the baseline with search interval `K` and initial `k_1`.
    pub fn new(interval: SearchInterval, initial_k: f64) -> Self {
        Self {
            interval,
            k: interval.project(initial_k),
            m: 0,
        }
    }

    /// The current (continuous) decision `k_m`.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The search interval.
    pub fn interval(&self) -> &SearchInterval {
        &self.interval
    }

    /// The step size that will scale the next derivative estimate.
    pub fn next_step_size(&self) -> f64 {
        self.interval.width() / (2.0 * (self.m + 1) as f64).sqrt()
    }

    /// The probe sparsity `k' = k − δ/2` used to estimate the derivative.
    pub fn probe_k(&self) -> f64 {
        (self.k - self.next_step_size() / 2.0).max(1.0)
    }

    /// Consumes one derivative estimate (`None` leaves `k` unchanged) and
    /// returns the new `k`.
    pub fn step(&mut self, derivative: Option<f64>) -> f64 {
        let Some(derivative) = derivative else {
            return self.k;
        };
        if !derivative.is_finite() {
            return self.k;
        }
        self.m += 1;
        let delta = self.interval.width() / (2.0 * self.m as f64).sqrt();
        self.k = self.interval.project(self.k - delta * derivative);
        self.k
    }

    pub(crate) fn write_state(&self, w: &mut StateWriter) {
        self.interval.write_state(w);
        w.f64(self.k);
        w.usize(self.m);
    }

    pub(crate) fn read_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let interval = SearchInterval::read_state(r)?;
        let k = r.f64()?;
        if !interval.contains(k) {
            return Err(StateError::Invalid("k outside interval"));
        }
        let m = r.usize()?;
        self.interval = interval;
        self.k = k;
        self.m = m;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_scales_with_derivative_value() {
        let interval = SearchInterval::new(1.0, 1001.0);
        let mut small = ValueBasedDescent::new(interval, 500.0);
        let mut large = ValueBasedDescent::new(interval, 500.0);
        small.step(Some(0.001));
        large.step(Some(0.1));
        assert!(large.k() < small.k());
        assert!(small.k() < 500.0);
    }

    #[test]
    fn projection_keeps_k_in_interval() {
        let interval = SearchInterval::new(10.0, 100.0);
        let mut alg = ValueBasedDescent::new(interval, 50.0);
        alg.step(Some(1e9));
        assert_eq!(alg.k(), 10.0);
        alg.step(Some(-1e9));
        assert_eq!(alg.k(), 100.0);
    }

    #[test]
    fn missing_or_nonfinite_derivative_is_noop() {
        let interval = SearchInterval::new(1.0, 100.0);
        let mut alg = ValueBasedDescent::new(interval, 40.0);
        alg.step(None);
        assert_eq!(alg.k(), 40.0);
        alg.step(Some(f64::NAN));
        assert_eq!(alg.k(), 40.0);
        assert_eq!(alg.next_step_size(), 99.0 / 2.0f64.sqrt());
    }

    #[test]
    fn probe_is_below_current_k() {
        let alg = ValueBasedDescent::new(SearchInterval::new(1.0, 101.0), 60.0);
        assert!(alg.probe_k() < alg.k());
        assert!(alg.probe_k() >= 1.0);
    }

    #[test]
    fn huge_derivatives_cause_oscillation_between_bounds() {
        // This is exactly the failure mode that motivates the sign-based
        // update: with derivative magnitudes ≫ 1 the iterate ping-pongs
        // between the interval end points.
        let interval = SearchInterval::new(1.0, 1001.0);
        let mut alg = ValueBasedDescent::new(interval, 500.0);
        let mut visited = Vec::new();
        for m in 0..20 {
            let d = if m % 2 == 0 { 50.0 } else { -50.0 };
            visited.push(alg.step(Some(d)));
        }
        assert!(visited.contains(&1.0));
        assert!(visited.contains(&1001.0));
    }
}
