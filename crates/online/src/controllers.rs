//! [`KController`] implementations wiring the algorithms to round feedback.
//!
//! The experiment harness in `agsfl-core` speaks only the [`KController`]
//! interface: it asks for the next `k` (and probe `k'`), runs the FL round,
//! and feeds back a [`RoundFeedback`]. This module adapts every algorithm in
//! this crate to that interface:
//!
//! * [`SignOgd`], [`ExtendedSignOgd`] and [`ValueBasedDescent`] build their
//!   derivative(-sign) estimate from the probe losses via
//!   [`DerivativeSignEstimator`];
//! * [`Exp3Controller`] and [`BanditController`] convert the round outcome
//!   into a scalar cost — the time spent per unit of single-sample loss
//!   decrease, the empirical analogue of `t(k, l)` — and feed it to EXP3 /
//!   the one-point bandit.

use agsfl_wire::Precision;
use serde::{Deserialize, Serialize};

use crate::bandit::ContinuousBandit;
use crate::estimator::{DerivativeSignEstimator, EstimatorInputs};
use crate::exp3::Exp3;
use crate::extended::ExtendedSignOgd;
use crate::sign_ogd::SignOgd;
use crate::snapshot::{StateError, StateReader, StateWriter};
use crate::value_based::ValueBasedDescent;
use crate::{KController, RoundFeedback};

/// One-byte controller-type tags guarding [`KController::restore_state`]
/// against snapshots taken from a different controller.
const TAG_SIGN_OGD: u8 = 1;
const TAG_EXTENDED: u8 = 2;
const TAG_VALUE_BASED: u8 = 3;
const TAG_FIXED_K: u8 = 4;
const TAG_EXP3: u8 = 5;
const TAG_BANDIT: u8 = 6;
const TAG_PRECISION: u8 = 7;

/// Builds the estimator inputs from a round's feedback, if the probe data is
/// complete.
fn estimator_inputs(feedback: &RoundFeedback) -> Option<EstimatorInputs> {
    Some(EstimatorInputs {
        k: feedback.k_used as f64,
        k_alt: feedback.probe_k? as f64,
        loss_prev: feedback.probe_loss_prev?,
        loss_now: feedback.probe_loss_now?,
        loss_alt: feedback.probe_loss_alt?,
        round_time: feedback.round_time,
        alt_round_time: feedback.probe_round_time?,
    })
}

/// Scalar per-round cost used by the bandit-style baselines: normalized time
/// spent per unit of loss decrease. Falls back to the raw round time when no
/// loss information is available, and reports `None` when the loss did not
/// decrease (those rounds carry no usable signal).
fn round_cost(feedback: &RoundFeedback) -> Option<f64> {
    let decrease = feedback
        .loss_decrease
        .or_else(|| Some(feedback.probe_loss_prev? - feedback.probe_loss_now?));
    match decrease {
        Some(d) if d > 1e-9 => Some(feedback.round_time / d),
        Some(_) => None,
        None => Some(feedback.round_time),
    }
}

impl KController for SignOgd {
    fn name(&self) -> &'static str {
        "Algorithm 2 (sign OGD)"
    }

    fn propose_k(&self) -> f64 {
        self.k()
    }

    fn probe_k(&self) -> Option<f64> {
        Some(SignOgd::probe_k(self))
    }

    fn observe(&mut self, feedback: &RoundFeedback) {
        let sign = estimator_inputs(feedback)
            .and_then(|inputs| DerivativeSignEstimator::new().estimate(&inputs));
        self.step(sign);
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.tag(TAG_SIGN_OGD);
        self.write_state(&mut w);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        r.tag(TAG_SIGN_OGD, "sign OGD")?;
        let mut restored = self.clone();
        restored.read_state(&mut r)?;
        r.finish()?;
        *self = restored;
        Ok(())
    }
}

impl KController for ExtendedSignOgd {
    fn name(&self) -> &'static str {
        "Algorithm 3 (extended sign OGD)"
    }

    fn propose_k(&self) -> f64 {
        self.k()
    }

    fn probe_k(&self) -> Option<f64> {
        Some(ExtendedSignOgd::probe_k(self))
    }

    fn observe(&mut self, feedback: &RoundFeedback) {
        let sign = estimator_inputs(feedback)
            .and_then(|inputs| DerivativeSignEstimator::new().estimate(&inputs));
        self.step(sign);
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.tag(TAG_EXTENDED);
        self.write_state(&mut w);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        r.tag(TAG_EXTENDED, "extended sign OGD")?;
        let mut restored = self.clone();
        restored.read_state(&mut r)?;
        r.finish()?;
        *self = restored;
        Ok(())
    }
}

impl KController for ValueBasedDescent {
    fn name(&self) -> &'static str {
        "Value-based derivative descent"
    }

    fn propose_k(&self) -> f64 {
        self.k()
    }

    fn probe_k(&self) -> Option<f64> {
        Some(ValueBasedDescent::probe_k(self))
    }

    fn observe(&mut self, feedback: &RoundFeedback) {
        let derivative = estimator_inputs(feedback)
            .and_then(|inputs| DerivativeSignEstimator::new().estimate_derivative(&inputs));
        self.step(derivative);
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.tag(TAG_VALUE_BASED);
        self.write_state(&mut w);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        r.tag(TAG_VALUE_BASED, "value-based descent")?;
        let mut restored = self.clone();
        restored.read_state(&mut r)?;
        r.finish()?;
        *self = restored;
        Ok(())
    }
}

/// A controller that always proposes the same `k` (the paper's fixed-`k`
/// baselines, e.g. Fig. 1 and Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedK {
    k: f64,
}

impl FixedK {
    /// Creates a fixed-`k` controller.
    ///
    /// # Panics
    ///
    /// Panics if `k < 1`.
    pub fn new(k: f64) -> Self {
        assert!(k >= 1.0, "k must be at least 1");
        Self { k }
    }
}

impl KController for FixedK {
    fn name(&self) -> &'static str {
        "Fixed k"
    }

    fn propose_k(&self) -> f64 {
        self.k
    }

    fn probe_k(&self) -> Option<f64> {
        None
    }

    fn observe(&mut self, _feedback: &RoundFeedback) {}

    fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.tag(TAG_FIXED_K);
        w.f64(self.k);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        r.tag(TAG_FIXED_K, "fixed k")?;
        let k = r.f64()?;
        if !k.is_finite() || k < 1.0 {
            return Err(StateError::Invalid("fixed k"));
        }
        r.finish()?;
        self.k = k;
        Ok(())
    }
}

/// EXP3 adapted to the adaptive-`k` problem: arms are candidate `k` values,
/// the reward of a round is `best cost so far / this round's cost` (a value
/// in `(0, 1]` that is 1 for the best round observed so far).
#[derive(Debug, Clone)]
pub struct Exp3Controller {
    exp3: Exp3,
    current_arm: usize,
    best_cost: f64,
}

impl Exp3Controller {
    /// Creates the controller; the first arm is drawn immediately.
    pub fn new(mut exp3: Exp3) -> Self {
        let current_arm = exp3.draw();
        Self {
            exp3,
            current_arm,
            best_cost: f64::INFINITY,
        }
    }

    /// The underlying EXP3 state.
    pub fn exp3(&self) -> &Exp3 {
        &self.exp3
    }
}

impl KController for Exp3Controller {
    fn name(&self) -> &'static str {
        "EXP3"
    }

    fn propose_k(&self) -> f64 {
        self.exp3.arm_value(self.current_arm)
    }

    fn probe_k(&self) -> Option<f64> {
        None
    }

    fn observe(&mut self, feedback: &RoundFeedback) {
        if let Some(cost) = round_cost(feedback) {
            self.best_cost = self.best_cost.min(cost);
            let reward = if cost > 0.0 {
                (self.best_cost / cost).clamp(0.0, 1.0)
            } else {
                1.0
            };
            self.exp3.update(self.current_arm, reward);
        }
        self.current_arm = self.exp3.draw();
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.tag(TAG_EXP3);
        self.exp3.write_state(&mut w);
        w.usize(self.current_arm);
        w.f64(self.best_cost);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        r.tag(TAG_EXP3, "EXP3")?;
        let mut exp3 = self.exp3.clone();
        exp3.read_state(&mut r)?;
        let current_arm = r.usize()?;
        if current_arm >= exp3.num_arms() {
            return Err(StateError::Invalid("current arm"));
        }
        let best_cost = r.f64()?;
        if best_cost.is_nan() {
            return Err(StateError::Invalid("best cost"));
        }
        r.finish()?;
        self.exp3 = exp3;
        self.current_arm = current_arm;
        self.best_cost = best_cost;
        Ok(())
    }
}

/// The continuous one-point bandit adapted to the adaptive-`k` problem, with
/// costs normalized by the first observed cost so the gradient-estimate scale
/// is dimensionless.
#[derive(Debug, Clone)]
pub struct BanditController {
    bandit: ContinuousBandit,
    reference_cost: Option<f64>,
}

impl BanditController {
    /// Creates the controller.
    pub fn new(bandit: ContinuousBandit) -> Self {
        Self {
            bandit,
            reference_cost: None,
        }
    }

    /// The underlying bandit state.
    pub fn bandit(&self) -> &ContinuousBandit {
        &self.bandit
    }
}

impl KController for BanditController {
    fn name(&self) -> &'static str {
        "Continuous bandit"
    }

    fn propose_k(&self) -> f64 {
        self.bandit.k()
    }

    fn probe_k(&self) -> Option<f64> {
        None
    }

    fn observe(&mut self, feedback: &RoundFeedback) {
        if let Some(cost) = round_cost(feedback) {
            let reference = *self.reference_cost.get_or_insert(cost.max(1e-12));
            self.bandit.observe_cost(cost / reference);
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.tag(TAG_BANDIT);
        self.bandit.write_state(&mut w);
        w.opt_f64(self.reference_cost);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        r.tag(TAG_BANDIT, "continuous bandit")?;
        let mut bandit = self.bandit.clone();
        bandit.read_state(&mut r)?;
        let reference_cost = r.opt_f64()?;
        if reference_cost.is_some_and(|c| !c.is_finite() || c <= 0.0) {
            return Err(StateError::Invalid("reference cost"));
        }
        r.finish()?;
        self.bandit = bandit;
        self.reference_cost = reference_cost;
        Ok(())
    }
}

/// Extends any `k`-controller to the 2-D `(k × precision)` action space.
///
/// The wrapped controller keeps full authority over `k` (all `k`-side calls
/// delegate); this wrapper adds the precision axis by tracking an
/// exponential moving average of the per-round cost (the same
/// time-per-unit-loss-decrease scalar the bandit baselines use) for each
/// [`Precision`] tier and deterministically selecting:
///
/// 1. the first tier that has never been observed (most-precise first, so a
///    run always starts on the lossless tier);
/// 2. every `explore_every`-th round, a round-robin tier, so a tier whose
///    cost estimate went stale keeps being revisited;
/// 3. otherwise the tier with the lowest EMA cost, ties broken toward the
///    most precise tier.
///
/// The selection is a pure function of `(round counter, cost table)` — no
/// RNG — so the precision schedule is reproducible bit-for-bit across
/// worker counts and checkpoint/resume.
#[derive(Debug)]
pub struct PrecisionController {
    inner: Box<dyn KController>,
    cost: [Option<f64>; 4],
    round: usize,
    explore_every: usize,
}

impl PrecisionController {
    /// EMA weight kept on the old cost estimate.
    const EMA_KEEP: f64 = 0.8;

    /// Wraps `inner`, re-exploring each tier every 16th round.
    pub fn new(inner: Box<dyn KController>) -> Self {
        Self {
            inner,
            cost: [None; 4],
            round: 0,
            explore_every: 16,
        }
    }

    /// The EMA cost estimate per tier, indexed like [`Precision::ALL`].
    pub fn tier_costs(&self) -> [Option<f64>; 4] {
        self.cost
    }

    /// The tier the deterministic policy selects for the next round.
    fn selected(&self) -> Precision {
        if let Some(i) = self.cost.iter().position(Option::is_none) {
            return Precision::ALL[i];
        }
        if self.round.is_multiple_of(self.explore_every) {
            return Precision::ALL[(self.round / self.explore_every) % Precision::ALL.len()];
        }
        let mut best = 0;
        for i in 1..Precision::ALL.len() {
            // Strict `<` keeps ties on the lower (more precise) index.
            if self.cost[i].unwrap_or(f64::INFINITY) < self.cost[best].unwrap_or(f64::INFINITY) {
                best = i;
            }
        }
        Precision::ALL[best]
    }
}

impl KController for PrecisionController {
    fn name(&self) -> &'static str {
        "2-D (k × precision)"
    }

    fn propose_k(&self) -> f64 {
        self.inner.propose_k()
    }

    fn probe_k(&self) -> Option<f64> {
        self.inner.probe_k()
    }

    fn propose_precision(&self) -> Option<Precision> {
        Some(self.selected())
    }

    fn observe(&mut self, feedback: &RoundFeedback) {
        // `selected()` recomputes exactly the tier `propose_precision`
        // returned before this round ran, so the cost lands on the tier
        // that actually produced it.
        let tier = self.selected() as usize;
        if let Some(cost) = round_cost(feedback) {
            self.cost[tier] = Some(self.cost[tier].map_or(cost, |old| {
                Self::EMA_KEEP * old + (1.0 - Self::EMA_KEEP) * cost
            }));
        }
        self.round += 1;
        self.inner.observe(feedback);
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.tag(TAG_PRECISION);
        w.usize(self.round);
        w.usize(self.explore_every);
        for cost in self.cost {
            w.opt_f64(cost);
        }
        w.bytes(&self.inner.save_state());
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        r.tag(TAG_PRECISION, "precision wrapper")?;
        let round = r.usize()?;
        let explore_every = r.usize()?;
        if explore_every != self.explore_every {
            return Err(StateError::Invalid("explore period"));
        }
        let mut cost = [None; 4];
        for slot in &mut cost {
            let c = r.opt_f64()?;
            if c.is_some_and(|c| !c.is_finite() || c < 0.0) {
                return Err(StateError::Invalid("tier cost"));
            }
            *slot = c;
        }
        let inner_blob = r.bytes()?;
        r.finish()?;
        // The inner restore is itself atomic, so restoring it before
        // committing the outer fields keeps the whole operation atomic.
        self.inner.restore_state(&inner_blob)?;
        self.round = round;
        self.cost = cost;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExtendedConfig, SearchInterval};

    fn feedback_with_probe(k: usize, probe_k: usize, faster_small_k: bool) -> RoundFeedback {
        // If the smaller probe k achieves the same loss drop in less time,
        // the derivative sign is positive and k should decrease.
        RoundFeedback {
            k_used: k,
            round_time: 10.0,
            probe_loss_prev: Some(2.0),
            probe_loss_now: Some(1.9),
            probe_loss_alt: Some(if faster_small_k { 1.9 } else { 1.99 }),
            probe_round_time: Some(8.0),
            probe_k: Some(probe_k),
            loss_decrease: None,
        }
    }

    #[test]
    fn sign_ogd_controller_moves_k_down_when_small_k_is_better() {
        let mut c = SignOgd::new(SearchInterval::new(1.0, 1001.0), 800.0);
        let before = KController::propose_k(&c);
        let probe = KController::probe_k(&c).unwrap() as usize;
        c.observe(&feedback_with_probe(800, probe, true));
        assert!(KController::propose_k(&c) < before);
    }

    #[test]
    fn extended_controller_moves_k_up_when_large_k_is_better() {
        let mut c = ExtendedSignOgd::new(ExtendedConfig {
            k_min: 1.0,
            k_max: 1000.0,
            alpha: 1.5,
            update_window: 20,
            initial_k: 500.0,
        });
        let before = KController::propose_k(&c);
        let probe = KController::probe_k(&c).unwrap() as usize;
        c.observe(&feedback_with_probe(500, probe, false));
        assert!(KController::propose_k(&c) > before);
    }

    #[test]
    fn value_based_controller_steps_with_derivative() {
        let mut c = ValueBasedDescent::new(SearchInterval::new(1.0, 1001.0), 500.0);
        let probe = KController::probe_k(&c).unwrap() as usize;
        c.observe(&feedback_with_probe(500, probe, true));
        assert!(KController::propose_k(&c) < 500.0);
    }

    #[test]
    fn missing_probe_data_keeps_sign_controllers_unchanged() {
        let mut c = SignOgd::new(SearchInterval::new(1.0, 101.0), 50.0);
        c.observe(&RoundFeedback::time_only(50, 5.0));
        assert_eq!(KController::propose_k(&c), 50.0);
    }

    #[test]
    fn fixed_k_never_changes() {
        let mut c = FixedK::new(123.0);
        assert_eq!(c.propose_k(), 123.0);
        assert_eq!(KController::probe_k(&c), None);
        c.observe(&RoundFeedback::time_only(123, 2.0));
        assert_eq!(c.propose_k(), 123.0);
    }

    #[test]
    fn exp3_controller_draws_valid_arms_and_learns() {
        let exp3 = Exp3::new(Exp3::geometric_arms(10.0, 1000.0, 6), 0.2, 1);
        let arms = exp3.arms().to_vec();
        let mut c = Exp3Controller::new(exp3);
        for _ in 0..200 {
            let k = c.propose_k();
            assert!(arms.iter().any(|&a| (a - k).abs() < 1e-9));
            // Rounds with small k are cheap per unit loss decrease.
            let cost_time = 1.0 + k / 100.0;
            c.observe(&RoundFeedback {
                k_used: k.round() as usize,
                round_time: cost_time,
                probe_loss_prev: None,
                probe_loss_now: None,
                probe_loss_alt: None,
                probe_round_time: None,
                probe_k: None,
                loss_decrease: Some(0.1),
            });
        }
        // The smallest arms should now dominate the probabilities.
        let probs = c.exp3().probabilities();
        let small_mass: f64 = probs[..2].iter().sum();
        assert!(small_mass > 0.4, "probabilities {probs:?}");
    }

    #[test]
    fn bandit_controller_normalizes_costs() {
        let bandit =
            ContinuousBandit::with_default_scales(SearchInterval::new(10.0, 1010.0), 500.0, 7);
        let mut c = BanditController::new(bandit);
        for _ in 0..50 {
            let k = c.propose_k();
            assert!((10.0..=1010.0).contains(&k));
            c.observe(&RoundFeedback {
                k_used: k.round() as usize,
                round_time: 1.0 + k / 50.0,
                probe_loss_prev: None,
                probe_loss_now: None,
                probe_loss_alt: None,
                probe_round_time: None,
                probe_k: None,
                loss_decrease: Some(0.05),
            });
        }
        assert!(c.bandit().center().is_finite());
    }

    /// Deterministic synthetic feedback stream exercising both the probe
    /// path (sign controllers) and the cost path (bandit controllers).
    fn synthetic_feedback(round: usize, k: f64) -> RoundFeedback {
        let phase = (round % 7) as f64;
        let drift = 0.001 * round as f64;
        RoundFeedback {
            k_used: k.round().max(1.0) as usize,
            round_time: 5.0 + k / 100.0 + phase * 0.3,
            probe_loss_prev: Some(2.0 - drift),
            probe_loss_now: Some(1.95 - drift),
            probe_loss_alt: Some(if round.is_multiple_of(3) {
                1.95 - drift
            } else {
                1.99 - drift
            }),
            probe_round_time: Some(4.0 + k / 120.0),
            probe_k: Some(((k * 0.8) as usize).max(1)),
            loss_decrease: Some(0.05 + 0.01 * phase),
        }
    }

    /// Drives a controller, snapshots it, restores the snapshot into a fresh
    /// instance, and checks both continue bit-identically.
    fn roundtrip_continues_identically(make: &dyn Fn() -> Box<dyn KController>) {
        let mut original = make();
        for round in 0..25 {
            let k = original.propose_k();
            original.observe(&synthetic_feedback(round, k));
        }
        let snapshot = original.save_state();
        let mut restored = make();
        restored.restore_state(&snapshot).unwrap();
        for round in 25..60 {
            let k_a = original.propose_k();
            let k_b = restored.propose_k();
            assert_eq!(k_a.to_bits(), k_b.to_bits(), "k diverged at round {round}");
            assert_eq!(
                original.probe_k().map(f64::to_bits),
                restored.probe_k().map(f64::to_bits),
                "probe k diverged at round {round}"
            );
            assert_eq!(
                original.propose_precision(),
                restored.propose_precision(),
                "precision diverged at round {round}"
            );
            original.observe(&synthetic_feedback(round, k_a));
            restored.observe(&synthetic_feedback(round, k_b));
        }
    }

    #[test]
    fn every_controller_roundtrips_its_state_bit_identically() {
        let factories: Vec<Box<dyn Fn() -> Box<dyn KController>>> = vec![
            Box::new(|| Box::new(SignOgd::new(SearchInterval::new(1.0, 1001.0), 800.0))),
            Box::new(|| {
                Box::new(ExtendedSignOgd::new(ExtendedConfig {
                    k_min: 1.0,
                    k_max: 1000.0,
                    alpha: 1.5,
                    update_window: 5,
                    initial_k: 500.0,
                }))
            }),
            Box::new(|| {
                Box::new(ValueBasedDescent::new(
                    SearchInterval::new(1.0, 1001.0),
                    500.0,
                ))
            }),
            Box::new(|| Box::new(FixedK::new(123.0))),
            Box::new(|| {
                Box::new(Exp3Controller::new(Exp3::new(
                    Exp3::geometric_arms(10.0, 1000.0, 6),
                    0.2,
                    42,
                )))
            }),
            Box::new(|| {
                Box::new(BanditController::new(
                    ContinuousBandit::with_default_scales(
                        SearchInterval::new(10.0, 1010.0),
                        500.0,
                        7,
                    ),
                ))
            }),
            Box::new(|| {
                Box::new(PrecisionController::new(Box::new(SignOgd::new(
                    SearchInterval::new(1.0, 1001.0),
                    800.0,
                ))))
            }),
            Box::new(|| {
                Box::new(PrecisionController::new(Box::new(Exp3Controller::new(
                    Exp3::new(Exp3::geometric_arms(10.0, 1000.0, 6), 0.2, 42),
                ))))
            }),
        ];
        for factory in &factories {
            roundtrip_continues_identically(factory.as_ref());
        }
    }

    #[test]
    fn restore_rejects_wrong_controller_and_corrupt_bytes() {
        let sign = SignOgd::new(SearchInterval::new(1.0, 101.0), 50.0);
        let snapshot = sign.save_state();

        // A snapshot from another controller type is a typed error.
        let mut fixed = FixedK::new(10.0);
        assert!(matches!(
            fixed.restore_state(&snapshot),
            Err(crate::StateError::WrongController { .. })
        ));

        // Every truncation errors and leaves the controller untouched.
        let mut target = SignOgd::new(SearchInterval::new(1.0, 101.0), 50.0);
        for cut in 0..snapshot.len() {
            let before = target.clone();
            assert!(target.restore_state(&snapshot[..cut]).is_err());
            assert_eq!(target, before, "cut at {cut} mutated the controller");
        }

        // Trailing garbage is rejected too.
        let mut extended = snapshot.clone();
        extended.push(0);
        assert_eq!(
            target.restore_state(&extended),
            Err(crate::StateError::TrailingBytes)
        );
    }

    #[test]
    fn exp3_restore_rejects_mismatched_arm_count() {
        let donor = Exp3Controller::new(Exp3::new(vec![10.0, 100.0, 1000.0], 0.2, 1));
        let snapshot = donor.save_state();
        let mut two_arms = Exp3Controller::new(Exp3::new(vec![10.0, 100.0], 0.2, 1));
        assert_eq!(
            two_arms.restore_state(&snapshot),
            Err(crate::StateError::Invalid("weight count"))
        );
    }

    /// Feedback whose scalar cost is exactly `cost` (loss decrease of 1).
    fn feedback_costing(cost: f64) -> RoundFeedback {
        RoundFeedback {
            loss_decrease: Some(1.0),
            ..RoundFeedback::time_only(8, cost)
        }
    }

    #[test]
    fn precision_controller_explores_every_tier_then_exploits_the_cheapest() {
        let mut c = PrecisionController::new(Box::new(FixedK::new(8.0)));
        // Fixed per-tier costs: Q8 is cheapest.
        let tier_cost = [8.0, 4.0, 2.0, 6.0];
        let mut seen = Vec::new();
        for round in 0..64 {
            let tier = c.propose_precision().expect("wrapper always proposes");
            seen.push((round, tier));
            c.observe(&feedback_costing(tier_cost[tier as usize]));
        }
        // Rounds 0–3: first-unexplored, most-precise first.
        assert_eq!(
            &seen[..4],
            &[
                (0, Precision::F32),
                (1, Precision::F16),
                (2, Precision::Q8),
                (3, Precision::Sign),
            ]
        );
        // Exploitation rounds pick the cheapest tier...
        for &(round, tier) in &seen[4..] {
            if round % 16 != 0 {
                assert_eq!(tier, Precision::Q8, "round {round}");
            }
        }
        // ...while every 16th round round-robins so stale tiers are revisited.
        assert_eq!(seen[16].1, Precision::F16);
        assert_eq!(seen[32].1, Precision::Q8);
        assert_eq!(seen[48].1, Precision::Sign);
    }

    #[test]
    fn precision_ties_break_toward_the_more_precise_tier() {
        let mut c = PrecisionController::new(Box::new(FixedK::new(8.0)));
        for _ in 0..12 {
            c.observe(&feedback_costing(3.0));
        }
        assert_eq!(c.propose_precision(), Some(Precision::F32));
        assert!(c.tier_costs().iter().all(|cost| *cost == Some(3.0)));
    }

    #[test]
    fn precision_restore_rejects_corruption_and_leaves_state_untouched() {
        let mut donor = PrecisionController::new(Box::new(SignOgd::new(
            SearchInterval::new(1.0, 101.0),
            50.0,
        )));
        for round in 0..9 {
            let k = donor.propose_k();
            donor.observe(&synthetic_feedback(round, k));
        }
        let snapshot = donor.save_state();

        // A snapshot of the bare inner controller is a typed error.
        let mut target = PrecisionController::new(Box::new(SignOgd::new(
            SearchInterval::new(1.0, 101.0),
            50.0,
        )));
        let bare = SignOgd::new(SearchInterval::new(1.0, 101.0), 50.0).save_state();
        assert!(matches!(
            target.restore_state(&bare),
            Err(crate::StateError::WrongController { .. })
        ));

        // Every truncation (including inside the nested inner blob) errors
        // and leaves the wrapper's decisions untouched.
        for cut in 0..snapshot.len() {
            let before = (target.propose_k().to_bits(), target.propose_precision());
            assert!(target.restore_state(&snapshot[..cut]).is_err());
            let after = (target.propose_k().to_bits(), target.propose_precision());
            assert_eq!(before, after, "cut at {cut} mutated the controller");
        }

        // The intact snapshot restores and reproduces the donor's decisions.
        target.restore_state(&snapshot).unwrap();
        assert_eq!(target.propose_precision(), donor.propose_precision());
        assert_eq!(target.propose_k().to_bits(), donor.propose_k().to_bits());
    }

    #[test]
    fn rounds_with_no_loss_decrease_are_skipped_by_bandits() {
        let exp3 = Exp3::new(vec![10.0, 100.0], 0.5, 0);
        let mut c = Exp3Controller::new(exp3);
        let draws_before = c.exp3().draws();
        c.observe(&RoundFeedback {
            k_used: 10,
            round_time: 5.0,
            probe_loss_prev: None,
            probe_loss_now: None,
            probe_loss_alt: None,
            probe_round_time: None,
            probe_k: None,
            loss_decrease: Some(0.0),
        });
        // A new arm is still drawn (the round happened), but no update was fed.
        assert_eq!(c.exp3().draws(), draws_before + 1);
    }
}
