//! Controller state snapshots for checkpoint/resume.
//!
//! The experiment harness in `agsfl-core` checkpoints a run as the FL
//! simulation state plus the [`KController`](crate::KController) state; this
//! module supplies the binary codec for the controller half. It mirrors the
//! snapshot discipline of `agsfl-fl`'s checkpoint codec — little-endian
//! fixed-width scalars, floats as raw IEEE-754 bits (bit-identical resume
//! forbids any text round-trip), `u64` length prefixes, and fully validated
//! reads that return [`StateError`] instead of panicking — but is
//! self-contained because `agsfl-online` sits below `agsfl-fl` in the crate
//! graph.
//!
//! Every controller's payload starts with a one-byte tag naming the
//! controller type, so restoring an EXP3 snapshot into a sign-OGD controller
//! fails with [`StateError::WrongController`] rather than silently
//! reinterpreting bytes.

use rand_chacha::ChaCha8Rng;

/// Error produced when restoring a controller state snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The byte stream ended before the expected field.
    Truncated,
    /// The snapshot was taken from a different controller type.
    WrongController {
        /// The controller type the restore target expected.
        expected: &'static str,
    },
    /// A field decoded to an out-of-range or inconsistent value.
    Invalid(&'static str),
    /// Bytes remained after the final field.
    TrailingBytes,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "controller state truncated"),
            Self::WrongController { expected } => {
                write!(f, "controller state is not a {expected} snapshot")
            }
            Self::Invalid(what) => write!(f, "invalid controller state field: {what}"),
            Self::TrailingBytes => write!(f, "trailing bytes after controller state"),
        }
    }
}

impl std::error::Error for StateError {}

/// Append-only binary encoder for controller state.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes the one-byte controller-type tag.
    pub fn tag(&mut self, tag: u8) {
        self.buf.push(tag);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its raw IEEE-754 bits.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed flat `f64` slice.
    pub fn f64s(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    /// Writes an optional `f64` as a presence flag plus raw bits.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.buf.push(1);
                self.f64(x);
            }
            None => self.buf.push(0),
        }
    }

    /// Writes a length-prefixed opaque byte blob (used to nest one
    /// controller's snapshot inside another's).
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a ChaCha8 stream position (`key`, `counter`, `cursor`).
    pub fn rng(&mut self, rng: &ChaCha8Rng) {
        let (key, counter, cursor) = rng.state();
        for word in key {
            self.u32(word);
        }
        self.u64(counter);
        self.u32(cursor);
    }
}

/// Validating decoder over a controller state byte slice.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of undecoded bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns [`StateError::TrailingBytes`] unless the reader is exactly
    /// exhausted.
    pub fn finish(&self) -> Result<(), StateError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StateError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        if self.remaining() < n {
            return Err(StateError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads and checks the controller-type tag.
    pub fn tag(&mut self, expected: u8, name: &'static str) -> Result<(), StateError> {
        if self.take(1)?[0] == expected {
            Ok(())
        } else {
            Err(StateError::WrongController { expected: name })
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StateError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StateError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` stored as `u64`, rejecting values that overflow the
    /// platform's `usize`.
    pub fn usize(&mut self) -> Result<usize, StateError> {
        usize::try_from(self.u64()?).map_err(|_| StateError::Invalid("usize overflow"))
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed flat `f64` vector; a corrupt length prefix
    /// cannot trigger a huge allocation.
    pub fn f64s(&mut self) -> Result<Vec<f64>, StateError> {
        let n = self.usize()?;
        if n.checked_mul(8).is_none_or(|b| b > self.remaining()) {
            return Err(StateError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Reads an optional `f64` written by [`StateWriter::opt_f64`].
    pub fn opt_f64(&mut self) -> Result<Option<f64>, StateError> {
        match self.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(StateError::Invalid("option flag")),
        }
    }

    /// Reads a length-prefixed opaque byte blob written by
    /// [`StateWriter::bytes`]; a corrupt length prefix cannot trigger a huge
    /// allocation.
    pub fn bytes(&mut self) -> Result<Vec<u8>, StateError> {
        let n = self.usize()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a ChaCha8 stream position and rebuilds the generator.
    pub fn rng(&mut self) -> Result<ChaCha8Rng, StateError> {
        let mut key = [0u32; 8];
        for word in &mut key {
            *word = self.u32()?;
        }
        let counter = self.u64()?;
        let cursor = self.u32()?;
        Ok(ChaCha8Rng::from_state(key, counter, cursor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn scalar_roundtrip_is_bit_exact() {
        let mut w = StateWriter::new();
        w.tag(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.usize(42);
        w.f64(f64::INFINITY);
        w.f64(-0.0);
        w.f64s(&[1.5, f64::NAN]);
        w.opt_f64(Some(2.5));
        w.opt_f64(None);
        let bytes = w.into_bytes();

        let mut r = StateReader::new(&bytes);
        r.tag(7, "test").unwrap();
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), f64::INFINITY.to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        let v = r.f64s().unwrap();
        assert_eq!(v[0], 1.5);
        assert!(v[1].is_nan());
        assert_eq!(r.opt_f64().unwrap(), Some(2.5));
        assert_eq!(r.opt_f64().unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn wrong_tag_is_a_typed_error() {
        let mut w = StateWriter::new();
        w.tag(3);
        let bytes = w.into_bytes();
        assert_eq!(
            StateReader::new(&bytes).tag(4, "other"),
            Err(StateError::WrongController { expected: "other" })
        );
    }

    #[test]
    fn truncation_yields_typed_errors_never_panics() {
        let mut w = StateWriter::new();
        w.tag(1);
        w.f64s(&[1.0, 2.0, 3.0]);
        w.rng(&ChaCha8Rng::seed_from_u64(5));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = StateReader::new(&bytes[..cut]);
            let result = r
                .tag(1, "test")
                .and_then(|_| r.f64s())
                .and_then(|_| r.rng().map(|_| ()));
            assert!(result.is_err(), "cut at {cut} must error");
        }
        // A bogus huge length prefix must not allocate.
        let mut w = StateWriter::new();
        w.u64(u64::MAX / 2);
        let bogus = w.into_bytes();
        assert_eq!(StateReader::new(&bogus).f64s(), Err(StateError::Truncated));
    }

    #[test]
    fn nested_blob_roundtrips_and_rejects_bad_lengths() {
        let mut w = StateWriter::new();
        w.bytes(&[7, 0, 255]);
        w.bytes(&[]);
        let encoded = w.into_bytes();
        let mut r = StateReader::new(&encoded);
        assert_eq!(r.bytes().unwrap(), vec![7, 0, 255]);
        assert_eq!(r.bytes().unwrap(), Vec::<u8>::new());
        r.finish().unwrap();
        // A bogus huge length prefix must not allocate.
        let mut w = StateWriter::new();
        w.u64(u64::MAX / 2);
        let bogus = w.into_bytes();
        assert_eq!(StateReader::new(&bogus).bytes(), Err(StateError::Truncated));
    }

    #[test]
    fn rng_roundtrip_resumes_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..7 {
            rng.next_u32();
        }
        let mut w = StateWriter::new();
        w.rng(&rng);
        let bytes = w.into_bytes();
        let mut restored = StateReader::new(&bytes).rng().unwrap();
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }
}
