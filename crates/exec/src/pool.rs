//! The persistent worker pool behind [`crate::Executor`].
//!
//! Every parallel region used to pay a fresh [`std::thread::scope`] spawn:
//! three regions per round means three `clone + spawn + join` cycles of the
//! whole worker set, tens of microseconds that the round loop pays at
//! N=10³ every few hundred microseconds of useful work. The pool spawns
//! its workers **once** and feeds them work over a channel; a round's
//! parallel regions become a handful of channel sends and one
//! condition-variable wait.
//!
//! # The generation handshake
//!
//! Scoped threads let workers borrow the caller's stack because the scope
//! *provably joins* before it returns. The pool replaces that proof with an
//! equivalent runtime handshake:
//!
//! 1. The submitter bumps the pool's **generation counter** and packages
//!    the region's closure as a set of lifetime-erased `Task`s tagged
//!    with that generation.
//! 2. Workers execute tasks and report completion on the region's shared
//!    counter — they hold the erased pointer only while the task runs and
//!    never store it past the completion signal.
//! 3. The submitter **blocks** until the region's completion count reaches
//!    its task count ([`RegionHandle::finish`] — or [`RegionHandle`]'s
//!    `Drop`, so a panicking submitter still waits), and only then lets the
//!    borrowed closure go out of scope.
//!
//! The borrow therefore strictly outlives every dereference, exactly the
//! guarantee `thread::scope` provides structurally. This is the **only**
//! `unsafe` code in the workspace, confined to this module and carried by
//! that single argument.
//!
//! # Determinism
//!
//! The pool adds no scheduling freedom that can reach a result: regions
//! hand workers disjoint `&mut` chunks exactly like the scoped path, chunk
//! results come back through per-chunk slots concatenated in chunk order
//! (an **ordered completion queue** — see [`WorkerPool::submit_region`]'s
//! callers in `lib.rs`), and pipelined consumers run on the submitting
//! thread in item order. A worker panic is caught, recorded on the region,
//! and re-raised on the submitting thread after the region completes
//! ([`std::panic::resume_unwind`]), so failures behave exactly like the
//! scoped path's propagating `join`.
#![allow(unsafe_code)]

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::metrics::PoolMetrics;

thread_local! {
    /// Set for the lifetime of a pool worker thread. Nested parallel
    /// regions submitted *from* a worker run inline on that worker instead
    /// of re-entering the pool — re-submitting while every worker may be
    /// busy executing the outer region could otherwise wait on ourselves,
    /// and inline execution is bit-identical anyway (same closures, same
    /// data, same order).
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is a pool worker (any pool's). The executor
/// uses this to run nested regions inline (see the module docs).
pub fn on_worker_thread() -> bool {
    IN_POOL_WORKER.with(Cell::get)
}

/// Locks a mutex, ignoring poisoning: the pool's shared state (completion
/// counters, result slots, panic slot) stays consistent through unwinding
/// because every critical section is a handful of moves with no invariant
/// spanning a panic point.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Shared state of one submitted region — one generation of the handshake.
struct Region {
    /// The pool generation this region was submitted as (diagnostics; the
    /// per-region `remaining` counter is what the handshake waits on).
    generation: u64,
    /// Tasks not yet completed. The submitter blocks until this hits zero.
    remaining: Mutex<usize>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
    /// First worker panic payload, re-raised on the submitting thread.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl Region {
    fn new(generation: u64, tasks: usize) -> Arc<Self> {
        Arc::new(Region {
            generation,
            remaining: Mutex::new(tasks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    /// Worker-side completion signal: the last task wakes the submitter.
    fn complete_one(&self) {
        let mut remaining = lock_unpoisoned(&self.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Submitter-side wait for every task of this generation.
    fn wait(&self) {
        let mut remaining = lock_unpoisoned(&self.remaining);
        while *remaining > 0 {
            remaining = self
                .done
                .wait(remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// A lifetime-erased unit of work: "run chunk `index` of the region whose
/// closure lives at `ctx`".
struct Task {
    /// Monomorphized trampoline that casts `ctx` back to the concrete
    /// closure type and calls it.
    call: unsafe fn(*const (), usize),
    /// Erased pointer to the submitting stack frame's `F: Fn(usize) + Sync`.
    ctx: *const (),
    /// Which chunk of the region this task runs.
    index: usize,
    /// The region's handshake state.
    region: Arc<Region>,
    /// Submission timestamp, stamped only while pool metrics are enabled.
    /// Doubles as the per-task metrics marker: the dequeue-side accounting
    /// (queue-depth decrement, dispatch latency, busy time) keys on this
    /// being `Some`, so enabling or disabling metrics mid-flight can never
    /// unbalance the queue-depth counter.
    submitted_at: Option<Instant>,
}

// SAFETY: `ctx` points at a closure owned by the submitting stack frame,
// which blocks in `RegionHandle::finish`/`Drop` until every task of the
// region has signalled completion; workers dereference `ctx` only before
// that signal. The closure is `Sync` (enforced by `submit_region`'s
// bound), so shared access from several workers is sound.
unsafe impl Send for Task {}

/// Casts the erased context back to `F` and runs chunk `index`.
///
/// # Safety
///
/// `ctx` must point to a live `F`; guaranteed by the generation handshake
/// (see the module docs).
unsafe fn call_erased<F: Fn(usize) + Sync>(ctx: *const (), index: usize) {
    let f = unsafe { &*(ctx.cast::<F>()) };
    f(index);
}

/// A long-lived, channel-fed worker pool.
///
/// Spawned lazily by the first parallel region of an [`crate::Executor`]
/// and shared by all its clones; dropped (joining every worker) when the
/// last clone goes away. See the module docs for the handshake that lets
/// persistent threads run borrowed closures safely.
pub struct WorkerPool {
    /// Work queue; `None` only during `Drop`, which disconnects the
    /// channel so workers drain and exit.
    sender: Option<Sender<Task>>,
    /// Worker handles, joined on `Drop` — the pool never leaks threads.
    workers: Vec<JoinHandle<()>>,
    /// Region generation counter (the "epoch" of the handshake).
    generation: AtomicU64,
    /// Observation-only pool metrics (disabled by default); shared with
    /// every worker.
    metrics: Arc<PoolMetrics>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("generation", &self.generation.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` threads (`0` is treated as `1`).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let metrics = Arc::new(PoolMetrics::new(workers));
        let workers = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("agsfl-pool-{i}"))
                    .spawn(move || worker_loop(&receiver, &metrics, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
            generation: AtomicU64::new(0),
            metrics,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of regions submitted so far (the current generation).
    pub fn generations(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The pool's observation-only metrics (per-worker busy/idle time,
    /// dispatch-latency rings, queue depth). Disabled until
    /// [`PoolMetrics::set_enabled`] flips them on.
    pub fn metrics(&self) -> &PoolMetrics {
        &self.metrics
    }

    /// Submits a region of `tasks` chunk indices to the pool and returns a
    /// handle the submitter **must** resolve with [`RegionHandle::finish`]
    /// before `f` or anything it borrows goes out of scope (the handle's
    /// `Drop` enforces the wait even when the submitter unwinds).
    ///
    /// `f(i)` is called exactly once per `i in 0..tasks`, from worker
    /// threads, in no particular order; ordering guarantees are built on
    /// top by the callers (per-chunk result slots read in chunk order, or
    /// the pipeline's index-ordered consumer).
    pub fn submit_region<'pool, F>(&'pool self, tasks: usize, f: &F) -> RegionHandle<'pool>
    where
        F: Fn(usize) + Sync,
    {
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let region = Region::new(generation, tasks);
        let sender = self
            .sender
            .as_ref()
            .expect("worker pool used after shutdown");
        // One clock read per region (not per task): every task of a region
        // is submitted in the same instant for dispatch-latency purposes.
        let submitted_at = self.metrics.enabled().then(Instant::now);
        for index in 0..tasks {
            if submitted_at.is_some() {
                self.metrics.task_submitted();
            }
            let task = Task {
                call: call_erased::<F>,
                ctx: (f as *const F).cast::<()>(),
                index,
                region: Arc::clone(&region),
                submitted_at,
            };
            sender
                .send(task)
                .expect("pool workers exited while the pool is alive");
        }
        RegionHandle {
            region,
            _pool: std::marker::PhantomData,
        }
    }

    /// Runs `f(i)` for every `i in 0..tasks` across the pool's workers,
    /// blocking until the whole region completes. A worker panic is
    /// re-raised here with its original payload.
    pub fn run_region<F>(&self, tasks: usize, f: &F)
    where
        F: Fn(usize) + Sync,
    {
        if tasks == 0 {
            return;
        }
        self.submit_region(tasks, f).finish();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the queue: workers drain outstanding tasks, observe
        // the hangup, and exit. Joining guarantees no thread leaks and no
        // worker outlives any borrow it could still hold.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Outstanding-region guard: proof obligation of the generation handshake.
///
/// The submitter calls [`RegionHandle::finish`] to block until the region
/// completes and to re-raise any worker panic. Dropping the handle without
/// finishing (e.g. while unwinding) still blocks until completion — the
/// soundness of the lifetime erasure rests on this wait — but swallows the
/// region's panic payload in that case (the submitter is already
/// panicking).
#[must_use = "the region handle must be finished (or dropped) before the submitted closure goes out of scope"]
pub struct RegionHandle<'pool> {
    region: Arc<Region>,
    _pool: std::marker::PhantomData<&'pool WorkerPool>,
}

impl RegionHandle<'_> {
    /// Blocks until every task of the region has completed, then re-raises
    /// the first worker panic, if any, on this thread.
    pub fn finish(self) {
        self.region.wait();
        if let Some(payload) = lock_unpoisoned(&self.region.panic).take() {
            std::panic::resume_unwind(payload);
        }
        // `Drop` runs next but `wait` is idempotent once remaining == 0.
    }

    /// The generation this region was submitted as.
    pub fn generation(&self) -> u64 {
        self.region.generation
    }
}

impl Drop for RegionHandle<'_> {
    fn drop(&mut self) {
        self.region.wait();
    }
}

/// Worker main loop: pull tasks until the pool hangs up the channel.
///
/// Metrics accounting is observation only and never changes which task
/// runs where: idle time is measured around the blocking dequeue when the
/// pool-level flag is on, and per-task accounting (queue-depth decrement,
/// dispatch latency, busy time) keys on the task's own `submitted_at`
/// stamp so it stays paired with the submit side.
fn worker_loop(receiver: &Mutex<Receiver<Task>>, metrics: &PoolMetrics, worker: usize) {
    IN_POOL_WORKER.with(|flag| flag.set(true));
    let stats = metrics.worker(worker);
    loop {
        // Hold the lock across `recv`: exactly one idle worker sleeps on
        // the channel while the rest sleep on the mutex, and a send wakes
        // exactly one of them. Tasks are coarse (one per chunk), so the
        // serialized dequeue is noise.
        let wait_start = metrics.enabled().then(Instant::now);
        let task = {
            let guard = lock_unpoisoned(receiver);
            match guard.recv() {
                Ok(task) => task,
                Err(_) => break, // pool dropped: exit
            }
        };
        if let Some(t0) = wait_start {
            stats.add_idle_ns(t0.elapsed().as_nanos() as u64);
        }
        let Task {
            call,
            ctx,
            index,
            region,
            submitted_at,
        } = task;
        let busy_start = submitted_at.map(|t0| {
            metrics.task_dequeued();
            let now = Instant::now();
            stats.record_dispatch_ns(now.duration_since(t0).as_nanos() as u64);
            now
        });
        // SAFETY: the submitter blocks until this region's completion
        // count reaches its task count, so `ctx` is live for the whole
        // call (see the `Task` Send impl and the module docs).
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { call(ctx, index) }));
        if let Some(t0) = busy_start {
            stats.add_busy_ns(t0.elapsed().as_nanos() as u64);
        }
        if let Err(payload) = outcome {
            lock_unpoisoned(&region.panic).get_or_insert(payload);
        }
        // The completion signal is the *last* touch of the region: after
        // this line the worker holds no pointer into the submitter's
        // frame.
        region.complete_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn region_runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        pool.run_region(32, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(pool.generations(), 1);
    }

    #[test]
    fn generations_advance_per_region() {
        let pool = WorkerPool::new(2);
        for _ in 0..10 {
            pool.run_region(3, &|_| {});
        }
        assert_eq!(pool.generations(), 10);
    }

    #[test]
    fn worker_panic_reaches_the_submitter() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_region(4, &|i| assert!(i != 2, "task {i} exploded"));
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("task 2 exploded"), "{msg}");
        // The pool survives a panicked region.
        pool.run_region(4, &|_| {});
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(3);
        pool.run_region(8, &|_| {});
        drop(pool); // must not hang or leak; joined handles prove exit
    }

    #[test]
    fn metrics_account_tasks_without_changing_results() {
        let pool = WorkerPool::new(2);
        // Disabled (the default): regions run, counters stay zero.
        pool.run_region(8, &|_| {});
        let before = pool.metrics().snapshot();
        assert_eq!(before.total_tasks(), 0);
        assert_eq!(before.queue_depth_peak, 0);
        // Enabled: every task is counted, the queue drains back to zero,
        // and the dispatch rings hold one sample per task.
        pool.metrics().set_enabled(true);
        let hits: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
        pool.run_region(16, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let after = pool.metrics().snapshot();
        assert_eq!(after.total_tasks(), 16);
        assert_eq!(after.queue_depth, 0);
        assert!(after.queue_depth_peak >= 1);
        let mut hist = agsfl_telemetry::Histogram::new();
        assert_eq!(pool.metrics().drain_dispatch_into(&mut hist), 0);
        assert_eq!(hist.count(), 16);
        // Disabling mid-life keeps the counters balanced.
        pool.metrics().set_enabled(false);
        pool.run_region(8, &|_| {});
        assert_eq!(pool.metrics().snapshot().total_tasks(), 16);
        assert_eq!(pool.metrics().snapshot().queue_depth, 0);
    }

    #[test]
    fn borrowed_state_is_visible_and_mutations_survive() {
        let pool = WorkerPool::new(4);
        let cells: Vec<Mutex<u64>> = (0..16).map(|i| Mutex::new(i as u64)).collect();
        pool.run_region(16, &|i| {
            *lock_unpoisoned(&cells[i]) += 100;
        });
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(*lock_unpoisoned(cell), i as u64 + 100);
        }
    }
}
