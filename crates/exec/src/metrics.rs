//! Worker-pool metrics: per-worker busy/idle time, task counts, dispatch
//! latency, and queue depth, collected without locks on the hot path.
//!
//! Everything here is relaxed atomics and fixed, preallocated storage:
//!
//! * each worker owns a [`WorkerStats`] row (busy/idle nanoseconds, task
//!   count, and a lossy single-producer ring of dispatch-latency samples),
//!   written only by that worker with relaxed stores;
//! * the submitter maintains the queue depth (incremented per task at
//!   submit, decremented by the dequeuing worker) and its peak via
//!   `fetch_max`;
//! * recording is gated on one [`AtomicBool`]: with metrics disabled the
//!   pool pays a single relaxed load per region and per dequeue, and never
//!   reads the clock.
//!
//! The rings are drained — into an integer
//! [`Histogram`], workers folded in index
//! order — by whoever snapshots the pool (the runner's sink cadence,
//! `bench-report`, the scale sweep). A full ring overwrites its oldest
//! samples and counts them as dropped rather than ever blocking a worker.
//! None of this feeds back into scheduling or results: pool metrics are
//! observation only, and the golden-trajectory pins run with them enabled.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use agsfl_telemetry::Histogram;

/// Dispatch-latency samples retained per worker between drains.
const RING_SLOTS: usize = 1024;

/// A lossy single-producer ring of `u64` samples.
///
/// The owning worker pushes with relaxed stores; the (single) drainer
/// reads the youngest `RING_SLOTS` samples and advances its cursor. A
/// concurrent push may overwrite a slot mid-drain — the drain then sees
/// the newer sample, which is acceptable for latency histograms and keeps
/// the producer wait-free.
#[derive(Debug)]
struct SampleRing {
    slots: Vec<AtomicU64>,
    /// Total samples ever pushed (writer-owned).
    head: AtomicU64,
    /// Total samples consumed or dropped (drainer-owned).
    cursor: AtomicU64,
}

impl SampleRing {
    fn new() -> Self {
        Self {
            slots: (0..RING_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicU64::new(0),
            cursor: AtomicU64::new(0),
        }
    }

    /// Worker-side push: one store and one counter bump, never blocks.
    fn push(&self, sample: u64) {
        let h = self.head.load(Ordering::Relaxed);
        self.slots[(h % RING_SLOTS as u64) as usize].store(sample, Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Drains every sample since the last drain into `hist`, returning how
    /// many were overwritten before they could be read.
    fn drain_into(&self, hist: &mut Histogram) -> u64 {
        let head = self.head.load(Ordering::Acquire);
        let cursor = self.cursor.load(Ordering::Relaxed);
        let start = cursor.max(head.saturating_sub(RING_SLOTS as u64));
        for i in start..head {
            hist.record(self.slots[(i % RING_SLOTS as u64) as usize].load(Ordering::Relaxed));
        }
        self.cursor.store(head, Ordering::Relaxed);
        start - cursor
    }
}

/// One worker's cumulative accounting, written only by that worker.
#[derive(Debug)]
pub struct WorkerStats {
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    tasks: AtomicU64,
    ring: SampleRing,
}

impl WorkerStats {
    fn new() -> Self {
        Self {
            busy_ns: AtomicU64::new(0),
            idle_ns: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            ring: SampleRing::new(),
        }
    }

    /// Adds nanoseconds spent executing a task.
    pub(crate) fn add_busy_ns(&self, ns: u64) {
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        self.tasks.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds nanoseconds spent blocked waiting for work.
    pub(crate) fn add_idle_ns(&self, ns: u64) {
        self.idle_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one dispatch latency sample (submit → dequeue).
    pub(crate) fn record_dispatch_ns(&self, ns: u64) {
        self.ring.push(ns);
    }
}

/// Shared pool metrics: the enable gate, queue-depth accounting, and one
/// [`WorkerStats`] row per worker.
#[derive(Debug)]
pub struct PoolMetrics {
    enabled: AtomicBool,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    workers: Vec<WorkerStats>,
}

impl PoolMetrics {
    pub(crate) fn new(workers: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            queue_depth: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            workers: (0..workers).map(|_| WorkerStats::new()).collect(),
        }
    }

    /// Whether recording is on. The hot path's only unconditional cost.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Safe at any time; per-task accounting is
    /// keyed on the submit-time decision, so depth increments and
    /// decrements stay paired across a flip.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Submitter-side: one task entered the queue.
    pub(crate) fn task_submitted(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Worker-side: one instrumented task left the queue.
    pub(crate) fn task_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn worker(&self, index: usize) -> &WorkerStats {
        &self.workers[index]
    }

    /// A point-in-time copy of every cumulative counter.
    pub fn snapshot(&self) -> PoolMetricsSnapshot {
        PoolMetricsSnapshot {
            workers: self
                .workers
                .iter()
                .map(|w| WorkerCounters {
                    busy_ns: w.busy_ns.load(Ordering::Relaxed),
                    idle_ns: w.idle_ns.load(Ordering::Relaxed),
                    tasks: w.tasks.load(Ordering::Relaxed),
                })
                .collect(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_peak.load(Ordering::Relaxed),
        }
    }

    /// Drains every worker's dispatch-latency ring into `hist`, folding
    /// workers in index order, and returns how many samples were lost to
    /// ring overwrites since the previous drain.
    pub fn drain_dispatch_into(&self, hist: &mut Histogram) -> u64 {
        self.workers.iter().map(|w| w.ring.drain_into(hist)).sum()
    }
}

/// Cumulative counters of one worker at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// Nanoseconds spent blocked waiting for work (while metrics were on).
    pub idle_ns: u64,
    /// Tasks executed.
    pub tasks: u64,
}

/// A point-in-time view of the pool's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolMetricsSnapshot {
    /// Per-worker counters, in worker index order.
    pub workers: Vec<WorkerCounters>,
    /// Tasks currently queued (submitted, not yet dequeued).
    pub queue_depth: u64,
    /// Largest queue depth ever observed.
    pub queue_depth_peak: u64,
}

impl PoolMetricsSnapshot {
    /// Summed busy nanoseconds across workers.
    pub fn total_busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Summed idle nanoseconds across workers.
    pub fn total_idle_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.idle_ns).sum()
    }

    /// Tasks executed across workers.
    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks).sum()
    }

    /// Fraction of observed worker time spent executing tasks
    /// (`busy / (busy + idle)`); 0 before any accounting.
    pub fn busy_fraction(&self) -> f64 {
        let busy = self.total_busy_ns() as f64;
        let idle = self.total_idle_ns() as f64;
        if busy + idle == 0.0 {
            0.0
        } else {
            busy / (busy + idle)
        }
    }

    /// Chunk-imbalance ratio: the busiest worker's busy time over the mean
    /// busy time (1.0 = perfectly balanced chunks; 0 before any work).
    pub fn imbalance_ratio(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        let max = self.workers.iter().map(|w| w.busy_ns).max().unwrap_or(0) as f64;
        let mean = self.total_busy_ns() as f64 / self.workers.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_the_default() {
        let m = PoolMetrics::new(2);
        assert!(!m.enabled());
        m.set_enabled(true);
        assert!(m.enabled());
    }

    #[test]
    fn queue_depth_tracks_submissions_and_peak() {
        let m = PoolMetrics::new(1);
        m.task_submitted();
        m.task_submitted();
        m.task_dequeued();
        let snap = m.snapshot();
        assert_eq!(snap.queue_depth, 1);
        assert_eq!(snap.queue_depth_peak, 2);
    }

    #[test]
    fn worker_counters_and_fractions() {
        let m = PoolMetrics::new(2);
        m.worker(0).add_busy_ns(300);
        m.worker(0).add_idle_ns(100);
        m.worker(1).add_busy_ns(100);
        m.worker(1).add_idle_ns(300);
        let snap = m.snapshot();
        assert_eq!(snap.total_busy_ns(), 400);
        assert_eq!(snap.total_idle_ns(), 400);
        assert_eq!(snap.total_tasks(), 2);
        assert!((snap.busy_fraction() - 0.5).abs() < 1e-12);
        // Busiest worker did 300 of a 200 mean: ratio 1.5.
        assert!((snap.imbalance_ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ring_drains_once_and_counts_overwrites() {
        let m = PoolMetrics::new(1);
        for i in 0..10u64 {
            m.worker(0).record_dispatch_ns(i);
        }
        let mut hist = Histogram::new();
        assert_eq!(m.drain_dispatch_into(&mut hist), 0);
        assert_eq!(hist.count(), 10);
        // Nothing new: second drain is empty.
        let mut again = Histogram::new();
        assert_eq!(m.drain_dispatch_into(&mut again), 0);
        assert!(again.is_empty());
        // Overflow the ring: the oldest samples are counted as dropped.
        for i in 0..(RING_SLOTS as u64 + 7) {
            m.worker(0).record_dispatch_ns(i);
        }
        let mut third = Histogram::new();
        assert_eq!(m.drain_dispatch_into(&mut third), 7);
        assert_eq!(third.count(), RING_SLOTS as u64);
    }
}
