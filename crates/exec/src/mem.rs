//! Process resident-memory probes.
//!
//! The scale experiments (`figures::scale_sweep` in `agsfl-core`, the
//! bounded-RSS smoke step in `scripts/verify.sh`) and the benchmark
//! reporter need to *observe* server memory, not model it: the whole point
//! of the streamed cohort engine is that a million-client round runs in
//! `O(cohort · k)` resident memory, and only the OS can attest to that.
//!
//! Both probes read `/proc/self/status` on Linux. On any other platform
//! they are compiled to return `None` without touching the filesystem, and
//! even on Linux a failed read (procfs unmounted, sandboxed, or a field
//! missing) degrades to `None` rather than panicking. Callers must degrade
//! gracefully — print `null`/`n/a`, skip the assertion — so `scale_sweep`,
//! `million_clients --smoke`, and `bench-report` keep working off-procfs.

/// Current resident set size of this process in bytes (`VmRSS`), or `None`
/// if the platform does not expose `/proc/self/status` (non-Linux, or a
/// Linux environment where procfs is unavailable).
///
/// # Examples
///
/// ```
/// if let Some(rss) = agsfl_exec::mem::current_rss_bytes() {
///     assert!(rss > 0);
/// }
/// ```
pub fn current_rss_bytes() -> Option<u64> {
    status_field("VmRSS:").map(|kib| kib * 1024)
}

/// Peak resident set size of this process in bytes (`VmHWM`, the
/// high-water mark since process start), or `None` if unavailable.
///
/// Note the kernel never lowers this value; per-phase deltas need
/// [`current_rss_bytes`] samples instead.
pub fn peak_rss_bytes() -> Option<u64> {
    status_field("VmHWM:").map(|kib| kib * 1024)
}

/// Number of OS threads in this process (`Threads`), or `None` if
/// unavailable. The pool lifecycle tests use this to assert that the
/// persistent worker pool is spawned once and *reused* — the count stays
/// flat across rounds instead of growing with every parallel region.
pub fn thread_count() -> Option<u64> {
    // The `Threads` field has no `kB` suffix; the shared parser's suffix
    // strip is a no-op on it.
    status_field("Threads:")
}

/// Reads a numeric field from `/proc/self/status` (stripping a trailing
/// `kB` unit when present). Every failure
/// mode — unreadable file, absent field, malformed number — is `None`.
#[cfg(target_os = "linux")]
fn status_field(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// Non-Linux fallback: there is no procfs to consult, so the probes report
/// `None` without any filesystem traffic.
#[cfg(not(target_os = "linux"))]
fn status_field(_key: &str) -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_report_plausible_values_on_linux() {
        // On Linux both fields exist and peak >= current > 0; elsewhere the
        // probes must simply return None instead of panicking.
        match (current_rss_bytes(), peak_rss_bytes()) {
            (Some(rss), Some(peak)) => {
                assert!(rss > 0);
                assert!(peak >= rss, "peak {peak} < current {rss}");
            }
            (None, None) => {}
            other => panic!("probes disagree about procfs availability: {other:?}"),
        }
    }

    #[test]
    fn rss_grows_when_memory_is_held() {
        let Some(before) = current_rss_bytes() else {
            return; // no procfs on this platform
        };
        let held = vec![1u8; 64 << 20];
        // Regression: this used to `.expect("procfs vanished mid-test")` —
        // the one panic path in the module. A mid-test read failure now
        // just ends the test instead of aborting the suite.
        let Some(after) = current_rss_bytes() else {
            return;
        };
        assert!(
            after >= before + (32 << 20),
            "rss {after} did not grow over {before} while holding 64 MiB"
        );
        drop(held);
    }

    #[test]
    fn probes_never_panic() {
        // The public contract is Option, never a panic: calling both probes
        // repeatedly must be safe on every platform.
        for _ in 0..4 {
            let _ = current_rss_bytes();
            let _ = peak_rss_bytes();
        }
    }
}
