//! Process resident-memory probes.
//!
//! The scale experiments (`figures::scale_sweep` in `agsfl-core`, the
//! bounded-RSS smoke step in `scripts/verify.sh`) and the benchmark
//! reporter need to *observe* server memory, not model it: the whole point
//! of the streamed cohort engine is that a million-client round runs in
//! `O(cohort · k)` resident memory, and only the OS can attest to that.
//!
//! Both probes read `/proc/self/status` (Linux). On platforms without
//! procfs they return `None`; callers must degrade gracefully (print
//! `n/a`, skip the assertion) rather than fail, so the workspace stays
//! portable.

/// Current resident set size of this process in bytes (`VmRSS`), or `None`
/// if the platform does not expose `/proc/self/status`.
///
/// # Examples
///
/// ```
/// if let Some(rss) = agsfl_exec::mem::current_rss_bytes() {
///     assert!(rss > 0);
/// }
/// ```
pub fn current_rss_bytes() -> Option<u64> {
    status_field_kib("VmRSS:").map(|kib| kib * 1024)
}

/// Peak resident set size of this process in bytes (`VmHWM`, the
/// high-water mark since process start), or `None` if unavailable.
///
/// Note the kernel never lowers this value; per-phase deltas need
/// [`current_rss_bytes`] samples instead.
pub fn peak_rss_bytes() -> Option<u64> {
    status_field_kib("VmHWM:").map(|kib| kib * 1024)
}

/// Reads a `kB`-denominated field from `/proc/self/status`.
fn status_field_kib(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_report_plausible_values_on_linux() {
        // On Linux both fields exist and peak >= current > 0; elsewhere the
        // probes must simply return None instead of panicking.
        match (current_rss_bytes(), peak_rss_bytes()) {
            (Some(rss), Some(peak)) => {
                assert!(rss > 0);
                assert!(peak >= rss, "peak {peak} < current {rss}");
            }
            (None, None) => {}
            other => panic!("probes disagree about procfs availability: {other:?}"),
        }
    }

    #[test]
    fn rss_grows_when_memory_is_held() {
        let Some(before) = current_rss_bytes() else {
            return; // no procfs on this platform
        };
        let held = vec![1u8; 64 << 20];
        let after = current_rss_bytes().expect("procfs vanished mid-test");
        assert!(
            after >= before + (32 << 20),
            "rss {after} did not grow over {before} while holding 64 MiB"
        );
        drop(held);
    }
}
