//! Deterministic parallel execution for the AGSFL workspace.
//!
//! Every parallel region in the workspace — the fused per-client
//! gradient/upload pass, the probe-loss sweep and the sharded server
//! selection in `agsfl-sparse` — runs through one [`Executor`], a chunked
//! scoped-thread runner configured once per simulation from a
//! [`Parallelism`] knob and reused every round.
//!
//! # Determinism and thread safety
//!
//! Parallelism must never change results: the repository's load-bearing
//! invariant is *identical seeds → identical runs, independent of thread
//! count*. The executor guarantees its share of that invariant
//! structurally rather than by luck:
//!
//! * **Disjoint mutable state.** Every primitive hands each worker a
//!   disjoint `&mut` chunk of the input slice (clients, shards, reset
//!   buffers). There is no shared mutable state, no locks and no atomics;
//!   the borrow checker proves non-interference at compile time (the
//!   whole workspace is `#![forbid(unsafe_code)]`).
//! * **Owned per-item randomness.** Each federated client owns its private
//!   RNG and mini-batch sampler, so applying a closure to clients in any
//!   interleaving draws exactly the same random streams as a sequential
//!   loop.
//! * **Ordered results.** [`Executor::map_mut`]/[`Executor::map_ref`]
//!   concatenate per-chunk outputs in chunk order, which is input order —
//!   a parallel map returns the same `Vec` a serial `iter().map()` would.
//! * **Exact merges downstream.** Consumers that reduce across workers
//!   (the selection shards in `agsfl-sparse`) only merge values whose
//!   reduction is exact — integer histograms, minima, and index sets — or
//!   partition the floating-point work by coordinate so every sum is
//!   evaluated in the serial accumulation order. No floating-point
//!   reassociation ever happens behind the caller's back.
//!
//! The worker pool is rebuilt per parallel region with
//! [`std::thread::scope`]: scoped spawning is the only way in safe `std`
//! to run borrowed closures on other threads, and it lets the executor
//! stay a trivially copyable configuration object. The executor therefore
//! *persists* (it is created once and reused every round), while the OS
//! threads are cheap per-region spawns; regions are deliberately coarse
//! (one per round phase) to amortize them.
//!
//! # Serial fallback
//!
//! A region falls back to an in-place sequential loop when the executor
//! has one thread or when there are fewer than [`Executor::min_items`]
//! work items (default [`DEFAULT_MIN_ITEMS`]) — tiny test simulations with
//! a handful of clients should not pay thread spawns. The fallback runs
//! the *same closures on the same data in the same order*, so it is
//! observationally identical to the parallel path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mem;

use std::num::NonZeroUsize;

use serde::{Deserialize, Serialize};

/// How many worker threads a simulation should use.
///
/// This is the serializable configuration knob threaded through
/// `ExperimentConfig` and `SimulationConfig`; resolve it to a concrete
/// [`Executor`] with [`Parallelism::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Parallelism {
    /// Use every core the OS reports ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
    /// Run everything on the calling thread.
    Serial,
    /// Use exactly this many threads (`0` is treated as `1`).
    Threads(usize),
}

impl Parallelism {
    /// The concrete thread count this policy resolves to on this machine.
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Builds the executor for this policy with the default
    /// [`Executor::min_items`] threshold.
    pub fn build(self) -> Executor {
        Executor::new(self.resolve())
    }
}

/// Default parallelism threshold: regions with fewer work items than this
/// run serially. Matches the historical `clients.len() < 4` fallback of the
/// simulator's ad-hoc `run_parallel`, but now lives in the executor
/// configuration instead of being hard-coded at one call site.
pub const DEFAULT_MIN_ITEMS: usize = 4;

/// A chunked scoped-thread executor.
///
/// Configuration-only: holds a thread count and a minimum work-item
/// threshold, and spawns scoped workers per parallel region. Copy it
/// freely; see the crate docs for the determinism argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
    min_items: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::auto()
    }
}

impl Executor {
    /// An executor with exactly `threads` workers (`0` is treated as `1`)
    /// and the default [`DEFAULT_MIN_ITEMS`] serial-fallback threshold.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            min_items: DEFAULT_MIN_ITEMS,
        }
    }

    /// A single-threaded executor: every region runs as a plain loop.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// An executor sized to the machine ([`Parallelism::Auto`]).
    pub fn auto() -> Self {
        Parallelism::Auto.build()
    }

    /// Overrides the serial-fallback threshold: regions with fewer than
    /// `min_items` work items run on the calling thread.
    pub fn with_min_items(mut self, min_items: usize) -> Self {
        self.min_items = min_items;
        self
    }

    /// Number of worker threads parallel regions may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The serial-fallback threshold (see [`Executor::with_min_items`]).
    pub fn min_items(&self) -> usize {
        self.min_items
    }

    /// Whether this executor never spawns (one thread).
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// The fallback policy in one place: whether a region over `items` work
    /// items is worth spawning for — multiple threads, at least
    /// [`Executor::min_items`] items, and at least one item. Callers that
    /// return `false` here must run their serial (bit-identical) path.
    pub fn should_parallelize(&self, items: usize) -> bool {
        self.threads > 1 && items >= self.min_items && items > 0
    }

    /// Threads a region over `len` items should actually use.
    fn plan(&self, len: usize) -> usize {
        if self.threads <= 1 || len < self.min_items {
            1
        } else {
            self.threads.min(len)
        }
    }

    /// Applies `f` to every item of `items`, splitting the slice across
    /// threads in contiguous chunks. Results are returned **in item
    /// order**, exactly as a sequential `iter_mut().map(f).collect()`.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        let threads = self.plan(items.len());
        if threads <= 1 {
            return items.iter_mut().map(f).collect();
        }
        let chunk = items.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = items
                .chunks_mut(chunk)
                .map(|chunk| scope.spawn(move || chunk.iter_mut().map(f).collect::<Vec<R>>()))
                .collect();
            let mut out = Vec::with_capacity(handles.len() * chunk);
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            out
        })
    }

    /// Read-only sibling of [`Executor::map_mut`]: applies `f` to every
    /// item of a shared slice, returning results in item order.
    pub fn map_ref<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let threads = self.plan(items.len());
        if threads <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            let mut out = Vec::with_capacity(items.len());
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_mut_preserves_order_for_any_thread_count() {
        let expected: Vec<i64> = (0..97).map(|i| i * i).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let mut items: Vec<i64> = (0..97).collect();
            let exec = Executor::new(threads).with_min_items(1);
            let got = exec.map_mut(&mut items, |x| {
                *x *= 1; // exercise the &mut access
                *x * *x
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_ref_preserves_order() {
        let items: Vec<usize> = (0..31).collect();
        let exec = Executor::new(4).with_min_items(1);
        assert_eq!(
            exec.map_ref(&items, |&x| x + 1),
            (1..32).collect::<Vec<usize>>()
        );
    }

    #[test]
    fn min_items_threshold_falls_back_to_serial() {
        // With the default threshold, a 3-item region must not spawn: the
        // closure observes it runs on the calling thread.
        let caller = std::thread::current().id();
        let mut items = [0u8; 3];
        let exec = Executor::new(8);
        assert_eq!(exec.min_items(), DEFAULT_MIN_ITEMS);
        exec.map_mut(&mut items, |_| {
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn parallelism_resolves_sensibly() {
        assert_eq!(Parallelism::Serial.resolve(), 1);
        assert_eq!(Parallelism::Threads(0).resolve(), 1);
        assert_eq!(Parallelism::Threads(6).resolve(), 6);
        assert!(Parallelism::Auto.resolve() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
        assert!(Executor::new(0).is_serial());
        assert!(!Executor::new(2).is_serial());
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let exec = Executor::new(4).with_min_items(1);
        let mut empty: Vec<u32> = Vec::new();
        assert!(exec.map_mut(&mut empty, |x| *x).is_empty());
        let mut one = vec![5u32];
        assert_eq!(exec.map_mut(&mut one, |x| *x + 1), vec![6]);
    }

    #[test]
    fn worker_panics_propagate_with_payload() {
        let exec = Executor::new(4).with_min_items(1);
        let mut items: Vec<usize> = (0..16).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.map_mut(&mut items, |&mut x| {
                assert!(x != 11, "boom at {x}");
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("assert message preserved");
        assert!(msg.contains("boom at 11"), "{msg}");
    }
}
