//! Deterministic parallel execution for the AGSFL workspace.
//!
//! Every parallel region in the workspace — the fused per-client
//! gradient/upload pass, the probe-loss sweep and the sharded server
//! selection in `agsfl-sparse` — runs through one [`Executor`], configured
//! once per simulation from a [`Parallelism`] knob and reused every round.
//! The executor owns a lazily spawned, **persistent** [`pool::WorkerPool`]:
//! worker threads are created on the first parallel region and fed over a
//! channel from then on, so a region costs a few channel sends and one
//! condition-variable wait instead of a full `std::thread::scope`
//! spawn/join cycle (see `pool_dispatch` in `BENCH_kernels.json` for the
//! measured gap).
//!
//! # Determinism and thread safety
//!
//! Parallelism must never change results: the repository's load-bearing
//! invariant is *identical seeds → identical runs, independent of thread
//! count*. The executor guarantees its share of that invariant
//! structurally rather than by luck:
//!
//! * **Disjoint mutable state.** Every primitive hands each worker a
//!   disjoint `&mut` chunk of the input slice (clients, shards, reset
//!   buffers). Chunks are passed through take-once slots, so no two workers
//!   can observe the same chunk; there is no other shared mutable state.
//! * **Owned per-item randomness.** Each federated client owns its private
//!   RNG and mini-batch sampler, so applying a closure to clients in any
//!   interleaving draws exactly the same random streams as a sequential
//!   loop.
//! * **Ordered results.** [`Executor::map_mut`]/[`Executor::map_ref`]
//!   concatenate per-chunk outputs in chunk order, which is input order —
//!   a parallel map returns the same `Vec` a serial `iter().map()` would.
//!   [`Executor::pipeline_mut`] extends the same guarantee to overlapped
//!   stages: producers run on the pool in any order, but the consumer runs
//!   on the calling thread in strict item order over an index-ordered
//!   completion queue.
//! * **Exact merges downstream.** Consumers that reduce across workers
//!   (the selection shards in `agsfl-sparse`) only merge values whose
//!   reduction is exact — integer histograms, minima, and index sets — or
//!   partition the floating-point work by coordinate so every sum is
//!   evaluated in the serial accumulation order. No floating-point
//!   reassociation ever happens behind the caller's back.
//!
//! The pool replaces the per-region scoped spawn with the generation
//! handshake documented in [`pool`]: the submitter blocks until every task
//! of its generation has completed, which is the same borrow-outlives-use
//! proof `std::thread::scope` provides structurally. The historical scoped
//! path survives as [`Executor::map_mut_scoped`]/
//! [`Executor::map_ref_scoped`] — the executable spec the pool path is
//! pinned against in tests, and the benchmark baseline for the dispatch
//! overhead pair.
//!
//! Nested regions — a worker that itself calls an executor primitive, for
//! example the row-parallel CNN forward invoked from inside a sharded
//! evaluation sweep — run inline on that worker (bit-identical; see
//! [`pool::on_worker_thread`]), so the pool can never wait on itself.
//!
//! # Serial fallback
//!
//! A region falls back to an in-place sequential loop when the executor
//! has one thread or when there are fewer than [`Executor::min_items`]
//! work items (default [`DEFAULT_MIN_ITEMS`]) — tiny test simulations with
//! a handful of clients should not pay dispatch. The fallback runs the
//! *same closures on the same data in the same order*, so it is
//! observationally identical to the parallel path.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod mem;
pub mod metrics;
pub mod pool;

use std::num::NonZeroUsize;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use metrics::PoolMetricsSnapshot;
use pool::WorkerPool;

/// How many worker threads a simulation should use.
///
/// This is the serializable configuration knob threaded through
/// `ExperimentConfig` and `SimulationConfig`; resolve it to a concrete
/// [`Executor`] with [`Parallelism::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Parallelism {
    /// Use every core the OS reports ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
    /// Run everything on the calling thread.
    Serial,
    /// Use exactly this many threads (`0` is treated as `1`).
    Threads(usize),
}

impl Parallelism {
    /// The concrete thread count this policy resolves to on this machine.
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Builds the executor for this policy with the default
    /// [`Executor::min_items`] threshold.
    pub fn build(self) -> Executor {
        Executor::new(self.resolve())
    }
}

/// Default parallelism threshold: regions with fewer work items than this
/// run serially. Matches the historical `clients.len() < 4` fallback of the
/// simulator's ad-hoc `run_parallel`, but now lives in the executor
/// configuration instead of being hard-coded at one call site.
pub const DEFAULT_MIN_ITEMS: usize = 4;

/// How many chunks per worker [`Executor::pipeline_mut`] splits its input
/// into: finer chunks than the plain maps so the in-order consumer starts
/// draining while later chunks are still producing.
const PIPELINE_CHUNKS_PER_WORKER: usize = 4;

/// A chunked parallel executor over a persistent worker pool.
///
/// Holds a thread count, a minimum work-item threshold, and a lazily
/// spawned [`pool::WorkerPool`] shared by every clone. Cloning is cheap
/// (an `Arc` bump); the pool's workers are joined when the last clone is
/// dropped. See the crate docs for the determinism argument.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
    min_items: usize,
    /// The shared pool, spawned by the first parallel region. `Executor`s
    /// that never parallelize (serial config, tiny inputs) never spawn a
    /// thread.
    pool: Arc<OnceLock<WorkerPool>>,
}

impl PartialEq for Executor {
    fn eq(&self, other: &Self) -> bool {
        // Configuration equality; the pool is an implementation detail.
        self.threads == other.threads && self.min_items == other.min_items
    }
}

impl Eq for Executor {}

impl Default for Executor {
    fn default() -> Self {
        Executor::auto()
    }
}

impl Executor {
    /// An executor with exactly `threads` workers (`0` is treated as `1`)
    /// and the default [`DEFAULT_MIN_ITEMS`] serial-fallback threshold.
    ///
    /// No threads are spawned until the first region actually
    /// parallelizes.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            min_items: DEFAULT_MIN_ITEMS,
            pool: Arc::new(OnceLock::new()),
        }
    }

    /// A single-threaded executor: every region runs as a plain loop.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// An executor sized to the machine ([`Parallelism::Auto`]).
    pub fn auto() -> Self {
        Parallelism::Auto.build()
    }

    /// Overrides the serial-fallback threshold: regions with fewer than
    /// `min_items` work items run on the calling thread. The returned
    /// executor shares this executor's worker pool.
    pub fn with_min_items(mut self, min_items: usize) -> Self {
        self.min_items = min_items;
        self
    }

    /// Number of worker threads parallel regions may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The serial-fallback threshold (see [`Executor::with_min_items`]).
    pub fn min_items(&self) -> usize {
        self.min_items
    }

    /// Whether this executor never spawns (one thread).
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Whether the persistent pool has been spawned yet (it is created by
    /// the first region that parallelizes and reused from then on).
    pub fn pool_started(&self) -> bool {
        self.pool.get().is_some()
    }

    /// Regions submitted to the pool so far, across every clone of this
    /// executor (`0` before the pool starts). Diagnostic: lifecycle tests
    /// assert the pool is reused, not respawned.
    pub fn pool_generations(&self) -> u64 {
        self.pool.get().map_or(0, WorkerPool::generations)
    }

    /// Turns the worker pool's observation-only metrics (per-worker
    /// busy/idle time, dispatch-latency samples, queue depth) on or off.
    ///
    /// Enabling on a multi-threaded executor spawns the pool if it has not
    /// started yet — metrics only exist on the pool, and a caller that
    /// enables them is about to use it. A serial executor has no pool and
    /// this is a no-op. Metrics never affect scheduling or results; the
    /// golden-trajectory pins run with them enabled.
    pub fn set_metrics_enabled(&self, on: bool) {
        if self.is_serial() {
            return;
        }
        self.pool().metrics().set_enabled(on);
    }

    /// Whether pool metrics are currently being recorded.
    pub fn metrics_enabled(&self) -> bool {
        self.pool.get().is_some_and(|p| p.metrics().enabled())
    }

    /// A point-in-time copy of the pool's cumulative metrics counters, or
    /// `None` if the pool has not been spawned (serial executors, or no
    /// region has parallelized yet).
    pub fn pool_metrics(&self) -> Option<PoolMetricsSnapshot> {
        self.pool.get().map(|p| p.metrics().snapshot())
    }

    /// Drains every worker's dispatch-latency ring into `hist` (workers
    /// folded in index order), returning how many samples were lost to
    /// ring overwrites since the previous drain. `0` when the pool has not
    /// started.
    pub fn drain_dispatch_latency(&self, hist: &mut agsfl_telemetry::Histogram) -> u64 {
        self.pool
            .get()
            .map_or(0, |p| p.metrics().drain_dispatch_into(hist))
    }

    /// The fallback policy in one place: whether a region over `items` work
    /// items is worth dispatching — multiple threads, at least
    /// [`Executor::min_items`] items, and at least one item. Callers that
    /// return `false` here must run their serial (bit-identical) path.
    pub fn should_parallelize(&self, items: usize) -> bool {
        self.threads > 1 && items >= self.min_items && items > 0
    }

    /// Threads a region over `len` items should actually use.
    fn plan(&self, len: usize) -> usize {
        if self.threads <= 1 || len < self.min_items {
            1
        } else {
            self.threads.min(len)
        }
    }

    /// The shared pool, spawning it on first use.
    fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| WorkerPool::new(self.threads))
    }

    /// Applies `f` to every item of `items`, splitting the slice across
    /// the pool's workers in contiguous chunks. Results are returned **in
    /// item order**, exactly as a sequential `iter_mut().map(f).collect()`.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        let threads = self.plan(items.len());
        if threads <= 1 || pool::on_worker_thread() {
            return items.iter_mut().map(f).collect();
        }
        let total = items.len();
        let chunk = total.div_ceil(threads);
        let pool = self.pool();
        // Take-once chunk slots plus one ordered result slot per chunk:
        // the ordered completion queue that makes the parallel map
        // indistinguishable from the serial one.
        let chunks: Vec<Mutex<Option<&mut [T]>>> = items
            .chunks_mut(chunk)
            .map(|c| Mutex::new(Some(c)))
            .collect();
        let results: Vec<Mutex<Option<Vec<R>>>> =
            (0..chunks.len()).map(|_| Mutex::new(None)).collect();
        let f = &f;
        let task = |i: usize| {
            let chunk = lock(&chunks[i]).take().expect("chunk dispatched once");
            let out: Vec<R> = chunk.iter_mut().map(f).collect();
            *lock(&results[i]) = Some(out);
        };
        pool.run_region(chunks.len(), &task);
        let mut out = Vec::with_capacity(total);
        for slot in results {
            out.extend(
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .expect("completed region filled every slot"),
            );
        }
        out
    }

    /// Read-only sibling of [`Executor::map_mut`]: applies `f` to every
    /// item of a shared slice, returning results in item order.
    pub fn map_ref<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let threads = self.plan(items.len());
        if threads <= 1 || pool::on_worker_thread() {
            return items.iter().map(f).collect();
        }
        let total = items.len();
        let chunk = total.div_ceil(threads);
        let pool = self.pool();
        let chunks: Vec<&[T]> = items.chunks(chunk).collect();
        let results: Vec<Mutex<Option<Vec<R>>>> =
            (0..chunks.len()).map(|_| Mutex::new(None)).collect();
        let f = &f;
        let task = |i: usize| {
            let out: Vec<R> = chunks[i].iter().map(f).collect();
            *lock(&results[i]) = Some(out);
        };
        pool.run_region(chunks.len(), &task);
        let mut out = Vec::with_capacity(total);
        for slot in results {
            out.extend(
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .expect("completed region filled every slot"),
            );
        }
        out
    }

    /// Overlapped producer/consumer over one slice: `produce` runs on the
    /// pool's workers (chunked, any order), while `consume` runs on the
    /// calling thread **in strict item order** as chunks complete — an
    /// index-ordered completion queue buffers out-of-order chunks.
    ///
    /// Bit-identical to the serial interleaving
    /// `for (i, item) { let r = produce(item); consume(i, item, r) }`
    /// whenever `produce` is a pure per-item function (no cross-item
    /// state), because the consumer observes items and results in exactly
    /// that order. This is the primitive behind the round engine's
    /// client-encode → server-decode stage overlap.
    ///
    /// Falls back to the serial interleaving on one thread, under
    /// [`Executor::min_items`], or on a pool worker.
    pub fn pipeline_mut<T, R, F, C>(&self, items: &mut [T], produce: F, mut consume: C)
    where
        T: Send,
        R: Send,
        F: Fn(&mut T) -> R + Sync,
        C: FnMut(usize, &mut T, R),
    {
        let threads = self.plan(items.len());
        if threads <= 1 || pool::on_worker_thread() {
            for (index, item) in items.iter_mut().enumerate() {
                let produced = produce(item);
                consume(index, item, produced);
            }
            return;
        }
        let total = items.len();
        let n_chunks = total.min(threads * PIPELINE_CHUNKS_PER_WORKER);
        let chunk = total.div_ceil(n_chunks);
        let pool = self.pool();

        // Messages flow from producers back to this thread: the finished
        // chunk index, the chunk's exclusive borrow (handed back so the
        // consumer may mutate items the producers are done with), and the
        // per-item results — or the panic payload of a failed chunk.
        enum PipeMsg<'a, T, R> {
            Done(usize, &'a mut [T], Vec<R>),
            Failed(Box<dyn std::any::Any + Send + 'static>),
        }
        let chunks: Vec<Mutex<Option<&mut [T]>>> = items
            .chunks_mut(chunk)
            .map(|c| Mutex::new(Some(c)))
            .collect();
        let n = chunks.len();
        let (tx, rx) = channel::<PipeMsg<'_, T, R>>();
        let produce = &produce;
        let task = |i: usize| {
            let chunk = lock(&chunks[i]).take().expect("chunk dispatched once");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut out = Vec::with_capacity(chunk.len());
                for item in chunk.iter_mut() {
                    out.push(produce(item));
                }
                out
            }));
            // Failures are reported through the queue rather than the
            // region, so the in-order consumer below can keep draining
            // and the submitter re-raises after the region completes.
            let msg = match outcome {
                Ok(out) => PipeMsg::Done(i, chunk, out),
                Err(payload) => PipeMsg::Failed(payload),
            };
            let _ = tx.send(msg);
        };
        let handle = pool.submit_region(n, &task);
        let mut pending: std::collections::BTreeMap<usize, (&mut [T], Vec<R>)> =
            std::collections::BTreeMap::new();
        let mut next = 0usize;
        let mut consumed_base = 0usize;
        let mut failure: Option<Box<dyn std::any::Any + Send + 'static>> = None;
        for _ in 0..n {
            match rx.recv() {
                Ok(PipeMsg::Done(i, chunk, out)) => {
                    pending.insert(i, (chunk, out));
                    while failure.is_none() {
                        let Some((chunk, out)) = pending.remove(&next) else {
                            break;
                        };
                        for (offset, (item, produced)) in chunk.iter_mut().zip(out).enumerate() {
                            consume(consumed_base + offset, item, produced);
                        }
                        consumed_base += chunk.len();
                        next += 1;
                    }
                }
                Ok(PipeMsg::Failed(payload)) => {
                    failure.get_or_insert(payload);
                }
                Err(_) => break, // unreachable: `tx` lives on this frame
            }
        }
        handle.finish();
        if let Some(payload) = failure {
            std::panic::resume_unwind(payload);
        }
    }

    /// Runs `a` on the calling thread and `b` on a pool worker,
    /// concurrently, returning both results. The two closures must touch
    /// disjoint state (the borrow checker enforces it for borrows); since
    /// neither result depends on scheduling, the overlap cannot change
    /// bits. Falls back to `a` then `b` serially on one thread or on a
    /// pool worker — the same order the results tuple implies.
    ///
    /// A panic in either side is propagated after both sides have
    /// completed (the pool's handshake always waits for `b`).
    pub fn join<RA, RB, FA, FB>(&self, a: FA, b: FB) -> (RA, RB)
    where
        RB: Send,
        FA: FnOnce() -> RA,
        FB: FnOnce() -> RB + Send,
    {
        if self.threads <= 1 || pool::on_worker_thread() {
            return (a(), b());
        }
        let pool = self.pool();
        let b_slot: Mutex<Option<FB>> = Mutex::new(Some(b));
        let out: Mutex<Option<RB>> = Mutex::new(None);
        let task = |_i: usize| {
            let b = lock(&b_slot).take().expect("join task dispatched once");
            *lock(&out) = Some(b());
        };
        let handle = pool.submit_region(1, &task);
        // If `a` panics, `handle`'s Drop still waits for `b` before the
        // borrows above leave scope.
        let ra = a();
        handle.finish();
        let rb = out
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .expect("completed join produced a result");
        (ra, rb)
    }

    /// The historical spawn-per-region map over `std::thread::scope`,
    /// retained as the executable spec the pool path is pinned against
    /// (`pool_matches_scoped_*` tests) and as the benchmark baseline that
    /// isolates dispatch overhead (`pool_dispatch` in the bench report).
    /// Bit-identical to [`Executor::map_mut`] by construction: same
    /// chunking, same closures, results concatenated in the same order.
    pub fn map_mut_scoped<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        let threads = self.plan(items.len());
        if threads <= 1 {
            return items.iter_mut().map(f).collect();
        }
        let chunk = items.len().div_ceil(threads);
        let total = items.len();
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = items
                .chunks_mut(chunk)
                .map(|chunk| scope.spawn(move || chunk.iter_mut().map(f).collect::<Vec<R>>()))
                .collect();
            let mut out = Vec::with_capacity(total);
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            out
        })
    }

    /// Read-only sibling of [`Executor::map_mut_scoped`]; see there.
    pub fn map_ref_scoped<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let threads = self.plan(items.len());
        if threads <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            let mut out = Vec::with_capacity(items.len());
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            out
        })
    }
}

/// Poison-tolerant lock (see `pool::lock_unpoisoned`; duplicated here to
/// keep the pool module self-contained).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_mut_preserves_order_for_any_thread_count() {
        let expected: Vec<i64> = (0..97).map(|i| i * i).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let mut items: Vec<i64> = (0..97).collect();
            let exec = Executor::new(threads).with_min_items(1);
            let got = exec.map_mut(&mut items, |x| {
                *x *= 1; // exercise the &mut access
                *x * *x
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_ref_preserves_order() {
        let items: Vec<usize> = (0..31).collect();
        let exec = Executor::new(4).with_min_items(1);
        assert_eq!(
            exec.map_ref(&items, |&x| x + 1),
            (1..32).collect::<Vec<usize>>()
        );
    }

    #[test]
    fn min_items_threshold_falls_back_to_serial() {
        // With the default threshold, a 3-item region must not dispatch:
        // the closure observes it runs on the calling thread, and the pool
        // is never spawned.
        let caller = std::thread::current().id();
        let mut items = [0u8; 3];
        let exec = Executor::new(8);
        assert_eq!(exec.min_items(), DEFAULT_MIN_ITEMS);
        exec.map_mut(&mut items, |_| {
            assert_eq!(std::thread::current().id(), caller);
        });
        assert!(!exec.pool_started());
    }

    #[test]
    fn parallelism_resolves_sensibly() {
        assert_eq!(Parallelism::Serial.resolve(), 1);
        assert_eq!(Parallelism::Threads(0).resolve(), 1);
        assert_eq!(Parallelism::Threads(6).resolve(), 6);
        assert!(Parallelism::Auto.resolve() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
        assert!(Executor::new(0).is_serial());
        assert!(!Executor::new(2).is_serial());
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let exec = Executor::new(4).with_min_items(1);
        let mut empty: Vec<u32> = Vec::new();
        assert!(exec.map_mut(&mut empty, |x| *x).is_empty());
        let mut one = vec![5u32];
        assert_eq!(exec.map_mut(&mut one, |x| *x + 1), vec![6]);
    }

    // Regression: the result vector used to reserve `handles.len() * chunk`
    // elements — an over-reservation whenever `threads` does not divide
    // `len` (and a theoretical `usize` overflow) — instead of `len`. The
    // corners below pin the exact capacity for the empty slice and for
    // fewer items than threads.
    #[test]
    fn result_reservation_is_exact() {
        // len=5, threads=4 -> chunk=2, 3 chunks; old reservation was 6.
        let exec = Executor::new(4).with_min_items(1);
        let mut items: Vec<u8> = (0..5).collect();
        let out = exec.map_mut(&mut items, |x| *x);
        assert_eq!(out.len(), 5);
        assert_eq!(out.capacity(), 5, "reservation must be items.len()");
        let out = exec.map_ref(&items, |&x| x);
        assert_eq!(out.capacity(), 5, "reservation must be items.len()");
        // Scoped baseline gets the same fix.
        let out = exec.map_mut_scoped(&mut items, |x| *x);
        assert_eq!(out.capacity(), 5, "scoped reservation must be items.len()");
    }

    #[test]
    fn empty_slice_allocates_nothing_and_spawns_nothing() {
        let exec = Executor::new(8).with_min_items(0);
        let mut empty: Vec<u64> = Vec::new();
        let out = exec.map_mut(&mut empty, |x| *x);
        assert_eq!(out.capacity(), 0);
        assert!(!exec.pool_started(), "empty region must not spawn the pool");
    }

    #[test]
    fn fewer_items_than_threads_uses_one_chunk_per_item() {
        // len=2 < threads=8 with the gate lowered: 2 chunks, order kept.
        let exec = Executor::new(8).with_min_items(1);
        let mut items = vec![10u32, 20];
        let out = exec.map_mut(&mut items, |x| *x + 1);
        assert_eq!(out, vec![11, 21]);
        assert_eq!(out.capacity(), 2);
    }

    #[test]
    fn worker_panics_propagate_with_payload() {
        let exec = Executor::new(4).with_min_items(1);
        let mut items: Vec<usize> = (0..16).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.map_mut(&mut items, |&mut x| {
                assert!(x != 11, "boom at {x}");
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("assert message preserved");
        assert!(msg.contains("boom at 11"), "{msg}");
        // The executor (and its pool) stays usable after the panic.
        let got = exec.map_ref(&[1u8, 2, 3], |&x| x);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn executor_metrics_observe_without_changing_results() {
        let exec = Executor::new(2).with_min_items(1);
        // Serial executors have no pool: all metrics calls are no-ops.
        let serial = Executor::serial();
        serial.set_metrics_enabled(true);
        assert!(!serial.metrics_enabled());
        assert!(serial.pool_metrics().is_none());
        // Enabling spawns the pool and records every dispatched task.
        exec.set_metrics_enabled(true);
        assert!(exec.metrics_enabled());
        let mut items: Vec<u64> = (0..32).collect();
        let with_metrics = exec.map_mut(&mut items, |x| *x * 3);
        let snap = exec.pool_metrics().expect("pool spawned");
        assert!(snap.total_tasks() > 0);
        assert_eq!(snap.queue_depth, 0, "queue must drain");
        let mut hist = agsfl_telemetry::Histogram::new();
        exec.drain_dispatch_latency(&mut hist);
        assert_eq!(hist.count(), snap.total_tasks());
        // Same computation with metrics off is identical.
        exec.set_metrics_enabled(false);
        let without = exec.map_mut(&mut items, |x| *x * 3);
        assert_eq!(with_metrics, without);
    }

    #[test]
    fn pool_is_shared_across_clones_and_reused() {
        let exec = Executor::new(2).with_min_items(1);
        let clone = exec.clone().with_min_items(1);
        let mut items: Vec<u32> = (0..8).collect();
        exec.map_mut(&mut items, |x| *x);
        clone.map_mut(&mut items, |x| *x);
        assert!(exec.pool_started() && clone.pool_started());
        assert_eq!(
            exec.pool_generations(),
            clone.pool_generations(),
            "clones must share one pool"
        );
        assert!(exec.pool_generations() >= 2);
    }

    #[test]
    fn pool_and_scoped_paths_are_bit_identical() {
        let exec = Executor::new(3).with_min_items(1);
        let items: Vec<f32> = (0..101).map(|i| i as f32 * 0.37).collect();
        let via_pool = exec.map_ref(&items, |&x| (x * x).to_bits());
        let via_scope = exec.map_ref_scoped(&items, |&x| (x * x).to_bits());
        assert_eq!(via_pool, via_scope);
    }

    #[test]
    fn pipeline_matches_serial_interleaving() {
        for threads in [1usize, 2, 4, 8] {
            let exec = Executor::new(threads).with_min_items(1);
            let mut items: Vec<u64> = (0..57).collect();
            let mut seen: Vec<(usize, u64, u64)> = Vec::new();
            exec.pipeline_mut(
                &mut items,
                |x| {
                    *x += 1;
                    *x * 2
                },
                |i, item, produced| seen.push((i, *item, produced)),
            );
            let expected: Vec<(usize, u64, u64)> = (0..57u64)
                .map(|i| (i as usize, i + 1, (i + 1) * 2))
                .collect();
            assert_eq!(seen, expected, "threads={threads}");
        }
    }

    #[test]
    fn pipeline_consumer_may_mutate_items() {
        let exec = Executor::new(4).with_min_items(1);
        let mut items: Vec<u64> = (0..40).collect();
        exec.pipeline_mut(
            &mut items,
            |x| *x * 10,
            |_, item, produced| *item = produced + 1,
        );
        let expected: Vec<u64> = (0..40).map(|i| i * 10 + 1).collect();
        assert_eq!(items, expected);
    }

    #[test]
    fn pipeline_producer_panic_propagates() {
        let exec = Executor::new(4).with_min_items(1);
        let mut items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.pipeline_mut(
                &mut items,
                |&mut x| {
                    assert!(x != 17, "pipe boom at {x}");
                    x
                },
                |_, _, _| {},
            );
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("pipe boom at 17"), "{msg}");
    }

    #[test]
    fn join_runs_both_sides_and_propagates_panics() {
        for threads in [1usize, 4] {
            let exec = Executor::new(threads);
            let xs: Vec<u64> = (0..100).collect();
            let (a, b) = exec.join(|| xs.iter().sum::<u64>(), || xs.iter().max().copied());
            assert_eq!(a, 4950);
            assert_eq!(b, Some(99));
        }
        let exec = Executor::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.join(|| 1u8, || panic!("join boom"))
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&'static str>().expect("str payload");
        assert!(msg.contains("join boom"), "{msg}");
    }

    #[test]
    fn nested_regions_run_inline_on_workers() {
        // A region whose closure itself maps through the executor must not
        // deadlock: the nested call runs inline on the worker.
        let exec = Executor::new(2).with_min_items(1);
        let inner = exec.clone();
        let items: Vec<u32> = (0..8).collect();
        let nested: Vec<Vec<u32>> = exec.map_ref(&items, |&x| {
            let small: Vec<u32> = (0..4).map(|i| i + x).collect();
            inner.map_ref(&small, |&y| y * 2)
        });
        for (x, row) in nested.into_iter().enumerate() {
            let expected: Vec<u32> = (0..4).map(|i| (i + x as u32) * 2).collect();
            assert_eq!(row, expected);
        }
    }
}
