//! Property tests pinning the codec layer:
//!
//! * **Bit-exact roundtrip** for every codec over the messages the FL
//!   stack actually produces — the uplink messages and aggregated downlink
//!   of all five sparsifiers, plus empty and dense-degenerate messages.
//! * **Size ordering**: `Auto` never exceeds `CooF32` (or any concrete
//!   codec), and every `encoded_len` equals the emitted frame length.
//! * **Reference equivalence**: the allocating `reference` encoders emit
//!   byte-identical frames to the scratch fast paths (the executable-spec
//!   contract the bench pairs rely on).

use agsfl_sparse::{
    topk, ClientUpload, FabTopK, FubTopK, PeriodicK, SendAll, SparseGradient, Sparsifier,
    UnidirectionalTopK,
};
use agsfl_wire::{
    decode_frame, decode_gradient, frame_codec, reference, Auto, Bitmap, Codec, CooF32,
    DeltaVarint, WireScratch,
};
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn codecs() -> [Box<dyn Codec>; 4] {
    [
        Box::new(CooF32),
        Box::new(DeltaVarint),
        Box::new(Bitmap),
        Box::new(Auto),
    ]
}

fn sparsifiers() -> [Box<dyn Sparsifier>; 5] {
    [
        Box::new(FabTopK::new()),
        Box::new(FubTopK::new()),
        Box::new(UnidirectionalTopK::new()),
        Box::new(PeriodicK::new()),
        Box::new(SendAll::new()),
    ]
}

/// Asserts a frame decodes back to exactly `g`, bit for bit.
fn assert_bit_exact_roundtrip(codec: &dyn Codec, g: &SparseGradient) {
    let mut scratch = WireScratch::new();
    let frame = codec.encode_gradient_into(g, &mut scratch).to_vec();
    assert_eq!(
        frame.len(),
        codec.encoded_len_gradient(g),
        "encoded_len disagrees with the emitted frame ({})",
        codec.name()
    );
    let mut out = Vec::new();
    let dim = codec.decode_into(&frame, &mut out).expect("valid frame");
    assert_eq!(dim, g.dim(), "{}", codec.name());
    let got: Vec<(usize, u32)> = out.iter().map(|&(j, v)| (j, v.to_bits())).collect();
    let expected: Vec<(usize, u32)> = g.entries().iter().map(|&(j, v)| (j, v.to_bits())).collect();
    assert_eq!(got, expected, "{}", codec.name());
}

/// Builds ranked uploads from seeded dense per-client accumulators.
fn random_uploads(seed: u64, n_clients: usize, dim: usize, k: usize) -> Vec<ClientUpload> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n_clients)
        .map(|i| {
            let dense: Vec<f32> = (0..dim).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
            ClientUpload::new(i, 1.0 / n_clients as f64, topk::top_k_entries(&dense, k))
        })
        .collect()
}

#[test]
fn degenerate_messages_round_trip() {
    let empty = SparseGradient::zeros(1_000);
    let dense = SparseGradient::from_sorted_entries(
        257,
        (0..257).map(|j| (j, (j as f32 - 128.0) * 0.5)).collect(),
    );
    let single = SparseGradient::from_entries(1, vec![(0, f32::MIN_POSITIVE)]);
    for codec in codecs() {
        for g in [&empty, &dense, &single] {
            assert_bit_exact_roundtrip(codec.as_ref(), g);
        }
    }
}

#[test]
fn reference_encoders_emit_identical_frames() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let dense: Vec<f32> = (0..2_000).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let entries: Vec<(usize, f32)> = dense
        .iter()
        .enumerate()
        .filter(|(j, _)| j % 7 == 0)
        .map(|(j, &v)| (j, v))
        .collect();
    let dim = dense.len();
    let mut scratch = WireScratch::new();
    assert_eq!(
        reference::coo_encode(dim, &entries),
        CooF32.encode_into(dim, &entries, &mut scratch)
    );
    assert_eq!(
        reference::delta_encode(dim, &entries),
        DeltaVarint.encode_into(dim, &entries, &mut scratch)
    );
    assert_eq!(
        reference::bitmap_encode(dim, &entries),
        Bitmap.encode_into(dim, &entries, &mut scratch)
    );
    let frame = CooF32.encode_into(dim, &entries, &mut scratch).to_vec();
    let (ref_dim, ref_entries) = reference::decode(&frame).unwrap();
    assert_eq!(ref_dim, dim);
    assert_eq!(ref_entries, entries);
}

/// Every codec must round-trip the messages every sparsifier actually
/// produces: each client's uplink (index-sorted canonical form) and the
/// aggregated downlink.
#[test]
fn all_sparsifier_outputs_round_trip_through_all_codecs() {
    for (which, sparsifier) in sparsifiers().into_iter().enumerate() {
        let dim = 400;
        let k = 37;
        let mut rng = ChaCha8Rng::seed_from_u64(100 + which as u64);
        let plan = sparsifier.upload_plan(dim, k, &mut rng);
        let uploads: Vec<ClientUpload> = {
            let raw = random_uploads(200 + which as u64, 4, dim, k);
            match &plan {
                agsfl_sparse::UploadPlan::Coordinates(coords) => raw
                    .iter()
                    .map(|u| {
                        let entries = coords.iter().map(|&j| (j, j as f32 * 0.1)).collect();
                        ClientUpload::new(u.client, u.weight, entries)
                    })
                    .collect(),
                _ => raw,
            }
        };
        let result = sparsifier.select(&uploads, dim, k);
        let mut scratch = WireScratch::new();
        for codec in codecs() {
            // Downlink: already a SparseGradient.
            assert_bit_exact_roundtrip(codec.as_ref(), &result.aggregated);
            // Uplinks: rank-ordered entries go through the unsorted path.
            for upload in &uploads {
                let frame = scratch
                    .encode_unsorted(codec.as_ref(), dim, &upload.entries)
                    .to_vec();
                let decoded = decode_gradient(&frame).unwrap();
                let mut expected = upload.entries.clone();
                expected.sort_unstable_by_key(|&(j, _)| j);
                let got: Vec<(usize, u32)> = decoded
                    .entries()
                    .iter()
                    .map(|&(j, v)| (j, v.to_bits()))
                    .collect();
                let expected: Vec<(usize, u32)> =
                    expected.iter().map(|&(j, v)| (j, v.to_bits())).collect();
                assert_eq!(got, expected, "{} / {}", sparsifier.name(), codec.name());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary sparse messages (including exact-zero and extreme values)
    /// round-trip bit-exactly through every codec.
    #[test]
    fn prop_roundtrip_bit_exact(
        dim in 1usize..600,
        raw in proptest::collection::vec((0usize..600, -1.0e30f32..1.0e30), 0..80),
    ) {
        let entries: Vec<(usize, f32)> = raw
            .into_iter()
            .map(|(j, v)| (j % dim, v))
            .collect();
        let g = SparseGradient::from_entries(dim, entries);
        for codec in codecs() {
            assert_bit_exact_roundtrip(codec.as_ref(), &g);
        }
    }

    /// `Auto` emits the smallest frame and never exceeds `CooF32`.
    #[test]
    fn prop_auto_never_exceeds_coo(
        dim in 1usize..2_000,
        raw in proptest::collection::vec((0usize..2_000, -10.0f32..10.0), 0..120),
    ) {
        let entries: Vec<(usize, f32)> = raw
            .into_iter()
            .map(|(j, v)| (j % dim, v))
            .collect();
        let g = SparseGradient::from_entries(dim, entries);
        let auto = Auto.encoded_len_gradient(&g);
        prop_assert!(auto <= CooF32.encoded_len_gradient(&g));
        prop_assert!(auto <= DeltaVarint.encoded_len_gradient(&g));
        prop_assert!(auto <= Bitmap.encoded_len_gradient(&g));
        // And its emitted frame matches the deterministic choice.
        let mut scratch = WireScratch::new();
        let frame = Auto.encode_gradient_into(&g, &mut scratch);
        prop_assert_eq!(frame.len(), auto);
        prop_assert_eq!(
            frame_codec(frame).unwrap(),
            Auto.choose(g.dim(), g.entries())
        );
    }

    /// Seeded sparsifier rounds: uplinks and downlink of every sparsifier
    /// family round-trip through `Auto` (the codec the simulation defaults
    /// to), and decoding is the exact inverse of encoding.
    #[test]
    fn prop_sparsifier_messages_roundtrip(
        seed in 0u64..200,
        n_clients in 1usize..5,
        dim in 8usize..120,
        k_raw in 1usize..40,
    ) {
        let k = 1 + k_raw % dim.min(32);
        let uploads = random_uploads(seed, n_clients, dim, k);
        let mut scratch = WireScratch::new();
        let mut out = Vec::new();
        for sparsifier in sparsifiers() {
            let result = sparsifier.select(&uploads, dim, k);
            let frame = Auto
                .encode_gradient_into(&result.aggregated, &mut scratch)
                .to_vec();
            let (frame_dim, id) = decode_frame(&frame, &mut out).unwrap();
            prop_assert_eq!(frame_dim, dim);
            prop_assert_eq!(id, Auto.choose(dim, result.aggregated.entries()));
            let got: Vec<(usize, u32)> =
                out.iter().map(|&(j, v)| (j, v.to_bits())).collect();
            let expected: Vec<(usize, u32)> = result
                .aggregated
                .entries()
                .iter()
                .map(|&(j, v)| (j, v.to_bits()))
                .collect();
            prop_assert_eq!(got, expected);
        }
    }

    /// The reference encoders stay byte-identical to the fast paths for
    /// arbitrary messages.
    #[test]
    fn prop_reference_equivalence(
        dim in 1usize..300,
        raw in proptest::collection::vec((0usize..300, -10.0f32..10.0), 0..60),
    ) {
        let entries: Vec<(usize, f32)> = raw
            .into_iter()
            .map(|(j, v)| (j % dim, v))
            .collect();
        let g = SparseGradient::from_entries(dim, entries);
        let mut scratch = WireScratch::new();
        prop_assert_eq!(
            reference::coo_encode(dim, g.entries()),
            CooF32.encode_gradient_into(&g, &mut scratch)
        );
        prop_assert_eq!(
            reference::delta_encode(dim, g.entries()),
            DeltaVarint.encode_gradient_into(&g, &mut scratch)
        );
        prop_assert_eq!(
            reference::bitmap_encode(dim, g.entries()),
            Bitmap.encode_gradient_into(&g, &mut scratch)
        );
        // The independent reference decoder agrees with the fast path on
        // every valid frame of every codec.
        let mut out = Vec::new();
        for codec in codecs() {
            let frame = codec.encode_gradient_into(&g, &mut scratch).to_vec();
            let (ref_dim, ref_entries) = reference::decode(&frame).unwrap();
            let fast_dim = codec.decode_into(&frame, &mut out).unwrap();
            prop_assert_eq!(ref_dim, fast_dim);
            prop_assert_eq!(ref_entries.len(), out.len());
            for (a, b) in ref_entries.iter().zip(out.iter()) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }
}
