//! Quantize→dequantize property tests for the lossy codec tier.
//!
//! Per codec: the per-entry reconstruction error is bounded by the codec's
//! step size, values that are exactly representable round-trip exactly,
//! and the edge cases — all-zero frames, single entries, max-magnitude
//! values, subnormal `f32`s — never panic. The allocating `reference`
//! encoders stay byte-identical to the scratch fast paths, including the
//! seed-keyed stochastic rounding stream.

use agsfl_wire::{
    decode_frame, f16_bits_to_f32, reference, Codec, QLinear8, SignNorm, WireScratch, F16,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn lossy_codecs() -> [Box<dyn Codec>; 3] {
    [
        Box::new(QLinear8::new(41)),
        Box::new(F16),
        Box::new(SignNorm),
    ]
}

/// Canonicalizes proptest-generated raw pairs into a sorted, deduplicated
/// entry list over `dim`.
fn sorted_entries(dim: usize, raw: Vec<(usize, f32)>) -> Vec<(usize, f32)> {
    let mut map = BTreeMap::new();
    for (j, v) in raw {
        map.insert(j % dim, v);
    }
    map.into_iter().collect()
}

/// Encodes, checks the length contract, decodes through the frame
/// dispatcher, and checks that index positions survive exactly (only
/// values are lossy).
fn encode_decode(codec: &dyn Codec, dim: usize, entries: &[(usize, f32)]) -> Vec<(usize, f32)> {
    let mut scratch = WireScratch::new();
    let frame = codec.encode_into(dim, entries, &mut scratch).to_vec();
    assert_eq!(
        frame.len(),
        codec.encoded_len(dim, entries),
        "{}",
        codec.name()
    );
    let mut out = Vec::new();
    let (frame_dim, id) = decode_frame(&frame, &mut out).unwrap();
    assert_eq!(frame_dim, dim, "{}", codec.name());
    assert_eq!(id, codec.choose(dim, entries), "{}", codec.name());
    assert_eq!(out.len(), entries.len(), "{}", codec.name());
    for (&(j, _), &(dj, _)) in entries.iter().zip(&out) {
        assert_eq!(j, dj, "{}: indices must be exact", codec.name());
    }
    out
}

#[test]
fn edge_case_messages_never_panic() {
    let subnormal = f32::from_bits(0x0000_0001); // smallest positive subnormal
    let cases: Vec<(usize, Vec<(usize, f32)>)> = vec![
        (10, vec![]),
        (1, vec![(0, 0.0)]),
        (16, (0..16).map(|j| (j, 0.0)).collect()), // all-zero frame
        (16, (0..16).map(|j| (j, -0.0)).collect()),
        (4, vec![(3, f32::MAX)]), // single max-magnitude entry
        (4, vec![(0, f32::MIN), (3, f32::MAX)]), // the full finite range
        (4, vec![(1, subnormal), (2, -subnormal)]),
        (8, vec![(7, f32::MIN_POSITIVE)]),
        (3, vec![(0, -1.0e38), (1, 0.0), (2, 1.0e38)]),
    ];
    for codec in lossy_codecs() {
        for (dim, entries) in &cases {
            let decoded = encode_decode(codec.as_ref(), *dim, entries);
            assert!(
                decoded.iter().all(|&(_, v)| v.is_finite()),
                "{}: lossy reconstruction must stay finite",
                codec.name()
            );
        }
    }
}

#[test]
fn zero_error_messages_reconstruct_exactly() {
    // Messages whose values are exactly representable in every tier:
    // levels of a [0, 255] range for QLinear8, small integers for F16,
    // and a constant magnitude for SignNorm.
    let entries: Vec<(usize, f32)> = vec![(0, 0.0), (3, 51.0), (9, 204.0), (11, 255.0)];
    let decoded = encode_decode(&QLinear8::new(5), 12, &entries);
    for (&(_, v), &(_, d)) in entries.iter().zip(&decoded) {
        assert_eq!(v.to_bits(), d.to_bits(), "qlinear8 level values are exact");
    }
    let decoded = encode_decode(&F16, 12, &entries);
    for (&(_, v), &(_, d)) in entries.iter().zip(&decoded) {
        assert_eq!(v.to_bits(), d.to_bits(), "f16 small integers are exact");
    }
    let constant: Vec<(usize, f32)> = vec![(1, 2.5), (4, -2.5), (7, 2.5)];
    let decoded = encode_decode(&SignNorm, 8, &constant);
    for (&(_, v), &(_, d)) in constant.iter().zip(&decoded) {
        assert_eq!(v.to_bits(), d.to_bits(), "constant-magnitude is exact");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// QLinear8's reconstruction error never exceeds one quantization step
    /// (stochastic rounding moves at most one level), modulo the final
    /// `f64 → f32` cast.
    #[test]
    fn prop_qlinear8_error_bounded_by_step(
        seed in 0u64..20,
        dim in 1usize..300,
        raw in proptest::collection::vec((0usize..300, -1.0e30f32..1.0e30), 1..60),
    ) {
        let entries = sorted_entries(dim, raw);
        let lo = entries.iter().map(|&(_, v)| v).fold(f32::INFINITY, f32::min);
        let hi = entries.iter().map(|&(_, v)| v).fold(f32::NEG_INFINITY, f32::max);
        let step = (f64::from(hi) - f64::from(lo)) / 255.0;
        let decoded = encode_decode(&QLinear8::new(seed), dim, &entries);
        for (&(_, v), &(_, vhat)) in entries.iter().zip(&decoded) {
            let err = (f64::from(v) - f64::from(vhat)).abs();
            // One step, plus two f32 ulps of slack for the final cast.
            let bound = step * 1.000_001 + f64::from(vhat.abs()) * 2.0f64.powi(-22) + 1e-38;
            prop_assert!(err <= bound, "v={v} vhat={vhat} err={err} step={step}");
        }
    }

    /// F16's error obeys the binary16 precision bound: half an ulp, i.e.
    /// `2^-11` relative in the normal range, `2^-24` absolute below it.
    #[test]
    fn prop_f16_error_bounded_by_half_ulp(
        dim in 1usize..300,
        raw in proptest::collection::vec((0usize..300, -60_000.0f32..60_000.0), 1..60),
    ) {
        let entries = sorted_entries(dim, raw);
        let decoded = encode_decode(&F16, dim, &entries);
        for (&(_, v), &(_, vhat)) in entries.iter().zip(&decoded) {
            let err = (f64::from(v) - f64::from(vhat)).abs();
            let bound = (f64::from(v.abs()) * 2.0f64.powi(-11)).max(2.0f64.powi(-24));
            prop_assert!(err <= bound, "v={v} vhat={vhat} err={err}");
        }
    }

    /// Every exactly-representable binary16 value round-trips bit-exactly
    /// through the F16 codec.
    #[test]
    fn prop_f16_representable_values_roundtrip_exactly(raw_bits in 0u32..65_536) {
        // Remap inf/NaN exponents (0x1F) onto a finite one: every remaining
        // pattern is an exactly-representable binary16 value.
        let mut bits = raw_bits as u16;
        if (bits >> 10) & 0x1F == 0x1F {
            bits &= !(1 << 14);
        }
        let x = f16_bits_to_f32(bits);
        let decoded = encode_decode(&F16, 1, &[(0, x)]);
        prop_assert_eq!(decoded[0].1.to_bits(), x.to_bits());
    }

    /// SignNorm preserves every sign and reconstructs the exact mean
    /// absolute value for every entry.
    #[test]
    fn prop_sign_norm_preserves_signs_and_magnitude(
        dim in 1usize..300,
        raw in proptest::collection::vec((0usize..300, -1.0e6f32..1.0e6), 1..60),
    ) {
        let entries = sorted_entries(dim, raw);
        let sum: f64 = entries.iter().map(|&(_, v)| f64::from(v).abs()).sum();
        let magnitude = (sum / entries.len() as f64) as f32;
        let decoded = encode_decode(&SignNorm, dim, &entries);
        for (&(_, v), &(_, vhat)) in entries.iter().zip(&decoded) {
            prop_assert_eq!(vhat.abs().to_bits(), magnitude.to_bits());
            prop_assert_eq!(vhat.is_sign_negative(), v.is_sign_negative());
        }
    }

    /// Re-encoding a decoded QLinear8 message is idempotent: decoded
    /// values sit exactly on levels, so the snap path reproduces them
    /// without touching the stochastic stream.
    #[test]
    fn prop_qlinear8_reencode_is_idempotent(
        seed in 0u64..20,
        dim in 1usize..200,
        raw in proptest::collection::vec((0usize..200, -100.0f32..100.0), 1..40),
    ) {
        let entries = sorted_entries(dim, raw);
        let codec = QLinear8::new(seed);
        let once = encode_decode(&codec, dim, &entries);
        let twice = encode_decode(&codec, dim, &once);
        for (&(_, a), &(_, b)) in once.iter().zip(&twice) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The allocating reference encoders emit byte-identical lossy frames
    /// (including the content-keyed stochastic stream), and the reference
    /// decoder agrees with the fast path on every valid lossy frame.
    #[test]
    fn prop_lossy_reference_equivalence(
        seed in 0u64..20,
        dim in 1usize..300,
        raw in proptest::collection::vec((0usize..300, -50.0f32..50.0), 0..60),
    ) {
        let entries = sorted_entries(dim, raw);
        let mut scratch = WireScratch::new();
        prop_assert_eq!(
            reference::qlinear8_encode(seed, dim, &entries),
            QLinear8::new(seed).encode_into(dim, &entries, &mut scratch)
        );
        prop_assert_eq!(
            reference::f16_encode(dim, &entries),
            F16.encode_into(dim, &entries, &mut scratch)
        );
        prop_assert_eq!(
            reference::sign_norm_encode(dim, &entries),
            SignNorm.encode_into(dim, &entries, &mut scratch)
        );
        let mut out = Vec::new();
        for codec in lossy_codecs() {
            let frame = codec.encode_into(dim, &entries, &mut scratch).to_vec();
            let (ref_dim, ref_entries) = reference::decode(&frame).unwrap();
            let fast_dim = codec.decode_into(&frame, &mut out).unwrap();
            prop_assert_eq!(ref_dim, fast_dim);
            prop_assert_eq!(ref_entries.len(), out.len());
            for (a, b) in ref_entries.iter().zip(out.iter()) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }
}
