//! Decode fuzzing: hostile bytes never panic the codec layer.
//!
//! The fault model injects corruption *between* encode and decode, so the
//! decoders are the trust boundary of the whole wire path: whatever arrives
//! — a bit-flipped frame, a truncated frame, pure garbage — `decode_into`
//! and `decode_frame` must either return entries whose indices lie inside
//! the declared dimension, or a typed [`WireError`]. Never a panic, never
//! an out-of-range index, never a huge speculative allocation.

use agsfl_sparse::SparseGradient;
use agsfl_wire::{
    decode_frame, Auto, Bitmap, Codec, CooF32, DeltaVarint, QLinear8, SignNorm, WireError,
    WireScratch, F16,
};
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(CooF32),
        Box::new(DeltaVarint),
        Box::new(Bitmap),
        Box::new(Auto),
        Box::new(QLinear8::new(9)),
        Box::new(F16),
        Box::new(SignNorm),
    ]
}

/// Decodes `frame` through the frame dispatcher and through every concrete
/// codec, asserting the contract: `Ok` yields strictly increasing indices
/// below the declared dimension; anything else is a typed `WireError`.
fn assert_decode_is_total(frame: &[u8]) {
    let mut out = Vec::new();
    match decode_frame(frame, &mut out) {
        Ok((dim, _)) => assert_entries_valid(dim, &out, "decode_frame"),
        Err(e) => assert_is_wire_error(&e),
    }
    for codec in codecs() {
        out.clear();
        match codec.decode_into(frame, &mut out) {
            Ok(dim) => assert_entries_valid(dim, &out, codec.name()),
            Err(e) => assert_is_wire_error(&e),
        }
    }
}

fn assert_entries_valid(dim: usize, entries: &[(usize, f32)], who: &str) {
    let mut prev: Option<usize> = None;
    for &(j, _) in entries {
        assert!(j < dim, "{who}: index {j} outside dim {dim}");
        if let Some(p) = prev {
            assert!(j > p, "{who}: indices not strictly increasing");
        }
        prev = Some(j);
    }
}

fn assert_is_wire_error(e: &WireError) {
    // Force the Display path too — error formatting must not panic either.
    let _ = e.to_string();
}

/// A valid frame for every codec over a seeded message, so mutations start
/// from realistic bytes rather than noise.
fn valid_frames(seed: u64, dim: usize, k: usize) -> Vec<Vec<u8>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let entries: Vec<(usize, f32)> = {
        let mut idx: Vec<usize> = (0..dim).collect();
        // Seeded subset of k indices, kept sorted.
        for i in 0..dim {
            let j = rng.gen_range(0..dim);
            idx.swap(i, j);
        }
        let mut picked: Vec<usize> = idx.into_iter().take(k.min(dim)).collect();
        picked.sort_unstable();
        picked
            .into_iter()
            .map(|j| (j, rng.gen_range(-5.0f32..5.0)))
            .collect()
    };
    let g = SparseGradient::from_sorted_entries(dim, entries);
    let mut scratch = WireScratch::new();
    codecs()
        .iter()
        .map(|c| c.encode_gradient_into(&g, &mut scratch).to_vec())
        .collect()
}

#[test]
fn empty_and_tiny_inputs_are_rejected_not_panicked() {
    assert_decode_is_total(&[]);
    for b in 0u8..=255 {
        assert_decode_is_total(&[b]);
        assert_decode_is_total(&[b, 0xFF]);
        assert_decode_is_total(&[0x00, b, 0xFF, 0xFF]);
    }
}

#[test]
fn every_truncation_of_every_valid_frame_is_total() {
    for frame in valid_frames(7, 300, 40) {
        for cut in 0..frame.len() {
            assert_decode_is_total(&frame[..cut]);
        }
    }
}

#[test]
fn length_prefixes_cannot_demand_absurd_allocations() {
    // Frames whose headers promise far more entries / dimension than the
    // payload carries: the decoders must bail with a typed error instead of
    // reserving memory for the promised count.
    for frame in valid_frames(13, 64, 8) {
        let mut huge = frame.clone();
        // Saturate every byte that could be part of a length or dim field.
        for b in huge.iter_mut().skip(1).take(10) {
            *b = 0xFF;
        }
        assert_decode_is_total(&huge);
    }
}

/// A valid lossy frame with one-byte `dim`/`nnz` varints, so the
/// quantization header sits at a known offset (byte 3) for surgical
/// corruption.
fn small_lossy_frame(codec: &dyn Codec, n: usize) -> Vec<u8> {
    let entries: Vec<(usize, f32)> = (0..n).map(|i| (i * 7, 1.5 - i as f32)).collect();
    let mut scratch = WireScratch::new();
    let frame = codec.encode_into(64, &entries, &mut scratch).to_vec();
    let mut out = Vec::new();
    decode_frame(&frame, &mut out).expect("pristine lossy frame must decode");
    frame
}

#[test]
fn qlinear8_malformed_bounds_yield_typed_errors() {
    let frame = small_lossy_frame(&QLinear8::new(3), 8);
    let mut out = Vec::new();
    // lo occupies bytes 3..7, hi bytes 7..11.
    for bad in [
        (3, f32::NAN),          // non-finite lo
        (7, f32::INFINITY),     // non-finite hi
        (7, f32::NEG_INFINITY), // hi below lo
        (3, 1.0e30),            // lo above hi
    ] {
        let mut corrupt = frame.clone();
        corrupt[bad.0..bad.0 + 4].copy_from_slice(&bad.1.to_le_bytes());
        let err = decode_frame(&corrupt, &mut out).unwrap_err();
        assert!(
            matches!(err, WireError::InvalidQuantization(_)),
            "expected InvalidQuantization, got {err:?}"
        );
        assert_decode_is_total(&corrupt);
    }
}

#[test]
fn sign_norm_malformed_magnitude_and_padding_yield_typed_errors() {
    // n = 5 leaves three padding bits in the single sign byte at offset 7.
    let frame = small_lossy_frame(&SignNorm, 5);
    let mut out = Vec::new();
    for bad_magnitude in [f32::NAN, f32::INFINITY, -1.0f32] {
        let mut corrupt = frame.clone();
        corrupt[3..7].copy_from_slice(&bad_magnitude.to_le_bytes());
        let err = decode_frame(&corrupt, &mut out).unwrap_err();
        assert!(
            matches!(err, WireError::InvalidQuantization(_)),
            "expected InvalidQuantization, got {err:?}"
        );
        assert_decode_is_total(&corrupt);
    }
    let mut corrupt = frame.clone();
    corrupt[7] |= 0b1110_0000; // set the padding bits above the 5 sign bits
    let err = decode_frame(&corrupt, &mut out).unwrap_err();
    assert!(
        matches!(err, WireError::InvalidQuantization(_)),
        "expected InvalidQuantization, got {err:?}"
    );
    assert_decode_is_total(&corrupt);
}

#[test]
fn truncated_quantization_headers_are_truncation_errors() {
    let mut out = Vec::new();
    for (codec, header_end) in [
        (&QLinear8::new(3) as &dyn Codec, 11usize), // id + dim + nnz + lo + hi
        (&F16 as &dyn Codec, 3),                    // id + dim + nnz
        (&SignNorm as &dyn Codec, 8),               // id + dim + nnz + magnitude + signs
    ] {
        let frame = small_lossy_frame(codec, 8);
        for cut in 3..header_end.min(frame.len()) {
            let err = decode_frame(&frame[..cut], &mut out).unwrap_err();
            assert_eq!(err, WireError::Truncated, "{} cut at {cut}", codec.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Single- and multi-byte mutations of valid frames decode totally.
    #[test]
    fn prop_mutated_frames_never_panic(
        seed in 0u64..50,
        dim in 1usize..400,
        k_raw in 0usize..60,
        flips in proptest::collection::vec((0usize..4096, 0u32..256), 1..8),
    ) {
        let k = k_raw % (dim + 1);
        for frame in valid_frames(seed, dim, k) {
            let mut mutated = frame.clone();
            for &(pos, val) in &flips {
                if !mutated.is_empty() {
                    let p = pos % mutated.len();
                    mutated[p] ^= val as u8;
                }
            }
            assert_decode_is_total(&mutated);
        }
    }

    /// Truncation composed with mutation (the corruption the fault model
    /// actually injects) decodes totally.
    #[test]
    fn prop_truncated_mutations_never_panic(
        seed in 0u64..50,
        dim in 1usize..300,
        k_raw in 0usize..40,
        cut_frac in 0.0f64..1.0,
        flip in (0usize..4096, 1u32..256),
    ) {
        let k = k_raw % (dim + 1);
        for frame in valid_frames(seed, dim, k) {
            let cut = ((frame.len() as f64) * cut_frac) as usize;
            let mut mutated = frame[..cut.min(frame.len())].to_vec();
            if !mutated.is_empty() {
                let p = flip.0 % mutated.len();
                mutated[p] ^= flip.1 as u8;
            }
            assert_decode_is_total(&mutated);
        }
    }

    /// Pure garbage decodes totally.
    #[test]
    fn prop_garbage_never_panics(raw in proptest::collection::vec(0u32..256, 0..512)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        assert_decode_is_total(&bytes);
    }
}
