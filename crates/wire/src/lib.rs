//! Wire-format codecs for sparse gradient exchange.
//!
//! Every message the FL simulation exchanges — the uplink `A_i = {(j,
//! a_ij)}` and the downlink `B = {(j, b_j)}` of Algorithm 1 — is an
//! `agsfl_sparse::SparseGradient`. Until this crate existed the repository
//! priced those exchanges with the paper's abstract "`2k` scalars" proxy
//! (`agsfl_fl::TimeModel`); this crate turns them into *bytes*: a
//! [`Codec`] encodes a message into a self-describing frame, a channel
//! model (`agsfl_fl::ChannelModel`) prices the frame on a per-client link,
//! and the adaptive-`k` controllers in `agsfl-online` see the realized
//! byte cost.
//!
//! Three lossless encodings are provided — [`CooF32`] (4-byte index +
//! 4-byte value baseline), [`DeltaVarint`] (sorted-index gaps as LEB128
//! varints, enabled by the `SparseGradient` sorted-entries invariant) and
//! [`Bitmap`] (dense occupancy bitmap + packed values, which wins at high
//! `k/D`) — plus [`Auto`], which deterministically emits the smallest of
//! the three per message. All four round-trip **bit-exactly** (including
//! `-0.0` and subnormals; pinned by proptests across every sparsifier's
//! output in `tests/codec_roundtrip.rs`), which is what lets the lossless
//! byte path coexist with the repository's bit-identical determinism
//! invariant: those codecs never perturb a single bit of the training
//! trajectory.
//!
//! On top of the lossless tier sits a *lossy* tier — [`QLinear8`] (8-bit
//! linear with seed-deterministic stochastic rounding), [`F16`] (IEEE
//! binary16, round-to-nearest-even) and [`SignNorm`] (1 bit/sign + frame
//! norm) — selected through the [`Precision`] axis of the controllers'
//! 2-D action space. Lossy frames deliberately trade bit-identity with
//! the lossless trajectory for bytes; what they keep is
//! **reproducibility**: encoding is a pure function of `(seed, message)`,
//! so a lossy run is still bit-identical to itself across worker counts
//! and checkpoint/resume (see [`mod@lossy`]).
//!
//! Encoding is zero-allocation in steady state against a reusable
//! [`WireScratch`] (the `SelectionScratch`/`Im2colScratch` house style);
//! decoding validates untrusted frames and reports malformed input as
//! [`WireError`] values instead of panics. The seed-style allocating
//! implementations live in [`mod@reference`] as the executable spec for
//! the equivalence tests and the `bench-report` encode/decode pairs.
//!
//! # Example
//!
//! ```
//! use agsfl_sparse::SparseGradient;
//! use agsfl_wire::{decode_gradient, frame_codec, Auto, Codec, WireScratch};
//!
//! let g = SparseGradient::from_entries(1_000, (0..40).map(|j| (j * 7, 0.5)).collect());
//! let mut scratch = WireScratch::new();
//! let frame = Auto.encode_gradient_into(&g, &mut scratch);
//! // Self-describing: the frame records which encoding Auto chose...
//! let chosen = frame_codec(frame).unwrap();
//! assert_eq!(chosen, Auto.choose(g.dim(), g.entries()));
//! // ...and decodes back bit-exactly.
//! assert_eq!(decode_gradient(frame).unwrap(), g);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod error;
pub mod lossy;
pub mod reference;
mod scratch;
mod varint;

pub use codec::{
    decode_frame, decode_frame_with, decode_gradient, frame_codec, Auto, Bitmap, Codec, CodecId,
    CodecSpec, CooF32, DeltaVarint,
};
pub use error::WireError;
pub use lossy::{f16_bits_to_f32, f32_to_f16_bits, Precision, QLinear8, SignNorm, F16, F16_MAX};
pub use scratch::WireScratch;
