//! Reusable encode workspace.

use crate::codec::Codec;

/// Reusable workspace for [`Codec::encode_into`], matching the house style
/// of `agsfl_sparse::SelectionScratch` and `agsfl_ml`'s `Im2colScratch`:
/// grow-only buffers invalidated by a generation bump, so steady-state
/// encoding performs no heap allocation.
///
/// * `frame` — the output byte buffer; it grows to the largest frame ever
///   encoded and is logically cleared by starting a new generation.
/// * `staging` — an index-sort buffer used by
///   [`WireScratch::encode_unsorted`] to canonicalize rank-ordered uplink
///   messages before encoding.
///
/// Each encode starts a new generation (see [`WireScratch::generation`]);
/// the byte slice returned by an encode borrows the workspace, so the
/// borrow checker guarantees a frame is copied out or consumed before the
/// next generation can overwrite it. The workspace carries no message
/// state across calls: encoding the same message twice yields identical
/// bytes.
#[derive(Debug, Clone, Default)]
pub struct WireScratch {
    generation: u64,
    frame: Vec<u8>,
    staging: Vec<(usize, f32)>,
}

impl WireScratch {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of frames encoded through this workspace so far. Each encode
    /// bumps the generation, invalidating the previous frame in O(1) (the
    /// buffer's capacity is retained).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Starts a new encode generation and hands out the (cleared) frame
    /// buffer.
    pub(crate) fn begin(&mut self) -> &mut Vec<u8> {
        self.generation += 1;
        self.frame.clear();
        &mut self.frame
    }

    /// The current generation's frame bytes.
    pub(crate) fn frame(&self) -> &[u8] {
        &self.frame
    }

    /// Encodes a message whose entries are in **arbitrary order** (e.g. the
    /// magnitude-ranked uplink messages of the top-k sparsifiers): the
    /// entries are staged index-sorted in the workspace, then encoded.
    ///
    /// The entry order is presentation, not payload — a lossless codec
    /// carries the `(index, value)` *set*, and the receiver re-derives any
    /// rank order it needs (see `agsfl_fl`'s wire path).
    ///
    /// # Panics
    ///
    /// Panics if `entries` contains a duplicate or out-of-range index
    /// (debug: duplicates are caught by the strict-ordering assertion in the
    /// codec; release: out-of-range indices are caught by the encoder).
    pub fn encode_unsorted(
        &mut self,
        codec: &dyn Codec,
        dim: usize,
        entries: &[(usize, f32)],
    ) -> &[u8] {
        let staging = self.stage_sorted(entries);
        let frame_len = codec.encode_into(dim, &staging, self).len();
        self.staging = staging;
        &self.frame[..frame_len]
    }

    /// Exact encoded size of a message whose entries are in arbitrary
    /// order, without encoding it (used for hypothetical-`k'` probe
    /// pricing).
    pub fn encoded_len_unsorted(
        &mut self,
        codec: &dyn Codec,
        dim: usize,
        entries: &[(usize, f32)],
    ) -> usize {
        let staging = self.stage_sorted(entries);
        let len = codec.encoded_len(dim, &staging);
        self.staging = staging;
        len
    }

    /// Takes the staging buffer out of the workspace, filled with `entries`
    /// sorted by index. The caller must put it back.
    fn stage_sorted(&mut self, entries: &[(usize, f32)]) -> Vec<(usize, f32)> {
        let mut staging = std::mem::take(&mut self.staging);
        staging.clear();
        staging.extend_from_slice(entries);
        staging.sort_unstable_by_key(|&(j, _)| j);
        staging
    }
}
