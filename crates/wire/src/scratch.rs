//! Reusable encode workspace.

use crate::codec::Codec;

/// Smallest capacity (bytes or entries) a scratch buffer bothers shrinking
/// below — tiny buffers are never worth releasing.
const SHRINK_FLOOR: usize = 256;

/// Grow-only-with-decay policy shared by the workspace buffers: tracks an
/// exponentially decaying demand high-water mark and releases capacity once
/// it exceeds four times the recent demand. Long runs whose message sizes
/// drop (e.g. a cohort shrinking between rounds) stop pinning their
/// high-water-mark allocation after a few uses, while steady-state buffers
/// never shrink (demand stays at the observed size, so the 4× guard never
/// trips) and thus stay allocation-free.
pub(crate) fn note_demand_and_shrink<T>(buf: &mut Vec<T>, demand: &mut usize, used: usize) {
    *demand = used.max(*demand / 2).max(SHRINK_FLOOR);
    if buf.capacity() > *demand * 4 {
        buf.shrink_to(*demand * 2);
    }
}

/// Reusable workspace for [`Codec::encode_into`], matching the house style
/// of `agsfl_sparse::SelectionScratch` and `agsfl_ml`'s `Im2colScratch`:
/// reusable buffers invalidated by a generation bump, so steady-state
/// encoding performs no heap allocation.
///
/// * `frame` — the output byte buffer; it grows to the largest frame in
///   recent use (capacity decays when demand drops, see below) and is
///   logically cleared by starting a new generation.
/// * `staging` — an index-sort buffer used by
///   [`WireScratch::encode_unsorted`] to canonicalize rank-ordered uplink
///   messages before encoding.
///
/// Each encode starts a new generation (see [`WireScratch::generation`]);
/// the byte slice returned by an encode borrows the workspace, so the
/// borrow checker guarantees a frame is copied out or consumed before the
/// next generation can overwrite it. The workspace carries no message
/// state across calls: encoding the same message twice yields identical
/// bytes.
///
/// Capacity is **demand-tracked, not grow-only**: each buffer remembers an
/// exponentially decaying high-water mark of recent use and releases
/// memory once its capacity exceeds four times that demand, so a workspace
/// that once encoded a huge message does not pin that allocation forever.
/// In steady state (stable message sizes) no allocation or release ever
/// happens.
#[derive(Debug, Clone, Default)]
pub struct WireScratch {
    generation: u64,
    frame: Vec<u8>,
    frame_demand: usize,
    staging: Vec<(usize, f32)>,
    staging_demand: usize,
}

impl WireScratch {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of frames encoded through this workspace so far. Each encode
    /// bumps the generation, invalidating the previous frame in O(1) (the
    /// buffer's capacity is retained while demand warrants it).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Current capacity of the frame buffer in bytes (for memory audits).
    pub fn frame_capacity(&self) -> usize {
        self.frame.capacity()
    }

    /// Starts a new encode generation and hands out the (cleared) frame
    /// buffer.
    pub(crate) fn begin(&mut self) -> &mut Vec<u8> {
        self.generation += 1;
        let used = self.frame.len();
        note_demand_and_shrink(&mut self.frame, &mut self.frame_demand, used);
        self.frame.clear();
        &mut self.frame
    }

    /// The current generation's frame bytes.
    pub(crate) fn frame(&self) -> &[u8] {
        &self.frame
    }

    /// Encodes a message whose entries are in **arbitrary order** (e.g. the
    /// magnitude-ranked uplink messages of the top-k sparsifiers): the
    /// entries are staged index-sorted in the workspace, then encoded.
    ///
    /// The entry order is presentation, not payload — a lossless codec
    /// carries the `(index, value)` *set*, and the receiver re-derives any
    /// rank order it needs (see `agsfl_fl`'s wire path).
    ///
    /// # Panics
    ///
    /// Panics if `entries` contains a duplicate or out-of-range index
    /// (debug: duplicates are caught by the strict-ordering assertion in the
    /// codec; release: out-of-range indices are caught by the encoder).
    pub fn encode_unsorted(
        &mut self,
        codec: &dyn Codec,
        dim: usize,
        entries: &[(usize, f32)],
    ) -> &[u8] {
        let staging = self.stage_sorted(entries);
        let frame_len = codec.encode_into(dim, &staging, self).len();
        self.staging = staging;
        &self.frame[..frame_len]
    }

    /// Exact encoded size of a message whose entries are in arbitrary
    /// order, without encoding it (used for hypothetical-`k'` probe
    /// pricing).
    pub fn encoded_len_unsorted(
        &mut self,
        codec: &dyn Codec,
        dim: usize,
        entries: &[(usize, f32)],
    ) -> usize {
        let staging = self.stage_sorted(entries);
        let len = codec.encoded_len(dim, &staging);
        self.staging = staging;
        len
    }

    /// Takes the staging buffer out of the workspace, filled with `entries`
    /// sorted by index. The caller must put it back.
    fn stage_sorted(&mut self, entries: &[(usize, f32)]) -> Vec<(usize, f32)> {
        let mut staging = std::mem::take(&mut self.staging);
        let used = staging.len();
        note_demand_and_shrink(&mut staging, &mut self.staging_demand, used);
        staging.clear();
        staging.extend_from_slice(entries);
        staging.sort_unstable_by_key(|&(j, _)| j);
        staging
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CooF32;

    #[test]
    fn frame_buffer_shrinks_after_demand_drops() {
        let mut scratch = WireScratch::new();
        // One huge message grows the buffer far beyond the floor.
        let big: Vec<(usize, f32)> = (0..20_000).map(|j| (j, j as f32)).collect();
        let _ = CooF32.encode_into(20_000, &big, &mut scratch);
        let peak = scratch.frame_capacity();
        assert!(peak >= 8 * 20_000);
        // Many small messages decay the demand; capacity must come down.
        let small = [(1usize, 1.0f32), (5, -2.0)];
        for _ in 0..24 {
            let _ = CooF32.encode_into(16, &small, &mut scratch);
        }
        assert!(
            scratch.frame_capacity() < peak / 4,
            "capacity {} did not shrink from peak {}",
            scratch.frame_capacity(),
            peak
        );
        // Encoding still works and is stateless after shrinking.
        let frame = CooF32.encode_into(16, &small, &mut scratch).to_vec();
        let mut out = Vec::new();
        let (dim, _) = crate::codec::decode_frame(&frame, &mut out).unwrap();
        assert_eq!(dim, 16);
        assert_eq!(out, small);
    }

    #[test]
    fn steady_state_capacity_is_stable() {
        let mut scratch = WireScratch::new();
        let msg: Vec<(usize, f32)> = (0..500).map(|j| (j * 2, 1.0)).collect();
        let _ = CooF32.encode_into(1000, &msg, &mut scratch);
        let settled = scratch.frame_capacity();
        for _ in 0..50 {
            let _ = CooF32.encode_into(1000, &msg, &mut scratch);
        }
        assert_eq!(scratch.frame_capacity(), settled);
    }
}
