//! LEB128 variable-length integers.
//!
//! Every multi-byte integer a frame carries — the header's dimension and
//! entry count, and [`crate::DeltaVarint`]'s index gaps — is encoded as an
//! unsigned LEB128 varint: 7 payload bits per byte, the high bit flagging a
//! continuation. Small values (the common case for sorted-index deltas at
//! realistic sparsity) cost one byte; a full `u64` costs at most ten.

use crate::error::WireError;

/// Number of bytes [`write`] emits for `v`.
#[inline]
pub fn len(v: u64) -> usize {
    // ceil(bits / 7), with v = 0 still costing one byte.
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Appends the LEB128 encoding of `v` to `buf`.
#[inline]
pub fn write(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `bytes` starting at `*pos`, advancing `*pos`
/// past it.
#[inline]
pub fn read(bytes: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(WireError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_one_byte() {
        for v in [0u64, 1, 100, 127] {
            let mut buf = Vec::new();
            write(&mut buf, v);
            assert_eq!(buf.len(), 1, "v={v}");
            assert_eq!(len(v), 1);
        }
    }

    #[test]
    fn boundaries_round_trip() {
        for v in [127u64, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write(&mut buf, v);
            assert_eq!(buf.len(), len(v), "v={v}");
            let mut pos = 0;
            assert_eq!(read(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write(&mut buf, 300);
        buf.truncate(1);
        let mut pos = 0;
        assert_eq!(read(&buf, &mut pos), Err(WireError::Truncated));
    }

    #[test]
    fn overlong_varint_errors() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read(&buf, &mut pos), Err(WireError::VarintOverflow));
    }

    proptest! {
        #[test]
        fn prop_round_trip(v in 0u64..u64::MAX) {
            let mut buf = Vec::new();
            write(&mut buf, v);
            prop_assert_eq!(buf.len(), len(v));
            let mut pos = 0;
            prop_assert_eq!(read(&buf, &mut pos), Ok(v));
            prop_assert_eq!(pos, buf.len());
        }
    }
}
