//! The [`Codec`] trait and its lossless implementations.
//!
//! # Frame layout
//!
//! Every codec emits a self-describing frame:
//!
//! ```text
//! byte 0          codec id (CooF32 = 0, DeltaVarint = 1, Bitmap = 2,
//!                 QLinear8 = 3, F16 = 4, SignNorm = 5)
//! varint          dimension D
//! varint          entry count n
//! payload         codec-specific, see below
//! ```
//!
//! Payloads carry entries in **strictly increasing index order** (the
//! [`SparseGradient`] invariant) with `f32` values stored as their raw
//! little-endian bit patterns, so every codec round-trips bit-exactly —
//! including `-0.0`, subnormals and the exact bits of every value. Entry
//! *order* is not part of the payload: a receiver that needs a rank order
//! (FAB's per-client prefixes) re-derives it from the values, which is
//! exact because the ranking comparator is a total order
//! (`agsfl_sparse::topk::compare_magnitude_then_index`).
//!
//! | codec | payload | bytes (header aside) |
//! |---|---|---|
//! | [`CooF32`] | `n × (u32 index, f32 value)` | `8n` |
//! | [`DeltaVarint`] | `n × (varint index delta, f32 value)` | `4n + Σ varint(Δ)` |
//! | [`Bitmap`] | `⌈D/8⌉`-byte occupancy bitmap, then `n × f32` in index order | `⌈D/8⌉ + 4n` |
//!
//! [`DeltaVarint`] wins at low density (sorted-index gaps are small
//! integers), [`Bitmap`] at high density (`n/D > ~1/32` beats [`CooF32`];
//! no per-entry index cost at all), and [`CooF32`] is the predictable
//! baseline. [`Auto`] computes all three exact sizes per message and emits
//! the smallest frame (ties broken by the lowest codec id), so its choice
//! is a deterministic function of the message alone.
//!
//! The *lossy* tier — [`QLinear8`](crate::QLinear8), [`F16`](crate::F16)
//! and [`SignNorm`](crate::SignNorm) — shares the same header and sorted
//! index invariant but quantizes values; see [`crate::lossy`] for its
//! payload table, determinism story and error-feedback contract. `Auto`
//! deliberately ranges over the lossless codecs only: lossy tiers are a
//! *precision* decision ([`crate::Precision`]) made above the codec layer
//! by the controllers, never silently by a size argmin.

use agsfl_sparse::SparseGradient;
use serde::{Deserialize, Serialize};

use crate::error::WireError;
use crate::scratch::WireScratch;
use crate::varint;

/// On-wire identifier of a concrete encoding (the frame's first byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CodecId {
    /// 4-byte index + 4-byte value pairs.
    CooF32 = 0,
    /// Sorted-index delta varints + 4-byte values.
    DeltaVarint = 1,
    /// Dense occupancy bitmap + packed 4-byte values.
    Bitmap = 2,
    /// Lossy: 8-bit linear quantization with stochastic rounding.
    QLinear8 = 3,
    /// Lossy: IEEE binary16 values.
    F16 = 4,
    /// Lossy: 1-bit signs + per-frame L1 norm.
    SignNorm = 5,
}

impl CodecId {
    /// All concrete encodings, in id order. The lossless codecs come first
    /// (they are the [`Auto`] tie-break order); the lossy tier follows.
    pub const ALL: [CodecId; 6] = [
        CodecId::CooF32,
        CodecId::DeltaVarint,
        CodecId::Bitmap,
        CodecId::QLinear8,
        CodecId::F16,
        CodecId::SignNorm,
    ];

    /// Human-readable name matching the codec structs.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::CooF32 => "coo-f32",
            CodecId::DeltaVarint => "delta-varint",
            CodecId::Bitmap => "bitmap",
            CodecId::QLinear8 => "qlinear8",
            CodecId::F16 => "f16",
            CodecId::SignNorm => "sign-norm",
        }
    }

    /// Whether frames with this id quantize their values.
    pub fn is_lossy(self) -> bool {
        matches!(self, CodecId::QLinear8 | CodecId::F16 | CodecId::SignNorm)
    }

    fn from_byte(byte: u8) -> Result<Self, WireError> {
        match byte {
            0 => Ok(CodecId::CooF32),
            1 => Ok(CodecId::DeltaVarint),
            2 => Ok(CodecId::Bitmap),
            3 => Ok(CodecId::QLinear8),
            4 => Ok(CodecId::F16),
            5 => Ok(CodecId::SignNorm),
            other => Err(WireError::UnknownCodec(other)),
        }
    }
}

/// A wire encoding of a sparse gradient message (lossless or lossy).
///
/// Implementations are stateless (all per-message scratch lives in the
/// caller-owned [`WireScratch`]), so one codec value can serve every client
/// and the server concurrently. `encode_into` is zero-allocation in steady
/// state: the frame is built in the scratch's grow-only buffer and returned
/// as a borrow. Decoding is codec-independent because frames are
/// self-describing; the trait's [`Codec::decode_into`] simply dispatches on
/// the frame's id byte, writing into a caller-reused entry buffer.
///
/// Entries passed to `encode_into`/`encoded_len` must be sorted by strictly
/// increasing index with every index `< dim` — exactly the
/// [`SparseGradient`] invariant; use [`WireScratch::encode_unsorted`] for
/// rank-ordered uplink messages.
pub trait Codec: Send + Sync + std::fmt::Debug {
    /// Human-readable codec name used in reports.
    fn name(&self) -> &'static str;

    /// The concrete encoding this codec would emit for the given message
    /// (constant for the concrete codecs; the size argmin for [`Auto`]).
    fn choose(&self, dim: usize, entries: &[(usize, f32)]) -> CodecId;

    /// Exact frame length in bytes, without encoding.
    fn encoded_len(&self, dim: usize, entries: &[(usize, f32)]) -> usize;

    /// Encodes the message into `scratch`'s frame buffer and returns the
    /// frame. Zero-allocation once the buffer has grown to the message size.
    ///
    /// # Panics
    ///
    /// Panics if an entry index is `>= dim` (debug builds also assert the
    /// strictly-increasing ordering).
    fn encode_into<'a>(
        &self,
        dim: usize,
        entries: &[(usize, f32)],
        scratch: &'a mut WireScratch,
    ) -> &'a [u8];

    /// Decodes a frame into `out` (cleared first), returning the declared
    /// dimension. The entries come out sorted by strictly increasing index
    /// — validated, so they can feed
    /// [`SparseGradient::from_sorted_entries`] directly. Dispatches on the
    /// frame's id byte, so any codec can decode any frame.
    fn decode_into(&self, frame: &[u8], out: &mut Vec<(usize, f32)>) -> Result<usize, WireError> {
        decode_frame(frame, out).map(|(dim, _)| dim)
    }

    /// [`Codec::encode_into`] over a [`SparseGradient`] (whose entries
    /// already satisfy the ordering invariant).
    fn encode_gradient_into<'a>(
        &self,
        gradient: &SparseGradient,
        scratch: &'a mut WireScratch,
    ) -> &'a [u8] {
        self.encode_into(gradient.dim(), gradient.entries(), scratch)
    }

    /// [`Codec::encoded_len`] over a [`SparseGradient`].
    fn encoded_len_gradient(&self, gradient: &SparseGradient) -> usize {
        self.encoded_len(gradient.dim(), gradient.entries())
    }
}

/// Checks the encode contract: every index `< dim` (release) and strictly
/// increasing order (debug), mirroring `SparseGradient::from_sorted_entries`.
pub(crate) fn check_entries(dim: usize, entries: &[(usize, f32)]) {
    assert!(
        entries.iter().all(|&(j, _)| j < dim),
        "wire entry index out of range (dim {dim})"
    );
    debug_assert!(
        entries.windows(2).all(|w| w[0].0 < w[1].0),
        "wire entries must be sorted by strictly increasing index"
    );
}

pub(crate) fn header_len(dim: usize, nnz: usize) -> usize {
    1 + varint::len(dim as u64) + varint::len(nnz as u64)
}

pub(crate) fn write_header(buf: &mut Vec<u8>, id: CodecId, dim: usize, nnz: usize) {
    buf.push(id as u8);
    varint::write(buf, dim as u64);
    varint::write(buf, nnz as u64);
}

/// The codec id of a frame (its first byte).
pub fn frame_codec(frame: &[u8]) -> Result<CodecId, WireError> {
    CodecId::from_byte(*frame.first().ok_or(WireError::Truncated)?)
}

/// Decodes any frame into `out` (cleared first), dispatching on the id
/// byte. Returns the declared dimension and the frame's codec. The decoded
/// entries are validated: strictly increasing indices, all `< dim`, and no
/// trailing bytes.
pub fn decode_frame(
    frame: &[u8],
    out: &mut Vec<(usize, f32)>,
) -> Result<(usize, CodecId), WireError> {
    out.clear();
    decode_frame_with(frame, |j, v| out.push((j, v)))
}

/// Streaming sibling of [`decode_frame`]: decodes any frame and hands every
/// entry to `visit` in strictly increasing index order, without
/// materializing an entry vector. Validation is identical to
/// [`decode_frame`] (in-range sorted indices, exact counts, no trailing
/// bytes); entries already visited when an error surfaces must be
/// discarded by the caller.
///
/// This is the server's frame-to-aggregation fast path: decoded uplink
/// frames stream straight into the selection scratch and the decoded
/// downlink broadcast streams straight into the weight vector, with no
/// intermediate sparse-gradient allocation.
pub fn decode_frame_with(
    frame: &[u8],
    mut visit: impl FnMut(usize, f32),
) -> Result<(usize, CodecId), WireError> {
    let id = frame_codec(frame)?;
    let mut pos = 1usize;
    let dim64 = varint::read(frame, &mut pos)?;
    let nnz64 = varint::read(frame, &mut pos)?;
    let dim = usize::try_from(dim64).map_err(|_| WireError::VarintOverflow)?;
    let nnz = usize::try_from(nnz64).map_err(|_| WireError::VarintOverflow)?;
    match id {
        CodecId::CooF32 => decode_coo(frame, pos, dim, nnz, &mut visit)?,
        CodecId::DeltaVarint => decode_delta(frame, pos, dim, nnz, &mut visit)?,
        CodecId::Bitmap => decode_bitmap(frame, pos, dim, nnz, &mut visit)?,
        CodecId::QLinear8 => crate::lossy::decode_qlinear8(frame, pos, dim, nnz, &mut visit)?,
        CodecId::F16 => crate::lossy::decode_f16(frame, pos, dim, nnz, &mut visit)?,
        CodecId::SignNorm => crate::lossy::decode_sign_norm(frame, pos, dim, nnz, &mut visit)?,
    }
    Ok((dim, id))
}

/// Decodes a frame into an owned [`SparseGradient`].
pub fn decode_gradient(frame: &[u8]) -> Result<SparseGradient, WireError> {
    let mut entries = Vec::new();
    let (dim, _) = decode_frame(frame, &mut entries)?;
    // Safe: decode validated the strictly-increasing, in-range invariant.
    Ok(SparseGradient::from_sorted_entries(dim, entries))
}

pub(crate) fn read_f32(frame: &[u8], pos: &mut usize) -> Result<f32, WireError> {
    let bytes = frame
        .get(*pos..*pos + 4)
        .ok_or(WireError::Truncated)?
        .try_into()
        .expect("4-byte slice");
    *pos += 4;
    Ok(f32::from_le_bytes(bytes))
}

pub(crate) fn finish(frame: &[u8], pos: usize) -> Result<(), WireError> {
    if pos == frame.len() {
        Ok(())
    } else {
        Err(WireError::TrailingBytes)
    }
}

fn decode_coo(
    frame: &[u8],
    mut pos: usize,
    dim: usize,
    nnz: usize,
    visit: &mut impl FnMut(usize, f32),
) -> Result<(), WireError> {
    let mut prev: Option<usize> = None;
    for _ in 0..nnz {
        let idx_bytes = frame
            .get(pos..pos + 4)
            .ok_or(WireError::Truncated)?
            .try_into()
            .expect("4-byte slice");
        pos += 4;
        let j = u32::from_le_bytes(idx_bytes) as usize;
        if j >= dim {
            return Err(WireError::IndexOutOfRange {
                index: j as u64,
                dim: dim as u64,
            });
        }
        if prev.is_some_and(|p| p >= j) {
            return Err(WireError::NotSorted);
        }
        prev = Some(j);
        let v = read_f32(frame, &mut pos)?;
        visit(j, v);
    }
    finish(frame, pos)
}

fn decode_delta(
    frame: &[u8],
    mut pos: usize,
    dim: usize,
    nnz: usize,
    visit: &mut impl FnMut(usize, f32),
) -> Result<(), WireError> {
    let mut next = 0u64; // index of entry i is next + delta_i (delta_0 = j_0)
    for i in 0..nnz {
        let delta = varint::read(frame, &mut pos)?;
        if i > 0 && delta == 0 {
            return Err(WireError::NotSorted);
        }
        let j = next.checked_add(delta).ok_or(WireError::VarintOverflow)?;
        if j >= dim as u64 {
            return Err(WireError::IndexOutOfRange {
                index: j,
                dim: dim as u64,
            });
        }
        let v = read_f32(frame, &mut pos)?;
        visit(j as usize, v);
        next = j;
    }
    finish(frame, pos)
}

fn decode_bitmap(
    frame: &[u8],
    mut pos: usize,
    dim: usize,
    nnz: usize,
    visit: &mut impl FnMut(usize, f32),
) -> Result<(), WireError> {
    let bm_len = dim.div_ceil(8);
    let bitmap = frame.get(pos..pos + bm_len).ok_or(WireError::Truncated)?;
    pos += bm_len;
    let mut count = 0u64;
    for (byte_idx, &byte) in bitmap.iter().enumerate() {
        let mut bits = byte;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let j = byte_idx * 8 + bit;
            if j >= dim {
                return Err(WireError::IndexOutOfRange {
                    index: j as u64,
                    dim: dim as u64,
                });
            }
            count += 1;
        }
    }
    if count != nnz as u64 {
        return Err(WireError::CountMismatch {
            header: nnz as u64,
            payload: count,
        });
    }
    for (byte_idx, &byte) in bitmap.iter().enumerate() {
        let mut bits = byte;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let j = byte_idx * 8 + bit;
            let v = read_f32(frame, &mut pos)?;
            visit(j, v);
        }
    }
    finish(frame, pos)
}

/// The baseline coordinate-list encoding: every entry costs a 4-byte
/// little-endian `u32` index plus the 4-byte value bits.
///
/// # Examples
///
/// ```
/// use agsfl_sparse::SparseGradient;
/// use agsfl_wire::{decode_gradient, Codec, CooF32, WireScratch};
///
/// let g = SparseGradient::from_entries(100, vec![(3, 1.5), (97, -0.25)]);
/// let mut scratch = WireScratch::new();
/// let frame = CooF32.encode_gradient_into(&g, &mut scratch).to_vec();
/// assert_eq!(frame.len(), CooF32.encoded_len_gradient(&g));
/// assert_eq!(decode_gradient(&frame).unwrap(), g);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CooF32;

impl Codec for CooF32 {
    fn name(&self) -> &'static str {
        CodecId::CooF32.name()
    }

    fn choose(&self, _dim: usize, _entries: &[(usize, f32)]) -> CodecId {
        CodecId::CooF32
    }

    fn encoded_len(&self, dim: usize, entries: &[(usize, f32)]) -> usize {
        header_len(dim, entries.len()) + 8 * entries.len()
    }

    fn encode_into<'a>(
        &self,
        dim: usize,
        entries: &[(usize, f32)],
        scratch: &'a mut WireScratch,
    ) -> &'a [u8] {
        check_entries(dim, entries);
        assert!(
            dim <= u32::MAX as usize + 1,
            "CooF32 carries u32 indices; dim {dim} too large"
        );
        let buf = scratch.begin();
        write_header(buf, CodecId::CooF32, dim, entries.len());
        for &(j, v) in entries {
            buf.extend_from_slice(&(j as u32).to_le_bytes());
            buf.extend_from_slice(&v.to_le_bytes());
        }
        scratch.frame()
    }
}

/// Sorted-index delta encoding: the first entry's index, then the gap to
/// each following index, as LEB128 varints (enabled by the
/// [`SparseGradient`] sorted-entries invariant), with 4-byte value bits.
/// At realistic sparsity the gaps are small, so most indices cost one or
/// two bytes instead of [`CooF32`]'s four.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaVarint;

impl Codec for DeltaVarint {
    fn name(&self) -> &'static str {
        CodecId::DeltaVarint.name()
    }

    fn choose(&self, _dim: usize, _entries: &[(usize, f32)]) -> CodecId {
        CodecId::DeltaVarint
    }

    fn encoded_len(&self, dim: usize, entries: &[(usize, f32)]) -> usize {
        let mut len = header_len(dim, entries.len()) + 4 * entries.len();
        let mut prev = 0u64;
        for &(j, _) in entries {
            len += varint::len(j as u64 - prev);
            prev = j as u64;
        }
        len
    }

    fn encode_into<'a>(
        &self,
        dim: usize,
        entries: &[(usize, f32)],
        scratch: &'a mut WireScratch,
    ) -> &'a [u8] {
        check_entries(dim, entries);
        let buf = scratch.begin();
        write_header(buf, CodecId::DeltaVarint, dim, entries.len());
        let mut prev = 0u64;
        for &(j, v) in entries {
            varint::write(buf, j as u64 - prev);
            prev = j as u64;
            buf.extend_from_slice(&v.to_le_bytes());
        }
        scratch.frame()
    }
}

/// Dense occupancy bitmap + packed values: `⌈D/8⌉` bitmap bytes followed by
/// the 4-byte value bits in index order. No per-entry index cost at all,
/// which wins once the message is dense enough (`n/D ≳ 1/32` against
/// [`CooF32`]) — e.g. large-`k` rounds or the near-dense downlink of the
/// unidirectional sparsifier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bitmap;

impl Codec for Bitmap {
    fn name(&self) -> &'static str {
        CodecId::Bitmap.name()
    }

    fn choose(&self, _dim: usize, _entries: &[(usize, f32)]) -> CodecId {
        CodecId::Bitmap
    }

    fn encoded_len(&self, dim: usize, entries: &[(usize, f32)]) -> usize {
        header_len(dim, entries.len()) + dim.div_ceil(8) + 4 * entries.len()
    }

    fn encode_into<'a>(
        &self,
        dim: usize,
        entries: &[(usize, f32)],
        scratch: &'a mut WireScratch,
    ) -> &'a [u8] {
        check_entries(dim, entries);
        let buf = scratch.begin();
        write_header(buf, CodecId::Bitmap, dim, entries.len());
        let bm_start = buf.len();
        buf.resize(bm_start + dim.div_ceil(8), 0);
        for &(j, _) in entries {
            buf[bm_start + j / 8] |= 1 << (j % 8);
        }
        for &(_, v) in entries {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        scratch.frame()
    }
}

/// Per-message size-optimal codec: computes the exact frame length of every
/// concrete encoding and emits the smallest (ties broken by the lowest
/// [`CodecId`]), so the choice is a deterministic function of the message.
/// The emitted frame is self-describing — [`frame_codec`] reports which
/// encoding won, which is how the FL layer records per-round codec choices.
///
/// By construction `Auto`'s frame is never larger than [`CooF32`]'s (or any
/// other concrete codec's) for the same message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Auto;

impl Auto {
    fn lens(dim: usize, entries: &[(usize, f32)]) -> [(usize, CodecId); 3] {
        [
            (CooF32.encoded_len(dim, entries), CodecId::CooF32),
            (DeltaVarint.encoded_len(dim, entries), CodecId::DeltaVarint),
            (Bitmap.encoded_len(dim, entries), CodecId::Bitmap),
        ]
    }
}

impl Codec for Auto {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn choose(&self, dim: usize, entries: &[(usize, f32)]) -> CodecId {
        // min_by_key keeps the first minimum, i.e. the lowest codec id.
        Self::lens(dim, entries)
            .into_iter()
            .min_by_key(|&(len, _)| len)
            .expect("three candidates")
            .1
    }

    fn encoded_len(&self, dim: usize, entries: &[(usize, f32)]) -> usize {
        Self::lens(dim, entries)
            .into_iter()
            .map(|(len, _)| len)
            .min()
            .expect("three candidates")
    }

    fn encode_into<'a>(
        &self,
        dim: usize,
        entries: &[(usize, f32)],
        scratch: &'a mut WireScratch,
    ) -> &'a [u8] {
        match self.choose(dim, entries) {
            CodecId::CooF32 => CooF32.encode_into(dim, entries, scratch),
            CodecId::DeltaVarint => DeltaVarint.encode_into(dim, entries, scratch),
            CodecId::Bitmap => Bitmap.encode_into(dim, entries, scratch),
            lossy => unreachable!("Auto ranges over lossless codecs only, chose {lossy:?}"),
        }
    }
}

/// Serializable codec selector for experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodecSpec {
    /// [`CooF32`].
    Coo,
    /// [`DeltaVarint`].
    DeltaVarint,
    /// [`Bitmap`].
    Bitmap,
    /// [`Auto`] (smallest-per-message, lossless).
    Auto,
    /// [`crate::QLinear8`] (lossy; seeded via [`CodecSpec::build_seeded`]).
    QLinear8,
    /// [`crate::F16`] (lossy).
    F16,
    /// [`crate::SignNorm`] (lossy).
    SignNorm,
}

impl CodecSpec {
    /// Instantiates the codec. Lossy selectors get stochastic-rounding
    /// stream seed 0; runs that own a quantization seed should use
    /// [`CodecSpec::build_seeded`].
    pub fn build(&self) -> Box<dyn Codec> {
        self.build_seeded(0)
    }

    /// Instantiates the codec with the given stochastic-rounding stream
    /// seed (only [`CodecSpec::QLinear8`] consumes it — the other lossy
    /// tiers round deterministically, and the lossless tiers do not round
    /// at all).
    pub fn build_seeded(&self, seed: u64) -> Box<dyn Codec> {
        match self {
            CodecSpec::Coo => Box::new(CooF32),
            CodecSpec::DeltaVarint => Box::new(DeltaVarint),
            CodecSpec::Bitmap => Box::new(Bitmap),
            CodecSpec::Auto => Box::new(Auto),
            CodecSpec::QLinear8 => Box::new(crate::lossy::QLinear8::new(seed)),
            CodecSpec::F16 => Box::new(crate::lossy::F16),
            CodecSpec::SignNorm => Box::new(crate::lossy::SignNorm),
        }
    }

    /// Human-readable name matching [`Codec::name`].
    pub fn name(&self) -> &'static str {
        match self {
            CodecSpec::Coo => CodecId::CooF32.name(),
            CodecSpec::DeltaVarint => CodecId::DeltaVarint.name(),
            CodecSpec::Bitmap => CodecId::Bitmap.name(),
            CodecSpec::Auto => "auto",
            CodecSpec::QLinear8 => CodecId::QLinear8.name(),
            CodecSpec::F16 => CodecId::F16.name(),
            CodecSpec::SignNorm => CodecId::SignNorm.name(),
        }
    }

    /// Whether this selector quantizes values (breaks bit-identity with
    /// the lossless trajectory).
    pub fn is_lossy(&self) -> bool {
        matches!(
            self,
            CodecSpec::QLinear8 | CodecSpec::F16 | CodecSpec::SignNorm
        )
    }

    /// Every *lossless* selector, in a fixed order (used by the codec
    /// sweep figure).
    pub fn all() -> [CodecSpec; 4] {
        [
            CodecSpec::Coo,
            CodecSpec::DeltaVarint,
            CodecSpec::Bitmap,
            CodecSpec::Auto,
        ]
    }

    /// Every lossy selector, in [`CodecId`] order.
    pub fn lossy() -> [CodecSpec; 3] {
        [CodecSpec::QLinear8, CodecSpec::F16, CodecSpec::SignNorm]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codecs() -> [Box<dyn Codec>; 4] {
        [
            Box::new(CooF32),
            Box::new(DeltaVarint),
            Box::new(Bitmap),
            Box::new(Auto),
        ]
    }

    #[test]
    fn every_codec_round_trips_a_small_message() {
        let g = SparseGradient::from_entries(40, vec![(0, 1.0), (7, -0.0), (39, f32::MIN)]);
        let mut scratch = WireScratch::new();
        let mut out = Vec::new();
        for codec in codecs() {
            let frame = codec.encode_gradient_into(&g, &mut scratch).to_vec();
            assert_eq!(frame.len(), codec.encoded_len_gradient(&g), "{codec:?}");
            let dim = codec.decode_into(&frame, &mut out).unwrap();
            assert_eq!(dim, 40);
            // Bit-exact: -0.0 must survive as -0.0.
            let bits: Vec<(usize, u32)> = out.iter().map(|&(j, v)| (j, v.to_bits())).collect();
            let expected: Vec<(usize, u32)> =
                g.entries().iter().map(|&(j, v)| (j, v.to_bits())).collect();
            assert_eq!(bits, expected, "{codec:?}");
        }
    }

    #[test]
    fn empty_message_round_trips() {
        let g = SparseGradient::zeros(17);
        let mut scratch = WireScratch::new();
        for codec in codecs() {
            let frame = codec.encode_gradient_into(&g, &mut scratch).to_vec();
            assert_eq!(decode_gradient(&frame).unwrap(), g, "{codec:?}");
        }
    }

    #[test]
    fn zero_dimension_round_trips() {
        let g = SparseGradient::zeros(0);
        let mut scratch = WireScratch::new();
        for codec in codecs() {
            let frame = codec.encode_gradient_into(&g, &mut scratch).to_vec();
            assert_eq!(decode_gradient(&frame).unwrap(), g, "{codec:?}");
        }
    }

    #[test]
    fn delta_varint_beats_coo_on_dense_clusters() {
        // Adjacent indices: every delta is 1 byte vs CooF32's 4-byte index.
        let entries: Vec<(usize, f32)> = (100..200).map(|j| (j, j as f32)).collect();
        let g = SparseGradient::from_sorted_entries(1_000_000, entries);
        assert!(DeltaVarint.encoded_len_gradient(&g) < CooF32.encoded_len_gradient(&g));
    }

    #[test]
    fn bitmap_wins_at_high_density() {
        let entries: Vec<(usize, f32)> = (0..256).map(|j| (j * 2, 1.0)).collect();
        let g = SparseGradient::from_sorted_entries(512, entries);
        let bitmap = Bitmap.encoded_len_gradient(&g);
        assert!(bitmap < CooF32.encoded_len_gradient(&g));
        assert!(bitmap < DeltaVarint.encoded_len_gradient(&g));
        assert_eq!(Auto.choose(512, g.entries()), CodecId::Bitmap);
    }

    #[test]
    fn auto_is_never_larger_than_any_concrete_codec() {
        let g = SparseGradient::from_entries(1000, (0..50).map(|j| (j * 13, 0.5)).collect());
        let auto = Auto.encoded_len_gradient(&g);
        assert!(auto <= CooF32.encoded_len_gradient(&g));
        assert!(auto <= DeltaVarint.encoded_len_gradient(&g));
        assert!(auto <= Bitmap.encoded_len_gradient(&g));
    }

    #[test]
    fn auto_frame_records_its_choice() {
        let g = SparseGradient::from_entries(1000, (0..50).map(|j| (j * 13, 0.5)).collect());
        let mut scratch = WireScratch::new();
        let frame = Auto.encode_gradient_into(&g, &mut scratch).to_vec();
        assert_eq!(
            frame_codec(&frame).unwrap(),
            Auto.choose(g.dim(), g.entries())
        );
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let a = SparseGradient::from_entries(100, vec![(1, 1.0), (50, 2.0)]);
        let b = SparseGradient::from_entries(60, vec![(59, -3.0)]);
        let mut scratch = WireScratch::new();
        let frame_a1 = Auto.encode_gradient_into(&a, &mut scratch).to_vec();
        let _ = Auto.encode_gradient_into(&b, &mut scratch);
        let frame_a2 = Auto.encode_gradient_into(&a, &mut scratch).to_vec();
        assert_eq!(frame_a1, frame_a2);
        assert_eq!(scratch.generation(), 3);
    }

    #[test]
    fn encode_unsorted_matches_sorted_encoding() {
        let ranked = vec![(50usize, -9.0f32), (3, 4.0), (72, 1.0)];
        let mut sorted = ranked.clone();
        sorted.sort_unstable_by_key(|&(j, _)| j);
        let mut scratch = WireScratch::new();
        let from_ranked = scratch.encode_unsorted(&DeltaVarint, 100, &ranked).to_vec();
        let from_sorted = DeltaVarint.encode_into(100, &sorted, &mut scratch).to_vec();
        assert_eq!(from_ranked, from_sorted);
        assert_eq!(
            scratch.encoded_len_unsorted(&DeltaVarint, 100, &ranked),
            from_sorted.len()
        );
    }

    #[test]
    fn malformed_frames_error_not_panic() {
        let g = SparseGradient::from_entries(64, vec![(1, 1.0), (9, 2.0)]);
        let mut scratch = WireScratch::new();
        let mut out = Vec::new();
        for codec in codecs() {
            let frame = codec.encode_gradient_into(&g, &mut scratch).to_vec();
            // Truncations at every length must error, never panic.
            for cut in 0..frame.len() {
                assert!(
                    decode_frame(&frame[..cut], &mut out).is_err(),
                    "{codec:?} cut={cut}"
                );
            }
            // Trailing garbage is rejected.
            let mut long = frame.clone();
            long.push(0);
            assert_eq!(
                decode_frame(&long, &mut out),
                Err(WireError::TrailingBytes),
                "{codec:?}"
            );
        }
        assert_eq!(
            decode_frame(&[9, 1, 0], &mut out),
            Err(WireError::UnknownCodec(9))
        );
    }

    #[test]
    fn coo_rejects_unsorted_and_out_of_range_payloads() {
        let mut frame = Vec::new();
        write_header(&mut frame, CodecId::CooF32, 10, 2);
        for j in [5u32, 3] {
            frame.extend_from_slice(&j.to_le_bytes());
            frame.extend_from_slice(&1.0f32.to_le_bytes());
        }
        let mut out = Vec::new();
        assert_eq!(decode_frame(&frame, &mut out), Err(WireError::NotSorted));

        let mut frame = Vec::new();
        write_header(&mut frame, CodecId::CooF32, 10, 1);
        frame.extend_from_slice(&10u32.to_le_bytes());
        frame.extend_from_slice(&1.0f32.to_le_bytes());
        assert_eq!(
            decode_frame(&frame, &mut out),
            Err(WireError::IndexOutOfRange { index: 10, dim: 10 })
        );
    }

    #[test]
    fn bitmap_rejects_count_mismatch() {
        let g = SparseGradient::from_entries(16, vec![(2, 1.0)]);
        let mut scratch = WireScratch::new();
        let mut frame = Bitmap.encode_gradient_into(&g, &mut scratch).to_vec();
        // Set an extra bit without adding its value.
        let bm_byte = frame.len() - 4 - 2; // one value + two bitmap bytes
        frame[bm_byte] |= 0b1000_0000;
        let mut out = Vec::new();
        assert_eq!(
            decode_frame(&frame, &mut out),
            Err(WireError::CountMismatch {
                header: 1,
                payload: 2
            })
        );
    }

    #[test]
    fn codec_spec_builds_matching_names() {
        for spec in CodecSpec::all() {
            assert_eq!(spec.build().name(), spec.name());
        }
    }

    #[test]
    #[should_panic]
    fn encode_rejects_out_of_range_index() {
        let mut scratch = WireScratch::new();
        let _ = CooF32.encode_into(4, &[(4, 1.0)], &mut scratch);
    }
}
