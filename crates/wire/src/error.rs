//! Decode errors.
//!
//! Encoding cannot fail (the encoder owns both ends of every invariant), so
//! only the decode path returns a [`Result`]: a frame that arrives off the
//! wire is untrusted input, and every malformed shape maps to a distinct
//! [`WireError`] instead of a panic.

use std::fmt;

/// Why a wire frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before the decoder read everything the header
    /// promised.
    Truncated,
    /// The frame's codec identifier byte is not a known [`crate::CodecId`].
    UnknownCodec(u8),
    /// A decoded index is `>= dim` or an index delta overflowed.
    IndexOutOfRange {
        /// The offending index.
        index: u64,
        /// The dimension declared in the frame header.
        dim: u64,
    },
    /// Decoded indices were not strictly increasing (corrupt COO payload).
    NotSorted,
    /// The frame carries bytes past the encoded payload.
    TrailingBytes,
    /// The bitmap payload's population count disagrees with the header's
    /// entry count.
    CountMismatch {
        /// Entry count declared in the header.
        header: u64,
        /// Set bits actually present in the bitmap.
        payload: u64,
    },
    /// A varint ran past 10 bytes (no `u64` needs more in LEB128).
    VarintOverflow,
    /// A lossy frame's quantization header is malformed (non-finite or
    /// inverted `QLinear8` bounds, a negative or non-finite `SignNorm`
    /// magnitude, nonzero sign padding bits). The payload names the check
    /// that failed.
    InvalidQuantization(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            WireError::IndexOutOfRange { index, dim } => {
                write!(f, "decoded index {index} out of range (dim {dim})")
            }
            WireError::NotSorted => write!(f, "decoded indices not strictly increasing"),
            WireError::TrailingBytes => write!(f, "trailing bytes after payload"),
            WireError::CountMismatch { header, payload } => {
                write!(
                    f,
                    "bitmap holds {payload} entries, header declares {header}"
                )
            }
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            WireError::InvalidQuantization(what) => {
                write!(f, "malformed quantization header: {what}")
            }
        }
    }
}

impl std::error::Error for WireError {}
