//! The lossy codec tier: three quantized encodings that trade value
//! fidelity for bytes, with seed-deterministic stochastic rounding.
//!
//! # Frame layout
//!
//! Lossy frames reuse the common self-describing header (`codec id`,
//! `varint dim`, `varint nnz`); index *positions* stay exact — only values
//! are quantized — and travel as the same sorted-gap varints
//! [`crate::DeltaVarint`] uses:
//!
//! | codec | payload after the header | bytes (header aside) |
//! |---|---|---|
//! | [`QLinear8`] | `f32 lo`, `f32 hi`, then `n × (varint gap, u8 level)` | `8 + n + Σ varint(Δ)` |
//! | [`F16`] | `n × (varint gap, u16 half, LE)` | `2n + Σ varint(Δ)` |
//! | [`SignNorm`] | `f32 magnitude`, `⌈n/8⌉` sign bytes (bit set = negative), then `n × varint gap` | `4 + ⌈n/8⌉ + Σ varint(Δ)` |
//!
//! [`QLinear8`] maps each value onto 256 linear levels between the frame's
//! observed `[lo, hi]`; [`F16`] stores IEEE-754 binary16 with
//! round-to-nearest-even (inputs saturate at ±65504, the largest finite
//! half, so error feedback never sees an infinity); [`SignNorm`] keeps one
//! sign bit per entry plus the frame's mean absolute value, the classic
//! 1-bit-with-norm quantizer.
//!
//! # Determinism
//!
//! [`QLinear8`] is the only codec that rounds stochastically. Its RNG is a
//! per-frame ChaCha8 stream keyed by `seed XOR fnv1a(dim, entries)` — a
//! pure function of the codec's configured seed and the message content,
//! so encoding carries **no mutable state**: the same message encodes to
//! the same bytes no matter which worker thread encodes it, how many
//! times, or on which side of a checkpoint/resume boundary. That
//! content-keyed derivation is what keeps lossy training runs bit-identical
//! across 1–8 workers even though they (deliberately) differ from lossless
//! runs. Levels whose real-valued position is within `1e-6` of an integer
//! snap deterministically (no RNG draw), so values that are exactly
//! representable round-trip exactly and re-encoding a decoded frame is
//! idempotent.
//!
//! # Error feedback
//!
//! Capturing quantization error is *not* the codec's job: the FL client
//! self-decodes its own frame and routes `v − v̂` per entry back into its
//! `ResidualAccumulator` (see `agsfl_fl`), the same error-feedback path
//! top-k sparsification already uses. Decoders only promise that `v̂` is a
//! deterministic, validated function of the frame bytes — malformed
//! quantization headers surface as
//! [`WireError::InvalidQuantization`](crate::WireError) instead of panics.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::codec::{check_entries, finish, header_len, read_f32, write_header, Codec, CodecId};
use crate::error::WireError;
use crate::scratch::WireScratch;
use crate::varint;

/// Largest finite IEEE-754 binary16 value; [`F16`] saturates here.
pub const F16_MAX: f32 = 65504.0;

/// Converts an `f32` to IEEE-754 binary16 bits with round-to-nearest-even.
///
/// Full IEEE semantics: values at or beyond 65520 round to infinity, NaN
/// stays NaN (quieted), subnormal halves and signed zero are exact. The
/// [`F16`] codec clamps its inputs to `±`[`F16_MAX`] *before* calling this,
/// so codec frames never carry an infinity.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7FFF_FFFF;
    if abs >= 0x7F80_0000 {
        // Infinity or NaN (quieted: keep a set mantissa bit).
        return sign | 0x7C00 | if abs > 0x7F80_0000 { 0x0200 } else { 0 };
    }
    if abs >= 0x4780_0000 {
        // >= 65536: past every finite half even before rounding.
        return sign | 0x7C00;
    }
    if abs >= 0x3880_0000 {
        // Normal half range (>= 2^-14): rebias, truncate 13 mantissa bits,
        // then round to nearest even. The carry of rounding up 0x7BFF
        // lands on 0x7C00 (infinity), which is exactly RNE for
        // [65520, 65536).
        let mut half = ((abs - (112 << 23)) >> 13) as u16;
        let round_bits = abs & 0x1FFF;
        if round_bits > 0x1000 || (round_bits == 0x1000 && half & 1 == 1) {
            half += 1;
        }
        return sign | half;
    }
    // Subnormal-or-zero target: quantize to multiples of 2^-24.
    let e = (abs >> 23) as i32;
    if e == 0 {
        // f32 subnormals are < 2^-126, far below half the smallest
        // half-subnormal step.
        return sign;
    }
    let shift = 126 - e;
    if shift > 24 {
        return sign;
    }
    let m24 = (abs & 0x007F_FFFF) | 0x0080_0000;
    let mut q = m24 >> shift;
    let dropped = m24 & ((1u32 << shift) - 1);
    let half_point = 1u32 << (shift - 1);
    if dropped > half_point || (dropped == half_point && q & 1 == 1) {
        // A carry to 0x0400 is the smallest normal half — still correct.
        q += 1;
    }
    sign | q as u16
}

/// Converts IEEE-754 binary16 bits to the exactly-representing `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1F;
    let mant = u32::from(h & 0x3FF);
    if exp == 0x1F {
        return f32::from_bits(sign | 0x7F80_0000 | (mant << 13));
    }
    if exp == 0 {
        if mant == 0 {
            return f32::from_bits(sign);
        }
        // Half subnormal: mant * 2^-24, renormalized for f32.
        let p = 31 - mant.leading_zeros();
        let m = (mant << (23 - p)) & 0x007F_FFFF;
        return f32::from_bits(sign | ((p + 103) << 23) | m);
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (mant << 13))
}

/// FNV-1a over the message content: `dim`, then every `(index, value
/// bits)` in sorted order, all little-endian. Part of the frame format
/// spec — [`QLinear8`]'s per-frame RNG stream is keyed by this hash, so the
/// reference encoder must derive it identically.
pub(crate) fn frame_hash(dim: usize, entries: &[(usize, f32)]) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = BASIS;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(&(dim as u64).to_le_bytes());
    for &(j, v) in entries {
        mix(&(j as u64).to_le_bytes());
        mix(&v.to_bits().to_le_bytes());
    }
    h
}

/// The per-frame stochastic-rounding stream: content-keyed, so it is a pure
/// function of `(codec seed, message)`.
pub(crate) fn frame_rng(seed: u64, dim: usize, entries: &[(usize, f32)]) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ frame_hash(dim, entries))
}

/// Asserts the lossy-encode contract: every value finite. (Lossless codecs
/// carry arbitrary bit patterns; a lossy frame's header fields must be
/// finite for the decoder to accept them, so the encoder refuses the
/// inputs that could not round-trip.)
fn check_finite(entries: &[(usize, f32)]) {
    assert!(
        entries.iter().all(|&(_, v)| v.is_finite()),
        "lossy codecs require finite values"
    );
}

fn gaps_len(entries: &[(usize, f32)]) -> usize {
    let mut len = 0usize;
    let mut prev = 0u64;
    for &(j, _) in entries {
        len += varint::len(j as u64 - prev);
        prev = j as u64;
    }
    len
}

/// The quantization step shared by encoder, decoder and error feedback:
/// computed in `f64` so `hi − lo` never overflows even at `±f32::MAX`.
fn q8_step(lo: f32, hi: f32) -> f64 {
    (f64::from(hi) - f64::from(lo)) / 255.0
}

/// Dequantizes level `q` — the one reconstruction expression, used
/// verbatim on both sides so the encoder's error accounting matches the
/// decoder bit-for-bit.
fn q8_value(lo: f32, step: f64, q: u8) -> f32 {
    (f64::from(lo) + f64::from(q) * step) as f32
}

fn q8_bounds(entries: &[(usize, f32)]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &(_, v) in entries {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if entries.is_empty() {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Quantizes one value to a level in `0..=255`.
///
/// Levels within `1e-6` of an integer snap deterministically (exact
/// round-trip for representable values, and no RNG draw); everything else
/// rounds stochastically — down with probability `1 − frac`, up with
/// probability `frac` — so the quantizer is unbiased in expectation.
fn q8_quantize(v: f32, lo: f32, step: f64, rng: &mut ChaCha8Rng) -> u8 {
    if step == 0.0 {
        return 0;
    }
    let q_real = (f64::from(v) - f64::from(lo)) / step;
    let nearest = q_real.round();
    let q = if (q_real - nearest).abs() < 1e-6 {
        nearest
    } else {
        let floor = q_real.floor();
        let frac = q_real - floor;
        floor + f64::from(rng.gen::<f64>() < frac)
    };
    q.clamp(0.0, 255.0) as u8
}

/// 8-bit linear quantizer over the frame's own `[lo, hi]` value range with
/// seed-deterministic stochastic rounding (see the [module docs](self) for
/// the per-frame RNG derivation).
///
/// Two frames with the same content always encode identically; the `seed`
/// distinguishes independent experiments, exactly like the simulation's
/// other named RNG streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QLinear8 {
    seed: u64,
}

impl QLinear8 {
    /// Creates the quantizer with its stochastic-rounding stream seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Codec for QLinear8 {
    fn name(&self) -> &'static str {
        CodecId::QLinear8.name()
    }

    fn choose(&self, _dim: usize, _entries: &[(usize, f32)]) -> CodecId {
        CodecId::QLinear8
    }

    fn encoded_len(&self, dim: usize, entries: &[(usize, f32)]) -> usize {
        header_len(dim, entries.len()) + 8 + entries.len() + gaps_len(entries)
    }

    fn encode_into<'a>(
        &self,
        dim: usize,
        entries: &[(usize, f32)],
        scratch: &'a mut WireScratch,
    ) -> &'a [u8] {
        check_entries(dim, entries);
        check_finite(entries);
        let (lo, hi) = q8_bounds(entries);
        let step = q8_step(lo, hi);
        let mut rng = frame_rng(self.seed, dim, entries);
        let buf = scratch.begin();
        write_header(buf, CodecId::QLinear8, dim, entries.len());
        buf.extend_from_slice(&lo.to_le_bytes());
        buf.extend_from_slice(&hi.to_le_bytes());
        let mut prev = 0u64;
        for &(j, v) in entries {
            varint::write(buf, j as u64 - prev);
            prev = j as u64;
            buf.push(q8_quantize(v, lo, step, &mut rng));
        }
        scratch.frame()
    }
}

pub(crate) fn decode_qlinear8(
    frame: &[u8],
    mut pos: usize,
    dim: usize,
    nnz: usize,
    visit: &mut impl FnMut(usize, f32),
) -> Result<(), WireError> {
    let lo = read_f32(frame, &mut pos)?;
    let hi = read_f32(frame, &mut pos)?;
    if !lo.is_finite() || !hi.is_finite() || lo > hi {
        return Err(WireError::InvalidQuantization("qlinear8 bounds"));
    }
    let step = q8_step(lo, hi);
    let mut next = 0u64;
    for i in 0..nnz {
        let delta = varint::read(frame, &mut pos)?;
        if i > 0 && delta == 0 {
            return Err(WireError::NotSorted);
        }
        let j = next.checked_add(delta).ok_or(WireError::VarintOverflow)?;
        if j >= dim as u64 {
            return Err(WireError::IndexOutOfRange {
                index: j,
                dim: dim as u64,
            });
        }
        let &q = frame.get(pos).ok_or(WireError::Truncated)?;
        pos += 1;
        visit(j as usize, q8_value(lo, step, q));
        next = j;
    }
    finish(frame, pos)
}

/// IEEE-754 binary16 values with round-to-nearest-even, saturating at
/// `±`[`F16_MAX`] so error feedback never sees an infinity. Deterministic:
/// carries no RNG at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct F16;

impl Codec for F16 {
    fn name(&self) -> &'static str {
        CodecId::F16.name()
    }

    fn choose(&self, _dim: usize, _entries: &[(usize, f32)]) -> CodecId {
        CodecId::F16
    }

    fn encoded_len(&self, dim: usize, entries: &[(usize, f32)]) -> usize {
        header_len(dim, entries.len()) + 2 * entries.len() + gaps_len(entries)
    }

    fn encode_into<'a>(
        &self,
        dim: usize,
        entries: &[(usize, f32)],
        scratch: &'a mut WireScratch,
    ) -> &'a [u8] {
        check_entries(dim, entries);
        check_finite(entries);
        let buf = scratch.begin();
        write_header(buf, CodecId::F16, dim, entries.len());
        let mut prev = 0u64;
        for &(j, v) in entries {
            varint::write(buf, j as u64 - prev);
            prev = j as u64;
            let half = f32_to_f16_bits(v.clamp(-F16_MAX, F16_MAX));
            buf.extend_from_slice(&half.to_le_bytes());
        }
        scratch.frame()
    }
}

pub(crate) fn decode_f16(
    frame: &[u8],
    mut pos: usize,
    dim: usize,
    nnz: usize,
    visit: &mut impl FnMut(usize, f32),
) -> Result<(), WireError> {
    let mut next = 0u64;
    for i in 0..nnz {
        let delta = varint::read(frame, &mut pos)?;
        if i > 0 && delta == 0 {
            return Err(WireError::NotSorted);
        }
        let j = next.checked_add(delta).ok_or(WireError::VarintOverflow)?;
        if j >= dim as u64 {
            return Err(WireError::IndexOutOfRange {
                index: j,
                dim: dim as u64,
            });
        }
        let bytes: [u8; 2] = frame
            .get(pos..pos + 2)
            .ok_or(WireError::Truncated)?
            .try_into()
            .expect("2-byte slice");
        pos += 2;
        visit(j as usize, f16_bits_to_f32(u16::from_le_bytes(bytes)));
        next = j;
    }
    finish(frame, pos)
}

/// One sign bit per entry plus the frame's mean absolute value — the
/// 1-bit-with-norm quantizer. Every decoded value is `±magnitude`, where
/// `magnitude = (Σ|vᵢ|)/n` accumulated in `f64` over the sorted entries.
/// Deterministic: carries no RNG at all.
///
/// The sign bytes precede the gap varints so the streaming decoder can
/// locate them without a first parsing pass; padding bits of the last sign
/// byte must be zero (validated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SignNorm;

fn sign_norm_magnitude(entries: &[(usize, f32)]) -> f32 {
    if entries.is_empty() {
        return 0.0;
    }
    let sum: f64 = entries.iter().map(|&(_, v)| f64::from(v).abs()).sum();
    (sum / entries.len() as f64) as f32
}

impl Codec for SignNorm {
    fn name(&self) -> &'static str {
        CodecId::SignNorm.name()
    }

    fn choose(&self, _dim: usize, _entries: &[(usize, f32)]) -> CodecId {
        CodecId::SignNorm
    }

    fn encoded_len(&self, dim: usize, entries: &[(usize, f32)]) -> usize {
        header_len(dim, entries.len()) + 4 + entries.len().div_ceil(8) + gaps_len(entries)
    }

    fn encode_into<'a>(
        &self,
        dim: usize,
        entries: &[(usize, f32)],
        scratch: &'a mut WireScratch,
    ) -> &'a [u8] {
        check_entries(dim, entries);
        check_finite(entries);
        let magnitude = sign_norm_magnitude(entries);
        let buf = scratch.begin();
        write_header(buf, CodecId::SignNorm, dim, entries.len());
        buf.extend_from_slice(&magnitude.to_le_bytes());
        let signs_start = buf.len();
        buf.resize(signs_start + entries.len().div_ceil(8), 0);
        for (i, &(_, v)) in entries.iter().enumerate() {
            if v.is_sign_negative() {
                buf[signs_start + i / 8] |= 1 << (i % 8);
            }
        }
        let mut prev = 0u64;
        for &(j, _) in entries {
            varint::write(buf, j as u64 - prev);
            prev = j as u64;
        }
        scratch.frame()
    }
}

pub(crate) fn decode_sign_norm(
    frame: &[u8],
    mut pos: usize,
    dim: usize,
    nnz: usize,
    visit: &mut impl FnMut(usize, f32),
) -> Result<(), WireError> {
    let magnitude = read_f32(frame, &mut pos)?;
    if !magnitude.is_finite() || magnitude < 0.0 {
        return Err(WireError::InvalidQuantization("sign-norm magnitude"));
    }
    let signs_len = nnz.div_ceil(8);
    let signs_start = pos;
    if frame.len() < signs_start + signs_len {
        return Err(WireError::Truncated);
    }
    if !nnz.is_multiple_of(8) && frame[signs_start + signs_len - 1] >> (nnz % 8) != 0 {
        return Err(WireError::InvalidQuantization("sign-norm padding bits"));
    }
    pos += signs_len;
    let mut next = 0u64;
    for i in 0..nnz {
        let delta = varint::read(frame, &mut pos)?;
        if i > 0 && delta == 0 {
            return Err(WireError::NotSorted);
        }
        let j = next.checked_add(delta).ok_or(WireError::VarintOverflow)?;
        if j >= dim as u64 {
            return Err(WireError::IndexOutOfRange {
                index: j,
                dim: dim as u64,
            });
        }
        let negative = frame[signs_start + i / 8] & (1 << (i % 8)) != 0;
        visit(j as usize, if negative { -magnitude } else { magnitude });
        next = j;
    }
    finish(frame, pos)
}

/// A value-precision tier — the second axis of the controllers' 2-D
/// `(k × precision)` action space.
///
/// [`Precision::F32`] is the lossless tier (the smallest-frame
/// [`crate::Auto`] codec): selecting it reproduces the lossless trajectory
/// exactly, which is the zero-error end of the bytes-vs-accuracy frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Precision {
    /// Lossless `f32` frames ([`crate::Auto`]).
    F32 = 0,
    /// IEEE binary16 values ([`F16`]).
    F16 = 1,
    /// 8-bit linear quantization ([`QLinear8`]).
    Q8 = 2,
    /// 1-bit sign + frame norm ([`SignNorm`]).
    Sign = 3,
}

impl Precision {
    /// Every tier, ordered from most to least precise — also the
    /// deterministic tie-break order (lowest index wins).
    pub const ALL: [Precision; 4] = [
        Precision::F32,
        Precision::F16,
        Precision::Q8,
        Precision::Sign,
    ];

    /// Human-readable tier name.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Q8 => "q8",
            Precision::Sign => "sign",
        }
    }

    /// The codec selector implementing this tier.
    pub fn codec_spec(self) -> crate::CodecSpec {
        match self {
            Precision::F32 => crate::CodecSpec::Auto,
            Precision::F16 => crate::CodecSpec::F16,
            Precision::Q8 => crate::CodecSpec::QLinear8,
            Precision::Sign => crate::CodecSpec::SignNorm,
        }
    }

    /// Inverse of `tier as u8` (snapshot restore).
    pub fn from_index(index: u8) -> Option<Precision> {
        Precision::ALL.get(index as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_frame;

    #[test]
    fn f16_conversion_is_exact_on_known_values() {
        for (x, bits) in [
            (0.0f32, 0x0000u16),
            (-0.0, 0x8000),
            (1.0, 0x3C00),
            (-2.0, 0xC000),
            (65504.0, 0x7BFF),
            (0.5, 0x3800),
            (6.1035156e-5, 0x0400), // smallest normal half
            (5.9604645e-8, 0x0001), // smallest subnormal half
            (6.097555e-5, 0x03FF),  // largest subnormal half
            (f32::INFINITY, 0x7C00),
        ] {
            assert_eq!(f32_to_f16_bits(x), bits, "{x}");
            assert_eq!(f16_bits_to_f32(bits).to_bits(), x.to_bits(), "{bits:#06x}");
        }
        assert_eq!(f32_to_f16_bits(f32::NAN) & 0x7C00, 0x7C00);
        assert_ne!(f32_to_f16_bits(f32::NAN) & 0x03FF, 0);
    }

    #[test]
    fn f16_rne_rounds_ties_to_even() {
        // 1.0 + 2^-11 sits exactly between 1.0 (even) and 1.0009766 (odd).
        let tie = f32::from_bits(0x3F80_1000);
        assert_eq!(f32_to_f16_bits(tie), 0x3C00);
        // The next f32 up must round away from 1.0.
        let above = f32::from_bits(0x3F80_1001);
        assert_eq!(f32_to_f16_bits(above), 0x3C01);
        // Overflow by rounding: 65520 is the first value that reaches inf.
        assert_eq!(f32_to_f16_bits(65520.0), 0x7C00);
        assert_eq!(f32_to_f16_bits(65519.996), 0x7BFF);
    }

    #[test]
    fn every_f16_round_trips_bit_exactly_through_f32() {
        for h in 0u16..=u16::MAX {
            let x = f16_bits_to_f32(h);
            if x.is_nan() {
                assert_eq!(f32_to_f16_bits(x) & 0x7C00, 0x7C00);
                continue;
            }
            assert_eq!(f32_to_f16_bits(x), h, "{h:#06x}");
        }
    }

    #[test]
    fn qlinear8_same_content_encodes_identically() {
        let entries: Vec<(usize, f32)> = (0..40).map(|j| (j * 3, (j as f32).sin())).collect();
        let codec = QLinear8::new(7);
        let mut s1 = WireScratch::new();
        let mut s2 = WireScratch::new();
        let a = codec.encode_into(200, &entries, &mut s1).to_vec();
        let b = codec.encode_into(200, &entries, &mut s2).to_vec();
        assert_eq!(a, b);
        // A different seed draws a different stochastic stream.
        let c = QLinear8::new(8)
            .encode_into(200, &entries, &mut s1)
            .to_vec();
        assert_ne!(a, c);
        assert_eq!(a.len(), c.len(), "seed changes levels, never the length");
    }

    #[test]
    fn qlinear8_reencoding_decoded_values_is_idempotent() {
        let entries: Vec<(usize, f32)> = (0..64).map(|j| (j, (j as f32) * 0.37 - 9.0)).collect();
        let codec = QLinear8::new(3);
        let mut scratch = WireScratch::new();
        let frame = codec.encode_into(64, &entries, &mut scratch).to_vec();
        let mut decoded = Vec::new();
        decode_frame(&frame, &mut decoded).unwrap();
        // Decoded values sit exactly on levels, so the snap path encodes
        // them without touching the RNG — bit-identical values come back.
        let frame2 = codec.encode_into(64, &decoded, &mut scratch).to_vec();
        let mut decoded2 = Vec::new();
        decode_frame(&frame2, &mut decoded2).unwrap();
        let bits = |v: &[(usize, f32)]| -> Vec<(usize, u32)> {
            v.iter().map(|&(j, x)| (j, x.to_bits())).collect()
        };
        assert_eq!(bits(&decoded), bits(&decoded2));
    }

    #[test]
    fn sign_norm_padding_bits_are_validated() {
        let entries = vec![(1usize, -1.0f32), (4, 2.0), (9, -3.0)];
        let mut scratch = WireScratch::new();
        let mut frame = SignNorm.encode_into(16, &entries, &mut scratch).to_vec();
        let mut out = Vec::new();
        decode_frame(&frame, &mut out).unwrap();
        assert_eq!(out.iter().map(|&(j, _)| j).collect::<Vec<_>>(), [1, 4, 9]);
        assert!(out[0].1 < 0.0 && out[1].1 > 0.0 && out[2].1 < 0.0);
        // Flip a padding bit in the single sign byte (entries use bits 0–2).
        let sign_byte = frame.len() - 3 - 1; // three 1-byte gaps at the tail
        frame[sign_byte] |= 0b1000_0000;
        assert_eq!(
            decode_frame(&frame, &mut out),
            Err(WireError::InvalidQuantization("sign-norm padding bits"))
        );
    }

    #[test]
    fn precision_tiers_map_to_their_codecs() {
        for p in Precision::ALL {
            assert_eq!(Precision::from_index(p as u8), Some(p));
        }
        assert_eq!(Precision::from_index(4), None);
        assert_eq!(Precision::F32.codec_spec().name(), "auto");
        assert_eq!(Precision::Q8.codec_spec().name(), "qlinear8");
        assert_eq!(Precision::F16.codec_spec().name(), "f16");
        assert_eq!(Precision::Sign.codec_spec().name(), "sign-norm");
    }
}
