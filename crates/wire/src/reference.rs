//! Straightforward allocating codec implementations — the executable
//! specification the scratch-reusing fast paths are benchmarked and
//! property-tested against, mirroring `agsfl_sparse::reference` and
//! `agsfl_ml::reference`.
//!
//! Every function here allocates its output per call and pushes bytes one
//! at a time; the frames are **byte-identical** to the ones
//! [`crate::Codec::encode_into`] produces (pinned by the equivalence tests
//! in `tests/codec_roundtrip.rs`), so the `bench-report` encode/decode
//! pairs measure pure implementation overhead, not format drift.

use crate::codec::CodecId;
use crate::error::WireError;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_header(out: &mut Vec<u8>, id: CodecId, dim: usize, nnz: usize) {
    out.push(id as u8);
    push_varint(out, dim as u64);
    push_varint(out, nnz as u64);
}

/// Allocating [`crate::CooF32`] encoder.
pub fn coo_encode(dim: usize, entries: &[(usize, f32)]) -> Vec<u8> {
    let mut out = Vec::new();
    push_header(&mut out, CodecId::CooF32, dim, entries.len());
    for &(j, v) in entries {
        for b in (j as u32).to_le_bytes() {
            out.push(b);
        }
        for b in v.to_le_bytes() {
            out.push(b);
        }
    }
    out
}

/// Allocating [`crate::DeltaVarint`] encoder.
pub fn delta_encode(dim: usize, entries: &[(usize, f32)]) -> Vec<u8> {
    let mut out = Vec::new();
    push_header(&mut out, CodecId::DeltaVarint, dim, entries.len());
    let mut prev = 0u64;
    for &(j, v) in entries {
        push_varint(&mut out, j as u64 - prev);
        prev = j as u64;
        for b in v.to_le_bytes() {
            out.push(b);
        }
    }
    out
}

/// Allocating [`crate::Bitmap`] encoder.
pub fn bitmap_encode(dim: usize, entries: &[(usize, f32)]) -> Vec<u8> {
    let mut out = Vec::new();
    push_header(&mut out, CodecId::Bitmap, dim, entries.len());
    let mut bitmap = vec![0u8; dim.div_ceil(8)];
    for &(j, _) in entries {
        bitmap[j / 8] |= 1 << (j % 8);
    }
    out.extend_from_slice(&bitmap);
    for &(_, v) in entries {
        for b in v.to_le_bytes() {
            out.push(b);
        }
    }
    out
}

/// Allocating seed-style decoder, implemented independently of the fast
/// path: the header and payload are parsed into intermediate index/value
/// vectors that are zipped into a fresh entry vector at the end — the
/// staged-buffers shape a first-version deserializer naturally takes
/// (compare the serde-ndim "shape plus flat data" idiom). For every valid
/// frame it returns exactly what [`crate::decode_frame`] decodes; error
/// reporting on malformed frames is coarser (any malformation is an
/// error, but not necessarily the same [`WireError`] variant).
pub fn decode(frame: &[u8]) -> Result<(usize, Vec<(usize, f32)>), WireError> {
    fn read_varint(frame: &[u8], pos: &mut usize) -> Result<u64, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let &byte = frame.get(*pos).ok_or(WireError::Truncated)?;
            *pos += 1;
            if shift >= 64 {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    let &id = frame.first().ok_or(WireError::Truncated)?;
    let mut pos = 1usize;
    let dim = read_varint(frame, &mut pos)? as usize;
    let nnz = read_varint(frame, &mut pos)? as usize;

    // Stage 1: parse indices and values into separate buffers.
    let mut indices: Vec<usize> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    let read_value = |frame: &[u8], pos: &mut usize| -> Result<f32, WireError> {
        let bytes: [u8; 4] = frame
            .get(*pos..*pos + 4)
            .ok_or(WireError::Truncated)?
            .try_into()
            .expect("4-byte slice");
        *pos += 4;
        Ok(f32::from_le_bytes(bytes))
    };
    match id {
        0 => {
            for _ in 0..nnz {
                let bytes: [u8; 4] = frame
                    .get(pos..pos + 4)
                    .ok_or(WireError::Truncated)?
                    .try_into()
                    .expect("4-byte slice");
                pos += 4;
                indices.push(u32::from_le_bytes(bytes) as usize);
                values.push(read_value(frame, &mut pos)?);
            }
        }
        1 => {
            let mut prev = 0u64;
            for i in 0..nnz {
                let delta = read_varint(frame, &mut pos)?;
                if i > 0 && delta == 0 {
                    return Err(WireError::NotSorted);
                }
                prev = prev.checked_add(delta).ok_or(WireError::VarintOverflow)?;
                indices.push(prev as usize);
                values.push(read_value(frame, &mut pos)?);
            }
        }
        2 => {
            let bm_len = dim.div_ceil(8);
            let bitmap = frame.get(pos..pos + bm_len).ok_or(WireError::Truncated)?;
            pos += bm_len;
            for (byte_idx, &byte) in bitmap.iter().enumerate() {
                for bit in 0..8 {
                    if byte & (1 << bit) != 0 {
                        indices.push(byte_idx * 8 + bit);
                    }
                }
            }
            if indices.len() != nnz {
                return Err(WireError::CountMismatch {
                    header: nnz as u64,
                    payload: indices.len() as u64,
                });
            }
            for _ in 0..nnz {
                values.push(read_value(frame, &mut pos)?);
            }
        }
        other => return Err(WireError::UnknownCodec(other)),
    }
    if pos != frame.len() {
        return Err(WireError::TrailingBytes);
    }
    for (i, &j) in indices.iter().enumerate() {
        if j >= dim {
            return Err(WireError::IndexOutOfRange {
                index: j as u64,
                dim: dim as u64,
            });
        }
        if i > 0 && indices[i - 1] >= j {
            return Err(WireError::NotSorted);
        }
    }

    // Stage 2: zip the staged buffers into the entry list.
    let entries = indices.into_iter().zip(values).collect();
    Ok((dim, entries))
}
