//! Straightforward allocating codec implementations — the executable
//! specification the scratch-reusing fast paths are benchmarked and
//! property-tested against, mirroring `agsfl_sparse::reference` and
//! `agsfl_ml::reference`.
//!
//! Every function here allocates its output per call and pushes bytes one
//! at a time; the frames are **byte-identical** to the ones
//! [`crate::Codec::encode_into`] produces (pinned by the equivalence tests
//! in `tests/codec_roundtrip.rs`), so the `bench-report` encode/decode
//! pairs measure pure implementation overhead, not format drift.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::codec::CodecId;
use crate::error::WireError;
use crate::lossy::{f16_bits_to_f32, f32_to_f16_bits, F16_MAX};

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_header(out: &mut Vec<u8>, id: CodecId, dim: usize, nnz: usize) {
    out.push(id as u8);
    push_varint(out, dim as u64);
    push_varint(out, nnz as u64);
}

/// Allocating [`crate::CooF32`] encoder.
pub fn coo_encode(dim: usize, entries: &[(usize, f32)]) -> Vec<u8> {
    let mut out = Vec::new();
    push_header(&mut out, CodecId::CooF32, dim, entries.len());
    for &(j, v) in entries {
        for b in (j as u32).to_le_bytes() {
            out.push(b);
        }
        for b in v.to_le_bytes() {
            out.push(b);
        }
    }
    out
}

/// Allocating [`crate::DeltaVarint`] encoder.
pub fn delta_encode(dim: usize, entries: &[(usize, f32)]) -> Vec<u8> {
    let mut out = Vec::new();
    push_header(&mut out, CodecId::DeltaVarint, dim, entries.len());
    let mut prev = 0u64;
    for &(j, v) in entries {
        push_varint(&mut out, j as u64 - prev);
        prev = j as u64;
        for b in v.to_le_bytes() {
            out.push(b);
        }
    }
    out
}

/// Allocating [`crate::Bitmap`] encoder.
pub fn bitmap_encode(dim: usize, entries: &[(usize, f32)]) -> Vec<u8> {
    let mut out = Vec::new();
    push_header(&mut out, CodecId::Bitmap, dim, entries.len());
    let mut bitmap = vec![0u8; dim.div_ceil(8)];
    for &(j, _) in entries {
        bitmap[j / 8] |= 1 << (j % 8);
    }
    out.extend_from_slice(&bitmap);
    for &(_, v) in entries {
        for b in v.to_le_bytes() {
            out.push(b);
        }
    }
    out
}

/// Allocating [`crate::QLinear8`] encoder. The content-keyed FNV-1a
/// stream derivation and the snap-vs-stochastic rounding rule are part of
/// the frame format spec, so both are re-derived here from scratch; the
/// frames are byte-identical to the fast path's for every `(seed,
/// message)` pair.
pub fn qlinear8_encode(seed: u64, dim: usize, entries: &[(usize, f32)]) -> Vec<u8> {
    let mut out = Vec::new();
    push_header(&mut out, CodecId::QLinear8, dim, entries.len());
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &(_, v) in entries {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if entries.is_empty() {
        lo = 0.0;
        hi = 0.0;
    }
    for b in lo.to_le_bytes() {
        out.push(b);
    }
    for b in hi.to_le_bytes() {
        out.push(b);
    }
    // Independent FNV-1a re-derivation of the per-frame stream key.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut message: Vec<u8> = (dim as u64).to_le_bytes().to_vec();
    for &(j, v) in entries {
        message.extend_from_slice(&(j as u64).to_le_bytes());
        message.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for b in message {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ h);
    let step = (f64::from(hi) - f64::from(lo)) / 255.0;
    let mut prev = 0u64;
    for &(j, v) in entries {
        push_varint(&mut out, j as u64 - prev);
        prev = j as u64;
        let q = if step == 0.0 {
            0.0
        } else {
            let q_real = (f64::from(v) - f64::from(lo)) / step;
            let nearest = q_real.round();
            if (q_real - nearest).abs() < 1e-6 {
                nearest
            } else {
                q_real.floor() + f64::from(rng.gen::<f64>() < q_real - q_real.floor())
            }
        };
        out.push(q.clamp(0.0, 255.0) as u8);
    }
    out
}

/// Allocating [`crate::F16`] encoder.
pub fn f16_encode(dim: usize, entries: &[(usize, f32)]) -> Vec<u8> {
    let mut out = Vec::new();
    push_header(&mut out, CodecId::F16, dim, entries.len());
    let mut prev = 0u64;
    for &(j, v) in entries {
        push_varint(&mut out, j as u64 - prev);
        prev = j as u64;
        for b in f32_to_f16_bits(v.clamp(-F16_MAX, F16_MAX)).to_le_bytes() {
            out.push(b);
        }
    }
    out
}

/// Allocating [`crate::SignNorm`] encoder.
pub fn sign_norm_encode(dim: usize, entries: &[(usize, f32)]) -> Vec<u8> {
    let mut out = Vec::new();
    push_header(&mut out, CodecId::SignNorm, dim, entries.len());
    let magnitude = if entries.is_empty() {
        0.0f32
    } else {
        let sum: f64 = entries.iter().map(|&(_, v)| f64::from(v).abs()).sum();
        (sum / entries.len() as f64) as f32
    };
    for b in magnitude.to_le_bytes() {
        out.push(b);
    }
    let mut signs = vec![0u8; entries.len().div_ceil(8)];
    for (i, &(_, v)) in entries.iter().enumerate() {
        if v.is_sign_negative() {
            signs[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&signs);
    let mut prev = 0u64;
    for &(j, _) in entries {
        push_varint(&mut out, j as u64 - prev);
        prev = j as u64;
    }
    out
}

/// Allocating seed-style decoder, implemented independently of the fast
/// path: the header and payload are parsed into intermediate index/value
/// vectors that are zipped into a fresh entry vector at the end — the
/// staged-buffers shape a first-version deserializer naturally takes
/// (compare the serde-ndim "shape plus flat data" idiom). For every valid
/// frame it returns exactly what [`crate::decode_frame`] decodes; error
/// reporting on malformed frames is coarser (any malformation is an
/// error, but not necessarily the same [`WireError`] variant).
pub fn decode(frame: &[u8]) -> Result<(usize, Vec<(usize, f32)>), WireError> {
    fn read_varint(frame: &[u8], pos: &mut usize) -> Result<u64, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let &byte = frame.get(*pos).ok_or(WireError::Truncated)?;
            *pos += 1;
            if shift >= 64 {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    let &id = frame.first().ok_or(WireError::Truncated)?;
    let mut pos = 1usize;
    let dim = read_varint(frame, &mut pos)? as usize;
    let nnz = read_varint(frame, &mut pos)? as usize;

    // Stage 1: parse indices and values into separate buffers.
    let mut indices: Vec<usize> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    let read_value = |frame: &[u8], pos: &mut usize| -> Result<f32, WireError> {
        let bytes: [u8; 4] = frame
            .get(*pos..*pos + 4)
            .ok_or(WireError::Truncated)?
            .try_into()
            .expect("4-byte slice");
        *pos += 4;
        Ok(f32::from_le_bytes(bytes))
    };
    match id {
        0 => {
            for _ in 0..nnz {
                let bytes: [u8; 4] = frame
                    .get(pos..pos + 4)
                    .ok_or(WireError::Truncated)?
                    .try_into()
                    .expect("4-byte slice");
                pos += 4;
                indices.push(u32::from_le_bytes(bytes) as usize);
                values.push(read_value(frame, &mut pos)?);
            }
        }
        1 => {
            let mut prev = 0u64;
            for i in 0..nnz {
                let delta = read_varint(frame, &mut pos)?;
                if i > 0 && delta == 0 {
                    return Err(WireError::NotSorted);
                }
                prev = prev.checked_add(delta).ok_or(WireError::VarintOverflow)?;
                indices.push(prev as usize);
                values.push(read_value(frame, &mut pos)?);
            }
        }
        2 => {
            let bm_len = dim.div_ceil(8);
            let bitmap = frame.get(pos..pos + bm_len).ok_or(WireError::Truncated)?;
            pos += bm_len;
            for (byte_idx, &byte) in bitmap.iter().enumerate() {
                for bit in 0..8 {
                    if byte & (1 << bit) != 0 {
                        indices.push(byte_idx * 8 + bit);
                    }
                }
            }
            if indices.len() != nnz {
                return Err(WireError::CountMismatch {
                    header: nnz as u64,
                    payload: indices.len() as u64,
                });
            }
            for _ in 0..nnz {
                values.push(read_value(frame, &mut pos)?);
            }
        }
        3 => {
            let lo = read_value(frame, &mut pos)?;
            let hi = read_value(frame, &mut pos)?;
            if !lo.is_finite() || !hi.is_finite() || lo > hi {
                return Err(WireError::InvalidQuantization("qlinear8 bounds"));
            }
            let step = (f64::from(hi) - f64::from(lo)) / 255.0;
            let mut prev = 0u64;
            for i in 0..nnz {
                let delta = read_varint(frame, &mut pos)?;
                if i > 0 && delta == 0 {
                    return Err(WireError::NotSorted);
                }
                prev = prev.checked_add(delta).ok_or(WireError::VarintOverflow)?;
                indices.push(prev as usize);
                let &q = frame.get(pos).ok_or(WireError::Truncated)?;
                pos += 1;
                values.push((f64::from(lo) + f64::from(q) * step) as f32);
            }
        }
        4 => {
            let mut prev = 0u64;
            for i in 0..nnz {
                let delta = read_varint(frame, &mut pos)?;
                if i > 0 && delta == 0 {
                    return Err(WireError::NotSorted);
                }
                prev = prev.checked_add(delta).ok_or(WireError::VarintOverflow)?;
                indices.push(prev as usize);
                let bytes: [u8; 2] = frame
                    .get(pos..pos + 2)
                    .ok_or(WireError::Truncated)?
                    .try_into()
                    .expect("2-byte slice");
                pos += 2;
                values.push(f16_bits_to_f32(u16::from_le_bytes(bytes)));
            }
        }
        5 => {
            let magnitude = read_value(frame, &mut pos)?;
            if !magnitude.is_finite() || magnitude < 0.0 {
                return Err(WireError::InvalidQuantization("sign-norm magnitude"));
            }
            let signs_len = nnz.div_ceil(8);
            let signs = frame
                .get(pos..pos + signs_len)
                .ok_or(WireError::Truncated)?
                .to_vec();
            pos += signs_len;
            if !nnz.is_multiple_of(8) && signs[signs_len - 1] >> (nnz % 8) != 0 {
                return Err(WireError::InvalidQuantization("sign-norm padding bits"));
            }
            let mut prev = 0u64;
            for i in 0..nnz {
                let delta = read_varint(frame, &mut pos)?;
                if i > 0 && delta == 0 {
                    return Err(WireError::NotSorted);
                }
                prev = prev.checked_add(delta).ok_or(WireError::VarintOverflow)?;
                indices.push(prev as usize);
                let negative = signs[i / 8] & (1 << (i % 8)) != 0;
                values.push(if negative { -magnitude } else { magnitude });
            }
        }
        other => return Err(WireError::UnknownCodec(other)),
    }
    if pos != frame.len() {
        return Err(WireError::TrailingBytes);
    }
    for (i, &j) in indices.iter().enumerate() {
        if j >= dim {
            return Err(WireError::IndexOutOfRange {
                index: j as u64,
                dim: dim as u64,
            });
        }
        if i > 0 && indices[i - 1] >= j {
            return Err(WireError::NotSorted);
        }
    }

    // Stage 2: zip the staged buffers into the entry list.
    let entries = indices.into_iter().zip(values).collect();
    Ok((dim, entries))
}
