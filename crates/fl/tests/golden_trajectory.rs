//! Golden-trajectory pins for the cohort round engine.
//!
//! The hashes below were captured from the historical owned-client engine
//! (one resident `Client` per dataset shard, dense per-client state) before
//! the struct-of-arrays `ClientPopulation` rewrite. The rewrite must keep
//! every trajectory — plain, byte-priced, and fault-injected — **bit
//! identical**, and a full-population cohort (`cohort: Some(N)` or `None`)
//! must match the historical path exactly. Any change to these hashes is a
//! silent break of the determinism contract and must be treated as a bug,
//! not re-captured.

use agsfl_exec::Parallelism;
use agsfl_fl::{ChannelModel, FaultModel, Simulation, SimulationConfig, TimeModel, WireConfig};
use agsfl_ml::data::{FederatedDataset, SyntheticFemnist, SyntheticFemnistConfig};
use agsfl_ml::model::LinearSoftmax;
use agsfl_sparse::{FabTopK, FubTopK, PeriodicK, SendAll, Sparsifier, UnidirectionalTopK};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// FNV-1a over the little-endian bytes of the weight vector.
fn fnv(params: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in params {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn sparsifiers() -> Vec<Box<dyn Sparsifier>> {
    vec![
        Box::new(FabTopK::new()),
        Box::new(FubTopK::new()),
        Box::new(UnidirectionalTopK::new()),
        Box::new(PeriodicK::new()),
        Box::new(SendAll::new()),
    ]
}

fn tiny_dataset(seed: u64) -> FederatedDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng)
}

fn chaos_model(seed: u64) -> FaultModel {
    FaultModel {
        drop_prob: 0.2,
        crash_prob: 0.1,
        outage_rounds: (1, 2),
        straggle_prob: 0.25,
        straggle_factor: 5.0,
        deadline: Some(40.0),
        corrupt_prob: 0.3,
        max_retries: 2,
        retry_backoff: 0.01,
        seed,
    }
}

/// Runs four rounds (six on the fault path) and returns the weight-vector
/// hash plus the elapsed-time bits.
fn run(sim: &mut Simulation, rounds: usize, probing: bool) -> (u64, u64) {
    for round in 0..rounds {
        let probe = (probing && round % 2 == 0).then_some(4);
        sim.run_round(8, probe);
    }
    (fnv(sim.params()), sim.elapsed_time().to_bits())
}

/// The historical scalar-proxy trajectories, one per sparsifier.
const PLAIN_GOLDEN: [(u64, u64); 5] = [
    (0x74fc29cadc8985c7, 0x4017878787878788), // FAB-top-k
    (0xaed054333c0967ee, 0x4017878787878788), // FUB-top-k
    (0xa2102885277a096b, 0x40251e1e1e1e1e1e), // Unidirectional top-k
    (0x0abe9967c7524efa, 0x4017878787878788), // Periodic-k
    (0x892fe4fe8c000b7a, 0x4038000000000000), // Always send all
];

/// The historical byte-priced trajectories (Auto codec, uniform channel).
const WIRE_GOLDEN: [(u64, u64); 5] = [
    (0x2675f3a18f23e381, 0x401220c49ba5e354), // FAB-top-k
    (0x5b8d5874550c6685, 0x401220c49ba5e354), // FUB-top-k
    (0x5be7d40b4b67ee4c, 0x4012c8b439581063), // Unidirectional top-k
    (0x2c66bd30006b88c5, 0x401220c49ba5e354), // Periodic-k
    (0x6063f78cb8c35c2c, 0x401a15810624dd2f), // Always send all
];

/// The historical fault-injected trajectory (FUB-top-k, wired, chaos model).
const FAULT_GOLDEN: (u64, u64) = (0xe4d0f29a4b5293cc, 0x406ecbb645a1cac1);

/// Every golden is pinned at each of these worker counts: the serial
/// reference path and 2/4/8 channel-fed workers through the persistent
/// pool. Bit-identity across the whole list is the pool's ordered-
/// completion guarantee made executable.
const WORKER_COUNTS: [Parallelism; 4] = [
    Parallelism::Serial,
    Parallelism::Threads(2),
    Parallelism::Threads(4),
    Parallelism::Threads(8),
];

fn plain_config(seed: u64, cohort: Option<usize>, parallelism: Parallelism) -> SimulationConfig {
    SimulationConfig {
        learning_rate: 0.05,
        batch_size: 8,
        time_model: TimeModel::normalized(5.0),
        seed,
        parallelism,
        wire: None,
        fault: None,
        cohort,
    }
}

fn wire_config(
    seed: u64,
    num_clients: usize,
    fault: Option<FaultModel>,
    cohort: Option<usize>,
    parallelism: Parallelism,
) -> SimulationConfig {
    SimulationConfig {
        learning_rate: 0.05,
        batch_size: 8,
        time_model: TimeModel::normalized(5.0),
        seed,
        parallelism,
        wire: Some(WireConfig {
            codec: agsfl_wire::CodecSpec::Auto,
            channel: ChannelModel::uniform(num_clients, 1.0, 2_000.0, 4_000.0, 0.05),
        }),
        fault,
        cohort,
    }
}

#[test]
fn plain_trajectories_match_the_owned_client_engine() {
    // `None` and `Some(N)` both run the full population; both must
    // reproduce the historical hashes exactly.
    for parallelism in WORKER_COUNTS {
        for cohort_of in [
            (|_n: usize| None) as fn(usize) -> Option<usize>,
            |n: usize| Some(n),
        ] {
            for (sp, &(want_params, want_elapsed)) in sparsifiers().into_iter().zip(&PLAIN_GOLDEN) {
                let name = sp.name();
                let fed = tiny_dataset(42);
                let cohort = cohort_of(fed.num_clients());
                let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
                let mut sim = Simulation::new(
                    Box::new(model),
                    fed,
                    sp,
                    plain_config(42, cohort, parallelism),
                );
                let (params, elapsed) = run(&mut sim, 4, true);
                assert_eq!(
                    params, want_params,
                    "{name} params drifted (cohort {cohort:?}, {parallelism:?})"
                );
                assert_eq!(
                    elapsed, want_elapsed,
                    "{name} elapsed drifted (cohort {cohort:?}, {parallelism:?})"
                );
            }
        }
    }
}

#[test]
fn wire_trajectories_match_the_owned_client_engine() {
    for parallelism in WORKER_COUNTS {
        for cohort_of in [
            (|_n: usize| None) as fn(usize) -> Option<usize>,
            |n: usize| Some(n),
        ] {
            for (sp, &(want_params, want_elapsed)) in sparsifiers().into_iter().zip(&WIRE_GOLDEN) {
                let name = sp.name();
                let fed = tiny_dataset(7);
                let n = fed.num_clients();
                let cohort = cohort_of(n);
                let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
                let mut sim = Simulation::new(
                    Box::new(model),
                    fed,
                    sp,
                    wire_config(7, n, None, cohort, parallelism),
                );
                let (params, elapsed) = run(&mut sim, 4, true);
                assert_eq!(
                    params, want_params,
                    "{name} params drifted (cohort {cohort:?}, {parallelism:?})"
                );
                assert_eq!(
                    elapsed, want_elapsed,
                    "{name} elapsed drifted (cohort {cohort:?}, {parallelism:?})"
                );
            }
        }
    }
}

#[test]
fn fault_trajectory_matches_the_owned_client_engine() {
    for parallelism in WORKER_COUNTS {
        for cohort_of in [
            (|_n: usize| None) as fn(usize) -> Option<usize>,
            |n: usize| Some(n),
        ] {
            let fed = tiny_dataset(11);
            let n = fed.num_clients();
            let cohort = cohort_of(n);
            let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
            let mut sim = Simulation::new(
                Box::new(model),
                fed,
                Box::new(FubTopK::new()),
                wire_config(11, n, Some(chaos_model(11)), cohort, parallelism),
            );
            let (params, elapsed) = run(&mut sim, 6, false);
            assert_eq!(
                params, FAULT_GOLDEN.0,
                "fault params drifted (cohort {cohort:?}, {parallelism:?})"
            );
            assert_eq!(
                elapsed, FAULT_GOLDEN.1,
                "fault elapsed drifted (cohort {cohort:?}, {parallelism:?})"
            );
        }
    }
}
