//! Lifecycle of the persistent worker pool under a real simulation.
//!
//! The round engine used to spawn a fresh `std::thread::scope` for every
//! parallel region; the executor now feeds a long-lived channel-fed pool.
//! This test pins the lifecycle half of that contract at the integration
//! level: after the first round has spawned the pool, many further rounds
//! reuse the same workers — the process thread count stays **flat** (no
//! respawn per region, no leak per round). The companion properties —
//! panic propagation to the submitter, drop joining every worker, and
//! bit-identity at each worker count — are pinned by the `agsfl-exec` unit
//! tests and `golden_trajectory.rs` respectively.
//!
//! The file holds a single `#[test]` so no sibling test can perturb the
//! process-wide thread count between the two probe reads.

use agsfl_exec::Parallelism;
use agsfl_fl::{Simulation, SimulationConfig, TimeModel};
use agsfl_ml::data::{FederatedDataset, SyntheticFemnist, SyntheticFemnistConfig};
use agsfl_ml::model::LinearSoftmax;
use agsfl_sparse::FabTopK;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn rounds_reuse_the_pool_without_respawning() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let fed: FederatedDataset =
        SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
    let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
    let config = SimulationConfig {
        learning_rate: 0.05,
        batch_size: 8,
        time_model: TimeModel::normalized(5.0),
        seed: 42,
        parallelism: Parallelism::Threads(4),
        wire: None,
        fault: None,
        cohort: None,
    };
    let mut sim = Simulation::new(Box::new(model), fed, Box::new(FabTopK::new()), config);

    // The first round's client pass spawns the pool workers.
    sim.run_round(8, None);
    let Some(after_first) = agsfl_exec::mem::thread_count() else {
        return; // no procfs on this platform — nothing to observe
    };

    // Every further round (several parallel regions each) must reuse those
    // exact workers: a per-region respawn shows up here immediately as a
    // growing (or at least churning) thread count.
    for _ in 0..6 {
        sim.run_round(8, None);
    }
    let after_many = agsfl_exec::mem::thread_count().expect("procfs was readable above");
    assert_eq!(
        after_many, after_first,
        "thread count moved across rounds: the pool respawned or leaked workers"
    );
}
