//! Property tests for the sampled-cohort engine's determinism contract:
//! for *any* seed, cohort size, thread count and interrupt point, a
//! cohort-sampled run is bit-identical to its serial / uninterrupted twin.
//!
//! These generalize the hand-picked cases in `simulation.rs`'s unit tests
//! (and the historical pins in `golden_trajectory.rs`) across the whole
//! configuration space: cohort draws and RNG streams advance serially in
//! client order before any parallel region, so neither the worker count
//! nor a checkpoint/restore cycle may perturb a single bit.

use agsfl_exec::Parallelism;
use agsfl_fl::{ChannelModel, Simulation, SimulationConfig, TimeModel, WireConfig};
use agsfl_ml::data::{FederatedDataset, SyntheticFemnist, SyntheticFemnistConfig};
use agsfl_ml::model::LinearSoftmax;
use agsfl_sparse::FubTopK;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_dataset(seed: u64) -> FederatedDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng)
}

fn build_sim(seed: u64, cohort: usize, parallelism: Parallelism, wired: bool) -> Simulation {
    let fed = tiny_dataset(seed);
    let num_clients = fed.num_clients();
    let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
    let wire = wired.then(|| WireConfig {
        codec: agsfl_wire::CodecSpec::Auto,
        channel: ChannelModel::uniform(num_clients, 1.0, 2_000.0, 4_000.0, 0.05),
    });
    Simulation::new(
        Box::new(model),
        fed,
        Box::new(FubTopK::new()),
        SimulationConfig {
            learning_rate: 0.05,
            batch_size: 8,
            time_model: TimeModel::normalized(5.0),
            seed,
            parallelism,
            wire,
            fault: None,
            cohort: Some(cohort),
        },
    )
}

/// Advances `rounds` rounds (k = 16, probes on even rounds) and returns a
/// bit-exact fingerprint: weight bits, elapsed-time bits, per-round cohort
/// members and contribution counts.
fn run_fingerprint(sim: &mut Simulation, rounds: usize) -> (Vec<u32>, u64, Vec<Vec<usize>>) {
    let mut cohorts = Vec::new();
    for round in 0..rounds {
        let probe = (round % 2 == 0).then_some(4);
        let report = sim.run_round(16, probe);
        cohorts.push(report.cohort.clone());
    }
    let params = sim.params().iter().map(|v| v.to_bits()).collect();
    (params, sim.elapsed_time().to_bits(), cohorts)
}

proptest! {
    // Each case runs several full simulations; a handful of cases per
    // property already sweeps seeds, cohort sizes and thread counts far
    // beyond the hand-picked unit tests.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial and 2–8-worker runs of the same sampled-cohort configuration
    /// are bit-identical, wired or not.
    #[test]
    fn prop_cohort_runs_identical_across_worker_counts(
        seed in 0u64..10_000,
        cohort in 1usize..9,
        threads in 2usize..9,
        wired_bit in 0u32..2,
        rounds in 1usize..6,
    ) {
        let wired = wired_bit == 1;
        let mut serial = build_sim(seed, cohort, Parallelism::Serial, wired);
        let mut threaded = build_sim(seed, cohort, Parallelism::Threads(threads), wired);
        let a = run_fingerprint(&mut serial, rounds);
        let b = run_fingerprint(&mut threaded, rounds);
        prop_assert_eq!(a, b, "serial vs {} workers diverged", threads);
    }

    /// Interrupting a sampled-cohort run with a checkpoint/restore cycle at
    /// any round leaves the remainder bit-identical to the uninterrupted
    /// run — the cohort stream resumes exactly where it stopped.
    #[test]
    fn prop_cohort_resume_is_bit_identical(
        seed in 0u64..10_000,
        cohort in 1usize..9,
        interrupt in 0usize..6,
        wired_bit in 0u32..2,
    ) {
        let wired = wired_bit == 1;
        let rounds = 6;
        let mut baseline = build_sim(seed, cohort, Parallelism::Serial, wired);
        let want = run_fingerprint(&mut baseline, rounds);

        let mut first = build_sim(seed, cohort, Parallelism::Serial, wired);
        let (_, _, mut cohorts) = run_fingerprint(&mut first, interrupt);
        let blob = first.save_state();
        let mut resumed = build_sim(seed, cohort, Parallelism::Serial, wired);
        resumed.restore_state(&blob).expect("same-shape restore");
        for round in interrupt..rounds {
            let probe = (round % 2 == 0).then_some(4);
            let report = resumed.run_round(16, probe);
            cohorts.push(report.cohort.clone());
        }
        let got = (
            resumed.params().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            resumed.elapsed_time().to_bits(),
            cohorts,
        );
        prop_assert_eq!(got, want, "resume at round {} diverged", interrupt);
    }
}
