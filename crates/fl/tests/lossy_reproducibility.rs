//! Seed-reproducibility pins for the lossy uplink tier.
//!
//! A lossy codec deliberately is *not* bit-identical to the lossless
//! trajectory — that equality is replaced by a stronger-than-it-sounds
//! reproducibility contract: every lossy trajectory is a pure function of
//! the configuration seed. These tests pin that contract three ways, for
//! all three lossy codecs:
//!
//! 1. golden weight-vector hashes, bit-identical across 1–8 worker
//!    threads (the quantization stream is keyed on frame content, never on
//!    the worker schedule);
//! 2. checkpoint/resume at every interrupt round continues the exact
//!    uninterrupted trajectory, including mid-run precision-tier switches;
//! 3. a `Precision::F32` override is a true zero-error configuration — it
//!    reproduces the lossless trajectory bit for bit.

use agsfl_exec::Parallelism;
use agsfl_fl::{ChannelModel, Simulation, SimulationConfig, TimeModel, WireConfig};
use agsfl_ml::data::{FederatedDataset, SyntheticFemnist, SyntheticFemnistConfig};
use agsfl_ml::model::LinearSoftmax;
use agsfl_sparse::{FabTopK, FubTopK, Sparsifier};
use agsfl_wire::{CodecSpec, Precision};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// FNV-1a over the little-endian bytes of the weight vector.
fn fnv(params: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in params {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn tiny_dataset(seed: u64) -> FederatedDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng)
}

fn build(
    codec: CodecSpec,
    sparsifier: Box<dyn Sparsifier>,
    parallelism: Parallelism,
) -> Simulation {
    let fed = tiny_dataset(7);
    let n = fed.num_clients();
    let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
    Simulation::new(
        Box::new(model),
        fed,
        sparsifier,
        SimulationConfig {
            learning_rate: 0.05,
            batch_size: 8,
            time_model: TimeModel::normalized(5.0),
            seed: 7,
            parallelism,
            wire: Some(WireConfig {
                codec,
                channel: ChannelModel::uniform(n, 1.0, 2_000.0, 4_000.0, 0.05),
            }),
            fault: None,
            cohort: None,
        },
    )
}

const ROUNDS: usize = 5;

fn run(sim: &mut Simulation, rounds: usize) -> (u64, u64) {
    for round in 0..rounds {
        let probe = (round % 2 == 0).then_some(4);
        sim.run_round(8, probe);
    }
    (fnv(sim.params()), sim.elapsed_time().to_bits())
}

fn worker_counts() -> [Parallelism; 4] {
    [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
        Parallelism::Threads(8),
    ]
}

type SparsifierFactory = fn() -> Box<dyn Sparsifier>;

fn fab_and_fub() -> [(&'static str, SparsifierFactory); 2] {
    [
        ("fab-top-k", || Box::new(FabTopK::new())),
        ("fub-top-k", || Box::new(FubTopK::new())),
    ]
}

/// Golden lossy trajectories — `(params hash, elapsed bits)` per
/// `(codec, sparsifier)` cell, captured at the tier's introduction. Any
/// change is a silent break of the reproducibility contract and must be
/// treated as a bug, not re-captured.
const LOSSY_GOLDEN: [(&str, &str, u64, u64); 6] = [
    (
        "qlinear8",
        "fab-top-k",
        0x562fb9aa24280654,
        0x4016800000000000,
    ),
    (
        "qlinear8",
        "fub-top-k",
        0xba51a6df4c0464dd,
        0x4016800000000000,
    ),
    ("f16", "fab-top-k", 0x134eb2093e51db03, 0x4016800000000000),
    ("f16", "fub-top-k", 0xadb441f1a255f08c, 0x4016800000000000),
    (
        "sign-norm",
        "fab-top-k",
        0x13dbf61eddaacf23,
        0x401663d70a3d70a4,
    ),
    (
        "sign-norm",
        "fub-top-k",
        0xfaad6c908aec480d,
        0x401663d70a3d70a4,
    ),
];

fn golden_for(codec: &str, sparsifier: &str) -> (u64, u64) {
    LOSSY_GOLDEN
        .iter()
        .find(|(c, s, _, _)| *c == codec && *s == sparsifier)
        .map(|&(_, _, p, e)| (p, e))
        .expect("golden cell present")
}

#[test]
fn lossy_goldens_hold_across_every_worker_count() {
    for codec in CodecSpec::lossy() {
        for (sp_name, make) in fab_and_fub() {
            let want = golden_for(codec.name(), sp_name);
            for parallelism in worker_counts() {
                let mut sim = build(codec, make(), parallelism);
                let got = run(&mut sim, ROUNDS);
                assert_eq!(
                    got,
                    want,
                    "{} × {sp_name} drifted under {parallelism:?}: ({:#x}, {:#x})",
                    codec.name(),
                    got.0,
                    got.1,
                );
            }
        }
    }
}

#[test]
fn lossy_resume_is_bit_identical_at_every_interrupt() {
    for codec in CodecSpec::lossy() {
        for (sp_name, make) in fab_and_fub() {
            let mut reference = build(codec, make(), Parallelism::Serial);
            let want = run(&mut reference, ROUNDS);
            for interrupt in 1..ROUNDS {
                let mut first = build(codec, make(), Parallelism::Threads(4));
                run(&mut first, interrupt);
                let blob = first.save_state();
                let mut resumed = build(codec, make(), Parallelism::Threads(2));
                resumed.restore_state(&blob).expect("restore");
                let got = run(&mut resumed, ROUNDS - interrupt);
                assert_eq!(
                    got,
                    want,
                    "{} × {sp_name} resumed at {interrupt} diverged",
                    codec.name()
                );
            }
        }
    }
}

#[test]
fn f32_precision_override_reproduces_the_lossless_trajectory() {
    // A lossless run...
    let mut lossless = build(
        CodecSpec::Auto,
        Box::new(FabTopK::new()),
        Parallelism::Serial,
    );
    let want = run(&mut lossless, ROUNDS);
    // ...and the same run under an explicit full-precision override: the
    // zero-error quantization configuration must not perturb one bit.
    let mut pinned = build(
        CodecSpec::Auto,
        Box::new(FabTopK::new()),
        Parallelism::Serial,
    );
    pinned.set_wire_precision(Some(Precision::F32));
    assert_eq!(run(&mut pinned, ROUNDS), want);
}

#[test]
fn lossy_tiers_actually_diverge_from_lossless() {
    // Sanity for every pin above: each lossy tier must *engage* — a lossy
    // trajectory that matched lossless bit-for-bit would mean the
    // quantizer never ran.
    let mut lossless = build(
        CodecSpec::Auto,
        Box::new(FabTopK::new()),
        Parallelism::Serial,
    );
    let want = run(&mut lossless, ROUNDS);
    for codec in CodecSpec::lossy() {
        let mut lossy = build(codec, Box::new(FabTopK::new()), Parallelism::Serial);
        assert_ne!(
            run(&mut lossy, ROUNDS).0,
            want.0,
            "{} produced the lossless trajectory",
            codec.name()
        );
    }
}

#[test]
fn mid_run_tier_switches_survive_workers_and_resume() {
    // The controllers re-decide the precision tier every round; the
    // trajectory must be a pure function of the tier *schedule*, not of
    // the worker count or of where a checkpoint interrupted it.
    let schedule: [Option<Precision>; ROUNDS] = [
        Some(Precision::Q8),
        Some(Precision::Q8),
        Some(Precision::F16),
        Some(Precision::Sign),
        None,
    ];
    let run_scheduled = |sim: &mut Simulation, from: usize, to: usize| {
        for (round, tier) in schedule.iter().enumerate().take(to).skip(from) {
            sim.set_wire_precision(*tier);
            let probe = (round % 2 == 0).then_some(4);
            sim.run_round(8, probe);
        }
        (fnv(sim.params()), sim.elapsed_time().to_bits())
    };
    let mut reference = build(
        CodecSpec::Auto,
        Box::new(FabTopK::new()),
        Parallelism::Serial,
    );
    let want = run_scheduled(&mut reference, 0, ROUNDS);
    for parallelism in worker_counts() {
        let mut sim = build(CodecSpec::Auto, Box::new(FabTopK::new()), parallelism);
        assert_eq!(
            run_scheduled(&mut sim, 0, ROUNDS),
            want,
            "tier schedule drifted under {parallelism:?}"
        );
    }
    for interrupt in 1..ROUNDS {
        let mut first = build(
            CodecSpec::Auto,
            Box::new(FabTopK::new()),
            Parallelism::Serial,
        );
        run_scheduled(&mut first, 0, interrupt);
        let blob = first.save_state();
        let mut resumed = build(
            CodecSpec::Auto,
            Box::new(FabTopK::new()),
            Parallelism::Serial,
        );
        resumed.restore_state(&blob).expect("restore");
        // The override is controller policy, not checkpointed state; the
        // runner re-proposes it each round, which `run_scheduled` mirrors.
        assert_eq!(
            run_scheduled(&mut resumed, interrupt, ROUNDS),
            want,
            "tier schedule resumed at {interrupt} diverged"
        );
    }
}
