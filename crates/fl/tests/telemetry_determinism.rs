//! Telemetry is observation only: every golden trajectory must reproduce
//! **bit-identically with recording enabled** — stage spans, counters, the
//! worker pool's metrics, and the batched-forward accounting all on — at
//! every pinned worker count.
//!
//! The hashes here mirror the pins in `golden_trajectory.rs` (5 plain +
//! 5 byte-priced + 1 fault-injected) and `lossy_reproducibility.rs` (6
//! lossy cells). They are the same constants on purpose: if instrumenting
//! a round ever perturbs a trajectory — an RNG draw, a float fold, a
//! schedule-dependent merge — this file fails while the uninstrumented
//! pins still pass, which localizes the break to telemetry.

use agsfl_exec::Parallelism;
use agsfl_fl::{
    ChannelModel, CounterId, FaultModel, Simulation, SimulationConfig, SpanId, StageRecorder,
    TimeModel, WireConfig,
};
use agsfl_ml::data::{FederatedDataset, SyntheticFemnist, SyntheticFemnistConfig};
use agsfl_ml::model::LinearSoftmax;
use agsfl_sparse::{FabTopK, FubTopK, PeriodicK, SendAll, Sparsifier, UnidirectionalTopK};
use agsfl_wire::CodecSpec;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// FNV-1a over the little-endian bytes of the weight vector.
fn fnv(params: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in params {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn sparsifiers() -> Vec<Box<dyn Sparsifier>> {
    vec![
        Box::new(FabTopK::new()),
        Box::new(FubTopK::new()),
        Box::new(UnidirectionalTopK::new()),
        Box::new(PeriodicK::new()),
        Box::new(SendAll::new()),
    ]
}

fn tiny_dataset(seed: u64) -> FederatedDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng)
}

fn chaos_model(seed: u64) -> FaultModel {
    FaultModel {
        drop_prob: 0.2,
        crash_prob: 0.1,
        outage_rounds: (1, 2),
        straggle_prob: 0.25,
        straggle_factor: 5.0,
        deadline: Some(40.0),
        corrupt_prob: 0.3,
        max_retries: 2,
        retry_backoff: 0.01,
        seed,
    }
}

const WORKER_COUNTS: [Parallelism; 4] = [
    Parallelism::Serial,
    Parallelism::Threads(2),
    Parallelism::Threads(4),
    Parallelism::Threads(8),
];

/// Runs `rounds` recorded rounds with every telemetry layer enabled — a
/// [`StageRecorder`], the executor's pool metrics, and the process-wide
/// batched-forward accounting — and returns the trajectory hash pair plus
/// the recorder for content assertions.
fn run_recorded(sim: &mut Simulation, rounds: usize, probing: bool) -> ((u64, u64), StageRecorder) {
    sim.executor().set_metrics_enabled(true);
    agsfl_ml::stats::set_enabled(true);
    let mut rec = StageRecorder::new();
    for round in 0..rounds {
        rec.begin_round();
        let probe = (probing && round % 2 == 0).then_some(4);
        sim.run_round_recorded(8, probe, &mut rec);
    }
    agsfl_ml::stats::set_enabled(false);
    ((fnv(sim.params()), sim.elapsed_time().to_bits()), rec)
}

/// Mirrors `PLAIN_GOLDEN` in `golden_trajectory.rs`.
const PLAIN_GOLDEN: [(u64, u64); 5] = [
    (0x74fc29cadc8985c7, 0x4017878787878788), // FAB-top-k
    (0xaed054333c0967ee, 0x4017878787878788), // FUB-top-k
    (0xa2102885277a096b, 0x40251e1e1e1e1e1e), // Unidirectional top-k
    (0x0abe9967c7524efa, 0x4017878787878788), // Periodic-k
    (0x892fe4fe8c000b7a, 0x4038000000000000), // Always send all
];

/// Mirrors `WIRE_GOLDEN` in `golden_trajectory.rs`.
const WIRE_GOLDEN: [(u64, u64); 5] = [
    (0x2675f3a18f23e381, 0x401220c49ba5e354), // FAB-top-k
    (0x5b8d5874550c6685, 0x401220c49ba5e354), // FUB-top-k
    (0x5be7d40b4b67ee4c, 0x4012c8b439581063), // Unidirectional top-k
    (0x2c66bd30006b88c5, 0x401220c49ba5e354), // Periodic-k
    (0x6063f78cb8c35c2c, 0x401a15810624dd2f), // Always send all
];

/// Mirrors `FAULT_GOLDEN` in `golden_trajectory.rs`.
const FAULT_GOLDEN: (u64, u64) = (0xe4d0f29a4b5293cc, 0x406ecbb645a1cac1);

/// Mirrors `LOSSY_GOLDEN` in `lossy_reproducibility.rs`.
const LOSSY_GOLDEN: [(&str, &str, u64, u64); 6] = [
    (
        "qlinear8",
        "fab-top-k",
        0x562fb9aa24280654,
        0x4016800000000000,
    ),
    (
        "qlinear8",
        "fub-top-k",
        0xba51a6df4c0464dd,
        0x4016800000000000,
    ),
    ("f16", "fab-top-k", 0x134eb2093e51db03, 0x4016800000000000),
    ("f16", "fub-top-k", 0xadb441f1a255f08c, 0x4016800000000000),
    (
        "sign-norm",
        "fab-top-k",
        0x13dbf61eddaacf23,
        0x401663d70a3d70a4,
    ),
    (
        "sign-norm",
        "fub-top-k",
        0xfaad6c908aec480d,
        0x401663d70a3d70a4,
    ),
];

fn plain_config(seed: u64, parallelism: Parallelism) -> SimulationConfig {
    SimulationConfig {
        learning_rate: 0.05,
        batch_size: 8,
        time_model: TimeModel::normalized(5.0),
        seed,
        parallelism,
        wire: None,
        fault: None,
        cohort: None,
    }
}

fn wire_config(
    seed: u64,
    num_clients: usize,
    codec: CodecSpec,
    fault: Option<FaultModel>,
    parallelism: Parallelism,
) -> SimulationConfig {
    SimulationConfig {
        learning_rate: 0.05,
        batch_size: 8,
        time_model: TimeModel::normalized(5.0),
        seed,
        parallelism,
        wire: Some(WireConfig {
            codec,
            channel: ChannelModel::uniform(num_clients, 1.0, 2_000.0, 4_000.0, 0.05),
        }),
        fault,
        cohort: None,
    }
}

#[test]
fn plain_goldens_hold_with_recording_enabled() {
    for parallelism in WORKER_COUNTS {
        for (sp, &want) in sparsifiers().into_iter().zip(&PLAIN_GOLDEN) {
            let name = sp.name();
            let fed = tiny_dataset(42);
            let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
            let mut sim = Simulation::new(Box::new(model), fed, sp, plain_config(42, parallelism));
            let (got, rec) = run_recorded(&mut sim, 4, true);
            assert_eq!(
                got, want,
                "{name} drifted under recording ({parallelism:?})"
            );
            // The recorder observed every round and its deterministic facts.
            assert_eq!(rec.counter_total(CounterId::Rounds), 4);
            assert_eq!(rec.span_histogram(SpanId::ClientPass).count(), 4);
            assert_eq!(rec.span_histogram(SpanId::Selection).count(), 4);
            assert_eq!(
                rec.counter_total(CounterId::UplinkBytes),
                0,
                "scalar-proxy rounds carry no wire bytes"
            );
        }
    }
}

#[test]
fn wire_goldens_hold_with_recording_enabled() {
    for parallelism in WORKER_COUNTS {
        for (sp, &want) in sparsifiers().into_iter().zip(&WIRE_GOLDEN) {
            let name = sp.name();
            let fed = tiny_dataset(7);
            let n = fed.num_clients();
            let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
            let mut sim = Simulation::new(
                Box::new(model),
                fed,
                sp,
                wire_config(7, n, CodecSpec::Auto, None, parallelism),
            );
            let (got, rec) = run_recorded(&mut sim, 4, true);
            assert_eq!(
                got, want,
                "{name} drifted under recording ({parallelism:?})"
            );
            assert!(rec.counter_total(CounterId::UplinkBytes) > 0);
            assert_eq!(rec.counter_total(CounterId::UplinkFrames), (4 * n) as u64);
        }
    }
}

#[test]
fn fault_golden_holds_with_recording_enabled() {
    for parallelism in WORKER_COUNTS {
        let fed = tiny_dataset(11);
        let n = fed.num_clients();
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        let mut sim = Simulation::new(
            Box::new(model),
            fed,
            Box::new(FubTopK::new()),
            wire_config(11, n, CodecSpec::Auto, Some(chaos_model(11)), parallelism),
        );
        let (got, rec) = run_recorded(&mut sim, 6, false);
        assert_eq!(
            got, FAULT_GOLDEN,
            "fault trajectory drifted under recording ({parallelism:?})"
        );
        assert_eq!(rec.counter_total(CounterId::Rounds), 6);
        assert_eq!(rec.span_histogram(SpanId::WireFault).count(), 6);
    }
}

#[test]
fn lossy_pins_hold_with_recording_enabled() {
    type MakeSparsifier = fn() -> Box<dyn Sparsifier>;
    let cells: [(&str, MakeSparsifier); 2] = [
        ("fab-top-k", || Box::new(FabTopK::new())),
        ("fub-top-k", || Box::new(FubTopK::new())),
    ];
    for codec in CodecSpec::lossy() {
        for (sp_name, make) in cells {
            let want = LOSSY_GOLDEN
                .iter()
                .find(|(c, s, _, _)| *c == codec.name() && *s == sp_name)
                .map(|&(_, _, p, e)| (p, e))
                .expect("golden cell present");
            for parallelism in WORKER_COUNTS {
                let fed = tiny_dataset(7);
                let n = fed.num_clients();
                let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
                let mut sim = Simulation::new(
                    Box::new(model),
                    fed,
                    make(),
                    wire_config(7, n, codec, None, parallelism),
                );
                let ((params, elapsed), _) = run_recorded(&mut sim, 5, true);
                assert_eq!(
                    (params, elapsed),
                    want,
                    "{} × {sp_name} drifted under recording ({parallelism:?})",
                    codec.name(),
                );
            }
        }
    }
}

#[test]
fn recording_overhead_stays_within_noise_of_the_noop_round() {
    // `run_round` *is* the noop-recorded round (a `NoopRecorder` whose
    // empty default methods compile the instrumentation away), so the
    // meaningful overhead gate is full recording against it: if a change
    // ever makes the record path allocate, lock, or otherwise dominate a
    // round, the recorded median blows past this deliberately generous
    // bound. Median-of-many keeps the gate stable on noisy CI boxes.
    fn median_round_ns(recorded: bool) -> u64 {
        let fed = tiny_dataset(42);
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        let mut sim = Simulation::new(
            Box::new(model),
            fed,
            Box::new(FabTopK::new()),
            plain_config(42, Parallelism::Serial),
        );
        sim.executor().set_metrics_enabled(recorded);
        let mut rec = StageRecorder::new();
        let mut samples: Vec<u64> = (0..40)
            .map(|_| {
                let t0 = std::time::Instant::now();
                if recorded {
                    rec.begin_round();
                    sim.run_round_recorded(8, None, &mut rec);
                } else {
                    sim.run_round(8, None);
                }
                t0.elapsed().as_nanos() as u64
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    }
    // Warm-up pass (page-in, lazy init), then the measured pair.
    median_round_ns(false);
    let noop = median_round_ns(false);
    let recorded = median_round_ns(true);
    assert!(
        recorded <= noop.saturating_mul(3),
        "recorded round median {recorded} ns exceeds 3x the noop median {noop} ns"
    );
}

#[test]
fn recording_produces_the_same_counters_at_every_worker_count() {
    // Deterministic counter streams must be schedule-independent: the
    // byte-identical `metrics.jsonl` contract rests on this.
    let mut reference: Option<Vec<u64>> = None;
    for parallelism in WORKER_COUNTS {
        let fed = tiny_dataset(7);
        let n = fed.num_clients();
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        let mut sim = Simulation::new(
            Box::new(model),
            fed,
            Box::new(FabTopK::new()),
            wire_config(7, n, CodecSpec::Auto, None, parallelism),
        );
        let (_, rec) = run_recorded(&mut sim, 4, true);
        let counters: Vec<u64> = CounterId::ALL
            .iter()
            .filter(|&&id| id != CounterId::BatchedForwardRows)
            .map(|&id| rec.counter_total(id))
            .collect();
        match &reference {
            None => reference = Some(counters),
            Some(want) => assert_eq!(
                &counters, want,
                "deterministic counters diverged under {parallelism:?}"
            ),
        }
    }
}
