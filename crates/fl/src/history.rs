//! Run histories: the time series the paper's figures plot.

use agsfl_tensor::stats::Ecdf;
use agsfl_wire::CodecId;
use serde::{Deserialize, Serialize};

use crate::round::WireRoundReport;

/// One evaluated point of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricPoint {
    /// Round index `m`.
    pub round: usize,
    /// Cumulative normalized time at this point.
    pub elapsed_time: f64,
    /// Sparsity degree used in this round.
    pub k: usize,
    /// Mini-batch training loss observed in this round.
    pub train_loss: f64,
    /// Global training loss `L(w)` (weighted over all client data), if it was
    /// evaluated at this point.
    pub global_loss: Option<f64>,
    /// Test-set accuracy, if it was evaluated at this point.
    pub test_accuracy: Option<f64>,
}

/// The full history of one training run, plus the per-client contribution
/// counters that back the fairness CDF of Fig. 4 (right).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunHistory {
    /// Human-readable label of the run (method name, comm time, …).
    pub label: String,
    points: Vec<MetricPoint>,
    contributions: Vec<u64>,
    /// Total uplink bytes over the run (0 unless byte-priced rounds were
    /// recorded through [`RunHistory::record_wire`]).
    uplink_bytes: u64,
    /// Total downlink bytes over the run.
    downlink_bytes: u64,
    /// Per-[`CodecId`] uplink frame counts (index = `CodecId as usize`);
    /// empty until a wire round is recorded.
    codec_counts: Vec<u64>,
}

impl RunHistory {
    /// Creates an empty history with the given label and client count.
    pub fn new(label: impl Into<String>, num_clients: usize) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
            contributions: vec![0; num_clients],
            uplink_bytes: 0,
            downlink_bytes: 0,
            codec_counts: Vec::new(),
        }
    }

    /// Appends an evaluated point.
    pub fn push(&mut self, point: MetricPoint) {
        self.points.push(point);
    }

    /// Adds this round's per-client contribution counts.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the client count given at
    /// construction.
    pub fn add_contributions(&mut self, per_client: &[usize]) {
        assert_eq!(
            per_client.len(),
            self.contributions.len(),
            "contribution vector length mismatch"
        );
        for (total, &c) in self.contributions.iter_mut().zip(per_client.iter()) {
            *total += c as u64;
        }
    }

    /// The recorded points in chronological order.
    pub fn points(&self) -> &[MetricPoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total contributions per client accumulated over the run.
    pub fn contributions(&self) -> &[u64] {
        &self.contributions
    }

    /// Accumulates a byte-priced round's wire accounting.
    pub fn record_wire(&mut self, wire: &WireRoundReport) {
        self.uplink_bytes += wire.uplink_bytes.iter().map(|&b| b as u64).sum::<u64>();
        self.downlink_bytes += wire.downlink_bytes as u64;
        if self.codec_counts.is_empty() {
            self.codec_counts = vec![0; CodecId::ALL.len()];
        }
        for &id in &wire.uplink_codecs {
            self.codec_counts[id as usize] += 1;
        }
        self.codec_counts[wire.downlink_codec as usize] += 1;
    }

    /// Total `(uplink, downlink)` bytes on the wire over the run; zeros for
    /// scalar-proxy runs.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (self.uplink_bytes, self.downlink_bytes)
    }

    /// Frame counts per concrete encoding (uplinks and downlinks combined),
    /// indexed by `CodecId as usize`. Empty for scalar-proxy runs.
    pub fn codec_counts(&self) -> &[u64] {
        &self.codec_counts
    }

    /// Empirical CDF of per-client total contributions (the paper's Fig. 4,
    /// right panel: "number of gradient elements used from each client").
    pub fn contribution_cdf(&self) -> Ecdf {
        Ecdf::new(self.contributions.iter().map(|&c| c as f32).collect())
    }

    /// The last recorded global loss, if any point evaluated it.
    pub fn final_global_loss(&self) -> Option<f64> {
        self.points.iter().rev().find_map(|p| p.global_loss)
    }

    /// The last recorded test accuracy, if any point evaluated it.
    pub fn final_test_accuracy(&self) -> Option<f64> {
        self.points.iter().rev().find_map(|p| p.test_accuracy)
    }

    /// First normalized time at which the recorded global loss dropped to
    /// `target` or below. `None` if the run never reached it.
    pub fn time_to_loss(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.global_loss.is_some_and(|l| l <= target))
            .map(|p| p.elapsed_time)
    }

    /// Global loss interpolated at a given normalized time (nearest recorded
    /// point at or before `time`). `None` before the first evaluation.
    pub fn loss_at_time(&self, time: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.elapsed_time <= time)
            .filter_map(|p| p.global_loss.map(|l| (p.elapsed_time, l)))
            .last()
            .map(|(_, l)| l)
    }

    /// Accuracy at a given normalized time (nearest recorded point at or
    /// before `time`).
    pub fn accuracy_at_time(&self, time: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.elapsed_time <= time)
            .filter_map(|p| p.test_accuracy.map(|a| (p.elapsed_time, a)))
            .last()
            .map(|(_, a)| a)
    }

    /// The sequence of `k` values used, one entry per recorded point.
    pub fn k_sequence(&self) -> Vec<usize> {
        self.points.iter().map(|p| p.k).collect()
    }

    /// Renders the history as CSV (`round,time,k,train_loss,global_loss,test_accuracy`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("round,time,k,train_loss,global_loss,test_accuracy\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.4},{},{:.6},{},{}\n",
                p.round,
                p.elapsed_time,
                p.k,
                p.train_loss,
                p.global_loss.map_or(String::new(), |l| format!("{l:.6}")),
                p.test_accuracy.map_or(String::new(), |a| format!("{a:.6}")),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(round: usize, time: f64, loss: Option<f64>, acc: Option<f64>) -> MetricPoint {
        MetricPoint {
            round,
            elapsed_time: time,
            k: 10,
            train_loss: 1.0,
            global_loss: loss,
            test_accuracy: acc,
        }
    }

    #[test]
    fn push_and_accessors() {
        let mut h = RunHistory::new("test", 3);
        assert!(h.is_empty());
        h.push(point(1, 2.0, Some(3.0), Some(0.1)));
        h.push(point(2, 4.0, Some(2.0), Some(0.2)));
        assert_eq!(h.len(), 2);
        assert_eq!(h.final_global_loss(), Some(2.0));
        assert_eq!(h.final_test_accuracy(), Some(0.2));
        assert_eq!(h.k_sequence(), vec![10, 10]);
    }

    #[test]
    fn time_to_loss_finds_first_crossing() {
        let mut h = RunHistory::new("test", 1);
        h.push(point(1, 1.0, Some(3.0), None));
        h.push(point(2, 2.0, Some(1.5), None));
        h.push(point(3, 3.0, Some(1.0), None));
        assert_eq!(h.time_to_loss(1.5), Some(2.0));
        assert_eq!(h.time_to_loss(0.5), None);
    }

    #[test]
    fn loss_and_accuracy_at_time() {
        let mut h = RunHistory::new("test", 1);
        h.push(point(1, 1.0, Some(3.0), Some(0.3)));
        h.push(point(2, 5.0, Some(2.0), Some(0.5)));
        assert_eq!(h.loss_at_time(0.5), None);
        assert_eq!(h.loss_at_time(1.0), Some(3.0));
        assert_eq!(h.loss_at_time(4.9), Some(3.0));
        assert_eq!(h.loss_at_time(100.0), Some(2.0));
        assert_eq!(h.accuracy_at_time(6.0), Some(0.5));
    }

    #[test]
    fn contributions_accumulate_and_cdf() {
        let mut h = RunHistory::new("test", 3);
        h.add_contributions(&[1, 0, 2]);
        h.add_contributions(&[1, 0, 2]);
        assert_eq!(h.contributions(), &[2, 0, 4]);
        let cdf = h.contribution_cdf();
        assert_eq!(cdf.eval(0.0), 1.0 / 3.0);
        assert_eq!(cdf.eval(4.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn contribution_length_mismatch_panics() {
        let mut h = RunHistory::new("test", 2);
        h.add_contributions(&[1, 2, 3]);
    }

    #[test]
    fn wire_totals_accumulate() {
        use agsfl_wire::CodecId;
        let mut h = RunHistory::new("wire", 2);
        assert_eq!(h.wire_bytes(), (0, 0));
        assert!(h.codec_counts().is_empty());
        h.record_wire(&WireRoundReport {
            uplink_bytes: vec![100, 50],
            max_uplink_bytes: 100,
            downlink_bytes: 30,
            uplink_codecs: vec![CodecId::DeltaVarint, CodecId::DeltaVarint],
            downlink_codec: CodecId::CooF32,
        });
        h.record_wire(&WireRoundReport {
            uplink_bytes: vec![10, 10],
            max_uplink_bytes: 10,
            downlink_bytes: 5,
            uplink_codecs: vec![CodecId::Bitmap, CodecId::CooF32],
            downlink_codec: CodecId::CooF32,
        });
        assert_eq!(h.wire_bytes(), (170, 35));
        assert_eq!(h.codec_counts(), &[3, 2, 1]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut h = RunHistory::new("test", 1);
        h.push(point(1, 1.0, Some(2.0), None));
        let csv = h.to_csv();
        assert!(csv.starts_with("round,time,k"));
        assert_eq!(csv.lines().count(), 2);
    }
}
