//! Run histories: the time series the paper's figures plot.

use agsfl_tensor::stats::Ecdf;
use agsfl_wire::CodecId;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::fault::FaultRoundReport;
use crate::round::{RoundReport, WireRoundReport};

/// Run-level fault accounting: the per-round
/// [`FaultRoundReport`](crate::FaultRoundReport) counters summed over every
/// recorded round, plus the worst-case surviving cohort size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultTotals {
    /// Rounds recorded through [`RunHistory::record_fault`].
    pub rounds: u64,
    /// Client-rounds spent offline in crash outages.
    pub offline: u64,
    /// Uploads lost to Bernoulli dropout.
    pub dropped: u64,
    /// Straggler client-rounds (slowed uplink transmissions).
    pub stragglers: u64,
    /// Corrupted uplink frames observed (each failed validated decode).
    pub corrupt_frames: u64,
    /// Clients lost after exhausting retries on corrupted frames.
    pub corrupt_lost: u64,
    /// Clients dropped for exceeding the round deadline.
    pub deadline_dropped: u64,
    /// Extra uplink attempts beyond each client's first.
    pub retries: u64,
    /// Bytes re-transmitted by retry attempts.
    pub retransmitted_bytes: u64,
    /// Smallest surviving cohort aggregated in any recorded round; `None`
    /// until a fault round is recorded.
    pub min_survivors: Option<u64>,
}

impl FaultTotals {
    /// Total uploads lost to any fault over the run.
    pub fn lost(&self) -> u64 {
        self.offline + self.dropped + self.corrupt_lost + self.deadline_dropped
    }
}

/// One evaluated point of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricPoint {
    /// Round index `m`.
    pub round: usize,
    /// Cumulative normalized time at this point.
    pub elapsed_time: f64,
    /// Sparsity degree used in this round.
    pub k: usize,
    /// Mini-batch training loss observed in this round.
    pub train_loss: f64,
    /// Global training loss `L(w)` (weighted over all client data), if it was
    /// evaluated at this point.
    pub global_loss: Option<f64>,
    /// Test-set accuracy, if it was evaluated at this point.
    pub test_accuracy: Option<f64>,
}

/// The full history of one training run, plus the per-client contribution
/// counters that back the fairness CDF of Fig. 4 (right).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunHistory {
    /// Human-readable label of the run (method name, comm time, …).
    pub label: String,
    points: Vec<MetricPoint>,
    contributions: Vec<u64>,
    /// Total uplink bytes over the run (0 unless byte-priced rounds were
    /// recorded through [`RunHistory::record_wire`]).
    uplink_bytes: u64,
    /// Total downlink bytes over the run.
    downlink_bytes: u64,
    /// Per-[`CodecId`] uplink frame counts (index = `CodecId as usize`);
    /// empty until a wire round is recorded.
    codec_counts: Vec<u64>,
    /// Summed fault counters (all-zero unless fault rounds were recorded
    /// through [`RunHistory::record_fault`]).
    fault: FaultTotals,
}

impl RunHistory {
    /// Creates an empty history with the given label and client count.
    pub fn new(label: impl Into<String>, num_clients: usize) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
            contributions: vec![0; num_clients],
            uplink_bytes: 0,
            downlink_bytes: 0,
            codec_counts: Vec::new(),
            fault: FaultTotals::default(),
        }
    }

    /// Appends an evaluated point.
    pub fn push(&mut self, point: MetricPoint) {
        self.points.push(point);
    }

    /// Adds this round's per-client contribution counts.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the client count given at
    /// construction.
    pub fn add_contributions(&mut self, per_client: &[usize]) {
        assert_eq!(
            per_client.len(),
            self.contributions.len(),
            "contribution vector length mismatch"
        );
        for (total, &c) in self.contributions.iter_mut().zip(per_client.iter()) {
            *total += c as u64;
        }
    }

    /// Adds a sampled-cohort round's contribution counts, scattering
    /// `per_member[i]` to global client `cohort[i]`. With a full-population
    /// cohort (`cohort == [0, 1, .., N-1]`) this is exactly
    /// [`RunHistory::add_contributions`].
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or a member id is out of range.
    pub fn add_cohort_contributions(&mut self, cohort: &[usize], per_member: &[usize]) {
        assert_eq!(
            cohort.len(),
            per_member.len(),
            "cohort / contribution vector length mismatch"
        );
        for (&client, &c) in cohort.iter().zip(per_member.iter()) {
            self.contributions[client] += c as u64;
        }
    }

    /// The recorded points in chronological order.
    pub fn points(&self) -> &[MetricPoint] {
        &self.points
    }

    /// Mutable access to the most recent point, if any. Used by runners to
    /// fill in a final evaluation after their loop exits.
    pub fn last_point_mut(&mut self) -> Option<&mut MetricPoint> {
        self.points.last_mut()
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total contributions per client accumulated over the run.
    pub fn contributions(&self) -> &[u64] {
        &self.contributions
    }

    /// Accumulates everything a [`RoundReport`] contributes to the run
    /// totals in one call: per-client contribution counts, the wire
    /// accounting when the round was byte-priced, and the fault tallies
    /// when a fault model was active. This is the single bookkeeping entry
    /// point the runners use after every round — equivalent to calling
    /// [`RunHistory::add_cohort_contributions`], [`RunHistory::record_wire`]
    /// and [`RunHistory::record_fault`] by hand (pinned by a regression
    /// test), without each caller re-deriving which sections are present.
    pub fn record_round(&mut self, report: &RoundReport) {
        self.add_cohort_contributions(&report.cohort, &report.contributions);
        if let Some(wire) = &report.wire {
            self.record_wire(wire);
        }
        if let Some(fault) = &report.fault {
            self.record_fault(fault);
        }
    }

    /// Accumulates a byte-priced round's wire accounting.
    pub fn record_wire(&mut self, wire: &WireRoundReport) {
        self.uplink_bytes += wire.uplink_bytes.iter().map(|&b| b as u64).sum::<u64>();
        self.downlink_bytes += wire.downlink_bytes as u64;
        if self.codec_counts.is_empty() {
            self.codec_counts = vec![0; CodecId::ALL.len()];
        }
        for &id in &wire.uplink_codecs {
            self.codec_counts[id as usize] += 1;
        }
        self.codec_counts[wire.downlink_codec as usize] += 1;
    }

    /// Accumulates a fault-injected round's accounting (call once per round
    /// whenever a fault model is configured; clean rounds contribute zeros
    /// but still advance the round counter and the survivor minimum).
    pub fn record_fault(&mut self, fault: &FaultRoundReport) {
        self.fault.rounds += 1;
        self.fault.offline += fault.offline as u64;
        self.fault.dropped += fault.dropped as u64;
        self.fault.stragglers += fault.stragglers as u64;
        self.fault.corrupt_frames += fault.corrupt_frames as u64;
        self.fault.corrupt_lost += fault.corrupt_lost as u64;
        self.fault.deadline_dropped += fault.deadline_dropped as u64;
        self.fault.retries += fault.retries as u64;
        self.fault.retransmitted_bytes += fault.retransmitted_bytes;
        let survivors = fault.survivors as u64;
        self.fault.min_survivors = Some(match self.fault.min_survivors {
            Some(current) => current.min(survivors),
            None => survivors,
        });
    }

    /// The summed fault counters over the run (all-zero defaults for runs
    /// without a fault model).
    pub fn fault_totals(&self) -> &FaultTotals {
        &self.fault
    }

    /// Total `(uplink, downlink)` bytes on the wire over the run; zeros for
    /// scalar-proxy runs.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (self.uplink_bytes, self.downlink_bytes)
    }

    /// Frame counts per concrete encoding (uplinks and downlinks combined),
    /// indexed by `CodecId as usize`. Empty for scalar-proxy runs.
    pub fn codec_counts(&self) -> &[u64] {
        &self.codec_counts
    }

    /// Empirical CDF of per-client total contributions (the paper's Fig. 4,
    /// right panel: "number of gradient elements used from each client").
    pub fn contribution_cdf(&self) -> Ecdf {
        Ecdf::new(self.contributions.iter().map(|&c| c as f32).collect())
    }

    /// The last recorded global loss, if any point evaluated it.
    pub fn final_global_loss(&self) -> Option<f64> {
        self.points.iter().rev().find_map(|p| p.global_loss)
    }

    /// The last recorded test accuracy, if any point evaluated it.
    pub fn final_test_accuracy(&self) -> Option<f64> {
        self.points.iter().rev().find_map(|p| p.test_accuracy)
    }

    /// First normalized time at which the recorded global loss dropped to
    /// `target` or below. `None` if the run never reached it.
    pub fn time_to_loss(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.global_loss.is_some_and(|l| l <= target))
            .map(|p| p.elapsed_time)
    }

    /// Global loss interpolated at a given normalized time (nearest recorded
    /// point at or before `time`). `None` before the first evaluation.
    pub fn loss_at_time(&self, time: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.elapsed_time <= time)
            .filter_map(|p| p.global_loss.map(|l| (p.elapsed_time, l)))
            .last()
            .map(|(_, l)| l)
    }

    /// Accuracy at a given normalized time (nearest recorded point at or
    /// before `time`).
    pub fn accuracy_at_time(&self, time: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.elapsed_time <= time)
            .filter_map(|p| p.test_accuracy.map(|a| (p.elapsed_time, a)))
            .last()
            .map(|(_, a)| a)
    }

    /// The sequence of `k` values used, one entry per recorded point.
    pub fn k_sequence(&self) -> Vec<usize> {
        self.points.iter().map(|p| p.k).collect()
    }

    /// Serializes the full history (checkpointing). Floats are stored as
    /// raw bits, so a restored history is bit-identical.
    pub fn write_state(&self, w: &mut SnapshotWriter) {
        w.str(&self.label);
        w.usize(self.points.len());
        for p in &self.points {
            w.usize(p.round);
            w.f64(p.elapsed_time);
            w.usize(p.k);
            w.f64(p.train_loss);
            w.opt_f64(p.global_loss);
            w.opt_f64(p.test_accuracy);
        }
        w.u64s(&self.contributions);
        w.u64(self.uplink_bytes);
        w.u64(self.downlink_bytes);
        w.u64s(&self.codec_counts);
        w.u64(self.fault.rounds);
        w.u64(self.fault.offline);
        w.u64(self.fault.dropped);
        w.u64(self.fault.stragglers);
        w.u64(self.fault.corrupt_frames);
        w.u64(self.fault.corrupt_lost);
        w.u64(self.fault.deadline_dropped);
        w.u64(self.fault.retries);
        w.u64(self.fault.retransmitted_bytes);
        match self.fault.min_survivors {
            Some(v) => {
                w.bool(true);
                w.u64(v);
            }
            None => w.bool(false),
        }
    }

    /// Rebuilds a history serialized by [`RunHistory::write_state`].
    pub fn read_state(r: &mut SnapshotReader<'_>) -> Result<Self, CheckpointError> {
        let label = r.str()?;
        let num_points = r.usize()?;
        let mut points = Vec::with_capacity(num_points.min(1 << 20));
        for _ in 0..num_points {
            points.push(MetricPoint {
                round: r.usize()?,
                elapsed_time: r.f64()?,
                k: r.usize()?,
                train_loss: r.f64()?,
                global_loss: r.opt_f64()?,
                test_accuracy: r.opt_f64()?,
            });
        }
        let contributions = r.u64s()?;
        let uplink_bytes = r.u64()?;
        let downlink_bytes = r.u64()?;
        let codec_counts = r.u64s()?;
        let fault = FaultTotals {
            rounds: r.u64()?,
            offline: r.u64()?,
            dropped: r.u64()?,
            stragglers: r.u64()?,
            corrupt_frames: r.u64()?,
            corrupt_lost: r.u64()?,
            deadline_dropped: r.u64()?,
            retries: r.u64()?,
            retransmitted_bytes: r.u64()?,
            min_survivors: if r.bool()? { Some(r.u64()?) } else { None },
        };
        Ok(Self {
            label,
            points,
            contributions,
            uplink_bytes,
            downlink_bytes,
            codec_counts,
            fault,
        })
    }

    /// Renders the history as CSV (`round,time,k,train_loss,global_loss,test_accuracy`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("round,time,k,train_loss,global_loss,test_accuracy\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.4},{},{:.6},{},{}\n",
                p.round,
                p.elapsed_time,
                p.k,
                p.train_loss,
                p.global_loss.map_or(String::new(), |l| format!("{l:.6}")),
                p.test_accuracy.map_or(String::new(), |a| format!("{a:.6}")),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(round: usize, time: f64, loss: Option<f64>, acc: Option<f64>) -> MetricPoint {
        MetricPoint {
            round,
            elapsed_time: time,
            k: 10,
            train_loss: 1.0,
            global_loss: loss,
            test_accuracy: acc,
        }
    }

    #[test]
    fn push_and_accessors() {
        let mut h = RunHistory::new("test", 3);
        assert!(h.is_empty());
        h.push(point(1, 2.0, Some(3.0), Some(0.1)));
        h.push(point(2, 4.0, Some(2.0), Some(0.2)));
        assert_eq!(h.len(), 2);
        assert_eq!(h.final_global_loss(), Some(2.0));
        assert_eq!(h.final_test_accuracy(), Some(0.2));
        assert_eq!(h.k_sequence(), vec![10, 10]);
    }

    #[test]
    fn time_to_loss_finds_first_crossing() {
        let mut h = RunHistory::new("test", 1);
        h.push(point(1, 1.0, Some(3.0), None));
        h.push(point(2, 2.0, Some(1.5), None));
        h.push(point(3, 3.0, Some(1.0), None));
        assert_eq!(h.time_to_loss(1.5), Some(2.0));
        assert_eq!(h.time_to_loss(0.5), None);
    }

    #[test]
    fn loss_and_accuracy_at_time() {
        let mut h = RunHistory::new("test", 1);
        h.push(point(1, 1.0, Some(3.0), Some(0.3)));
        h.push(point(2, 5.0, Some(2.0), Some(0.5)));
        assert_eq!(h.loss_at_time(0.5), None);
        assert_eq!(h.loss_at_time(1.0), Some(3.0));
        assert_eq!(h.loss_at_time(4.9), Some(3.0));
        assert_eq!(h.loss_at_time(100.0), Some(2.0));
        assert_eq!(h.accuracy_at_time(6.0), Some(0.5));
    }

    #[test]
    fn contributions_accumulate_and_cdf() {
        let mut h = RunHistory::new("test", 3);
        h.add_contributions(&[1, 0, 2]);
        h.add_contributions(&[1, 0, 2]);
        assert_eq!(h.contributions(), &[2, 0, 4]);
        let cdf = h.contribution_cdf();
        assert_eq!(cdf.eval(0.0), 1.0 / 3.0);
        assert_eq!(cdf.eval(4.0), 1.0);
    }

    #[test]
    fn cohort_contributions_scatter_by_member_id() {
        let mut h = RunHistory::new("cohort", 5);
        h.add_cohort_contributions(&[4, 1], &[7, 2]);
        h.add_cohort_contributions(&[1, 3], &[1, 9]);
        assert_eq!(h.contributions(), &[0, 3, 0, 9, 7]);
        // A full-population cohort is exactly add_contributions.
        let mut full = RunHistory::new("full", 3);
        full.add_cohort_contributions(&[0, 1, 2], &[1, 0, 2]);
        let mut dense = RunHistory::new("full", 3);
        dense.add_contributions(&[1, 0, 2]);
        assert_eq!(full.contributions(), dense.contributions());
    }

    #[test]
    #[should_panic]
    fn cohort_contribution_out_of_range_panics() {
        let mut h = RunHistory::new("cohort", 2);
        h.add_cohort_contributions(&[2], &[1]);
    }

    #[test]
    #[should_panic]
    fn contribution_length_mismatch_panics() {
        let mut h = RunHistory::new("test", 2);
        h.add_contributions(&[1, 2, 3]);
    }

    #[test]
    fn wire_totals_accumulate() {
        use agsfl_wire::CodecId;
        let mut h = RunHistory::new("wire", 2);
        assert_eq!(h.wire_bytes(), (0, 0));
        assert!(h.codec_counts().is_empty());
        h.record_wire(&WireRoundReport {
            uplink_bytes: vec![100, 50],
            max_uplink_bytes: 100,
            downlink_bytes: 30,
            uplink_codecs: vec![CodecId::DeltaVarint, CodecId::DeltaVarint],
            downlink_codec: CodecId::CooF32,
        });
        h.record_wire(&WireRoundReport {
            uplink_bytes: vec![10, 10],
            max_uplink_bytes: 10,
            downlink_bytes: 5,
            uplink_codecs: vec![CodecId::Bitmap, CodecId::CooF32],
            downlink_codec: CodecId::CooF32,
        });
        assert_eq!(h.wire_bytes(), (170, 35));
        assert_eq!(h.codec_counts(), &[3, 2, 1, 0, 0, 0]);
    }

    #[test]
    fn fault_totals_accumulate_and_track_min_survivors() {
        let mut h = RunHistory::new("faulty", 4);
        assert_eq!(h.fault_totals(), &FaultTotals::default());
        h.record_fault(&FaultRoundReport {
            offline: 1,
            dropped: 2,
            stragglers: 1,
            corrupt_frames: 3,
            corrupt_lost: 1,
            deadline_dropped: 0,
            retries: 4,
            retransmitted_bytes: 120,
            survivors: 1,
        });
        h.record_fault(&FaultRoundReport {
            survivors: 4,
            ..FaultRoundReport::default()
        });
        let totals = h.fault_totals();
        assert_eq!(totals.rounds, 2);
        assert_eq!(totals.dropped, 2);
        assert_eq!(totals.lost(), 4);
        assert_eq!(totals.retransmitted_bytes, 120);
        assert_eq!(totals.min_survivors, Some(1));
    }

    #[test]
    fn record_round_matches_the_manual_call_sequence() {
        use crate::round::RoundReport;
        let report = RoundReport {
            round: 3,
            k_used: 5,
            train_loss: 0.7,
            round_time: 1.0,
            elapsed_time: 3.0,
            downlink_elements: 5,
            max_uplink_scalars: 5,
            cohort: vec![2, 0],
            contributions: vec![4, 1],
            probe: None,
            wire: Some(WireRoundReport {
                uplink_bytes: vec![40, 25],
                max_uplink_bytes: 40,
                downlink_bytes: 12,
                uplink_codecs: vec![CodecId::CooF32, CodecId::Bitmap],
                downlink_codec: CodecId::DeltaVarint,
            }),
            fault: Some(FaultRoundReport {
                offline: 1,
                retries: 2,
                retransmitted_bytes: 80,
                survivors: 1,
                ..FaultRoundReport::default()
            }),
        };
        let mut fused = RunHistory::new("fused", 3);
        fused.record_round(&report);
        let mut manual = RunHistory::new("fused", 3);
        manual.add_cohort_contributions(&report.cohort, &report.contributions);
        manual.record_wire(report.wire.as_ref().unwrap());
        manual.record_fault(report.fault.as_ref().unwrap());
        assert_eq!(fused, manual);
        // Sections absent from the report contribute nothing.
        let plain = RoundReport {
            wire: None,
            fault: None,
            ..report
        };
        let mut h = RunHistory::new("plain", 3);
        h.record_round(&plain);
        assert_eq!(h.wire_bytes(), (0, 0));
        assert_eq!(h.fault_totals(), &FaultTotals::default());
        assert_eq!(h.contributions(), &[1, 0, 4]);
    }

    #[test]
    fn state_roundtrip_is_exact() {
        let mut h = RunHistory::new("snapshot", 2);
        h.push(point(1, 1.5, Some(2.0), None));
        h.push(point(2, 3.0, None, Some(0.4)));
        h.add_contributions(&[3, 1]);
        h.record_wire(&WireRoundReport {
            uplink_bytes: vec![10, 20],
            max_uplink_bytes: 20,
            downlink_bytes: 15,
            uplink_codecs: vec![CodecId::CooF32, CodecId::Bitmap],
            downlink_codec: CodecId::DeltaVarint,
        });
        h.record_fault(&FaultRoundReport {
            dropped: 1,
            survivors: 1,
            ..FaultRoundReport::default()
        });
        let mut w = SnapshotWriter::new();
        h.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let restored = RunHistory::read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(h, restored);
        // Truncations error instead of panicking.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut r = SnapshotReader::new(&bytes[..cut]);
            assert!(RunHistory::read_state(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut h = RunHistory::new("test", 1);
        h.push(point(1, 1.0, Some(2.0), None));
        let csv = h.to_csv();
        assert!(csv.starts_with("round,time,k"));
        assert_eq!(csv.lines().count(), 2);
    }
}
