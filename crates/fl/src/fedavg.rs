//! The FedAvg send-all-or-nothing baseline.
//!
//! The paper compares its GS-based FL against federated averaging at *equal
//! average communication overhead*: FedAvg exchanges the full model every
//! `⌊D/(2k)⌋` rounds (the division by 2 accounts for the index transmission
//! that sparse messages need), and performs purely local SGD steps in the
//! rounds in between.
//!
//! Like the sparse simulator, FedAvg runs its `O(N·D)` passes through the
//! [`agsfl_exec::Executor`] configured by [`FedAvgConfig::parallelism`]: the
//! per-round local SGD steps are a client-parallel map (each client owns its
//! RNG and sampler, results reduce in client order), the `N×D` weight
//! average is sharded by *dimension stripe* so every coordinate keeps its
//! serial client-order sum, and evaluation uses the fused sweep of
//! [`agsfl_ml::metrics::global_evaluation`]. All of it is bit-identical to
//! the serial path for every thread count; see `ARCHITECTURE.md`.

use agsfl_exec::{Executor, Parallelism};
use agsfl_ml::data::{FederatedDataset, MinibatchSampler};
use agsfl_ml::metrics::{
    accuracy_parallel, global_accuracy_parallel, global_evaluation, global_loss_parallel,
};
use agsfl_ml::model::Model;
use agsfl_ml::optim::sgd_step;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::time::TimeModel;

/// Configuration of a [`FedAvgSimulation`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedAvgConfig {
    /// SGD step size `η`.
    pub learning_rate: f32,
    /// Mini-batch size per client per round.
    pub batch_size: usize,
    /// Normalized time model.
    pub time_model: TimeModel,
    /// Weight aggregation period in rounds. Use
    /// [`TimeModel::fedavg_period`] to match the average communication
    /// overhead of `k`-element GS.
    pub aggregation_period: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread policy for the round and evaluation sweeps. Purely a
    /// wall-clock knob: results are bit-identical for every setting.
    pub parallelism: Parallelism,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            batch_size: 32,
            time_model: TimeModel::default(),
            aggregation_period: 10,
            seed: 0,
            parallelism: Parallelism::Auto,
        }
    }
}

/// All evaluation metrics of a FedAvg run at one point in time, computed
/// from a single weight-averaging pass and one fused evaluation sweep (see
/// [`FedAvgSimulation::evaluate`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedAvgEvaluation {
    /// Global training loss at the averaged weights.
    pub train_loss: f64,
    /// Test-set accuracy at the averaged weights.
    pub test_accuracy: f64,
    /// Weighted training accuracy at the averaged weights.
    pub train_accuracy: f64,
}

/// Report of one FedAvg round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedAvgRoundReport {
    /// Round index (1-based).
    pub round: usize,
    /// Whether this round ended with a weight aggregation.
    pub aggregated: bool,
    /// Average (weighted) mini-batch loss at the start-of-round weights.
    pub train_loss: f64,
    /// Normalized time of this round.
    pub round_time: f64,
    /// Cumulative normalized time.
    pub elapsed_time: f64,
}

/// One FedAvg client: its diverging local weights plus the private sampler
/// and RNG that make the client-parallel round pass deterministic in any
/// interleaving.
#[derive(Debug, Clone)]
struct FedAvgClient {
    id: usize,
    weight: f64,
    params: Vec<f32>,
    sampler: MinibatchSampler,
    rng: ChaCha8Rng,
}

/// Dimension stripes below this size are averaged on the calling thread:
/// tiny test models should not pay thread spawns for a memory-bound pass.
const STRIPE_MIN_DIM: usize = 4096;

/// Federated averaging with periodic full-model exchange.
pub struct FedAvgSimulation {
    model: Box<dyn Model>,
    dataset: FederatedDataset,
    config: FedAvgConfig,
    /// Per-client state (local weights diverge between aggregations).
    clients: Vec<FedAvgClient>,
    /// The executor built once from [`FedAvgConfig::parallelism`] and reused
    /// by the round pass, the weight average and the evaluation sweeps.
    executor: Executor,
    round: usize,
    elapsed: f64,
}

impl std::fmt::Debug for FedAvgSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FedAvgSimulation")
            .field("num_clients", &self.clients.len())
            .field("round", &self.round)
            .field("aggregation_period", &self.config.aggregation_period)
            .finish()
    }
}

impl FedAvgSimulation {
    /// Creates a FedAvg run with all clients initialized to the same weights.
    ///
    /// # Panics
    ///
    /// Panics if `aggregation_period == 0` or the model/dataset dimensions
    /// disagree.
    pub fn new(model: Box<dyn Model>, dataset: FederatedDataset, config: FedAvgConfig) -> Self {
        assert!(
            config.aggregation_period > 0,
            "aggregation period must be positive"
        );
        assert_eq!(
            model.input_dim(),
            dataset.feature_dim(),
            "feature dim mismatch"
        );
        let mut init_rng = ChaCha8Rng::seed_from_u64(config.seed);
        let init = model.init_params(&mut init_rng);
        let total = dataset.total_samples() as f64;
        let clients = dataset
            .clients()
            .iter()
            .enumerate()
            .map(|(i, shard)| FedAvgClient {
                id: i,
                weight: shard.len() as f64 / total,
                params: init.clone(),
                sampler: MinibatchSampler::new(shard, config.batch_size),
                rng: ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(17).wrapping_add(i as u64)),
            })
            .collect();
        Self {
            model,
            dataset,
            config,
            clients,
            executor: config.parallelism.build(),
            round: 0,
            elapsed: 0.0,
        }
    }

    /// Rounds completed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Cumulative normalized time consumed so far.
    pub fn elapsed_time(&self) -> f64 {
        self.elapsed
    }

    /// Client `i`'s current local weights (test/diagnostic accessor).
    pub fn local_params(&self, i: usize) -> &[f32] {
        &self.clients[i].params
    }

    /// The weighted average of the clients' current local weights — the
    /// "global model" FedAvg would report at this point.
    ///
    /// The `N×D` reduction is sharded across the executor's workers by
    /// *dimension stripe*: each worker owns a contiguous coordinate range
    /// and folds over the clients in client order, so every coordinate's sum
    /// is evaluated in exactly the serial association and the result is
    /// bit-identical for any stripe count (the same argument as
    /// `agsfl_sparse::shard`).
    pub fn averaged_params(&self) -> Vec<f32> {
        let dim = self.clients[0].params.len();
        let mut avg = vec![0.0f64; dim];
        if self.executor.is_serial() || dim < STRIPE_MIN_DIM {
            for client in &self.clients {
                for (a, &p) in avg.iter_mut().zip(client.params.iter()) {
                    *a += client.weight * p as f64;
                }
            }
        } else {
            let stripe = dim.div_ceil(self.executor.threads());
            let mut stripes: Vec<(usize, &mut [f64])> =
                avg.chunks_mut(stripe).enumerate().collect();
            let clients = &self.clients;
            // The stripe count equals the thread count, so the map must not
            // re-apply the executor's min-items gate (2 stripes on a
            // 2-thread executor must actually spawn); the is_serial/dim
            // guard above already made the parallelize decision.
            let exec = self.executor.clone().with_min_items(1);
            exec.map_mut(&mut stripes, |(i, chunk)| {
                let lo = *i * stripe;
                for client in clients {
                    let src = &client.params[lo..lo + chunk.len()];
                    for (a, &p) in chunk.iter_mut().zip(src.iter()) {
                        *a += client.weight * p as f64;
                    }
                }
            });
        }
        avg.into_iter().map(|v| v as f32).collect()
    }

    /// Evaluates loss, test accuracy and train accuracy in one shot:
    /// the `N×D` weight average is computed a single time and all three
    /// metrics come from one fused parallel sweep
    /// ([`agsfl_ml::metrics::global_evaluation`]).
    ///
    /// The individual accessors ([`FedAvgSimulation::global_train_loss`] and
    /// friends) each redo the reduction; callers that report more than one
    /// metric per round — every figure pipeline does — should use this.
    pub fn evaluate(&self) -> FedAvgEvaluation {
        let avg = self.averaged_params();
        let eval = global_evaluation(
            self.model.as_ref(),
            &avg,
            self.dataset.clients(),
            self.dataset.test(),
            &self.executor,
        );
        FedAvgEvaluation {
            train_loss: eval.train_loss as f64,
            test_accuracy: eval.test_accuracy as f64,
            train_accuracy: eval.train_accuracy as f64,
        }
    }

    /// Global training loss at the averaged weights.
    pub fn global_train_loss(&self) -> f64 {
        let avg = self.averaged_params();
        global_loss_parallel(
            self.model.as_ref(),
            &avg,
            self.dataset.clients(),
            &self.executor,
        ) as f64
    }

    /// Test accuracy at the averaged weights.
    pub fn test_accuracy(&self) -> f64 {
        let avg = self.averaged_params();
        let test = self.dataset.test();
        accuracy_parallel(
            self.model.as_ref(),
            &avg,
            &test.features,
            &test.labels,
            &self.executor,
        ) as f64
    }

    /// Weighted train accuracy at the averaged weights.
    pub fn global_train_accuracy(&self) -> f64 {
        let avg = self.averaged_params();
        global_accuracy_parallel(
            self.model.as_ref(),
            &avg,
            self.dataset.clients(),
            &self.executor,
        ) as f64
    }

    /// Runs one FedAvg round: a local SGD step at every client (one
    /// client-parallel map; each client owns its RNG and sampler, and the
    /// weighted loss reduces in client order on the calling thread), plus a
    /// full weight aggregation every `aggregation_period` rounds.
    pub fn run_round(&mut self) -> FedAvgRoundReport {
        self.round += 1;
        let lr = self.config.learning_rate;
        let model = self.model.as_ref();
        let dataset = &self.dataset;
        let losses: Vec<(f64, f32)> = self.executor.map_mut(&mut self.clients, |client| {
            let shard = dataset.client(client.id);
            let (features, labels, _) = client.sampler.next_batch(shard, &mut client.rng);
            let (loss, grad) = model.loss_and_grad(&client.params, &features, &labels);
            sgd_step(&mut client.params, &grad, lr);
            (client.weight, loss)
        });
        let mut train_loss = 0.0f64;
        for (weight, loss) in losses {
            train_loss += weight * loss as f64;
        }

        let aggregated = self.round.is_multiple_of(self.config.aggregation_period);
        let dim = self.clients[0].params.len();
        let round_time = if aggregated {
            let avg = self.averaged_params();
            for client in &mut self.clients {
                client.params.copy_from_slice(&avg);
            }
            self.config.time_model.dense_round_time(dim)
        } else {
            self.config.time_model.local_round_time()
        };
        self.elapsed += round_time;

        FedAvgRoundReport {
            round: self.round,
            aggregated,
            train_loss,
            round_time,
            elapsed_time: self.elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agsfl_ml::data::{SyntheticFemnist, SyntheticFemnistConfig};
    use agsfl_ml::model::LinearSoftmax;

    fn tiny_fedavg_with(
        period: usize,
        beta: f64,
        seed: u64,
        parallelism: Parallelism,
    ) -> FedAvgSimulation {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        FedAvgSimulation::new(
            Box::new(model),
            fed,
            FedAvgConfig {
                learning_rate: 0.05,
                batch_size: 8,
                time_model: TimeModel::normalized(beta),
                aggregation_period: period,
                seed,
                parallelism,
            },
        )
    }

    fn tiny_fedavg(period: usize, beta: f64, seed: u64) -> FedAvgSimulation {
        tiny_fedavg_with(period, beta, seed, Parallelism::Auto)
    }

    #[test]
    fn aggregation_happens_on_schedule() {
        let mut sim = tiny_fedavg(3, 10.0, 0);
        let mut aggregations = Vec::new();
        for _ in 0..6 {
            let r = sim.run_round();
            aggregations.push(r.aggregated);
        }
        assert_eq!(aggregations, vec![false, false, true, false, false, true]);
    }

    #[test]
    fn round_time_depends_on_aggregation() {
        let mut sim = tiny_fedavg(2, 10.0, 1);
        let local = sim.run_round();
        assert_eq!(local.round_time, 1.0);
        let agg = sim.run_round();
        assert_eq!(agg.round_time, 11.0);
        assert!((sim.elapsed_time() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn local_weights_synchronized_after_aggregation() {
        let mut sim = tiny_fedavg(2, 1.0, 2);
        sim.run_round();
        // After one local round, clients differ.
        assert_ne!(sim.local_params(0), sim.local_params(1));
        sim.run_round();
        // After the aggregation round, everyone holds the average.
        assert_eq!(sim.local_params(0), sim.local_params(1));
    }

    #[test]
    fn training_reduces_loss() {
        let mut sim = tiny_fedavg(4, 1.0, 3);
        let initial = sim.global_train_loss();
        for _ in 0..120 {
            sim.run_round();
        }
        let trained = sim.global_train_loss();
        assert!(trained < initial * 0.9, "loss {initial} -> {trained}");
        assert!(sim.test_accuracy() > 0.1);
    }

    #[test]
    fn averaged_params_is_weighted_mean() {
        let mut sim = tiny_fedavg(100, 1.0, 4);
        sim.run_round();
        let avg = sim.averaged_params();
        let mut manual = vec![0.0f64; avg.len()];
        for client in &sim.clients {
            for (m, &v) in manual.iter_mut().zip(client.params.iter()) {
                *m += client.weight * v as f64;
            }
        }
        for (a, m) in avg.iter().zip(manual.iter()) {
            assert!((*a as f64 - m).abs() < 1e-6);
        }
    }

    #[test]
    fn evaluate_matches_single_metric_accessors() {
        let mut sim = tiny_fedavg(3, 1.0, 5);
        for _ in 0..4 {
            sim.run_round();
        }
        let eval = sim.evaluate();
        assert_eq!(eval.train_loss, sim.global_train_loss());
        assert_eq!(eval.test_accuracy, sim.test_accuracy());
        assert_eq!(eval.train_accuracy, sim.global_train_accuracy());
    }

    /// The evaluation invariant: a serial and a multi-threaded FedAvg run of
    /// the same seed produce equal round reports, bit-equal averaged
    /// weights and equal evaluations, across 1–8 workers.
    #[test]
    fn serial_and_parallel_fedavg_runs_are_identical() {
        let mut serial = tiny_fedavg_with(2, 5.0, 9, Parallelism::Serial);
        let mut parallel: Vec<FedAvgSimulation> = (2..=8)
            .step_by(3)
            .map(|t| tiny_fedavg_with(2, 5.0, 9, Parallelism::Threads(t)))
            .collect();
        for _ in 0..4 {
            let rs = serial.run_round();
            for sim in &mut parallel {
                assert_eq!(rs, sim.run_round());
            }
        }
        let expected_eval = serial.evaluate();
        let expected_avg = serial.averaged_params();
        for sim in &parallel {
            assert_eq!(expected_avg, sim.averaged_params());
            assert_eq!(expected_eval, sim.evaluate());
        }
    }

    /// The dimension-striped average must be bit-identical to the serial
    /// fold at dimensions large enough to actually take the striped branch.
    #[test]
    fn striped_average_matches_serial_at_large_dim() {
        use agsfl_ml::data::{ClientShard, FederatedDataset};
        use agsfl_tensor::Matrix;
        let dim_features = 2_100; // LinearSoftmax params: 2100*2 + 2 > STRIPE_MIN_DIM
        let shard = |seed: usize, n: usize| {
            ClientShard::new(
                Matrix::from_fn(n, dim_features, |i, j| {
                    ((i * 31 + j * 7 + seed * 13) % 17) as f32 * 0.05 - 0.4
                }),
                (0..n).map(|i| (i + seed) % 2).collect(),
            )
        };
        let build = |parallelism: Parallelism| {
            let fed =
                FederatedDataset::new(vec![shard(0, 5), shard(1, 3), shard(2, 7)], shard(9, 4), 2);
            FedAvgSimulation::new(
                Box::new(LinearSoftmax::new(dim_features, 2)),
                fed,
                FedAvgConfig {
                    batch_size: 2,
                    parallelism,
                    ..FedAvgConfig::default()
                },
            )
        };
        let mut serial = build(Parallelism::Serial);
        serial.run_round();
        let expected = serial.averaged_params();
        assert!(expected.len() >= STRIPE_MIN_DIM, "test must cover striping");
        for threads in [2usize, 3, 5, 8] {
            let mut sim = build(Parallelism::Threads(threads));
            sim.run_round();
            assert_eq!(expected, sim.averaged_params(), "threads={threads}");
        }
    }

    #[test]
    #[should_panic]
    fn zero_period_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        let _ = FedAvgSimulation::new(
            Box::new(model),
            fed,
            FedAvgConfig {
                aggregation_period: 0,
                ..FedAvgConfig::default()
            },
        );
    }
}
