//! The FedAvg send-all-or-nothing baseline.
//!
//! The paper compares its GS-based FL against federated averaging at *equal
//! average communication overhead*: FedAvg exchanges the full model every
//! `⌊D/(2k)⌋` rounds (the division by 2 accounts for the index transmission
//! that sparse messages need), and performs purely local SGD steps in the
//! rounds in between.

use agsfl_ml::data::{FederatedDataset, MinibatchSampler};
use agsfl_ml::metrics::{global_accuracy, global_loss};
use agsfl_ml::model::Model;
use agsfl_ml::optim::sgd_step;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::time::TimeModel;

/// Configuration of a [`FedAvgSimulation`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedAvgConfig {
    /// SGD step size `η`.
    pub learning_rate: f32,
    /// Mini-batch size per client per round.
    pub batch_size: usize,
    /// Normalized time model.
    pub time_model: TimeModel,
    /// Weight aggregation period in rounds. Use
    /// [`TimeModel::fedavg_period`] to match the average communication
    /// overhead of `k`-element GS.
    pub aggregation_period: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            batch_size: 32,
            time_model: TimeModel::default(),
            aggregation_period: 10,
            seed: 0,
        }
    }
}

/// All evaluation metrics of a FedAvg run at one point in time, computed
/// from a single weight-averaging pass (see [`FedAvgSimulation::evaluate`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedAvgEvaluation {
    /// Global training loss at the averaged weights.
    pub train_loss: f64,
    /// Test-set accuracy at the averaged weights.
    pub test_accuracy: f64,
    /// Weighted training accuracy at the averaged weights.
    pub train_accuracy: f64,
}

/// Report of one FedAvg round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedAvgRoundReport {
    /// Round index (1-based).
    pub round: usize,
    /// Whether this round ended with a weight aggregation.
    pub aggregated: bool,
    /// Average (weighted) mini-batch loss at the start-of-round weights.
    pub train_loss: f64,
    /// Normalized time of this round.
    pub round_time: f64,
    /// Cumulative normalized time.
    pub elapsed_time: f64,
}

/// Federated averaging with periodic full-model exchange.
pub struct FedAvgSimulation {
    model: Box<dyn Model>,
    dataset: FederatedDataset,
    config: FedAvgConfig,
    /// Per-client local weights (diverge between aggregations).
    local_params: Vec<Vec<f32>>,
    weights: Vec<f64>,
    samplers: Vec<MinibatchSampler>,
    rngs: Vec<ChaCha8Rng>,
    round: usize,
    elapsed: f64,
}

impl std::fmt::Debug for FedAvgSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FedAvgSimulation")
            .field("num_clients", &self.local_params.len())
            .field("round", &self.round)
            .field("aggregation_period", &self.config.aggregation_period)
            .finish()
    }
}

impl FedAvgSimulation {
    /// Creates a FedAvg run with all clients initialized to the same weights.
    ///
    /// # Panics
    ///
    /// Panics if `aggregation_period == 0` or the model/dataset dimensions
    /// disagree.
    pub fn new(model: Box<dyn Model>, dataset: FederatedDataset, config: FedAvgConfig) -> Self {
        assert!(config.aggregation_period > 0, "aggregation period must be positive");
        assert_eq!(model.input_dim(), dataset.feature_dim(), "feature dim mismatch");
        let mut init_rng = ChaCha8Rng::seed_from_u64(config.seed);
        let init = model.init_params(&mut init_rng);
        let total = dataset.total_samples() as f64;
        let weights: Vec<f64> = dataset
            .clients()
            .iter()
            .map(|s| s.len() as f64 / total)
            .collect();
        let samplers = dataset
            .clients()
            .iter()
            .map(|s| MinibatchSampler::new(s, config.batch_size))
            .collect();
        let rngs = (0..dataset.num_clients())
            .map(|i| ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(17).wrapping_add(i as u64)))
            .collect();
        let local_params = vec![init; dataset.num_clients()];
        Self {
            model,
            dataset,
            config,
            local_params,
            weights,
            samplers,
            rngs,
            round: 0,
            elapsed: 0.0,
        }
    }

    /// Rounds completed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Cumulative normalized time consumed so far.
    pub fn elapsed_time(&self) -> f64 {
        self.elapsed
    }

    /// The weighted average of the clients' current local weights — the
    /// "global model" FedAvg would report at this point.
    pub fn averaged_params(&self) -> Vec<f32> {
        let dim = self.local_params[0].len();
        let mut avg = vec![0.0f64; dim];
        for (params, &w) in self.local_params.iter().zip(self.weights.iter()) {
            for (a, &p) in avg.iter_mut().zip(params.iter()) {
                *a += w * p as f64;
            }
        }
        avg.into_iter().map(|v| v as f32).collect()
    }

    /// Evaluates loss, test accuracy and train accuracy in one shot,
    /// computing the `N×D` weight average a single time.
    ///
    /// The individual accessors ([`FedAvgSimulation::global_train_loss`] and
    /// friends) each redo that reduction; callers that report more than one
    /// metric per round — every figure pipeline does — should use this.
    pub fn evaluate(&self) -> FedAvgEvaluation {
        let avg = self.averaged_params();
        let test = self.dataset.test();
        FedAvgEvaluation {
            train_loss: global_loss(self.model.as_ref(), &avg, self.dataset.clients()) as f64,
            test_accuracy: self.model.accuracy(&avg, &test.features, &test.labels) as f64,
            train_accuracy: global_accuracy(self.model.as_ref(), &avg, self.dataset.clients())
                as f64,
        }
    }

    /// Global training loss at the averaged weights.
    pub fn global_train_loss(&self) -> f64 {
        let avg = self.averaged_params();
        global_loss(self.model.as_ref(), &avg, self.dataset.clients()) as f64
    }

    /// Test accuracy at the averaged weights.
    pub fn test_accuracy(&self) -> f64 {
        let avg = self.averaged_params();
        let test = self.dataset.test();
        self.model.accuracy(&avg, &test.features, &test.labels) as f64
    }

    /// Weighted train accuracy at the averaged weights.
    pub fn global_train_accuracy(&self) -> f64 {
        let avg = self.averaged_params();
        global_accuracy(self.model.as_ref(), &avg, self.dataset.clients()) as f64
    }

    /// Runs one FedAvg round: a local SGD step at every client, plus a full
    /// weight aggregation every `aggregation_period` rounds.
    pub fn run_round(&mut self) -> FedAvgRoundReport {
        self.round += 1;
        let lr = self.config.learning_rate;
        let mut train_loss = 0.0f64;
        for i in 0..self.local_params.len() {
            let shard = self.dataset.client(i);
            let (features, labels, _) = self.samplers[i].next_batch(shard, &mut self.rngs[i]);
            let (loss, grad) = self
                .model
                .loss_and_grad(&self.local_params[i], &features, &labels);
            train_loss += self.weights[i] * loss as f64;
            sgd_step(&mut self.local_params[i], &grad, lr);
        }

        let aggregated = self.round % self.config.aggregation_period == 0;
        let dim = self.local_params[0].len();
        let round_time = if aggregated {
            let avg = self.averaged_params();
            for params in &mut self.local_params {
                params.copy_from_slice(&avg);
            }
            self.config.time_model.dense_round_time(dim)
        } else {
            self.config.time_model.local_round_time()
        };
        self.elapsed += round_time;

        FedAvgRoundReport {
            round: self.round,
            aggregated,
            train_loss,
            round_time,
            elapsed_time: self.elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agsfl_ml::data::{SyntheticFemnist, SyntheticFemnistConfig};
    use agsfl_ml::model::LinearSoftmax;

    fn tiny_fedavg(period: usize, beta: f64, seed: u64) -> FedAvgSimulation {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        FedAvgSimulation::new(
            Box::new(model),
            fed,
            FedAvgConfig {
                learning_rate: 0.05,
                batch_size: 8,
                time_model: TimeModel::normalized(beta),
                aggregation_period: period,
                seed,
            },
        )
    }

    #[test]
    fn aggregation_happens_on_schedule() {
        let mut sim = tiny_fedavg(3, 10.0, 0);
        let mut aggregations = Vec::new();
        for _ in 0..6 {
            let r = sim.run_round();
            aggregations.push(r.aggregated);
        }
        assert_eq!(aggregations, vec![false, false, true, false, false, true]);
    }

    #[test]
    fn round_time_depends_on_aggregation() {
        let mut sim = tiny_fedavg(2, 10.0, 1);
        let local = sim.run_round();
        assert_eq!(local.round_time, 1.0);
        let agg = sim.run_round();
        assert_eq!(agg.round_time, 11.0);
        assert!((sim.elapsed_time() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn local_weights_synchronized_after_aggregation() {
        let mut sim = tiny_fedavg(2, 1.0, 2);
        sim.run_round();
        // After one local round, clients differ.
        assert_ne!(sim.local_params[0], sim.local_params[1]);
        sim.run_round();
        // After the aggregation round, everyone holds the average.
        assert_eq!(sim.local_params[0], sim.local_params[1]);
    }

    #[test]
    fn training_reduces_loss() {
        let mut sim = tiny_fedavg(4, 1.0, 3);
        let initial = sim.global_train_loss();
        for _ in 0..120 {
            sim.run_round();
        }
        let trained = sim.global_train_loss();
        assert!(trained < initial * 0.9, "loss {initial} -> {trained}");
        assert!(sim.test_accuracy() > 0.1);
    }

    #[test]
    fn averaged_params_is_weighted_mean() {
        let mut sim = tiny_fedavg(100, 1.0, 4);
        sim.run_round();
        let avg = sim.averaged_params();
        let mut manual = vec![0.0f64; avg.len()];
        for (p, &w) in sim.local_params.iter().zip(sim.weights.iter()) {
            for (m, &v) in manual.iter_mut().zip(p.iter()) {
                *m += w * v as f64;
            }
        }
        for (a, m) in avg.iter().zip(manual.iter()) {
            assert!((*a as f64 - m).abs() < 1e-6);
        }
    }

    #[test]
    fn evaluate_matches_single_metric_accessors() {
        let mut sim = tiny_fedavg(3, 1.0, 5);
        for _ in 0..4 {
            sim.run_round();
        }
        let eval = sim.evaluate();
        assert_eq!(eval.train_loss, sim.global_train_loss());
        assert_eq!(eval.test_accuracy, sim.test_accuracy());
        assert_eq!(eval.train_accuracy, sim.global_train_accuracy());
    }

    #[test]
    #[should_panic]
    fn zero_period_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
        let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
        let _ = FedAvgSimulation::new(
            Box::new(model),
            fed,
            FedAvgConfig {
                aggregation_period: 0,
                ..FedAvgConfig::default()
            },
        );
    }
}
