//! Generalized additive resource accounting (energy, monetary cost, …).
//!
//! The paper notes (Sections I and VI) that the training-time objective "can
//! be directly extended to the minimization of other types of additive
//! resources, such as energy, monetary cost, or a sum of them", because the
//! online-learning formulation only needs a per-round cost that decomposes
//! into a computation part and a communication part proportional to the
//! number of transmitted scalars. [`ResourceModel`] implements that
//! generalization: it prices a round in an arbitrary additive resource and
//! can be combined with [`TimeModel`](crate::TimeModel) through
//! [`CompositeCost`] to optimize a weighted sum of several resources.
//!
//! Like [`TimeModel`](crate::TimeModel), this prices the abstract `2k`
//! scalars-transmitted proxy. When the resource should track the bytes the
//! wire codecs actually put on each client's link, use the byte-priced path
//! instead: [`ChannelModel`](crate::ChannelModel) behind
//! [`SimulationConfig::wire`](crate::SimulationConfig::wire) — any additive
//! per-round cost slots into the same online-learning machinery.

use serde::{Deserialize, Serialize};

/// Prices one FL round in an arbitrary additive resource.
///
/// * `compute_cost` — resource consumed by one round of local computation
///   (all clients in parallel), e.g. Joules for the mini-batch gradient.
/// * `full_exchange_cost` — resource consumed by exchanging the full
///   `D`-element gradient in both directions; partial exchanges scale
///   proportionally with the transmitted scalars, exactly like the
///   normalized time model.
///
/// # Examples
///
/// ```
/// use agsfl_fl::ResourceModel;
///
/// // 5 J per round of computation, 80 J for a full-gradient exchange.
/// let energy = ResourceModel::new("energy [J]", 5.0, 80.0);
/// let d = 10_000;
/// assert_eq!(energy.round_cost(d, d, d), 85.0);
/// assert!(energy.sparse_round_cost(d, 100) < 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceModel {
    name: String,
    compute_cost: f64,
    full_exchange_cost: f64,
}

impl ResourceModel {
    /// Creates a resource model.
    ///
    /// # Panics
    ///
    /// Panics if either cost is negative or not finite.
    pub fn new(name: impl Into<String>, compute_cost: f64, full_exchange_cost: f64) -> Self {
        assert!(
            compute_cost.is_finite() && compute_cost >= 0.0,
            "compute cost must be finite and non-negative"
        );
        assert!(
            full_exchange_cost.is_finite() && full_exchange_cost >= 0.0,
            "exchange cost must be finite and non-negative"
        );
        Self {
            name: name.into(),
            compute_cost,
            full_exchange_cost,
        }
    }

    /// Human-readable name of the resource (e.g. `"energy [J]"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resource consumed by one round's local computation.
    pub fn compute_cost(&self) -> f64 {
        self.compute_cost
    }

    /// Resource consumed by a full `D`-element exchange in both directions.
    pub fn full_exchange_cost(&self) -> f64 {
        self.full_exchange_cost
    }

    /// Communication cost of exchanging the given numbers of scalars for a
    /// model of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn comm_cost(&self, dim: usize, uplink_scalars: usize, downlink_scalars: usize) -> f64 {
        assert!(dim > 0, "model dimension must be positive");
        self.full_exchange_cost * (uplink_scalars + downlink_scalars) as f64 / (2.0 * dim as f64)
    }

    /// Total cost of one round.
    pub fn round_cost(&self, dim: usize, uplink_scalars: usize, downlink_scalars: usize) -> f64 {
        self.compute_cost + self.comm_cost(dim, uplink_scalars, downlink_scalars)
    }

    /// Cost of one round of `k`-element bidirectional sparsified GS
    /// (`k` values + `k` indices in each direction).
    pub fn sparse_round_cost(&self, dim: usize, k: usize) -> f64 {
        self.round_cost(dim, 2 * k, 2 * k)
    }

    /// Cost of one dense (full-exchange) round.
    pub fn dense_round_cost(&self, dim: usize) -> f64 {
        self.round_cost(dim, dim, dim)
    }
}

/// A weighted sum of several resources — the "sum of them" objective the
/// paper mentions. Because each component is additive and proportional to
/// the transmitted scalars, the composite is too, so it can be fed to the
/// same online-learning machinery unchanged.
///
/// # Examples
///
/// ```
/// use agsfl_fl::{CompositeCost, ResourceModel};
///
/// let time = ResourceModel::new("time", 1.0, 10.0);
/// let energy = ResourceModel::new("energy", 5.0, 80.0);
/// // Optimize time + 0.1 * energy.
/// let composite = CompositeCost::new(vec![(1.0, time), (0.1, energy)]);
/// let d = 1_000;
/// let cost = composite.round_cost(d, 200, 200);
/// assert!(cost > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeCost {
    components: Vec<(f64, ResourceModel)>,
}

impl CompositeCost {
    /// Creates a composite cost from `(weight, resource)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or any weight is negative/not finite.
    pub fn new(components: Vec<(f64, ResourceModel)>) -> Self {
        assert!(
            !components.is_empty(),
            "composite cost needs at least one component"
        );
        assert!(
            components.iter().all(|(w, _)| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        Self { components }
    }

    /// The `(weight, resource)` components.
    pub fn components(&self) -> &[(f64, ResourceModel)] {
        &self.components
    }

    /// Weighted total cost of one round.
    pub fn round_cost(&self, dim: usize, uplink_scalars: usize, downlink_scalars: usize) -> f64 {
        self.components
            .iter()
            .map(|(w, r)| w * r.round_cost(dim, uplink_scalars, downlink_scalars))
            .sum()
    }

    /// Weighted cost of one round of `k`-element bidirectional GS.
    pub fn sparse_round_cost(&self, dim: usize, k: usize) -> f64 {
        self.round_cost(dim, 2 * k, 2 * k)
    }

    /// Weighted cost of one dense round.
    pub fn dense_round_cost(&self, dim: usize) -> f64 {
        self.round_cost(dim, dim, dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_cost_decomposes() {
        let r = ResourceModel::new("energy", 2.0, 20.0);
        assert_eq!(r.name(), "energy");
        assert_eq!(r.compute_cost(), 2.0);
        assert_eq!(r.full_exchange_cost(), 20.0);
        assert_eq!(r.dense_round_cost(100), 22.0);
        assert_eq!(r.round_cost(100, 0, 0), 2.0);
    }

    #[test]
    fn sparse_round_cost_scales_linearly_in_k() {
        let r = ResourceModel::new("cost", 0.0, 10.0);
        let d = 1_000;
        let c1 = r.sparse_round_cost(d, 50);
        let c2 = r.sparse_round_cost(d, 100);
        assert!((c2 - 2.0 * c1).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_resource_is_free() {
        let r = ResourceModel::new("free", 0.0, 0.0);
        assert_eq!(r.dense_round_cost(10), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_cost_panics() {
        let _ = ResourceModel::new("bad", -1.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_dim_panics() {
        let r = ResourceModel::new("x", 1.0, 1.0);
        let _ = r.comm_cost(0, 1, 1);
    }

    #[test]
    fn composite_is_weighted_sum_of_components() {
        let time = ResourceModel::new("time", 1.0, 10.0);
        let energy = ResourceModel::new("energy", 5.0, 80.0);
        let composite = CompositeCost::new(vec![(1.0, time.clone()), (0.5, energy.clone())]);
        let d = 500;
        let expected = time.round_cost(d, 100, 100) + 0.5 * energy.round_cost(d, 100, 100);
        assert!((composite.round_cost(d, 100, 100) - expected).abs() < 1e-12);
        assert_eq!(composite.components().len(), 2);
    }

    #[test]
    #[should_panic]
    fn empty_composite_panics() {
        let _ = CompositeCost::new(vec![]);
    }

    proptest! {
        #[test]
        fn prop_costs_are_monotone_in_scalars(
            dim in 1usize..10_000,
            up in 0usize..5_000,
            down in 0usize..5_000,
            compute in 0.0f64..10.0,
            exchange in 0.0f64..100.0,
        ) {
            let r = ResourceModel::new("res", compute, exchange);
            prop_assert!(r.round_cost(dim, up + 1, down) >= r.round_cost(dim, up, down));
            prop_assert!(r.round_cost(dim, up, down + 1) >= r.round_cost(dim, up, down));
            prop_assert!(r.round_cost(dim, up, down) >= compute);
        }

        #[test]
        fn prop_composite_nonnegative(
            dim in 1usize..1_000,
            k in 0usize..500,
            w1 in 0.0f64..5.0,
            w2 in 0.0f64..5.0,
        ) {
            let composite = CompositeCost::new(vec![
                (w1, ResourceModel::new("a", 1.0, 10.0)),
                (w2, ResourceModel::new("b", 2.0, 5.0)),
            ]);
            prop_assert!(composite.sparse_round_cost(dim, k) >= 0.0);
        }
    }
}
