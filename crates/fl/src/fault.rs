//! Seeded, deterministic fault injection for the synchronized round loop.
//!
//! The paper motivates adaptive sparsification with *fluctuating, unreliable*
//! edge networks; this module models the unreliable part. A [`FaultModel`]
//! describes per-round per-client Bernoulli upload dropout, multi-round crash
//! outages, straggler slowdown multipliers, a round deadline priced by the
//! `ChannelModel`, and wire-frame corruption with bounded retry. The runtime
//! [`FaultState`] owns its **own** ChaCha8 stream, so a zero-rate model (and
//! any fixed-rate model) never perturbs the data, client, or server RNG
//! streams — the determinism invariant extends unchanged: identical seeds
//! produce bit-identical runs at every thread count, because the fault plan
//! for a round is drawn serially in client order before the parallel client
//! pass begins.

use std::collections::BTreeMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};

/// Upper bound on [`FaultModel::max_retries`]; larger values are almost
/// certainly a misconfiguration (each retry re-transmits the full frame).
pub const MAX_RETRY_LIMIT: usize = 16;

/// Configuration of the deterministic fault injector.
///
/// All faults are drawn from a dedicated stream seeded by
/// [`FaultModel::seed`], independent of every other RNG in the simulation.
/// With every rate at zero the simulation is bit-identical to a run without
/// a fault model (pinned by tests in `simulation.rs`).
///
/// Corruption, straggling, and the deadline act on *bytes and link timing*,
/// so they require a wire configuration; [`FaultModel::validate`] rejects
/// them otherwise with a typed error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Per-round, per-client probability that a computed upload is lost in
    /// transit (no retry — the server simply never hears the client).
    pub drop_prob: f64,
    /// Per-round, per-client probability that an online client crashes and
    /// goes offline for a whole outage (drawn from `outage_rounds`).
    pub crash_prob: f64,
    /// Inclusive `(min, max)` length, in rounds, of a crash outage.
    pub outage_rounds: (usize, usize),
    /// Per-round, per-client probability of straggling: the client's uplink
    /// transmission time is multiplied by `straggle_factor`.
    pub straggle_prob: f64,
    /// Slowdown multiplier applied to a straggler's uplink transmission
    /// time; must be at least 1.
    pub straggle_factor: f64,
    /// Optional uplink-phase deadline in normalized time units. Clients
    /// whose uplink (including retries and slowdown) exceeds it are dropped
    /// for the round, and the server waits out the full deadline whenever
    /// any client is missing.
    pub deadline: Option<f64>,
    /// Per-attempt probability that an uplink frame arrives corrupted
    /// (truncated or bit-flipped) and fails validated decode.
    pub corrupt_prob: f64,
    /// Extra uplink attempts after the first; at most [`MAX_RETRY_LIMIT`].
    pub max_retries: usize,
    /// Latency added before each retry attempt (backoff), in the same
    /// normalized time units as the channel latency.
    pub retry_backoff: f64,
    /// Seed of the dedicated fault stream.
    pub seed: u64,
}

impl Default for FaultModel {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            crash_prob: 0.0,
            outage_rounds: (1, 3),
            straggle_prob: 0.0,
            straggle_factor: 4.0,
            deadline: None,
            corrupt_prob: 0.0,
            max_retries: 2,
            retry_backoff: 0.0,
            seed: 0,
        }
    }
}

/// Typed validation error for [`FaultModel`] (and the configs embedding it):
/// misconfiguration is reported before the run starts instead of panicking
/// mid-round.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultConfigError {
    /// A probability field lies outside `[0, 1]` or is not finite.
    ProbabilityOutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The deadline is zero, negative, or not finite.
    NonPositiveDeadline(f64),
    /// The straggle factor is below 1 or not finite.
    InvalidStraggleFactor(f64),
    /// The outage range is empty or starts at zero rounds.
    InvalidOutageRange {
        /// Configured minimum outage length.
        min: usize,
        /// Configured maximum outage length.
        max: usize,
    },
    /// The retry backoff is negative or not finite.
    NegativeBackoff(f64),
    /// `max_retries` exceeds [`MAX_RETRY_LIMIT`].
    RetryLimitTooLarge(usize),
    /// A byte-level fault feature was enabled without a wire configuration
    /// to price it.
    RequiresWire(&'static str),
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ProbabilityOutOfRange { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
            Self::NonPositiveDeadline(d) => {
                write!(f, "deadline must be positive and finite, got {d}")
            }
            Self::InvalidStraggleFactor(s) => {
                write!(f, "straggle_factor must be finite and at least 1, got {s}")
            }
            Self::InvalidOutageRange { min, max } => {
                write!(
                    f,
                    "outage_rounds must satisfy 1 <= min <= max, got ({min}, {max})"
                )
            }
            Self::NegativeBackoff(b) => {
                write!(f, "retry_backoff must be finite and non-negative, got {b}")
            }
            Self::RetryLimitTooLarge(n) => {
                write!(f, "max_retries {n} exceeds the limit {MAX_RETRY_LIMIT}")
            }
            Self::RequiresWire(feature) => {
                write!(
                    f,
                    "{feature} requires a wire configuration (bytes and link timing to act on)"
                )
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

impl FaultModel {
    /// Validates the model, returning a typed error for any out-of-range
    /// field. `has_wire` states whether the simulation prices real bytes;
    /// corruption, straggling, and the deadline are rejected without it.
    pub fn validate(&self, has_wire: bool) -> Result<(), FaultConfigError> {
        let probs = [
            ("drop_prob", self.drop_prob),
            ("crash_prob", self.crash_prob),
            ("straggle_prob", self.straggle_prob),
            ("corrupt_prob", self.corrupt_prob),
        ];
        for (field, value) in probs {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(FaultConfigError::ProbabilityOutOfRange { field, value });
            }
        }
        if let Some(d) = self.deadline {
            if !d.is_finite() || d <= 0.0 {
                return Err(FaultConfigError::NonPositiveDeadline(d));
            }
        }
        if !self.straggle_factor.is_finite() || self.straggle_factor < 1.0 {
            return Err(FaultConfigError::InvalidStraggleFactor(
                self.straggle_factor,
            ));
        }
        let (min, max) = self.outage_rounds;
        if min == 0 || min > max {
            return Err(FaultConfigError::InvalidOutageRange { min, max });
        }
        if !self.retry_backoff.is_finite() || self.retry_backoff < 0.0 {
            return Err(FaultConfigError::NegativeBackoff(self.retry_backoff));
        }
        if self.max_retries > MAX_RETRY_LIMIT {
            return Err(FaultConfigError::RetryLimitTooLarge(self.max_retries));
        }
        if !has_wire {
            if self.corrupt_prob > 0.0 {
                return Err(FaultConfigError::RequiresWire("corrupt_prob"));
            }
            if self.straggle_prob > 0.0 {
                return Err(FaultConfigError::RequiresWire("straggle_prob"));
            }
            if self.deadline.is_some() {
                return Err(FaultConfigError::RequiresWire("deadline"));
            }
        }
        Ok(())
    }
}

/// One way a frame is damaged on the wire. Positions are stored as fractions
/// of the frame length so the draw is independent of the encoded size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Corruption {
    /// Keep only the leading fraction of the frame (always strictly shorter
    /// than the original, so validated decode always fails).
    Truncate(f64),
    /// XOR the byte at the given relative position with a non-zero mask.
    FlipByte {
        /// Relative position in `[0, 1)` of the byte to damage.
        pos: f64,
        /// Non-zero XOR mask.
        mask: u8,
    },
}

/// Applies a [`Corruption`] to a frame, returning the damaged bytes.
pub(crate) fn corrupt_frame(frame: &[u8], corruption: Corruption) -> Vec<u8> {
    match corruption {
        Corruption::Truncate(fraction) => {
            let keep = ((frame.len() as f64) * fraction) as usize;
            frame[..keep.min(frame.len().saturating_sub(1))].to_vec()
        }
        Corruption::FlipByte { pos, mask } => {
            let mut damaged = frame.to_vec();
            if !damaged.is_empty() {
                let i = (((damaged.len() as f64) * pos) as usize).min(damaged.len() - 1);
                damaged[i] ^= mask;
            }
            damaged
        }
    }
}

/// The faults planned for one client in one round.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ClientFaultPlan {
    /// The client is mid-outage: it computes nothing and sends nothing, and
    /// none of its RNG streams advance.
    pub offline: bool,
    /// The computed upload is lost in transit without retry; the update
    /// stays in the client's residual accumulator.
    pub dropped: bool,
    /// Uplink transmission slowdown (1.0 = nominal).
    pub slowdown: f64,
    /// Damage applied to the leading uplink attempts; attempt `a` is
    /// corrupted iff `a < corruptions.len()`.
    pub corruptions: Vec<Corruption>,
}

impl ClientFaultPlan {
    fn clean() -> Self {
        Self {
            offline: false,
            dropped: false,
            slowdown: 1.0,
            corruptions: Vec::new(),
        }
    }
}

/// Runtime state of the fault injector: the model, its dedicated RNG
/// stream, and the outage bookkeeping.
///
/// The outage table is *sparse*: only clients currently (or recently) in an
/// outage hold an entry, so the injector's resident footprint scales with
/// the number of crashed clients, not the population size — a requirement
/// of the million-client cohort engine. Planning is cohort-scoped: only the
/// sampled members draw from the fault stream each round, and a
/// full-population cohort replays exactly the stream the old dense planner
/// drew.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    model: FaultModel,
    rng: ChaCha8Rng,
    num_clients: usize,
    /// Client id → exclusive 0-based round index until which that client is
    /// offline. A `BTreeMap` keeps checkpoint serialization and iteration
    /// deterministic; expired entries are dropped lazily when the client is
    /// next planned.
    outage_until: BTreeMap<u64, u64>,
}

impl FaultState {
    /// Builds the runtime state for `num_clients` clients. The stream is
    /// derived from the model's own seed so it never aliases the data,
    /// client, or server streams (which hang off the simulation seed).
    pub fn new(model: FaultModel, num_clients: usize) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(
            model
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0xFA01_7FA0_17FA_017F),
        );
        Self {
            model,
            rng,
            num_clients,
            outage_until: BTreeMap::new(),
        }
    }

    /// The configured model.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Draws the fault plan for every client, serially in client order.
    /// Equivalent to [`FaultState::plan_round_for`] over `0..num_clients`.
    #[cfg(test)]
    pub fn plan_round(&mut self, round: usize, max_attempts: usize) -> Vec<ClientFaultPlan> {
        let cohort: Vec<usize> = (0..self.num_clients).collect();
        self.plan_round_for(round, max_attempts, &cohort)
    }

    /// Draws the fault plan for one round's cohort, serially in member
    /// order; the returned plans are parallel to `cohort`. `round` is the
    /// 0-based round index; `max_attempts` is `1 + max_retries` and bounds
    /// the corruption draws per member. With `cohort == 0..num_clients`
    /// the drawn stream is bit-identical to the historical full-population
    /// planner.
    pub fn plan_round_for(
        &mut self,
        round: usize,
        max_attempts: usize,
        cohort: &[usize],
    ) -> Vec<ClientFaultPlan> {
        let mut plans = Vec::with_capacity(cohort.len());
        for &client in cohort {
            debug_assert!(client < self.num_clients, "cohort member out of range");
            let mut plan = ClientFaultPlan::clean();
            let key = client as u64;
            if let Some(&until) = self.outage_until.get(&key) {
                if (round as u64) < until {
                    plan.offline = true;
                    plans.push(plan);
                    continue;
                }
                self.outage_until.remove(&key);
            }
            if self.model.crash_prob > 0.0 && self.rng.gen_bool(self.model.crash_prob) {
                let (min, max) = self.model.outage_rounds;
                let span = if max > min {
                    self.rng.gen_range(min..=max)
                } else {
                    min
                };
                self.outage_until.insert(key, round as u64 + span as u64);
                plan.offline = true;
                plans.push(plan);
                continue;
            }
            if self.model.drop_prob > 0.0 && self.rng.gen_bool(self.model.drop_prob) {
                plan.dropped = true;
                plans.push(plan);
                continue;
            }
            if self.model.straggle_prob > 0.0 && self.rng.gen_bool(self.model.straggle_prob) {
                plan.slowdown = self.model.straggle_factor;
            }
            if self.model.corrupt_prob > 0.0 {
                for _ in 0..max_attempts {
                    if !self.rng.gen_bool(self.model.corrupt_prob) {
                        break;
                    }
                    let corruption = if self.rng.gen::<bool>() {
                        Corruption::Truncate(self.rng.gen::<f64>())
                    } else {
                        Corruption::FlipByte {
                            pos: self.rng.gen::<f64>(),
                            mask: (self.rng.gen_range(1u32..256)) as u8,
                        }
                    };
                    plan.corruptions.push(corruption);
                }
            }
            plans.push(plan);
        }
        plans
    }

    /// Serializes the injector state (RNG position plus the sparse outage
    /// table as parallel key/value vectors in ascending client order).
    pub fn write_state(&self, w: &mut SnapshotWriter) {
        w.rng(&self.rng);
        let keys: Vec<u64> = self.outage_until.keys().copied().collect();
        let values: Vec<u64> = self.outage_until.values().copied().collect();
        w.u64s(&keys);
        w.u64s(&values);
    }

    /// Restores state produced by [`FaultState::write_state`].
    pub fn read_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), CheckpointError> {
        let rng = r.rng()?;
        let keys = r.u64s()?;
        let values = r.u64s()?;
        if keys.len() != values.len() {
            return Err(CheckpointError::Mismatch {
                field: "fault outage table length",
            });
        }
        let strictly_ascending = keys.windows(2).all(|w| w[0] < w[1]);
        if !strictly_ascending || keys.iter().any(|&k| k >= self.num_clients as u64) {
            return Err(CheckpointError::Invalid("fault outage table keys"));
        }
        self.rng = rng;
        self.outage_until = keys.into_iter().zip(values).collect();
        Ok(())
    }
}

/// Per-round fault accounting, attached to `RoundReport` whenever a fault
/// model is configured (all-zero on clean rounds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultRoundReport {
    /// Clients offline for the whole round (mid-outage).
    pub offline: usize,
    /// Clients whose upload was lost to Bernoulli dropout.
    pub dropped: usize,
    /// Transmitting clients slowed by the straggle factor this round.
    pub stragglers: usize,
    /// Corrupted uplink attempts observed (each hit the validated
    /// `WireError` decode path and was discarded).
    pub corrupt_frames: usize,
    /// Clients lost after exhausting every retry with corrupted frames.
    pub corrupt_lost: usize,
    /// Clients dropped because their uplink exceeded the round deadline.
    pub deadline_dropped: usize,
    /// Extra uplink attempts beyond each client's first.
    pub retries: usize,
    /// Bytes re-transmitted by retry attempts.
    pub retransmitted_bytes: u64,
    /// Uploads that reached the server and were aggregated.
    pub survivors: usize,
}

impl FaultRoundReport {
    /// Total clients that failed to contribute an upload this round.
    pub fn lost(&self) -> usize {
        self.offline + self.dropped + self.corrupt_lost + self.deadline_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_valid_and_fault_free() {
        let model = FaultModel::default();
        model.validate(false).unwrap();
        model.validate(true).unwrap();
        let mut state = FaultState::new(model, 5);
        for round in 0..20 {
            for plan in state.plan_round(round, 3) {
                assert_eq!(plan, ClientFaultPlan::clean());
            }
        }
    }

    #[test]
    fn validation_rejects_each_bad_field() {
        let base = FaultModel::default();
        let bad_prob = FaultModel {
            drop_prob: 1.5,
            ..base.clone()
        };
        assert!(matches!(
            bad_prob.validate(true),
            Err(FaultConfigError::ProbabilityOutOfRange {
                field: "drop_prob",
                ..
            })
        ));
        let nan_prob = FaultModel {
            corrupt_prob: f64::NAN,
            ..base.clone()
        };
        assert!(matches!(
            nan_prob.validate(true),
            Err(FaultConfigError::ProbabilityOutOfRange { .. })
        ));
        let zero_deadline = FaultModel {
            deadline: Some(0.0),
            ..base.clone()
        };
        assert_eq!(
            zero_deadline.validate(true),
            Err(FaultConfigError::NonPositiveDeadline(0.0))
        );
        let weak_straggle = FaultModel {
            straggle_factor: 0.5,
            ..base.clone()
        };
        assert_eq!(
            weak_straggle.validate(true),
            Err(FaultConfigError::InvalidStraggleFactor(0.5))
        );
        let empty_outage = FaultModel {
            outage_rounds: (3, 1),
            ..base.clone()
        };
        assert_eq!(
            empty_outage.validate(true),
            Err(FaultConfigError::InvalidOutageRange { min: 3, max: 1 })
        );
        let zero_outage = FaultModel {
            outage_rounds: (0, 2),
            ..base.clone()
        };
        assert!(zero_outage.validate(true).is_err());
        let negative_backoff = FaultModel {
            retry_backoff: -0.1,
            ..base.clone()
        };
        assert_eq!(
            negative_backoff.validate(true),
            Err(FaultConfigError::NegativeBackoff(-0.1))
        );
        let too_many_retries = FaultModel {
            max_retries: MAX_RETRY_LIMIT + 1,
            ..base.clone()
        };
        assert_eq!(
            too_many_retries.validate(true),
            Err(FaultConfigError::RetryLimitTooLarge(MAX_RETRY_LIMIT + 1))
        );
    }

    #[test]
    fn byte_level_faults_require_wire() {
        let base = FaultModel::default();
        let corrupt = FaultModel {
            corrupt_prob: 0.1,
            ..base.clone()
        };
        assert_eq!(
            corrupt.validate(false),
            Err(FaultConfigError::RequiresWire("corrupt_prob"))
        );
        corrupt.validate(true).unwrap();
        let straggle = FaultModel {
            straggle_prob: 0.1,
            ..base.clone()
        };
        assert!(straggle.validate(false).is_err());
        let deadline = FaultModel {
            deadline: Some(1.0),
            ..base.clone()
        };
        assert_eq!(
            deadline.validate(false),
            Err(FaultConfigError::RequiresWire("deadline"))
        );
        // Dropout and crashes act on scalar timing too: valid without wire.
        let scalar_ok = FaultModel {
            drop_prob: 0.3,
            crash_prob: 0.1,
            ..base
        };
        scalar_ok.validate(false).unwrap();
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let model = FaultModel {
            drop_prob: 0.3,
            crash_prob: 0.1,
            straggle_prob: 0.2,
            corrupt_prob: 0.4,
            seed: 11,
            ..FaultModel::default()
        };
        let mut a = FaultState::new(model.clone(), 8);
        let mut b = FaultState::new(model, 8);
        for round in 0..30 {
            assert_eq!(a.plan_round(round, 3), b.plan_round(round, 3));
        }
    }

    #[test]
    fn crashes_span_multiple_rounds() {
        let model = FaultModel {
            crash_prob: 0.5,
            outage_rounds: (2, 4),
            seed: 3,
            ..FaultModel::default()
        };
        let mut state = FaultState::new(model, 4);
        let mut saw_outage_continuation = false;
        let mut previous: Vec<bool> = vec![false; 4];
        for round in 0..40 {
            let plans = state.plan_round(round, 1);
            for (client, plan) in plans.iter().enumerate() {
                if previous[client] && plan.offline {
                    saw_outage_continuation = true;
                }
            }
            previous = plans.iter().map(|p| p.offline).collect();
        }
        assert!(
            saw_outage_continuation,
            "outages of 2+ rounds must keep clients offline across rounds"
        );
    }

    #[test]
    fn cohort_plans_match_full_population_prefix() {
        // Planning a cohort draws exactly the stream a full-population plan
        // would draw for those members (when they lead the client order).
        let model = FaultModel {
            drop_prob: 0.3,
            crash_prob: 0.1,
            straggle_prob: 0.2,
            corrupt_prob: 0.4,
            seed: 17,
            ..FaultModel::default()
        };
        let mut full = FaultState::new(model.clone(), 6);
        let mut sampled = FaultState::new(model, 6);
        for round in 0..15 {
            let all = full.plan_round(round, 3);
            let cohort: Vec<usize> = (0..6).collect();
            let sub = sampled.plan_round_for(round, 3, &cohort);
            assert_eq!(all, sub, "round {round}");
        }
    }

    #[test]
    fn outage_table_stays_sparse() {
        let model = FaultModel {
            crash_prob: 0.5,
            outage_rounds: (1, 1),
            seed: 9,
            ..FaultModel::default()
        };
        let mut state = FaultState::new(model, 1000);
        // Only the sampled members can ever enter the table.
        let cohort = [3usize, 400, 999];
        for round in 0..50 {
            state.plan_round_for(round, 1, &cohort);
            assert!(state.outage_until.len() <= cohort.len());
        }
    }

    #[test]
    fn corrupt_frame_truncation_is_strictly_shorter() {
        let frame = vec![1u8, 2, 3, 4, 5];
        for fraction in [0.0, 0.2, 0.5, 0.999, 1.0] {
            let damaged = corrupt_frame(&frame, Corruption::Truncate(fraction));
            assert!(damaged.len() < frame.len(), "fraction {fraction}");
            assert_eq!(&frame[..damaged.len()], &damaged[..]);
        }
    }

    #[test]
    fn corrupt_frame_flip_changes_exactly_one_byte() {
        let frame = vec![7u8; 9];
        let damaged = corrupt_frame(
            &frame,
            Corruption::FlipByte {
                pos: 0.99,
                mask: 0x40,
            },
        );
        assert_eq!(damaged.len(), frame.len());
        let diffs = frame.iter().zip(&damaged).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn state_roundtrip_resumes_plan_stream() {
        let model = FaultModel {
            drop_prob: 0.25,
            crash_prob: 0.15,
            corrupt_prob: 0.3,
            seed: 21,
            ..FaultModel::default()
        };
        let mut a = FaultState::new(model.clone(), 6);
        for round in 0..7 {
            a.plan_round(round, 2);
        }
        let mut w = SnapshotWriter::new();
        a.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut b = FaultState::new(model, 6);
        let mut r = SnapshotReader::new(&bytes);
        b.read_state(&mut r).unwrap();
        r.finish().unwrap();
        for round in 7..20 {
            assert_eq!(a.plan_round(round, 2), b.plan_round(round, 2));
        }
    }
}
