//! Federated-learning simulator with sparse gradient aggregation.
//!
//! This crate drives Algorithm 1 of the paper: in every round `m` each client
//! adds its freshly computed local mini-batch gradient to its residual
//! accumulator, uploads a sparse message, the server selects and aggregates
//! `k` elements, broadcasts them, and every client applies the identical
//! sparse SGD step `w(m) = w(m-1) - η ∇_s L(w(m-1))`. Because all clients
//! apply the same update, the weight vector stays synchronized and the
//! simulator keeps a single copy of it.
//!
//! Time is *normalized* exactly as in the paper's evaluation (Section V): the
//! computation of one round (all clients in parallel) costs 1, and the
//! communication time is given for a full `D`-element exchange and scaled by
//! the number of scalars actually transmitted. See [`TimeModel`].
//!
//! The crate also contains the paper's baselines that are not plain
//! sparsifiers: [`FedAvgSimulation`] (send-all-or-nothing local SGD with
//! periodic weight averaging at equal average communication overhead).
//!
//! # Byte-priced exchange
//!
//! Alongside the scalar proxy, [`SimulationConfig::wire`] switches a run
//! onto the **byte-accurate** cost path: every uplink/downlink message is
//! encoded through an `agsfl_wire` codec, the server decodes the frames
//! before aggregation, and the round time comes from a per-client
//! [`ChannelModel`] (heterogeneous bandwidths, latency, optional per-round
//! bandwidth trace; round time = slowest upload + broadcast downlink). The
//! codecs are lossless and the top-k rank order is a total order of the
//! values, so the training trajectory is bit-identical to the un-wired run
//! — only the cost signal the adaptive-`k` controllers observe changes,
//! which is exactly the drop-in additive-cost swap the paper's online
//! formulation permits.
//!
//! # Sampled cohorts and million-client populations
//!
//! Per-client *persistent* state (residual accumulator, RNG stream,
//! sampler cursor) lives in a struct-of-arrays `ClientPopulation` holding
//! rows only for clients that have participated, and each round hydrates
//! the participating clients into a reusable arena of cohort slots.
//! [`SimulationConfig::cohort`] samples that many clients per round
//! (without replacement, from a dedicated seeded stream, drawn serially
//! before the parallel pass); `None` runs everyone and is bit-identical
//! to a full-population cohort. Combined with a lazy
//! [`agsfl_ml::data::ShardSource`] (see [`Simulation::with_source`]),
//! server memory is `O(cohort · k + touched_clients · D)` — independent
//! of the population size, so a million-client round runs in the same
//! resident set as a thousand-client one.
//!
//! # The parallel round engine
//!
//! Each round runs three parallel regions through one reusable
//! [`Executor`] (configured by [`SimulationConfig::parallelism`]): a fused
//! per-client pass that computes the local gradient and builds the uplink
//! message while the residual is hot in cache, the sharded server
//! selection ([`agsfl_sparse::Sparsifier::select_parallel`]), and — on
//! probe rounds — a per-client probe-loss sweep that evaluates all three
//! weight vectors in a single sample fetch. Parallelism is purely a
//! wall-clock knob: every client owns its RNG and sampler, results are
//! concatenated in client order, and the selection shards merge exactly
//! (see `agsfl_sparse::shard`), so identical seeds give identical runs for
//! every thread count. `crates/fl`'s
//! `simulation::tests::serial_and_parallel_runs_are_identical` pins this
//! end to end.
//!
//! # Example
//!
//! ```
//! use agsfl_fl::{Simulation, SimulationConfig, TimeModel};
//! use agsfl_ml::data::{SyntheticFemnist, SyntheticFemnistConfig};
//! use agsfl_ml::model::LinearSoftmax;
//! use agsfl_sparse::FabTopK;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let fed = SyntheticFemnist::new(SyntheticFemnistConfig::tiny()).generate(&mut rng);
//! let model = LinearSoftmax::new(fed.feature_dim(), fed.num_classes());
//! let config = SimulationConfig {
//!     learning_rate: 0.05,
//!     batch_size: 8,
//!     time_model: TimeModel::new(1.0, 10.0),
//!     seed: 7,
//!     ..SimulationConfig::default()
//! };
//! let mut sim = Simulation::new(Box::new(model), fed, Box::new(FabTopK::new()), config);
//! let report = sim.run_round(16, None);
//! assert!(report.train_loss > 0.0);
//! assert!(report.round_time > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
pub mod checkpoint;
mod client;
mod fault;
mod fedavg;
mod history;
mod population;
mod resource;
mod round;
mod simulation;
mod time;

pub use agsfl_exec::{Executor, Parallelism};
pub use agsfl_telemetry::{CounterId, GaugeId, NoopRecorder, Recorder, SpanId, StageRecorder};
pub use channel::{ChannelModel, ClientLink};
pub use checkpoint::CheckpointError;
pub use client::Client;
pub use fault::{FaultConfigError, FaultModel, FaultRoundReport, MAX_RETRY_LIMIT};
pub use fedavg::{FedAvgConfig, FedAvgSimulation};
pub use history::{FaultTotals, MetricPoint, RunHistory};
pub use resource::{CompositeCost, ResourceModel};
pub use round::{ProbeReport, RoundReport, WireRoundReport};
pub use simulation::{record_round_report, Simulation, SimulationConfig, WireConfig};
pub use time::TimeModel;
